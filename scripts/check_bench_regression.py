"""Compare a pytest-benchmark JSON run against a checked-in baseline.

Usage:
    python scripts/check_bench_regression.py bench.json \
        --baseline benchmarks/baseline.json [--threshold 2.0]

    python scripts/check_bench_regression.py bench.json \
        --baseline benchmarks/baseline.json --update

The baseline is a reduced map of benchmark name to mean seconds (plus
provenance metadata), regenerated with ``--update``.  The check fails (exit
code 1) when any benchmark present in both files is slower than
``threshold`` times its baseline mean.  Benchmarks new to this run are
reported but never fail the check; benchmarks that disappeared are listed
so a silently-deleted benchmark cannot hide a regression forever.
"""

import argparse
import json
import sys


def load_means(bench_json_path):
    """Benchmark name -> mean seconds from a pytest-benchmark JSON file."""
    with open(bench_json_path, encoding="utf-8") as handle:
        data = json.load(handle)
    return {
        bench["name"]: bench["stats"]["mean"] for bench in data["benchmarks"]
    }


def reduce_mean(mean):
    """Round to significant digits, never decimal places.

    ``round(mean, 6)`` flattened any benchmark faster than ~0.5 µs to a
    stored baseline of 0.0, which the ``baseline_mean > 0`` guard in
    :func:`check` then skipped forever — sub-microsecond kernels could
    regress unboundedly.  Three significant digits keep the file tidy at
    every magnitude while staying well inside the 2x check threshold.
    """
    return float(f"{mean:.3g}")


def write_baseline(path, means, source):
    baseline = {
        "comment": (
            "Benchmark baseline means in seconds; regenerate with "
            "scripts/check_bench_regression.py --update"
        ),
        "source": source,
        "means": {name: reduce_mean(mean) for name, mean in sorted(means.items())},
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(baseline, handle, indent=2)
        handle.write("\n")


def check(means, baseline_means, threshold):
    """Returns (regressions, new, missing); regressions are fatal."""
    regressions = []
    for name, baseline_mean in sorted(baseline_means.items()):
        if name not in means:
            continue
        if baseline_mean > 0 and means[name] > threshold * baseline_mean:
            regressions.append((name, baseline_mean, means[name]))
    new = sorted(set(means) - set(baseline_means))
    missing = sorted(set(baseline_means) - set(means))
    return regressions, new, missing


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json", help="pytest-benchmark JSON output")
    parser.add_argument("--baseline", required=True)
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="fail when current mean exceeds threshold x baseline (default 2.0)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from this run instead of checking",
    )
    args = parser.parse_args(argv)

    means = load_means(args.bench_json)
    if args.update:
        write_baseline(args.baseline, means, source=args.bench_json)
        print(f"baseline updated: {args.baseline} ({len(means)} benchmarks)")
        return 0

    with open(args.baseline, encoding="utf-8") as handle:
        baseline_means = json.load(handle)["means"]

    regressions, new, missing = check(means, baseline_means, args.threshold)
    for name in new:
        print(f"NEW       {name}: {means[name] * 1000:.1f} ms (no baseline)")
    for name in missing:
        print(f"MISSING   {name}: present in baseline, absent from this run")
    for name, base, now in regressions:
        print(
            f"REGRESSED {name}: {now * 1000:.1f} ms vs baseline "
            f"{base * 1000:.1f} ms ({now / base:.2f}x > {args.threshold}x)"
        )
    checked = len(set(means) & set(baseline_means))
    if regressions:
        print(f"{len(regressions)} regression(s) across {checked} benchmarks")
        return 1
    print(f"OK: {checked} benchmarks within {args.threshold}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
