"""Accuracy evaluation tests."""

import pytest

from repro.align.pipeline import SoftwareAligner
from repro.analysis.accuracy import AccuracyReport, evaluate
from repro.genome.reads import ErrorModel, ReadSimulator
from repro.genome.reference import SyntheticReference


@pytest.fixture(scope="module")
def reference():
    return SyntheticReference(length=30_000, chromosomes=2, seed=71).build()


class TestEvaluate:
    def test_clean_reads_near_perfect(self, reference):
        aligner = SoftwareAligner(reference, occ_interval=64)
        sim = ReadSimulator(reference, read_length=80,
                            error_model=ErrorModel(0, 0, 0), seed=1)
        report = evaluate(aligner.align_all(sim.simulate(20)), reference)
        assert report.mapped_fraction >= 0.95
        assert report.precision >= 0.9
        assert report.f1 > 0.85

    def test_empty_batch(self, reference):
        report = evaluate([], reference)
        assert report.total == 0
        assert report.mapped_fraction == 0.0
        assert report.f1 == 0.0

    def test_tolerance_validation(self, reference):
        with pytest.raises(ValueError):
            evaluate([], reference, tolerance=-1)

    def test_report_arithmetic(self):
        report = AccuracyReport(total=10, mapped=8, locus_correct=6,
                                strand_correct=7, tolerance=100)
        assert report.mapped_fraction == pytest.approx(0.8)
        assert report.precision == pytest.approx(0.75)
        assert report.recall == pytest.approx(0.6)
        assert 0 < report.f1 < 1

    def test_long_read_results_supported(self, reference):
        from repro.align.long_read import LongReadAligner
        aligner = LongReadAligner(reference)
        sim = ReadSimulator(reference, read_length=800,
                            error_model=ErrorModel(0, 0, 0), seed=2)
        report = evaluate(aligner.align_all(sim.simulate(5)), reference,
                          tolerance=100)
        assert report.mapped_fraction >= 0.8
        assert report.precision >= 0.8
