"""Fig 2 breakdown analysis tests."""

import pytest

from repro.align.pipeline import SoftwareAligner
from repro.analysis.breakdown import phase_breakdown, summarize_diversity
from repro.genome.datasets import get_dataset
from repro.genome.reads import ReadSimulator


@pytest.fixture(scope="module")
def results():
    from repro.genome.reads import ErrorModel
    profile = get_dataset("H.s.")
    ref = profile.build_reference(seed=5, length=40_000)
    aligner = SoftwareAligner(ref, occ_interval=64)
    # A mix of clean and noisy reads: errors fragment the SMEM chains,
    # which is what makes per-read work diverse in real data (Fig 2).
    clean = ReadSimulator(ref, read_length=101, seed=6).simulate(20)
    noisy = ReadSimulator(ref, read_length=101, seed=7,
                          error_model=ErrorModel(0.03, 0.003, 0.003),
                          ).simulate(20)
    return aligner.align_all(clean + noisy)


class TestPhaseBreakdown:
    def test_one_bar_per_read(self, results):
        bars = phase_breakdown(results)
        assert len(bars) == len(results)
        assert [b.read_id for b in bars] == \
            [r.read.read_id for r in results]

    def test_both_phases_nonzero(self, results):
        bars = phase_breakdown(results)
        assert all(b.seeding_us > 0 for b in bars)
        assert sum(b.extension_us for b in bars) > 0

    def test_seeding_fraction_bounds(self, results):
        for bar in phase_breakdown(results):
            assert 0.0 <= bar.seeding_fraction <= 1.0


class TestDiversity:
    def test_reads_are_diverse(self, results):
        """The Fig 2 observation: totals and proportions vary per read."""
        summary = summarize_diversity(phase_breakdown(results))
        assert summary.total_spread > 1.2
        assert summary.seeding_fraction_spread > 0.05

    def test_summary_fields(self, results):
        summary = summarize_diversity(phase_breakdown(results))
        assert summary.reads == len(results)
        assert summary.min_total_us <= summary.mean_total_us \
            <= summary.max_total_us
        assert 0.0 <= summary.mean_seeding_fraction <= 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize_diversity([])
