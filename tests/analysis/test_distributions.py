"""Distribution analysis tests."""

import pytest

from repro.analysis.distributions import (
    IntervalStats,
    dataset_interval_table,
    distribution_similarity,
    interval_stats,
    workload_interval_stats,
)
from repro.core.workload import synthetic_workload
from repro.genome.datasets import get_dataset, short_read_datasets


class TestIntervalStats:
    def test_bucketing(self):
        stats = interval_stats([1, 16, 17, 32, 64, 128, 300])
        assert stats.counts == (2, 2, 1, 2)

    def test_count_mass_sums_to_one(self):
        stats = interval_stats([5, 20, 50, 100])
        assert sum(stats.count_mass) == pytest.approx(1.0)

    def test_demand_mass_weights_long_hits(self):
        stats = interval_stats([5, 100])
        assert stats.demand_mass[3] > stats.count_mass[3]

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            interval_stats([])

    def test_invalid_length_raises(self):
        with pytest.raises(ValueError):
            interval_stats([0])

    def test_mismatched_construction_raises(self):
        with pytest.raises(ValueError):
            IntervalStats(bounds=(16, 32), counts=(1,))


class TestWorkloadStats:
    def test_matches_profile_mass(self):
        profile = get_dataset("H.s.")
        wl = synthetic_workload(profile, 2000, seed=1)
        stats = workload_interval_stats(wl)
        for got, want in zip(stats.count_mass, profile.interval_mass):
            assert abs(got - want) < 0.03

    def test_demand_mass_near_eq5_input(self):
        """Workload demand mass ≈ the NA12878 Equation-5 distribution."""
        from repro.genome.datasets import NA12878_INTERVAL_MASS
        wl = synthetic_workload(get_dataset("H.s."), 4000, seed=2)
        demand = workload_interval_stats(wl).demand_mass
        for got, want in zip(demand, NA12878_INTERVAL_MASS):
            assert abs(got - want) < 0.06


class TestDatasetTable:
    def test_fig14b_table(self):
        table = dataset_interval_table(short_read_datasets(),
                                       samples_per_dataset=5000, seed=3)
        assert len(table) == 6
        for mass in table.values():
            assert sum(mass) == pytest.approx(1.0)

    def test_all_datasets_similar_to_hs(self):
        """Fig 14(b): similar distributions across 2nd-gen datasets."""
        table = dataset_interval_table(short_read_datasets(),
                                       samples_per_dataset=5000, seed=4)
        reference = table["H.s."]
        for name, mass in table.items():
            assert distribution_similarity(reference, mass) > 0.9, name

    def test_invalid_samples(self):
        with pytest.raises(ValueError):
            dataset_interval_table(short_read_datasets(),
                                   samples_per_dataset=0)


class TestSimilarity:
    def test_identical(self):
        assert distribution_similarity((0.5, 0.5), (0.5, 0.5)) == 1.0

    def test_disjoint(self):
        assert distribution_similarity((1.0, 0.0), (0.0, 1.0)) == \
            pytest.approx(0.0)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            distribution_similarity((1.0,), (0.5, 0.5))
