"""Design-space exploration tests (Fig 13)."""

import pytest

from repro.analysis.dse import (
    best_tradeoff,
    interval_classes,
    sweep_buffer_depth,
    sweep_interval_count,
)
from repro.core.workload import synthetic_workload
from repro.genome.datasets import get_dataset


@pytest.fixture(scope="module")
def workload():
    return synthetic_workload(get_dataset("H.s."), 300, seed=21)


class TestIntervalClasses:
    def test_paper_point(self):
        assert interval_classes(4) == (16, 32, 64, 128)

    def test_single(self):
        assert interval_classes(1) == (64,)

    def test_two(self):
        assert interval_classes(2) == (64, 128)

    def test_large_capped(self):
        classes = interval_classes(16)
        assert classes[0] >= 2
        assert classes[-1] == 128

    def test_invalid(self):
        with pytest.raises(ValueError):
            interval_classes(0)


class TestBufferDepthSweep:
    def test_sweep_shape(self, workload):
        points = sweep_buffer_depth(workload, depths=(64, 1024))
        assert [p.depth for p in points] == [64, 1024]
        for p in points:
            assert p.kreads_per_second > 0
            assert 0 <= p.su_utilization <= 1
            assert 0 <= p.eu_utilization <= 1

    def test_empty_depths_raise(self, workload):
        with pytest.raises(ValueError):
            sweep_buffer_depth(workload, depths=())


class TestIntervalSweep:
    def test_sweep_runs_each_count(self, workload):
        points = sweep_interval_count(workload, interval_counts=(1, 4))
        assert [p.intervals for p in points] == [1, 4]
        for p in points:
            assert p.kreads_per_second > 0
            assert p.coordinator_power_w > 0

    def test_power_grows_with_intervals(self, workload):
        points = sweep_interval_count(workload, interval_counts=(1, 4, 8))
        powers = [p.coordinator_power_w for p in points]
        assert powers == sorted(powers)

    def test_four_intervals_beat_one_on_throughput(self, workload):
        points = sweep_interval_count(workload, interval_counts=(1, 4))
        assert points[1].kreads_per_second > points[0].kreads_per_second

    def test_best_tradeoff(self, workload):
        points = sweep_interval_count(workload, interval_counts=(1, 4))
        assert best_tradeoff(points) in points

    def test_empty_raises(self, workload):
        with pytest.raises(ValueError):
            sweep_interval_count(workload, interval_counts=())
        with pytest.raises(ValueError):
            best_tradeoff([])

    def test_saturated_counts_deduplicated(self, workload):
        points = sweep_interval_count(workload, interval_counts=(8, 16))
        assert len(points) == 1  # both cap at seven doubling classes


class TestServiceDemand:
    def test_matches_eq5_input_on_na12878(self, workload):
        from repro.analysis.dse import service_demand_mass
        from repro.genome.datasets import NA12878_INTERVAL_MASS
        demand = service_demand_mass(workload.hit_lengths(),
                                     (16, 32, 64, 128))
        for got, want in zip(demand, NA12878_INTERVAL_MASS):
            assert abs(got - want) < 0.06

    def test_empty_raises(self):
        from repro.analysis.dse import service_demand_mass
        with pytest.raises(ValueError):
            service_demand_mass([], (16, 32))


class TestThresholdSweeps:
    def test_switch_threshold_sweep(self, workload):
        from repro.analysis.dse import sweep_switch_threshold
        points = sweep_switch_threshold(workload, thresholds=(0.5, 0.75))
        assert [p.value for p in points] == [0.5, 0.75]
        assert all(p.kreads_per_second > 0 for p in points)

    def test_idle_trigger_sweep(self, workload):
        from repro.analysis.dse import sweep_idle_trigger
        points = sweep_idle_trigger(workload, fractions=(0.0, 0.15, 0.5))
        assert [p.value for p in points] == [0.0, 0.15, 0.5]
        # very lazy triggering (50% idle needed) should not beat the
        # paper's 15% setting
        by_value = {p.value: p.kreads_per_second for p in points}
        assert by_value[0.15] >= 0.9 * by_value[0.5]

    def test_validation(self, workload):
        from repro.analysis.dse import (sweep_idle_trigger,
                                        sweep_switch_threshold)
        with pytest.raises(ValueError):
            sweep_switch_threshold(workload, thresholds=())
        with pytest.raises(ValueError):
            sweep_switch_threshold(workload, thresholds=(0.0,))
        with pytest.raises(ValueError):
            sweep_idle_trigger(workload, fractions=(1.5,))
