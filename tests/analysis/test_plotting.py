"""Terminal plotting helper tests."""

import pytest

from repro.analysis.plotting import (
    bar_chart,
    series_table,
    sparkline,
    utilization_panel,
)


class TestSparkline:
    def test_extremes(self):
        assert sparkline([0.0, 1.0]) == " █"

    def test_length(self):
        assert len(sparkline([0.5] * 17)) == 17

    def test_clamping(self):
        assert sparkline([-5.0, 5.0]) == " █"

    def test_custom_range(self):
        line = sparkline([50], lo=0, hi=100)
        assert line in "▃▄▅"

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            sparkline([0.5], lo=1, hi=0)


class TestPanels:
    def test_utilization_panel(self):
        text = utilization_panel({"NvWa SUs": [0.9, 0.95, 0.9],
                                  "baseline SUs": [0.2, 0.3, 0.25]})
        assert "NvWa SUs" in text
        assert "avg 91.7%" in text or "avg 92" in text

    def test_bar_chart_shapes(self):
        text = bar_chart({"CPU": 100.0, "NvWa": 140_000.0})
        lines = text.split("\n")
        assert lines[1].count("█") > lines[0].count("█")

    def test_log_scale_compresses(self):
        linear = bar_chart({"a": 1.0, "b": 10_000.0})
        logd = bar_chart({"a": 1.0, "b": 10_000.0}, log_scale=True)
        a_linear = linear.split("\n")[0].count("█")
        a_log = logd.split("\n")[0].count("█")
        assert a_log > a_linear

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({"a": -1.0})

    def test_empty_chart(self):
        assert bar_chart({}) == ""


class TestSeriesTable:
    def test_downsampling(self):
        rows = series_table({"x": list(range(100))}, bins_shown=5)
        assert len(rows) == 5
        assert rows[0]["x"] == 0.0
        assert rows[-1]["x"] == 80.0

    def test_empty_series(self):
        rows = series_table({"x": []}, bins_shown=3)
        assert all(r["x"] == 0.0 for r in rows)

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            series_table({"x": [1.0]}, bins_shown=0)
