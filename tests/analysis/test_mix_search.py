"""Unit-mix local search tests (small scale for speed)."""

import pytest

from repro.analysis.mix_search import (
    _neighbours,
    equation5_optimality_gap,
    evaluate_mix,
    local_search,
)
from repro.core.config import NvWaConfig
from repro.core.workload import synthetic_workload
from repro.genome.datasets import get_dataset

#: A quarter-scale accelerator so each simulation is cheap.
SMALL = NvWaConfig(num_seeding_units=32,
                   eu_config=((16, 7), (32, 5), (64, 4), (128, 2)),
                   hits_buffer_depth=256, allocation_batch_size=32)

pytestmark = pytest.mark.slow



@pytest.fixture(scope="module")
def workload():
    return synthetic_workload(get_dataset("H.s."), 200, seed=12)


class TestNeighbours:
    def test_split_and_merge_moves(self):
        mix = {16: 2, 32: 2, 64: 1, 128: 1}
        moves = _neighbours(mix, [16, 32, 64, 128])
        budgets = {sum(pe * n for pe, n in m.items()) for m in moves}
        original = sum(pe * n for pe, n in mix.items())
        assert budgets == {original}  # every move preserves the PE budget

    def test_no_negative_counts(self):
        for move in _neighbours({16: 1, 32: 0, 64: 0, 128: 1},
                                [16, 32, 64, 128]):
            assert all(v >= 0 for v in move.values())


class TestEvaluateMix:
    def test_runs_and_reports(self, workload):
        point = evaluate_mix({16: 7, 32: 5, 64: 4, 128: 2}, workload, SMALL)
        assert point.kreads_per_second > 0
        assert point.total_pes == 7 * 16 + 5 * 32 + 4 * 64 + 2 * 128

    def test_empty_mix_rejected(self, workload):
        with pytest.raises(ValueError):
            evaluate_mix({}, workload, SMALL)
        with pytest.raises(ValueError):
            evaluate_mix({16: 0}, workload, SMALL)


class TestLocalSearch:
    def test_trajectory_improves_monotonically(self, workload):
        trajectory = local_search(dict(SMALL.eu_config), workload, SMALL,
                                  max_steps=3)
        rates = [p.kreads_per_second for p in trajectory]
        assert rates == sorted(rates)

    def test_budget_preserved_along_trajectory(self, workload):
        trajectory = local_search(dict(SMALL.eu_config), workload, SMALL,
                                  max_steps=2)
        budgets = {p.total_pes for p in trajectory}
        assert len(budgets) == 1

    def test_invalid_steps(self, workload):
        with pytest.raises(ValueError):
            local_search(dict(SMALL.eu_config), workload, SMALL, max_steps=0)


class TestEquation5Gap:
    def test_formula_is_near_optimal(self, workload):
        """Equation 5's mix must sit close to the searched optimum —
        the quantitative defence of the paper's closed form."""
        gap, eq5, best = equation5_optimality_gap(workload, SMALL,
                                                  max_steps=3)
        assert gap >= 0.0
        assert gap < 0.30
        assert best.kreads_per_second >= eq5.kreads_per_second
