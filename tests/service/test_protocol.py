"""Wire-format round trips and validation for the NDJSON protocol."""

import json

import pytest

from repro.genome.reads import Read
from repro.service.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    decode_request,
    decode_response,
    encode_align,
    encode_align_pair,
    encode_control,
    error_response,
    success_response,
)


def test_align_round_trip():
    read = Read(read_id="r1", sequence="ACGTACGT", quality="IIIIIIII")
    request = decode_request(encode_align("42", read))
    assert request.request_id == "42"
    assert request.type == "align"
    assert not request.is_pair
    assert request.reads == [read]


def test_align_without_quality():
    read = Read(read_id="r1", sequence="ACGT")
    request = decode_request(encode_align("1", read))
    assert request.reads[0].quality == ""


def test_pair_round_trip():
    m1 = Read(read_id="p0/1", sequence="ACGTAC", quality="IIIIII")
    m2 = Read(read_id="p0/2", sequence="TTGGCC", quality="JJJJJJ")
    request = decode_request(encode_align_pair("7", m1, m2, pair_id="p0"))
    assert request.is_pair
    assert request.pair_id == "p0"
    assert request.reads == [m1, m2]


def test_pair_id_defaults_to_mate1():
    m1 = Read(read_id="x/1", sequence="ACGT")
    m2 = Read(read_id="x/2", sequence="ACGT")
    request = decode_request(encode_align_pair("7", m1, m2))
    assert request.pair_id == "x/1"


def test_control_round_trip():
    for rtype in ("stats", "ping"):
        request = decode_request(encode_control("9", rtype))
        assert request.type == rtype
        assert request.reads == []


def test_sequence_uppercased():
    line = json.dumps({"id": "1", "type": "align", "read_id": "r",
                       "sequence": "acgt"})
    assert decode_request(line).reads[0].sequence == "ACGT"


@pytest.mark.parametrize("line", [
    "not json at all",
    "[]",
    json.dumps({"type": "align", "read_id": "r", "sequence": "ACGT"}),
    json.dumps({"id": "1", "type": "nope"}),
    json.dumps({"id": "1", "type": "align", "read_id": "", "sequence": "A"}),
    json.dumps({"id": "1", "type": "align", "read_id": "r",
                "sequence": "AXGT"}),
    json.dumps({"id": "1", "type": "align", "read_id": "r",
                "sequence": "ACGT", "quality": "II"}),
    json.dumps({"id": "1", "type": "align_pair",
                "mate1": {"read_id": "a", "sequence": "ACGT"}}),
])
def test_bad_requests_rejected(line):
    with pytest.raises(ProtocolError):
        decode_request(line)


def test_oversized_line_rejected():
    with pytest.raises(ProtocolError):
        decode_request("x" * (MAX_LINE_BYTES + 1))


def test_response_round_trip():
    ok = decode_response(success_response("3", sam=["line"], mapped=True))
    assert ok["ok"] and ok["sam"] == ["line"] and ok["mapped"]
    err = decode_response(error_response("3", "overloaded", "queue full"))
    assert not err["ok"]
    assert err["error"] == "overloaded"
    assert err["message"] == "queue full"


def test_malformed_response_rejected():
    with pytest.raises(ProtocolError):
        decode_response("{}")
    with pytest.raises(ProtocolError):
        decode_response("garbage")


def test_idempotency_key_round_trips():
    read = Read(read_id="r1", sequence="ACGTACGT")
    line = encode_align("7", read, idempotency_key="sess-42")
    assert json.loads(line)["idem"] == "sess-42"
    request = decode_request(line)
    assert request.idempotency_key == "sess-42"
    # Absent by default — the field costs nothing when unused.
    bare = encode_align("8", read)
    assert "idem" not in json.loads(bare)
    assert decode_request(bare).idempotency_key is None


def test_idempotency_key_validated():
    read = Read(read_id="r1", sequence="ACGT")
    payload = json.loads(encode_align("9", read))
    payload["idem"] = ""
    with pytest.raises(ProtocolError, match="idem"):
        decode_request(json.dumps(payload))
    payload["idem"] = 123
    with pytest.raises(ProtocolError, match="idem"):
        decode_request(json.dumps(payload))


def test_budget_ms_round_trips():
    read = Read(read_id="r1", sequence="ACGT")
    request = decode_request(encode_align("1", read, budget_ms=250.0))
    assert request.budget_ms == 250.0
    m2 = Read(read_id="r2", sequence="TTGG")
    request = decode_request(
        encode_align_pair("2", read, m2, budget_ms=1500))
    assert request.budget_ms == 1500.0
    assert isinstance(request.budget_ms, float)


def test_budget_ms_defaults_to_none():
    read = Read(read_id="r1", sequence="ACGT")
    line = encode_align("1", read)
    assert "budget_ms" not in json.loads(line)
    assert decode_request(line).budget_ms is None


@pytest.mark.parametrize("bad", [0, -5, "fast", True])
def test_budget_ms_validated(bad):
    obj = {"id": "1", "type": "align", "read_id": "r",
           "sequence": "ACGT", "budget_ms": bad}
    with pytest.raises(ProtocolError, match="budget_ms"):
        decode_request(json.dumps(obj))


def test_budget_ms_null_reads_as_absent():
    obj = {"id": "1", "type": "align", "read_id": "r",
           "sequence": "ACGT", "budget_ms": None}
    assert decode_request(json.dumps(obj)).budget_ms is None
