"""Server robustness: admission control, timeouts, crash recovery, drain."""

import asyncio
import time

import pytest

from repro.service.client import AsyncServiceClient, ServiceError
from repro.service.engine import AlignmentEngine, FlakyEngine
from repro.service.server import AlignmentServer, ServerConfig
from tests.service.helpers import run, serving


class SlowEngine:
    """Delays every batch; lets tests build a backlog deterministically."""

    def __init__(self, inner, delay_s):
        self.inner = inner
        self.delay_s = delay_s

    def execute(self, requests):
        time.sleep(self.delay_s)
        return self.inner.execute(requests)


def test_config_validation():
    with pytest.raises(ValueError):
        ServerConfig(max_batch=0)
    with pytest.raises(ValueError):
        ServerConfig(workers=0)
    with pytest.raises(ValueError):
        ServerConfig(queue_depth=-1)
    with pytest.raises(ValueError):
        ServerConfig(request_timeout_s=-1)


def test_ping_stats_and_bad_request(service_reference, service_reads):
    async def scenario():
        async with serving(service_reference) as (server, client):
            assert await client.ping()
            await client.align(service_reads[0])
            stats = await client.stats()
            assert stats["metrics"]["counters"]["responses_total"] == 1
            assert stats["config"]["max_batch"] == 64
            assert stats["batcher"]["dispatched_items"] == 1
            # A malformed line gets a bad_request error, not a hangup.
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port)
            writer.write(b"this is not json\n")
            await writer.drain()
            line = (await reader.readline()).decode()
            assert '"bad_request"' in line
            writer.close()
    run(scenario())


def test_overload_rejection_and_recovery(service_reference, service_reads):
    """A full queue rejects with `overloaded`; accepted work completes."""
    async def scenario():
        factory = (lambda: SlowEngine(AlignmentEngine(service_reference),
                                      delay_s=0.1))
        async with serving(service_reference, engine_factory=factory,
                           workers=1, max_batch=1, queue_depth=2,
                           ) as (server, client):
            tasks = [asyncio.ensure_future(client.align(read))
                     for read in service_reads[:10]]
            outcomes = await asyncio.gather(*tasks,
                                            return_exceptions=True)
            rejected = [o for o in outcomes
                        if isinstance(o, ServiceError)
                        and o.code == "overloaded"]
            served = [o for o in outcomes if isinstance(o, dict)]
            assert rejected, "queue_depth=2 should have shed load"
            assert served, "admitted requests must still be served"
            assert len(rejected) + len(served) == 10
            snap = server.metrics.snapshot()
            assert snap["counters"]["rejected_total"] == len(rejected)
    run(scenario())


def test_request_timeout(service_reference, service_reads):
    async def scenario():
        factory = (lambda: SlowEngine(AlignmentEngine(service_reference),
                                      delay_s=0.3))
        async with serving(service_reference, engine_factory=factory,
                           workers=1, request_timeout_s=0.05,
                           ) as (server, client):
            with pytest.raises(ServiceError) as excinfo:
                await client.align(service_reads[0])
            assert excinfo.value.code == "timeout"
            assert server.metrics.snapshot()["counters"][
                "timeouts_total"] == 1
    run(scenario())


def test_worker_crash_replays_batch(service_reference, service_reads):
    """A crashing engine is discarded and the batch replayed on a fresh
    one — no accepted request is lost (acceptance criterion)."""
    factory_calls = []

    def factory():
        factory_calls.append(1)
        # One engine instance would re-crash forever; the shared flaky
        # wrapper crashes exactly once, on the first batch ever executed.
        return flaky

    async def scenario():
        async with serving(service_reference, engine_factory=factory,
                           workers=1) as (server, client):
            responses = await asyncio.gather(
                *(client.align(read) for read in service_reads[:8]))
            assert all(resp["ok"] for resp in responses)
            assert all(resp["sam"] for resp in responses)
            snap = server.metrics.snapshot()
            assert snap["counters"]["worker_crashes_total"] >= 1
            assert snap["counters"]["responses_total"] == 8
        assert len(factory_calls) >= 2  # engine was rebuilt after the crash

    flaky = FlakyEngine(AlignmentEngine(service_reference),
                        crash_on_calls=(1,))
    run(scenario())


def test_poisoned_request_fails_alone(service_reference, service_reads):
    """When replays keep failing, isolation fails only the poisoned
    request; its batchmates still succeed."""
    class PoisonableEngine:
        def __init__(self):
            self.inner = AlignmentEngine(service_reference)

        def execute(self, requests):
            if any(req.reads[0].read_id == "poison" for req in requests):
                raise RuntimeError("boom")
            return self.inner.execute(requests)

    async def scenario():
        from repro.genome.reads import Read
        poison = Read(read_id="poison", sequence="ACGT" * 10)
        async with serving(service_reference,
                           engine_factory=PoisonableEngine,
                           workers=1, max_retries=1) as (server, client):
            tasks = [asyncio.ensure_future(client.align(read))
                     for read in service_reads[:4]]
            tasks.append(asyncio.ensure_future(client.align(poison)))
            outcomes = await asyncio.gather(*tasks,
                                            return_exceptions=True)
            good = [o for o in outcomes if isinstance(o, dict)]
            bad = [o for o in outcomes if isinstance(o, ServiceError)]
            assert len(good) == 4
            assert len(bad) == 1 and bad[0].code == "internal"
            assert server.metrics.snapshot()["counters"][
                "poisoned_requests_total"] == 1
    run(scenario())


def test_graceful_shutdown_drains_queue(service_reference, service_reads):
    """shutdown(drain=True) answers every accepted request first."""
    async def scenario():
        factory = (lambda: SlowEngine(AlignmentEngine(service_reference),
                                      delay_s=0.05))
        server = AlignmentServer(
            service_reference,
            config=ServerConfig(port=0, stats_interval_s=0, workers=1,
                                max_batch=4),
            engine_factory=factory)
        await server.start()
        client = await AsyncServiceClient.connect("127.0.0.1", server.port)
        tasks = [asyncio.ensure_future(client.align(read))
                 for read in service_reads[:12]]
        # Wait until the server has admitted everything, then drain.
        while server.metrics.counter("align_requests_total").value < 12:
            await asyncio.sleep(0.01)
        await server.shutdown(drain=True)
        responses = await asyncio.gather(*tasks)
        assert len(responses) == 12
        assert all(resp["ok"] for resp in responses)
        assert server.metrics.snapshot()["counters"][
            "responses_total"] == 12
        await client.close()
    run(scenario())


def test_non_drain_shutdown_fails_fast(service_reference, service_reads):
    async def scenario():
        factory = (lambda: SlowEngine(AlignmentEngine(service_reference),
                                      delay_s=0.2))
        server = AlignmentServer(
            service_reference,
            config=ServerConfig(port=0, stats_interval_s=0, workers=1,
                                max_batch=1),
            engine_factory=factory)
        await server.start()
        client = await AsyncServiceClient.connect("127.0.0.1", server.port)
        tasks = [asyncio.ensure_future(client.align(read))
                 for read in service_reads[:6]]
        while server.metrics.counter("align_requests_total").value < 6:
            await asyncio.sleep(0.01)
        await server.shutdown(drain=False)
        outcomes = await asyncio.gather(*tasks, return_exceptions=True)
        # The in-flight batch may finish; queued work fails fast.
        failed = [o for o in outcomes if isinstance(o, ServiceError)
                  and o.code == "shutting_down"]
        assert failed, "queued requests should be failed, not executed"
        assert all(isinstance(o, (dict, ServiceError)) for o in outcomes)
        await client.close()
    run(scenario())


def test_unix_socket_serving(tmp_path, service_reference, service_reads):
    # serving() assumes TCP; drive the UNIX path explicitly instead.
    async def unix_scenario():
        path = str(tmp_path / "align.sock")
        server = AlignmentServer(
            service_reference,
            config=ServerConfig(unix_path=path, stats_interval_s=0))
        await server.start()
        assert server.endpoint == f"unix:{path}"
        client = await AsyncServiceClient.connect(unix_path=path)
        response = await client.align(service_reads[0])
        assert response["ok"] and response["sam"]
        await client.close()
        await server.shutdown(drain=True)

    run(unix_scenario())


def test_idempotent_retry_answered_from_cache(service_reference,
                                              service_reads):
    """The same idempotency key twice returns the same payload without
    recomputation — the dedup that makes client retries exactly-once."""
    async def scenario():
        async with serving(service_reference) as (server, client):
            first = await client.align(service_reads[0],
                                       idempotency_key="retry-key-1")
            second = await client.align(service_reads[0],
                                        idempotency_key="retry-key-1")
            assert second["sam"] == first["sam"]
            snap = server.metrics.snapshot()
            assert snap["counters"]["idempotent_hits_total"] == 1
            # Only the first request ever reached the batcher.
            assert server.stats_payload()["batcher"][
                "dispatched_items"] == 1
    run(scenario())


def test_breaker_sheds_with_busy_and_recovers(service_reference,
                                              service_reads):
    """Past the crash threshold the server degrades to `busy` shedding
    instead of queueing onto a dying engine pool, then recovers."""
    class DoomedEngine:
        def execute(self, requests):
            raise RuntimeError("engine is on fire")

    async def scenario():
        async with serving(service_reference, engine_factory=DoomedEngine,
                           workers=1, max_retries=0, breaker_threshold=1,
                           breaker_cooldown_s=30.0) as (server, client):
            with pytest.raises(ServiceError) as excinfo:
                await client.align(service_reads[0])
            assert excinfo.value.code == "internal"
            assert server.breaker.state == "open"
            with pytest.raises(ServiceError) as excinfo:
                await client.align(service_reads[1])
            assert excinfo.value.code == "busy"
            snap = server.metrics.snapshot()
            assert snap["counters"]["shed_total"] == 1
            assert snap["counters"]["breaker_opens_total"] == 1
            assert snap["gauges"]["breaker_state"] == 2
            assert server.stats_payload()["breaker"]["state"] == "open"
            # Control traffic is never shed — the server stays
            # observable while degraded.
            assert await client.ping()

    run(scenario())
