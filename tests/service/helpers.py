"""Async helpers shared by the service test modules."""

import asyncio
import contextlib

from repro.service.client import AsyncServiceClient
from repro.service.server import AlignmentServer, ServerConfig


def run(coro):
    """Run a test coroutine on a fresh event loop."""
    return asyncio.run(coro)


@contextlib.asynccontextmanager
async def serving(reference, engine_factory=None, fault_injector=None,
                  **config_overrides):
    """A started server plus a connected client, torn down cleanly."""
    overrides = {"port": 0, "stats_interval_s": 0.0}
    overrides.update(config_overrides)
    server = AlignmentServer(reference, config=ServerConfig(**overrides),
                             engine_factory=engine_factory,
                             fault_injector=fault_injector)
    await server.start()
    client = await AsyncServiceClient.connect("127.0.0.1", server.port)
    try:
        yield server, client
    finally:
        await client.close()
        await server.shutdown(drain=True)
