"""Shared fixtures for the service tests: a small reference and traffic."""

import pytest

from repro.genome.pairs import PairedReadSimulator
from repro.genome.reads import ErrorModel, ReadSimulator
from repro.genome.reference import SyntheticReference


@pytest.fixture(scope="session")
def service_reference():
    """Small enough that index construction stays in the tens of ms."""
    return SyntheticReference(length=20_000, chromosomes=2, seed=11).build()


@pytest.fixture(scope="session")
def service_reads(service_reference):
    error = ErrorModel(substitution_rate=0.002, insertion_rate=0.0002,
                       deletion_rate=0.0002)
    return ReadSimulator(service_reference, read_length=101,
                         error_model=error, seed=7).simulate(24)


@pytest.fixture(scope="session")
def service_pairs(service_reference):
    return PairedReadSimulator(service_reference, read_length=101,
                               seed=9).simulate(6)
