"""Service responses are bit-identical to the offline pipeline's SAM.

The acceptance criterion that makes the service trustworthy: a read
aligned over the wire yields exactly the SAM record ``repro align
--out`` would have written for it — same flags, positions, MAPQ, CIGAR —
and parsed-back records agree field by field, for single and paired
reads alike.
"""

import asyncio
import io

from repro.align.paired import PairedAligner
from repro.align.pipeline import SoftwareAligner
from repro.align.sam import parse_sam, sam_header, sam_record, write_sam
from tests.service.helpers import run, serving


def offline_single_records(reference, reads):
    aligner = SoftwareAligner(reference)
    return [sam_record(result, reference)
            for result in aligner.align_all(reads)]


class TestSingleReadEquivalence:
    def test_bit_identical_sam_lines(self, service_reference, service_reads):
        expected = offline_single_records(service_reference, service_reads)

        async def scenario():
            async with serving(service_reference) as (_, client):
                responses = await asyncio.gather(
                    *(client.align(read) for read in service_reads))
            return [resp["sam"][0] for resp in responses]

        got = run(scenario())
        assert got == expected

    def test_batched_and_unbatched_service_agree(self, service_reference,
                                                 service_reads):
        """batch=1 serving (no cross-request batching) changes nothing."""
        async def collect(**overrides):
            async with serving(service_reference, **overrides) as (_, c):
                responses = await asyncio.gather(
                    *(c.align(read) for read in service_reads))
            return [resp["sam"][0] for resp in responses]

        batched = run(collect(max_batch=64))
        unbatched = run(collect(max_batch=1, batch_extension=False))
        assert batched == unbatched

    def test_parse_back_round_trip(self, service_reference, service_reads):
        """Service output parses to the same records as the offline SAM."""
        offline_results = SoftwareAligner(service_reference).align_all(
            service_reads)
        offline_file = io.StringIO()
        write_sam(offline_results, service_reference, offline_file)

        async def scenario():
            async with serving(service_reference) as (_, client):
                responses = await asyncio.gather(
                    *(client.align(read) for read in service_reads))
            return [resp["sam"][0] for resp in responses]

        service_file = io.StringIO(
            "\n".join(sam_header(service_reference)
                      + run(scenario())) + "\n")
        offline_file.seek(0)
        offline_records = list(parse_sam(offline_file))
        service_records = list(parse_sam(service_file))
        assert service_records == offline_records


class TestPairedEquivalence:
    def test_bit_identical_pair_records(self, service_reference,
                                        service_pairs):
        paired = PairedAligner(service_reference)
        expected = []
        meta = []
        for pair in service_pairs:
            outcome = paired.align_pair(pair)
            expected.append([
                sam_record(outcome.result1, service_reference),
                sam_record(outcome.result2, service_reference)])
            meta.append((outcome.proper, outcome.insert_size,
                         outcome.rescued_mate))

        async def scenario():
            async with serving(service_reference) as (_, client):
                return await asyncio.gather(
                    *(client.align_pair(pair.mate1, pair.mate2,
                                        pair_id=pair.pair_id)
                      for pair in service_pairs))

        responses = run(scenario())
        assert [resp["sam"] for resp in responses] == expected
        assert [(resp["proper"], resp["insert_size"], resp["rescued_mate"])
                for resp in responses] == meta

    def test_pair_records_parse_back(self, service_reference,
                                     service_pairs):
        async def scenario():
            async with serving(service_reference) as (_, client):
                return await asyncio.gather(
                    *(client.align_pair(pair.mate1, pair.mate2)
                      for pair in service_pairs))

        responses = run(scenario())
        for pair, resp in zip(service_pairs, responses):
            records = list(parse_sam(io.StringIO(
                "\n".join(resp["sam"]) + "\n")))
            assert [r.qname for r in records] == [pair.mate1.read_id,
                                                  pair.mate2.read_id]

    def test_mixed_batches_stay_identical(self, service_reference,
                                          service_reads, service_pairs):
        """Singles and pairs interleaved in the same batches don't
        perturb each other's results."""
        expected_singles = offline_single_records(service_reference,
                                                  service_reads)

        async def scenario():
            async with serving(service_reference) as (_, client):
                single_tasks = [client.align(read)
                                for read in service_reads]
                pair_tasks = [client.align_pair(p.mate1, p.mate2)
                              for p in service_pairs]
                singles = await asyncio.gather(*single_tasks)
                pairs = await asyncio.gather(*pair_tasks)
            return singles, pairs

        singles, pairs = run(scenario())
        assert [resp["sam"][0] for resp in singles] == expected_singles
        assert all(len(resp["sam"]) == 2 for resp in pairs)
