"""Service resilience: exactly-once under injected faults.

Pins the recovery half of the fault-injection layer at the service
boundary: graceful drain with a mid-batch crash loses nothing and
double-sends nothing, a resilient client absorbs injected connection
drops without recomputation (idempotency dedup), and the loadgen's
connect loop honours its ``wait_ready_s`` deadline budget.
"""

import asyncio
import json
import socket
import time

import pytest

from repro.faults.plan import (
    CONN_DROP,
    SITE_CONN_WRITE,
    SITE_ENGINE,
    WORKER_CRASH,
    FaultPlan,
    FaultSpec,
)
from repro.faults.retry import RetryPolicy
from repro.service.client import ResilientAsyncClient
from repro.service.loadgen import LoadgenConfig, RequestSpec, run_loadgen
from repro.service.protocol import encode_align
from repro.service.server import AlignmentServer, ServerConfig
from tests.service.helpers import run, serving


def crash_plan(*calls):
    return FaultPlan(seed=1, specs=(
        FaultSpec(WORKER_CRASH, SITE_ENGINE, at_calls=tuple(calls)),))


def drop_plan(*calls, param=0.0):
    return FaultPlan(seed=1, specs=(
        FaultSpec(CONN_DROP, SITE_CONN_WRITE, at_calls=tuple(calls),
                  param=param),))


def test_drain_with_midbatch_crash_is_exactly_once(service_reference,
                                                   service_reads):
    """Satellite acceptance: an injected crash mid-drain loses no
    accepted request and double-sends none (raw-socket accounting)."""
    count = 12

    async def scenario():
        server = AlignmentServer(
            service_reference,
            config=ServerConfig(port=0, stats_interval_s=0, workers=1,
                                max_batch=4),
            fault_injector=crash_plan(1, 2).injector())
        await server.start()
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", server.port)
        for idx, read in enumerate(service_reads[:count]):
            writer.write(
                encode_align(str(idx), read).encode() + b"\n")
        await writer.drain()
        while server.metrics.counter("align_requests_total").value < count:
            await asyncio.sleep(0.01)
        await server.shutdown(drain=True)
        # The drain flushed every response before teardown; exactly
        # `count` lines must be waiting, and not one more.
        lines = []
        for _ in range(count):
            raw = await asyncio.wait_for(reader.readline(), 5.0)
            assert raw, "connection closed before all responses arrived"
            lines.append(json.loads(raw))
        with pytest.raises(asyncio.TimeoutError):
            await asyncio.wait_for(reader.readline(), 0.3)
        writer.close()
        ids = [obj["id"] for obj in lines]
        assert sorted(ids, key=int) == [str(i) for i in range(count)]
        assert len(set(ids)) == len(ids) == count  # no duplicates
        assert all(obj["ok"] and obj["sam"] for obj in lines)
        snap = server.metrics.snapshot()
        assert snap["counters"]["worker_crashes_total"] >= 1
        assert snap["counters"]["responses_total"] == count

    run(scenario())


def test_resilient_client_survives_injected_drop(service_reference,
                                                 service_reads):
    """A dropped response reconnects, retries with the same idempotency
    key, and is answered from the dedup cache — never recomputed."""
    async def scenario():
        injector = drop_plan(2).injector()
        async with serving(service_reference,
                           fault_injector=injector) as (server, _):
            client = ResilientAsyncClient(
                f"127.0.0.1:{server.port}",
                retry=RetryPolicy(max_attempts=5, base_delay_s=0.01,
                                  max_delay_s=0.05, seed=3))
            try:
                responses = [await client.align(read)
                             for read in service_reads[:3]]
            finally:
                await client.close()
            assert all(r["ok"] and r["sam"] for r in responses)
            assert client.retries >= 1
            assert client.reconnects >= 2  # initial connect + post-drop
            snap = server.metrics.snapshot()
            assert snap["counters"]["idempotent_hits_total"] >= 1
            assert snap["counters"]["injected_conn_faults_total"] == 1

    run(scenario())


def test_resilient_client_partial_write_drop(service_reference,
                                             service_reads):
    """A torn response (prefix written, then the drop) is discarded by
    the client and the retry still converges on the full payload."""
    async def scenario():
        injector = drop_plan(1, param=0.5).injector()
        async with serving(service_reference,
                           fault_injector=injector) as (server, _):
            client = ResilientAsyncClient(
                f"127.0.0.1:{server.port}",
                retry=RetryPolicy(max_attempts=5, base_delay_s=0.01,
                                  max_delay_s=0.05, seed=3))
            try:
                response = await client.align(service_reads[0])
            finally:
                await client.close()
            assert response["ok"] and response["sam"]

    run(scenario())


def test_loadgen_retry_reports_absorbed_attempts(service_reference,
                                                 service_reads):
    """The chaos-harness path: loadgen + retry over an injected drop
    completes every request and surfaces the retry count."""
    async def scenario():
        injector = drop_plan(3).injector()
        async with serving(service_reference, max_batch=4,
                           fault_injector=injector) as (server, _):
            specs = [RequestSpec(reads=[read])
                     for read in service_reads[:8]]
            config = LoadgenConfig(
                concurrency=4, wait_ready_s=2.0,
                retry=RetryPolicy(max_attempts=5, base_delay_s=0.01,
                                  max_delay_s=0.05, seed=7))
            report = await run_loadgen(f"127.0.0.1:{server.port}", specs,
                                       config=config,
                                       collect_server_stats=False,
                                       collect_responses=True)
            assert report.completed == 8
            assert report.dropped == 0
            assert report.error_count == 0
            assert report.retried >= 1
            assert all(r is not None and r["ok"]
                       for r in report.responses)

    run(scenario())


def _closed_port() -> int:
    """A port nothing is listening on (bound briefly, then released)."""
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


@pytest.mark.parametrize("with_retry", [False, True])
def test_loadgen_connect_deadline(with_retry):
    """wait_ready_s is a hard budget: an unreachable endpoint fails
    within it instead of hanging (both client flavours)."""
    port = _closed_port()
    retry = (RetryPolicy(max_attempts=3, base_delay_s=0.01, seed=1)
             if with_retry else None)
    config = LoadgenConfig(concurrency=1, wait_ready_s=0.5, retry=retry)
    spec = RequestSpec(reads=[])  # never reached: connect fails first

    async def scenario():
        await run_loadgen(f"127.0.0.1:{port}", [spec], config=config,
                          collect_server_stats=False)

    started = time.monotonic()
    with pytest.raises((ConnectionError, OSError)):
        run(scenario())
    elapsed = time.monotonic() - started
    assert elapsed < 5.0, f"deadline of 0.5s ran {elapsed:.1f}s"


def test_blocking_client_reconnects_under_policy(service_reference,
                                                 service_reads):
    """ServiceClient with a RetryPolicy rides out an injected drop."""
    async def scenario():
        injector = drop_plan(2).injector()
        server = AlignmentServer(
            service_reference,
            config=ServerConfig(port=0, stats_interval_s=0),
            fault_injector=injector)
        await server.start()
        try:
            from repro.service.client import ServiceClient

            def drive():
                client = ServiceClient(
                    "127.0.0.1", server.port, timeout_s=5.0,
                    retry_policy=RetryPolicy(max_attempts=5,
                                             base_delay_s=0.01,
                                             max_delay_s=0.05, seed=2))
                with client:
                    return [client.align(read)
                            for read in service_reads[:3]]

            responses = await asyncio.get_event_loop().run_in_executor(
                None, drive)
            assert all(r["ok"] and r["sam"] for r in responses)
            snap = server.metrics.snapshot()
            assert snap["counters"]["idempotent_hits_total"] >= 1
        finally:
            await server.shutdown(drain=True)

    run(scenario())


def test_response_meta_reports_retry_attempts(service_reference,
                                              service_reads):
    """Regression: align/align_pair responses must surface how many
    attempts the client burned — the only way callers (and the chaos
    report) can attribute latency to retries without scraping logs."""
    async def scenario():
        injector = drop_plan(1).injector()
        async with serving(service_reference,
                           fault_injector=injector) as (server, _):
            client = ResilientAsyncClient(
                f"127.0.0.1:{server.port}",
                retry=RetryPolicy(max_attempts=5, base_delay_s=0.01,
                                  max_delay_s=0.05, seed=3))
            try:
                retried = await client.align(service_reads[0])
                clean = await client.align(service_reads[1])
            finally:
                await client.close()
            # First request ate the injected drop: >= 2 attempts.
            assert retried["meta"]["attempts"] >= 2
            assert retried["meta"]["retries"] == \
                retried["meta"]["attempts"] - 1
            # Clean request: exactly one attempt, zero retries.
            assert clean["meta"] == {"attempts": 1, "retries": 0}

    run(scenario())


def test_blocking_client_meta_attempts(service_reference, service_reads):
    """Same contract for the blocking ServiceClient, with and without a
    retry policy."""
    async def scenario():
        injector = drop_plan(1).injector()
        server = AlignmentServer(
            service_reference,
            config=ServerConfig(port=0, stats_interval_s=0),
            fault_injector=injector)
        await server.start()
        try:
            from repro.service.client import ServiceClient

            def drive():
                with ServiceClient(
                        "127.0.0.1", server.port, timeout_s=5.0,
                        retry_policy=RetryPolicy(
                            max_attempts=5, base_delay_s=0.01,
                            max_delay_s=0.05, seed=2)) as client:
                    first = client.align(service_reads[0])
                    second = client.align(service_reads[1])
                # No-retry client still reports its single attempt.
                with ServiceClient("127.0.0.1", server.port,
                                   timeout_s=5.0) as plain:
                    third = plain.align(service_reads[2])
                return first, second, third

            first, second, third = await asyncio.get_event_loop() \
                .run_in_executor(None, drive)
            assert first["meta"]["attempts"] >= 2
            assert second["meta"] == {"attempts": 1, "retries": 0}
            assert third["meta"] == {"attempts": 1, "retries": 0}
            # stats/ping payloads stay meta-free: they are pass-through
            # server state, not per-request outcomes.

            def probe():
                with ServiceClient("127.0.0.1", server.port,
                                   timeout_s=5.0) as client:
                    return client.stats()
            stats = await asyncio.get_event_loop().run_in_executor(
                None, probe)
            assert "meta" not in stats
        finally:
            await server.shutdown(drain=True)

    run(scenario())
