"""Counters, gauges, histograms, and percentile math."""

import pytest

from repro.service.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
)


class TestPercentile:
    def test_empty(self):
        assert percentile([], 0.99) == 0.0

    def test_single(self):
        assert percentile([7.0], 0.5) == 7.0

    def test_median_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.5

    def test_extremes(self):
        samples = [5.0, 1.0, 3.0]
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 1.0) == 5.0

    def test_matches_numpy_linear(self):
        numpy = pytest.importorskip("numpy")
        samples = [0.3, 1.7, 2.2, 9.1, 4.4, 0.01, 8.8]
        for q in (0.1, 0.5, 0.9, 0.95, 0.99):
            assert percentile(samples, q) == pytest.approx(
                float(numpy.percentile(samples, q * 100)))

    def test_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestPrimitives:
    def test_counter_monotone(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        gauge.inc(3)
        gauge.dec()
        gauge.set(10)
        assert gauge.value == 10

    def test_histogram_summary(self):
        hist = Histogram(window=100)
        for value in range(1, 101):
            hist.observe(float(value))
        summary = hist.summary()
        assert summary["count"] == 100
        assert summary["mean"] == pytest.approx(50.5)
        assert summary["max"] == 100.0
        assert summary["p50"] == pytest.approx(50.5)
        assert summary["p99"] == pytest.approx(99.01)

    def test_histogram_window_bounds_percentiles(self):
        hist = Histogram(window=10)
        hist.observe(1000.0)          # pushed out of the window below
        for _ in range(10):
            hist.observe(1.0)
        assert hist.quantile(0.99) == 1.0
        assert hist.count == 11       # lifetime count still exact
        assert hist.max == 1000.0


class TestRegistry:
    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.inc("requests_total", 3)
        registry.set_gauge("queue_depth", 5)
        registry.observe("latency_s", 0.25)
        snap = registry.snapshot()
        assert snap["counters"] == {"requests_total": 3}
        assert snap["gauges"] == {"queue_depth": 5}
        assert snap["histograms"]["latency_s"]["count"] == 1

    def test_named_access_is_stable(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("y") is registry.gauge("y")
        assert registry.histogram("z") is registry.histogram("z")

    def test_format_line(self):
        registry = MetricsRegistry()
        registry.inc("requests_total")
        registry.observe("latency_s", 0.5)
        line = registry.format_line()
        assert "requests_total=1" in line
        assert "latency_s.p50=0.500" in line
