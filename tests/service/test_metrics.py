"""Counters, gauges, histograms, and percentile math."""

import sys
import threading

import pytest

from repro.service.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
)


class TestPercentile:
    def test_empty(self):
        assert percentile([], 0.99) == 0.0

    def test_single(self):
        assert percentile([7.0], 0.5) == 7.0

    def test_median_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.5

    def test_extremes(self):
        samples = [5.0, 1.0, 3.0]
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 1.0) == 5.0

    def test_matches_numpy_linear(self):
        numpy = pytest.importorskip("numpy")
        samples = [0.3, 1.7, 2.2, 9.1, 4.4, 0.01, 8.8]
        for q in (0.1, 0.5, 0.9, 0.95, 0.99):
            assert percentile(samples, q) == pytest.approx(
                float(numpy.percentile(samples, q * 100)))

    def test_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestPrimitives:
    def test_counter_monotone(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        gauge.inc(3)
        gauge.dec()
        gauge.set(10)
        assert gauge.value == 10

    def test_histogram_summary(self):
        hist = Histogram(window=100)
        for value in range(1, 101):
            hist.observe(float(value))
        summary = hist.summary()
        assert summary["count"] == 100
        assert summary["mean"] == pytest.approx(50.5)
        assert summary["max"] == 100.0
        assert summary["p50"] == pytest.approx(50.5)
        assert summary["p99"] == pytest.approx(99.01)

    def test_histogram_window_bounds_percentiles(self):
        hist = Histogram(window=10)
        hist.observe(1000.0)          # pushed out of the window below
        for _ in range(10):
            hist.observe(1.0)
        assert hist.quantile(0.99) == 1.0
        assert hist.count == 11       # lifetime count still exact
        assert hist.max == 1000.0


class TestRegistry:
    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.inc("requests_total", 3)
        registry.set_gauge("queue_depth", 5)
        registry.observe("latency_s", 0.25)
        snap = registry.snapshot()
        assert snap["counters"] == {"requests_total": 3}
        assert snap["gauges"] == {"queue_depth": 5}
        assert snap["histograms"]["latency_s"]["count"] == 1

    def test_named_access_is_stable(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("y") is registry.gauge("y")
        assert registry.histogram("z") is registry.histogram("z")

    def test_format_line(self):
        registry = MetricsRegistry()
        registry.inc("requests_total")
        registry.observe("latency_s", 0.5)
        line = registry.format_line()
        assert "requests_total=1" in line
        assert "latency_s.p50=0.500" in line

    def test_format_line_filters_on_metric_name(self):
        registry = MetricsRegistry()
        registry.observe("latency_s", 0.5)
        registry.inc("requests_total")
        line = registry.format_line(names=["latency_s"])
        assert "latency_s.p50" in line
        assert "latency_s.p99" in line
        assert "requests_total" not in line

    def test_format_line_filter_names_containing_dot_p(self):
        """Regression: the old filter split rendered parts on ``.p`` and
        ``=``, so a metric named e.g. ``queue.pops`` was filed under
        ``queue`` — requesting it by its real name dropped it, and
        requesting ``queue`` wrongly matched it.
        """
        registry = MetricsRegistry()
        registry.inc("queue.pops", 3)
        registry.inc("queue", 1)
        line = registry.format_line(names=["queue.pops"])
        assert "queue.pops=3" in line
        assert "queue=1" not in line
        line = registry.format_line(names=["queue"])
        assert "queue=1" in line
        assert "queue.pops" not in line

    def test_histogram_summary_has_exact_sum(self):
        registry = MetricsRegistry()
        for value in (0.25, 0.5, 0.125):
            registry.observe("latency_s", value)
        summary = registry.snapshot()["histograms"]["latency_s"]
        assert summary["sum"] == pytest.approx(0.875)


class TestThreadSafety:
    """Regression: instrument handles used to mutate unlocked, so
    concurrent increments from engine threads could be lost."""

    @pytest.fixture(autouse=True)
    def _aggressive_switching(self):
        # Force frequent thread switches so unlocked read-modify-write
        # races are actually exercised, not just theoretically possible.
        old = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)
        yield
        sys.setswitchinterval(old)

    @staticmethod
    def _hammer(fn, threads=8, iterations=2000):
        barrier = threading.Barrier(threads)

        def work():
            barrier.wait()
            for _ in range(iterations):
                fn()

        pool = [threading.Thread(target=work) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        return threads * iterations

    def test_counter_handle_no_lost_increments(self):
        counter = Counter()
        expected = self._hammer(counter.inc)
        assert counter.value == expected

    def test_registry_inc_no_lost_increments(self):
        registry = MetricsRegistry()
        expected = self._hammer(lambda: registry.inc("hits"))
        assert registry.counter("hits").value == expected

    def test_gauge_inc_dec_balance(self):
        gauge = Gauge()

        def wiggle():
            gauge.inc(5)
            gauge.dec(5)

        self._hammer(wiggle)
        assert gauge.value == 0

    def test_histogram_observe_exact_count_and_sum(self):
        registry = MetricsRegistry()
        expected = self._hammer(
            lambda: registry.observe("latency_s", 0.5))
        hist = registry.histogram("latency_s")
        assert hist.count == expected
        assert hist.total == pytest.approx(expected * 0.5)


class TestMerge:
    """MetricsRegistry.merge: per-backend snapshots -> one cluster view."""

    @staticmethod
    def registry_with(counter=0, gauge=0, observations=()):
        registry = MetricsRegistry()
        if counter:
            registry.inc("requests_total", counter)
        if gauge:
            registry.set_gauge("in_flight", gauge)
        for value in observations:
            registry.observe("latency_s", value)
        return registry

    def test_counters_and_gauges_sum(self):
        snaps = [self.registry_with(counter=3, gauge=1).snapshot(),
                 self.registry_with(counter=4, gauge=2).snapshot()]
        merged = MetricsRegistry.merge(snaps)
        assert merged["counters"]["requests_total"] == 7
        assert merged["gauges"]["in_flight"] == 3

    def test_histogram_count_sum_max_are_exact(self):
        a = self.registry_with(observations=[0.1, 0.2, 0.3]).snapshot()
        b = self.registry_with(observations=[0.4, 0.5]).snapshot()
        hist = MetricsRegistry.merge([a, b])["histograms"]["latency_s"]
        assert hist["count"] == 5
        assert hist["sum"] == pytest.approx(1.5)
        assert hist["max"] == pytest.approx(0.5)
        assert hist["mean"] == pytest.approx(0.3)

    def test_histogram_percentiles_are_count_weighted(self):
        # Backend A saw 9 fast requests, backend B one slow one.  The
        # merged p50 must lean toward A's, not split the difference.
        a = self.registry_with(observations=[0.01] * 9).snapshot()
        b = self.registry_with(observations=[1.0]).snapshot()
        merged = MetricsRegistry.merge([a, b])["histograms"]["latency_s"]
        unweighted = (a["histograms"]["latency_s"]["p50"]
                      + b["histograms"]["latency_s"]["p50"]) / 2
        expected = (9 * a["histograms"]["latency_s"]["p50"]
                    + 1 * b["histograms"]["latency_s"]["p50"]) / 10
        assert merged["p50"] == pytest.approx(expected)
        assert merged["p50"] < unweighted

    def test_merge_tolerates_disjoint_names_and_empty_input(self):
        a = MetricsRegistry()
        a.inc("only_a")
        b = MetricsRegistry()
        b.inc("only_b")
        b.observe("h", 1.0)
        merged = MetricsRegistry.merge([a.snapshot(), b.snapshot()])
        assert merged["counters"] == {"only_a": 1, "only_b": 1}
        assert merged["histograms"]["h"]["count"] == 1
        empty = MetricsRegistry.merge([])
        assert empty == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_merged_snapshot_renders_as_prometheus_text(self):
        from repro.obs import prometheus_text

        merged = MetricsRegistry.merge(
            [self.registry_with(counter=2,
                                observations=[0.25]).snapshot()])
        text = prometheus_text(merged)
        assert "requests_total 2" in text
        assert "latency_s" in text
