"""End-to-end tracing through the live service.

Acceptance pins from the observability issue:

- a serve + traffic session exports as *valid* Chrome trace JSON,
- batch-level spans (``batch_form``, ``kernel``) reference their member
  request spans by id, and every referenced id resolves to a real
  ``request`` span in the same trace,
- with tracing disabled (the default) the service records nothing.
"""

import pytest

from repro import obs
from repro.obs import span_index, trace_problems, validate_trace_file
from repro.service import loadgen
from tests.service.helpers import run, serving


@pytest.fixture(autouse=True)
def _reset_tracer():
    """Leave the process-global tracer disabled after every test."""
    yield
    obs.configure(enabled=False)


def _drive_traffic(reference, requests=24, pair_fraction=0.25):
    specs = loadgen.build_workload(reference, requests,
                                   pair_fraction=pair_fraction, seed=7)

    async def scenario():
        async with serving(reference, workers=2) as (server, _client):
            return await loadgen.run_loadgen(
                server.endpoint, specs,
                loadgen.LoadgenConfig(concurrency=8),
                collect_server_stats=False)

    return run(scenario())


@pytest.mark.integration
def test_served_traffic_exports_valid_chrome_trace(
        service_reference, tmp_path):
    obs.configure(enabled=True)
    report = _drive_traffic(service_reference)
    assert report.completed == report.requests

    path = tmp_path / "trace.json"
    trace = obs.write_chrome_trace(str(path), obs.get_tracer())
    assert trace_problems(trace) == []
    validate_trace_file(str(path))

    events = trace["traceEvents"]
    names = {e["name"] for e in events if e.get("ph") == "X"}
    # All three layers show up in one timeline: service lifecycle,
    # engine execution, and the software pipeline underneath.
    assert {"request", "batch_form", "kernel", "respond",
            "engine_execute", "sam_emit"} <= names


@pytest.mark.integration
def test_batch_spans_reference_member_request_spans(service_reference):
    obs.configure(enabled=True)
    _drive_traffic(service_reference)

    trace = obs.chrome_trace(obs.get_tracer())
    index = span_index(trace)
    events = trace["traceEvents"]
    requests = [e for e in events if e.get("name") == "request"]
    kernels = [e for e in events if e.get("name") == "kernel"]
    batches = [e for e in events if e.get("name") == "batch_form"]
    assert requests and kernels and batches

    request_ids = {e["args"]["span_id"] for e in requests}
    linked = 0
    for group in kernels + batches:
        members = group["args"].get("request_spans", [])
        assert members, "batch-level span lists no member requests"
        for span_id in members:
            assert span_id in index, "dangling request span reference"
            assert span_id in request_ids
            linked += 1
    # Every request the kernels executed is accounted for.
    kernel_members = {sid for e in kernels
                      for sid in e["args"]["request_spans"]}
    assert kernel_members == request_ids

    # Request spans parent their respond spans across the task hop.
    responds = [e for e in events if e.get("name") == "respond"]
    assert responds
    for event in responds:
        assert event["args"]["parent_id"] in request_ids


@pytest.mark.integration
def test_disabled_tracing_records_nothing(service_reference):
    obs.configure(enabled=False)
    report = _drive_traffic(service_reference, requests=8,
                            pair_fraction=0.0)
    assert report.completed == 8
    assert len(obs.get_tracer().events()) == 0
