"""Dynamic batching policy: drain-greedy coalescing + admission control."""

import asyncio

import pytest

from repro.service.batcher import (
    DynamicBatcher,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.service.metrics import MetricsRegistry
from tests.service.helpers import run


def test_knob_validation():
    async def scenario():
        with pytest.raises(ValueError):
            DynamicBatcher(max_batch=0)
        with pytest.raises(ValueError):
            DynamicBatcher(max_wait_s=-1)
        with pytest.raises(ValueError):
            DynamicBatcher(queue_depth=0)
    run(scenario())


def test_greedy_drain_fills_one_batch():
    async def scenario():
        batcher = DynamicBatcher(max_batch=8, max_wait_s=0.05)
        futures = [batcher.submit(i) for i in range(5)]
        batch = await batcher.next_batch()
        # Everything already queued joins one batch, not five.
        assert [item.request for item in batch] == [0, 1, 2, 3, 4]
        assert batcher.depth == 0
        assert all(not f.done() for f in futures)
    run(scenario())


def test_max_batch_splits_queue():
    async def scenario():
        batcher = DynamicBatcher(max_batch=3, max_wait_s=0.05)
        for i in range(7):
            batcher.submit(i)
        sizes = [len(await batcher.next_batch()) for _ in range(3)]
        assert sizes == [3, 3, 1] or sizes[:2] == [3, 3]
    run(scenario())


def test_max_wait_dispatches_short_batch():
    async def scenario():
        batcher = DynamicBatcher(max_batch=64, max_wait_s=0.02)
        batcher.submit("lonely")
        started = asyncio.get_event_loop().time()
        batch = await batcher.next_batch()
        waited = asyncio.get_event_loop().time() - started
        assert [item.request for item in batch] == ["lonely"]
        assert waited < 1.0  # bounded by max_wait, not forever
    run(scenario())


def test_late_arrivals_join_until_deadline():
    async def scenario():
        batcher = DynamicBatcher(max_batch=64, max_wait_s=0.2)
        batcher.submit("first")

        async def straggler():
            await asyncio.sleep(0.02)
            batcher.submit("second")

        task = asyncio.ensure_future(straggler())
        batch = await batcher.next_batch()
        await task
        assert [item.request for item in batch] == ["first", "second"]
    run(scenario())


def test_admission_control_rejects_at_capacity():
    async def scenario():
        metrics = MetricsRegistry()
        batcher = DynamicBatcher(max_batch=4, queue_depth=2,
                                 metrics=metrics)
        batcher.submit(1)
        batcher.submit(2)
        with pytest.raises(ServiceOverloadedError):
            batcher.submit(3)
        assert batcher.stats.rejected == 1
        assert metrics.snapshot()["counters"]["rejected_total"] == 1
        # Dequeueing frees capacity again.
        await batcher.next_batch()
        batcher.submit(3)
    run(scenario())


def test_closed_batcher_rejects_then_drains():
    async def scenario():
        batcher = DynamicBatcher(max_batch=2, max_wait_s=0.0)
        batcher.submit("a")
        batcher.submit("b")
        batcher.submit("c")
        batcher.close()
        with pytest.raises(ServiceClosedError):
            batcher.submit("d")
        drained = []
        while True:
            batch = await batcher.next_batch()
            if batch is None:
                break
            drained.extend(item.request for item in batch)
        assert drained == ["a", "b", "c"]
        # Subsequent calls keep returning None (idempotent drain).
        assert await batcher.next_batch() is None
    run(scenario())


def test_abandoned_items_are_skipped():
    async def scenario():
        batcher = DynamicBatcher(max_batch=8, max_wait_s=0.0)
        keep = batcher.submit("keep")
        drop = batcher.submit("drop")
        drop.cancel()
        batch = await batcher.next_batch()
        assert [item.request for item in batch] == ["keep"]
        assert batcher.stats.abandoned_items == 1
        assert not keep.done()
    run(scenario())


def test_abandonment_updates_queue_depth_gauge():
    """A discarded waiter must leave the gauge, not just the deque."""
    async def scenario():
        metrics = MetricsRegistry()
        batcher = DynamicBatcher(max_batch=8, max_wait_s=0.0,
                                 metrics=metrics)
        keep = batcher.submit("keep")
        dropped = [batcher.submit(f"drop{i}") for i in range(2)]
        assert metrics.gauge("queue_depth").value == 3
        for future in dropped:
            future.cancel()
        batch = await batcher.next_batch()
        assert [item.request for item in batch] == ["keep"]
        assert batcher.stats.abandoned_items == 2
        assert metrics.snapshot()["counters"]["abandoned_total"] == 2
        assert metrics.gauge("queue_depth").value == 0
        assert not keep.done()
    run(scenario())


def test_cancel_mid_batch_formation_never_joins_batch():
    """A waiter cancelled while a batch is *forming* (first member
    already dequeued, batcher waiting for stragglers) must be discarded,
    not dispatched to the engine."""
    async def scenario():
        batcher = DynamicBatcher(max_batch=4, max_wait_s=0.5)
        batcher.submit("first")
        batch_task = asyncio.ensure_future(batcher.next_batch())
        await asyncio.sleep(0.01)   # formation underway, waiting
        doomed = batcher.submit("doomed")
        doomed.cancel()             # cancelled before the batcher wakes
        await asyncio.sleep(0.01)
        straggler = batcher.submit("straggler")
        batcher.close()             # stop waiting for more arrivals
        batch = await batch_task
        assert [item.request for item in batch] == ["first", "straggler"]
        assert all(not item.future.cancelled() for item in batch)
        assert batcher.stats.abandoned_items == 1
        assert not straggler.done()
    run(scenario())


def test_cancel_after_submit_before_any_dequeue():
    """Cancel landing before the consumer ever runs: the batch must
    form entirely from live items and never block on the dead one."""
    async def scenario():
        metrics = MetricsRegistry()
        batcher = DynamicBatcher(max_batch=2, max_wait_s=0.0,
                                 metrics=metrics)
        dead = batcher.submit("dead")
        live = batcher.submit("live")
        dead.cancel()
        batch = await batcher.next_batch()
        assert [item.request for item in batch] == ["live"]
        assert all(not item.future.cancelled() for item in batch)
        assert batcher.stats.abandoned_items == 1
        assert metrics.gauge("queue_depth").value == 0
        assert not live.done()
    run(scenario())


def test_abort_pending_fails_queued_futures():
    async def scenario():
        batcher = DynamicBatcher(max_batch=8)
        futures = [batcher.submit(i) for i in range(3)]
        failed = batcher.abort_pending(
            lambda: ServiceClosedError("going down"))
        assert failed == 3
        for future in futures:
            with pytest.raises(ServiceClosedError):
                await future
        batcher.close()
        assert await batcher.next_batch() is None
    run(scenario())


def test_batch_size_metric_recorded():
    async def scenario():
        metrics = MetricsRegistry()
        batcher = DynamicBatcher(max_batch=8, max_wait_s=0.0,
                                 metrics=metrics)
        for i in range(5):
            batcher.submit(i)
        await batcher.next_batch()
        hist = metrics.snapshot()["histograms"]["batch_size"]
        assert hist["count"] == 1
        assert hist["mean"] == 5.0
    run(scenario())


def test_occupancy_under_load_reaches_max_batch():
    """The NvWa property: with a backlog, batches run full."""
    async def scenario():
        batcher = DynamicBatcher(max_batch=16, max_wait_s=0.0)
        for i in range(64):
            batcher.submit(i)
        sizes = []
        for _ in range(4):
            sizes.append(len(await batcher.next_batch()))
        assert sizes == [16, 16, 16, 16]
    run(scenario())
