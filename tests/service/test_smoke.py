"""Service smoke: loadgen at high concurrency against a live server.

The CI `service-smoke` job runs the same scenario through the CLI
(`repro serve` + `repro loadgen`); this in-process variant pins the
acceptance numbers where the debugger can reach them: ≥64 concurrent
in-flight requests, zero dropped responses, zero errors, bounded p99,
and dynamic batching visibly coalescing (mean batch occupancy > 1).
"""

import pytest

from repro.service import loadgen
from repro.service.server import AlignmentServer, ServerConfig
from tests.service.helpers import run


@pytest.mark.integration
def test_loadgen_64_in_flight_zero_drops(service_reference):
    specs = loadgen.build_workload(service_reference, 200,
                                   pair_fraction=0.1, seed=13)
    assert len(specs) == 200

    async def scenario():
        server = AlignmentServer(
            service_reference,
            config=ServerConfig(port=0, stats_interval_s=0, workers=2))
        await server.start()
        try:
            return await loadgen.run_loadgen(
                server.endpoint, specs,
                loadgen.LoadgenConfig(concurrency=64, mode="closed"))
        finally:
            await server.shutdown(drain=True)

    report = run(scenario())
    assert report.requests == 200
    assert report.completed == 200
    assert report.error_count == 0
    assert report.dropped == 0
    assert report.mapped > 150          # the vast majority align
    # Latency bound is generous (cold index build lands on the first
    # batch) but still a real gate against pathological queueing.
    assert report.p99_ms < 30_000
    occupancy = report.server_stats["metrics"]["histograms"]["batch_size"]
    assert occupancy["mean"] > 1.0, "batching never coalesced"


@pytest.mark.integration
def test_open_loop_mode(service_reference):
    specs = loadgen.build_workload(service_reference, 30, seed=5)

    async def scenario():
        server = AlignmentServer(
            service_reference,
            config=ServerConfig(port=0, stats_interval_s=0, workers=1))
        await server.start()
        try:
            return await loadgen.run_loadgen(
                server.endpoint, specs,
                loadgen.LoadgenConfig(mode="open", rate=500.0))
        finally:
            await server.shutdown(drain=True)

    report = run(scenario())
    assert report.completed == 30
    assert report.dropped == 0


def test_build_workload_mix(service_reference):
    specs = loadgen.build_workload(service_reference, 20,
                                   pair_fraction=0.25, seed=2)
    assert len(specs) == 20
    assert sum(spec.is_pair for spec in specs) == 5
    # Deterministic: same seed, same workload.
    again = loadgen.build_workload(service_reference, 20,
                                   pair_fraction=0.25, seed=2)
    assert [[r.sequence for r in spec.reads] for spec in specs] == \
        [[r.sequence for r in spec.reads] for spec in again]


def test_build_workload_validation(service_reference):
    with pytest.raises(ValueError):
        loadgen.build_workload(service_reference, 0)
    with pytest.raises(ValueError):
        loadgen.build_workload(service_reference, 5, pair_fraction=1.5)


def test_loadgen_config_validation():
    with pytest.raises(ValueError):
        loadgen.LoadgenConfig(concurrency=0)
    with pytest.raises(ValueError):
        loadgen.LoadgenConfig(mode="sideways")
    with pytest.raises(ValueError):
        loadgen.LoadgenConfig(mode="open", rate=0)


def test_loadgen_config_budget_validation():
    with pytest.raises(ValueError):
        loadgen.LoadgenConfig(budget_ms=0)
    with pytest.raises(ValueError):
        loadgen.LoadgenConfig(budget_ms=-100.0)
    assert loadgen.LoadgenConfig(budget_ms=250.0).budget_ms == 250.0


def test_report_distinguishes_shed_flavors():
    """Satellite of the admission-queue work: `busy` (breaker shed,
    retryable) and `queue_timeout` (budget died queued, retry useless)
    stay distinct in the counts and the human summary."""
    report = loadgen.LoadgenReport(
        requests=10, completed=6, duration_s=1.0,
        latencies_s=[0.01] * 6,
        errors={"busy": 2, "queue_timeout": 1, "overloaded": 1})
    assert report.shed == 4
    assert report.busy_sheds == 2
    assert report.queue_timeout_sheds == 1
    assert report.dropped == 0
    text = report.format()
    assert "shed:        4 (busy=2, queue_timeout=1, overloaded=1)" \
        in text


def test_report_internal_errors_are_not_sheds():
    report = loadgen.LoadgenReport(requests=4, completed=3,
                                   errors={"internal": 1})
    assert report.shed == 0
    assert "shed:" not in report.format()
