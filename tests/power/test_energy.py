"""Energy comparison tests (Sec. V-C factors)."""

import pytest

from repro.baselines.platforms import CPU_BWA_MEM, GENAX, GENCACHE, GPU_GASAL2
from repro.power.energy import (
    EnergyPoint,
    energy_comparison,
    energy_per_read_reduction,
    nvwa_power,
    power_reduction,
    throughput_per_watt_ratio,
)


class TestEnergyPoint:
    def test_joules_per_kread(self):
        point = EnergyPoint("x", power_watts=10.0, kreads_per_second=100.0)
        assert point.joules_per_kread == pytest.approx(0.1)
        assert point.kreads_per_joule == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyPoint("x", power_watts=0, kreads_per_second=1)
        with pytest.raises(ValueError):
            EnergyPoint("x", power_watts=1, kreads_per_second=0)


class TestPaperFactors:
    """Reproduce the paper's published energy-reduction factors."""

    def test_cpu_factor(self):
        cpu = EnergyPoint("CPU", CPU_BWA_MEM.power_watts, 99.7)
        assert power_reduction(cpu, nvwa_power(True)) == \
            pytest.approx(14.21, rel=0.02)

    def test_gpu_factor(self):
        gpu = EnergyPoint("GPU", GPU_GASAL2.power_watts, 245.8)
        assert power_reduction(gpu, nvwa_power(True)) == \
            pytest.approx(5.60, rel=0.02)

    def test_genax_factor(self):
        genax = EnergyPoint("GenAx", GENAX.power_watts, 4058.6)
        assert power_reduction(genax, nvwa_power(False)) == \
            pytest.approx(4.34, rel=0.02)

    def test_gencache_factor(self):
        gencache = EnergyPoint("GenCache", GENCACHE.power_watts, 21369.6)
        assert power_reduction(gencache, nvwa_power(False)) == \
            pytest.approx(5.85, rel=0.02)

    def test_throughput_per_watt_genax(self):
        """Paper: NvWa's throughput/Watt is 52.62x GenAx's."""
        nvwa = EnergyPoint("NvWa", nvwa_power(False), 49150.0)
        genax = EnergyPoint("GenAx", GENAX.power_watts, 4058.6)
        assert throughput_per_watt_ratio(nvwa, genax) == \
            pytest.approx(52.62, rel=0.02)

    def test_throughput_per_watt_gencache(self):
        nvwa = EnergyPoint("NvWa", nvwa_power(False), 49150.0)
        gencache = EnergyPoint("GenCache", GENCACHE.power_watts, 21369.6)
        assert throughput_per_watt_ratio(nvwa, gencache) == \
            pytest.approx(13.50, rel=0.02)


class TestEnergyComparison:
    def test_full_table(self):
        baselines = {
            "CPU-BWA-MEM": EnergyPoint("CPU", 109.0, 99.7),
            "ASIC-GenAx": EnergyPoint("GenAx", 24.73, 4058.6),
        }
        table = energy_comparison(49150.0, baselines)
        assert table["CPU-BWA-MEM"]["power_reduction"] == \
            pytest.approx(14.18, rel=0.02)
        assert table["ASIC-GenAx"]["throughput_per_watt_ratio"] == \
            pytest.approx(52.6, rel=0.02)
        # energy-per-read reduction folds in the speedup too
        assert table["CPU-BWA-MEM"]["energy_per_read_reduction"] > 1000

    def test_energy_per_read_reduction(self):
        slow_hungry = EnergyPoint("x", 100.0, 10.0)
        fast_lean = EnergyPoint("y", 10.0, 1000.0)
        assert energy_per_read_reduction(slow_hungry, fast_lean) == \
            pytest.approx(1000.0)

    def test_invalid_nvwa_power(self):
        point = EnergyPoint("x", 10.0, 10.0)
        with pytest.raises(ValueError):
            power_reduction(point, 0)
