"""Table II model tests."""

import pytest

from repro.power.area_power import (
    PAPER_BUFFER_DEPTH,
    PAPER_INTERVALS,
    PAPER_TOTAL_AREA_MM2,
    PAPER_TOTAL_POWER_W,
    TABLE_II,
    component_totals,
    coordinator_power,
    module_breakdown,
    scheduler_share,
    total_power,
)


class TestTableII:
    def test_itemised_power_matches_total(self):
        """The itemised power rows sum to the published 5.754 W."""
        _, power = component_totals()
        assert power == pytest.approx(PAPER_TOTAL_POWER_W, abs=0.01)

    def test_itemised_area_matches_total(self):
        """Rows sum to the published 27.009 mm² up to rounding."""
        area, _ = component_totals()
        assert area == pytest.approx(PAPER_TOTAL_AREA_MM2, abs=0.01)

    def test_compute_units_dominate(self):
        """Paper: SUs+EUs account for 94.15% of area, 86.61% of power."""
        breakdown = module_breakdown()
        compute_area = breakdown["SUs"][0] + breakdown["EUs"][0]
        compute_power = breakdown["SUs"][1] + breakdown["EUs"][1]
        assert compute_area / PAPER_TOTAL_AREA_MM2 == \
            pytest.approx(0.9415, abs=0.01)
        assert compute_power / PAPER_TOTAL_POWER_W == \
            pytest.approx(0.8661, abs=0.01)

    def test_scheduler_share_matches_paper(self):
        """Paper: schedulers are 1.58 mm² (5.84%) and 0.77 W (13.38%)."""
        area_frac, power_frac = scheduler_share()
        assert area_frac == pytest.approx(0.0584, abs=0.002)
        assert power_frac == pytest.approx(0.1338, abs=0.002)

    def test_all_rows_present(self):
        modules = {c.module for c in TABLE_II}
        assert modules == {"SUs", "EUs", "Seeding Scheduler",
                           "Extension Scheduler", "Coordinator"}


class TestCoordinatorPower:
    def test_calibration_point(self):
        assert coordinator_power(PAPER_INTERVALS, PAPER_BUFFER_DEPTH) == \
            pytest.approx(0.257 + 0.215, abs=1e-6)

    def test_buffer_dominates_at_small_intervals(self):
        """Fig 13(b): buffer dominates when the interval count is small."""
        p = coordinator_power(intervals=1, buffer_depth=1024)
        sram_part = 0.257
        assert sram_part / p > 0.5

    def test_logic_dominates_at_large_intervals(self):
        p = coordinator_power(intervals=16, buffer_depth=1024)
        logic_part = p - 0.257
        assert logic_part / p > 0.5

    def test_monotone_in_depth(self):
        assert coordinator_power(4, 2048) > coordinator_power(4, 512)

    def test_monotone_in_intervals(self):
        values = [coordinator_power(i, 1024) for i in (1, 2, 4, 8, 16)]
        assert values == sorted(values)

    def test_invalid(self):
        with pytest.raises(ValueError):
            coordinator_power(0, 1024)
        with pytest.raises(ValueError):
            coordinator_power(4, 0)


class TestTotalPower:
    def test_paper_point(self):
        assert total_power() == pytest.approx(PAPER_TOTAL_POWER_W, abs=0.01)

    def test_with_memory(self):
        assert total_power(include_memory=True) == \
            pytest.approx(7.685, abs=0.01)

    def test_responds_to_coordinator(self):
        assert total_power(intervals=16) > total_power(intervals=4)
