"""Baseline platform model tests: calibration and ordering."""

import pytest

from repro.baselines.platforms import (
    CPU_BWA_MEM,
    FPGA_ERT_SEEDEX,
    GENAX,
    GENCACHE,
    GPU_GASAL2,
    PLATFORMS,
    SoftwarePlatform,
    WorkloadStats,
    paper_reported_nvwa_kreads,
    speedups_against,
)
from repro.core.workload import synthetic_workload
from repro.genome.datasets import get_dataset


@pytest.fixture(scope="module")
def stats():
    wl = synthetic_workload(get_dataset("H.s."), 1000, seed=1)
    return WorkloadStats.from_workload(wl)


class TestWorkloadStats:
    def test_from_workload(self, stats):
        assert stats.reads == 1000
        assert stats.mean_seeding_accesses > 0
        assert stats.mean_hits_per_read > 1
        assert stats.mean_cells_per_hit > 0

    def test_empty_workload_raises(self):
        from repro.core.workload import Workload
        with pytest.raises(ValueError):
            WorkloadStats.from_workload(Workload([]))


class TestCalibration:
    def test_cpu_near_paper_point(self, stats):
        """Paper: 49150/493 ≈ 99.7 Kreads/s for 16-thread BWA-MEM."""
        assert CPU_BWA_MEM.kreads_per_second(stats) == \
            pytest.approx(99.7, rel=0.5)

    def test_gpu_near_paper_point(self, stats):
        """Paper: 49150/200 ≈ 245.8 Kreads/s for GASAL2."""
        assert GPU_GASAL2.kreads_per_second(stats) == \
            pytest.approx(245.8, rel=0.5)

    def test_reported_platforms_exact(self, stats):
        assert FPGA_ERT_SEEDEX.kreads_per_second(stats) == 325.5
        assert GENAX.kreads_per_second(stats) == 4058.6
        assert GENCACHE.kreads_per_second(stats) == 21369.6

    def test_genax_power_consistent_with_throughput_per_watt(self):
        """12.11 x (P_GenAx / 5.693) must equal the published 52.62."""
        assert 12.11 * GENAX.power_watts / 5.693 == pytest.approx(52.62,
                                                                  rel=0.01)

    def test_gencache_power_consistent(self):
        assert 2.30 * GENCACHE.power_watts / 5.693 == pytest.approx(13.50,
                                                                    rel=0.01)


class TestOrdering:
    def test_platform_hierarchy(self, stats):
        """CPU < GPU < FPGA < GenAx < GenCache, as in Fig 11."""
        rates = [CPU_BWA_MEM, GPU_GASAL2, FPGA_ERT_SEEDEX, GENAX, GENCACHE]
        values = [p.kreads_per_second(stats) for p in rates]
        assert values == sorted(values)

    def test_speedups_against(self, stats):
        speedups = speedups_against(paper_reported_nvwa_kreads(), stats)
        assert speedups["ASIC-GenAx"] == pytest.approx(12.11, rel=0.01)
        assert speedups["PIM-GenCache"] == pytest.approx(2.30, rel=0.01)
        assert speedups["CPU-BWA-MEM"] > speedups["GPU-GASAL2"]

    def test_speedups_invalid(self, stats):
        with pytest.raises(ValueError):
            speedups_against(0, stats)


class TestSoftwareModelBehaviour:
    def test_more_work_lower_throughput(self, stats):
        heavier = WorkloadStats(reads=stats.reads,
                                mean_seeding_accesses=stats.mean_seeding_accesses * 3,
                                mean_hits_per_read=stats.mean_hits_per_read * 2,
                                mean_cells_per_hit=stats.mean_cells_per_hit)
        assert CPU_BWA_MEM.reads_per_second(heavier) < \
            CPU_BWA_MEM.reads_per_second(stats)

    def test_validation(self):
        with pytest.raises(ValueError):
            SoftwarePlatform("x", "CPU", threads=0, ns_per_access=1,
                             ns_per_cell=1, overhead_ns=1,
                             parallel_efficiency=0.5, power_watts=10)
        with pytest.raises(ValueError):
            SoftwarePlatform("x", "CPU", threads=4, ns_per_access=1,
                             ns_per_cell=1, overhead_ns=1,
                             parallel_efficiency=1.5, power_watts=10)
        with pytest.raises(ValueError):
            SoftwarePlatform("x", "CPU", threads=4, ns_per_access=-1,
                             ns_per_cell=1, overhead_ns=1,
                             parallel_efficiency=0.5, power_watts=10)

    def test_registry_complete(self):
        assert set(PLATFORMS) == {"CPU-BWA-MEM", "GPU-GASAL2",
                                  "FPGA-ERT+SeedEx", "ASIC-GenAx",
                                  "PIM-GenCache"}
