"""The property the determinism lint rules protect, asserted end to end:
two *independent* full runs — genome synthesis, read simulation,
alignment, SAM emission, accelerator simulation — from the same seed
produce byte-identical SAM output and identical cycle counts.

The existing determinism test reruns the accelerator over one shared
workload; this one rebuilds everything from the seed both times, so any
unseeded RNG, wall-clock read, or hash-order dependence anywhere in the
pipeline (exactly what ``repro lint``'s DET rules flag statically)
breaks it.
"""

import io

from repro.align.pipeline import SoftwareAligner
from repro.align.sam import write_sam
from repro.core import NvWaAccelerator, baseline, workload_from_pipeline
from repro.genome.reads import ErrorModel, ReadSimulator
from repro.genome.reference import SyntheticReference


def _full_run(seed: int):
    """Everything from scratch: returns (SAM bytes, cycles, counters)."""
    reference = SyntheticReference(length=20_000, chromosomes=2,
                                   seed=seed).build()
    reads = ReadSimulator(reference, read_length=101, seed=seed + 1,
                          error_model=ErrorModel(0.01, 0.001, 0.001),
                          ).simulate(30)
    results = SoftwareAligner(reference).align_all(reads)
    buffer = io.StringIO()
    write_sam(results, reference, buffer)
    sam_bytes = buffer.getvalue().encode("utf-8")
    report = NvWaAccelerator(baseline.nvwa()).run(
        workload_from_pipeline(results))
    return sam_bytes, report.cycles, report.counters.as_dict()


def test_same_seed_byte_identical_sam_and_cycles():
    first = _full_run(seed=1234)
    second = _full_run(seed=1234)
    assert first[0] == second[0], "SAM output differs between reruns"
    assert first[1] == second[1], "cycle counts differ between reruns"
    assert first[2] == second[2], "event counters differ between reruns"


def test_different_seed_actually_changes_output():
    """Guards the test itself: the pipeline must be seed-sensitive,
    otherwise byte-equality above would be vacuous."""
    assert _full_run(seed=1234)[0] != _full_run(seed=4321)[0]
