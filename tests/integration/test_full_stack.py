"""Cross-stack integration tests: genome → align → workload → accelerator
→ SAM, plus the structural "no loss of accuracy" property."""

import io

import pytest

from repro.align.pipeline import SoftwareAligner
from repro.align.sam import write_sam
from repro.analysis.accuracy import evaluate
from repro.core import NvWaAccelerator, baseline, workload_from_pipeline
from repro.genome.reads import ErrorModel, ReadSimulator
from repro.genome.reference import SyntheticReference

pytestmark = [pytest.mark.integration, pytest.mark.slow]



@pytest.fixture(scope="module")
def stack():
    reference = SyntheticReference(length=40_000, chromosomes=2,
                                   seed=81).build()
    aligner = SoftwareAligner(reference, occ_interval=64)
    clean = ReadSimulator(reference, read_length=101, seed=1).simulate(25)
    noisy = ReadSimulator(reference, read_length=101, seed=2,
                          error_model=ErrorModel(0.02, 0.002, 0.002),
                          ).simulate(25)
    results = aligner.align_all(clean + noisy)
    return reference, results


class TestEndToEnd:
    def test_alignment_accuracy(self, stack):
        reference, results = stack
        report = evaluate(results, reference)
        assert report.mapped_fraction > 0.9
        assert report.precision > 0.85

    def test_workload_matches_pipeline(self, stack):
        _, results = stack
        workload = workload_from_pipeline(results)
        assert len(workload) == len(results)
        assert workload.total_hits == sum(len(r.hits) for r in results)

    def test_accelerator_processes_exactly_the_pipeline_work(self, stack):
        """Structural no-loss-of-accuracy: the accelerator consumes exactly
        the hit set the software pipeline produced — nothing dropped,
        nothing invented — under every scheduling configuration."""
        _, results = stack
        workload = workload_from_pipeline(results)
        for name, config in baseline.ablation_ladder().items():
            report = NvWaAccelerator(config).run(workload)
            assert report.hits_processed == workload.total_hits, name
            assert report.reads == len(results), name

    def test_sam_export(self, stack):
        reference, results = stack
        buffer = io.StringIO()
        mapped = write_sam(results, reference, buffer)
        body = [l for l in buffer.getvalue().strip().split("\n")
                if not l.startswith("@")]
        assert len(body) == len(results)
        assert mapped >= 45

    def test_determinism_across_runs(self, stack):
        reference, results = stack
        workload = workload_from_pipeline(results)
        a = NvWaAccelerator(baseline.nvwa()).run(workload)
        b = NvWaAccelerator(baseline.nvwa()).run(workload)
        assert (a.cycles, a.hits_processed) == (b.cycles, b.hits_processed)
        assert a.counters.as_dict() == b.counters.as_dict()


class TestCrossComponentConsistency:
    def test_hash_and_fm_index_agree_on_kmer_counts(self, stack):
        """Two independent index structures must count identically."""
        reference, _ = stack
        from repro.seeding.fmindex import FMIndex
        from repro.seeding.hashindex import KmerHashIndex
        text = reference.concatenated()[:5000]
        fm = FMIndex(text, occ_interval=64)
        hashed = KmerHashIndex(text, k=10)
        import random
        rng = random.Random(3)
        for _ in range(20):
            start = rng.randrange(0, len(text) - 10)
            kmer = text[start:start + 10]
            assert fm.count(kmer) == hashed.count(kmer)

    def test_sw_score_at_least_edit_bound(self, stack):
        """Cross-check SW against the bit-parallel edit distance: a read
        at distance d from a window scores >= matches - penalties bound."""
        reference, results = stack
        from repro.extension.bitap import best_semi_global_distance
        for result in results[:5]:
            if not result.aligned or result.best.reverse:
                continue
            window = reference.concatenated()[
                result.best.ref_start:result.best.ref_end + 20]
            d = best_semi_global_distance(result.read.sequence, window)
            # each of the d errors costs at most match+|mismatch| = 5
            assert result.best.score >= len(result.read.sequence) - 5 * d
