"""The paper's headline functional claim, verified hit by hit.

"the computing units of NvWa are faithful to the standard read alignment
software, which allows us to have no loss of accuracy." With functional
execution enabled, the accelerator's EUs compute each extension with the
same kernel on the same sequences the software pipeline used — so every
(read, hit) pair's score must match exactly, under every scheduling
configuration (scheduling reorders work; it must never change results).
"""

from dataclasses import replace

import pytest

from repro.align.pipeline import SoftwareAligner
from repro.core import NvWaAccelerator, baseline, workload_from_pipeline
from repro.extension.smith_waterman import smith_waterman
from repro.genome import sequence as seq
from repro.genome.reads import ErrorModel, ReadSimulator
from repro.genome.reference import SyntheticReference

pytestmark = [pytest.mark.integration, pytest.mark.slow]



@pytest.fixture(scope="module")
def setup():
    reference = SyntheticReference(length=40_000, chromosomes=2,
                                   seed=101).build()
    aligner = SoftwareAligner(reference, occ_interval=64)
    reads = (ReadSimulator(reference, read_length=101, seed=1).simulate(15)
             + ReadSimulator(reference, read_length=101, seed=2,
                             error_model=ErrorModel(0.02, 0.002, 0.002),
                             ).simulate(15))
    results = aligner.align_all(reads)
    workload = workload_from_pipeline(results,
                                      reference_text=aligner.text)
    return aligner, results, workload


def pipeline_hit_scores(aligner, results):
    """Per-(read, hit) scores as the software pipeline computes them."""
    scores = {}
    for idx, result in enumerate(results):
        for hit in result.hits:
            oriented = (seq.reverse_complement(result.read.sequence)
                        if hit.reverse else result.read.sequence)
            window = aligner.text[hit.ref_start:hit.ref_end]
            scores[(idx, hit.hit_idx)] = smith_waterman(
                oriented, window, scoring=aligner.scoring).score
    return scores


class TestNoLossOfAccuracy:
    def test_sequences_attached(self, setup):
        _, _, workload = setup
        assert all(h.has_sequences
                   for t in workload.tasks for h in t.hits)

    def test_scores_match_pipeline_exactly(self, setup):
        aligner, results, workload = setup
        expected = pipeline_hit_scores(aligner, results)
        config = replace(baseline.nvwa(), functional_execution=True)
        report = NvWaAccelerator(config).run(workload)
        assert report.extension_results is not None
        assert set(report.extension_results) == set(expected)
        for key, output in report.extension_results.items():
            assert output.score == expected[key], key

    def test_invariant_under_scheduling(self, setup):
        """Every scheduling configuration produces identical results —
        the schedulers reorder work but never change it."""
        _, _, workload = setup
        outputs = []
        for config in baseline.ablation_ladder().values():
            config = replace(config, functional_execution=True)
            report = NvWaAccelerator(config).run(workload)
            outputs.append({k: (v.score, v.cigar)
                            for k, v in report.extension_results.items()})
        first = outputs[0]
        for other in outputs[1:]:
            assert other == first

    def test_best_per_read_matches_pipeline_best(self, setup):
        aligner, results, workload = setup
        config = replace(baseline.nvwa(), functional_execution=True)
        report = NvWaAccelerator(config).run(workload)
        for idx, result in enumerate(results):
            if not result.hits:
                continue
            accel_best = max(
                report.extension_results[(idx, h.hit_idx)].score
                for h in result.hits)
            pipeline_best = result.best.score if result.aligned else 0
            assert accel_best >= pipeline_best

    def test_disabled_by_default(self, setup):
        _, _, workload = setup
        report = NvWaAccelerator(baseline.nvwa()).run(workload)
        assert report.extension_results is None

    def test_mixed_payloads_validated(self):
        from repro.core.workload import HitTask
        with pytest.raises(ValueError):
            HitTask(0, 0, 10, 10, query_seq="ACGT", ref_seq=None)
