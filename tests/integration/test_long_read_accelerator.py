"""Long-read pipeline → accelerator integration (the Sec. VI path)."""

import pytest

from repro.align.long_read import LongReadAligner
from repro.core import NvWaAccelerator, baseline, workload_from_long_reads
from repro.genome.reads import ErrorModel, ReadSimulator
from repro.genome.reference import SyntheticReference
from repro.hw.extension_unit import GACT_TILE_SIZE

pytestmark = pytest.mark.integration



@pytest.fixture(scope="module")
def results():
    reference = SyntheticReference(length=60_000, chromosomes=2,
                                   seed=121).build()
    aligner = LongReadAligner(reference)
    reads = ReadSimulator(reference, read_length=1000,
                          error_model=ErrorModel(0.01, 0.001, 0.001),
                          seed=1).simulate(12)
    return aligner.align_all(reads)


class TestLongReadWorkload:
    def test_conversion(self, results):
        workload = workload_from_long_reads(results)
        assert len(workload) == len(results)
        mapped = sum(1 for r in results if r.aligned)
        assert workload.total_hits == mapped

    def test_windows_trigger_gact(self, results):
        workload = workload_from_long_reads(results)
        assert all(h.ref_len > GACT_TILE_SIZE
                   for t in workload.tasks for h in t.hits)

    def test_accelerator_processes_long_reads(self, results):
        workload = workload_from_long_reads(results)
        report = NvWaAccelerator(baseline.nvwa()).run(workload)
        assert report.hits_processed == workload.total_hits
        assert report.cycles > 0

    def test_long_tasks_slower_than_short(self, results):
        """GACT-tiled 1 kb windows cost far more than 101 bp extensions."""
        from repro.core.workload import HitTask, ReadTask, Workload
        long_wl = workload_from_long_reads(results)
        short_tasks = [ReadTask(read_idx=t.read_idx,
                                seeding_accesses=t.seeding_accesses,
                                hits=tuple(
                                    HitTask(t.read_idx, h.hit_idx, 20, 28)
                                    for h in t.hits))
                       for t in long_wl.tasks]
        short_wl = Workload(short_tasks)
        long_report = NvWaAccelerator(baseline.nvwa()).run(long_wl)
        short_report = NvWaAccelerator(baseline.nvwa()).run(short_wl)
        assert long_report.cycles > short_report.cycles

    def test_invalid_params(self, results):
        with pytest.raises(ValueError):
            workload_from_long_reads(results, accesses_per_anchor=0)
