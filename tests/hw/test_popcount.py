"""PopCount tree tests (Fig 6's critical-path component)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.popcount import PopCountTree, unit_mark_table


class TestDepth:
    def test_paper_depth_range(self):
        """Sec IV-B: 64-512 units -> depth 6-9."""
        assert PopCountTree(64).depth == 6
        assert PopCountTree(128).depth == 7
        assert PopCountTree(256).depth == 8
        assert PopCountTree(512).depth == 9

    def test_trivial_widths(self):
        assert PopCountTree(1).depth == 0
        assert PopCountTree(2).depth == 1
        assert PopCountTree(3).depth == 2

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            PopCountTree(0)


class TestTiming:
    def test_meets_1ghz_up_to_512(self):
        for width in (64, 128, 256, 512):
            assert PopCountTree(width).meets_frequency(1e9)

    def test_fails_at_high_frequency(self):
        assert not PopCountTree(512).meets_frequency(5e9)

    def test_invalid_frequency(self):
        with pytest.raises(ValueError):
            PopCountTree(8).meets_frequency(0)


class TestCounting:
    def test_count(self):
        tree = PopCountTree(8)
        assert tree.count(np.array([1, 0, 1, 1, 0, 0, 0, 1])) == 4

    def test_wrong_width_raises(self):
        with pytest.raises(ValueError):
            PopCountTree(4).count(np.array([1, 0]))

    def test_non_binary_raises(self):
        with pytest.raises(ValueError):
            PopCountTree(2).count(np.array([2, 0]))

    def test_masked_count_fig6(self):
        """unit_status=0110 inverted=1001; mask for unit 3 = 1110 ->
        idle units before unit 3 = popcount(1001 & 1110) = 1."""
        tree = PopCountTree(4)
        inverted = np.array([1, 0, 0, 1])
        table = unit_mark_table(4)
        assert tree.masked_count(inverted, table[3]) == 1
        assert tree.masked_count(inverted, table[0]) == 0

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=64))
    @settings(max_examples=50)
    def test_property_count_equals_sum(self, bits):
        arr = np.array(bits)
        assert PopCountTree(arr.size).count(arr) == sum(bits)


class TestMarkTable:
    def test_paper_masks(self):
        """'unit 0 corresponds to a mask of 0000, and unit 3 to 1110' —
        the figure writes masks MSB-first over units 3..0; row i marks
        all units with index < i."""
        table = unit_mark_table(4)
        assert table[0].tolist() == [0, 0, 0, 0]
        assert table[3].tolist() == [1, 1, 1, 0]

    def test_row_sums(self):
        table = unit_mark_table(8)
        for i in range(8):
            assert table[i].sum() == i

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            unit_mark_table(0)
