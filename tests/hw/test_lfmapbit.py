"""LFMapBit layout and SRAM sizing tests."""

import pytest

from repro.hw.lfmapbit import (
    PAPER_SU_TABLE_SRAM_MM2,
    LFMapBitLayout,
    cached_genome_span,
    sram_area_mm2,
)


class TestLayout:
    def test_paper_block_geometry(self):
        """interval 128: 256 payload bits + 128 counter bits = 48 bytes."""
        layout = LFMapBitLayout()
        assert layout.payload_bits == 256
        assert layout.counter_bits == 128
        assert layout.block_bits == 384
        assert layout.block_bytes == 48

    def test_overhead_fraction(self):
        assert LFMapBitLayout().overhead_fraction() == pytest.approx(1 / 3)
        # doubling the interval halves the checkpoint tax
        assert LFMapBitLayout(interval=256).overhead_fraction() == \
            pytest.approx(0.2)

    def test_blocks_for_genome(self):
        layout = LFMapBitLayout()
        assert layout.blocks_for(127) == 1
        assert layout.blocks_for(128) == 2  # +1 sentinel spills over
        assert layout.blocks_for(1_000_000) == -(-1_000_001 // 128)

    def test_index_bits_scale_linearly(self):
        layout = LFMapBitLayout()
        assert layout.index_bits(2_000_000) == \
            pytest.approx(2 * layout.index_bits(1_000_000), rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            LFMapBitLayout(interval=0)
        with pytest.raises(ValueError):
            LFMapBitLayout(count_bits=0)
        with pytest.raises(ValueError):
            LFMapBitLayout().blocks_for(0)


class TestSRAMSizing:
    def test_area_for_bits(self):
        # 10 Mbit at 0.1 um^2/bit = 1 mm^2
        assert sram_area_mm2(10_000_000, um2_per_bit=0.1) == \
            pytest.approx(1.0)

    def test_paper_budget_caches_megabases(self):
        """Table II's 2.16 mm² SU SRAM covers a multi-megabase hot set —
        consistent with a small but non-zero SRAM miss rate."""
        span = cached_genome_span(PAPER_SU_TABLE_SRAM_MM2)
        assert 2_000_000 < span < 20_000_000

    def test_span_scales_with_budget(self):
        assert cached_genome_span(4.0) > cached_genome_span(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            sram_area_mm2(-1)
        with pytest.raises(ValueError):
            sram_area_mm2(10, um2_per_bit=0)
        with pytest.raises(ValueError):
            cached_genome_span(0)
