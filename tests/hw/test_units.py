"""SU and EU cycle-model tests."""

import pytest

from repro.core.interface import UnitState
from repro.core.workload import HitTask, ReadTask
from repro.extension.systolic import gact_tiled_latency, matrix_fill_latency
from repro.hw.extension_unit import GACT_TILE_SIZE, ExtensionUnit
from repro.hw.seeding_unit import SeedingUnit
from repro.sim.memory import MemoryModel


def read_task(accesses=100):
    return ReadTask(read_idx=0, seeding_accesses=accesses)


class TestSeedingUnit:
    def _su(self, **kw):
        return SeedingUnit(unit_id=0, memory=MemoryModel(), **kw)

    def test_duration_scales_with_accesses(self):
        su = self._su()
        assert su.duration(read_task(1000)) > su.duration(read_task(100))

    def test_sram_resident_cost_is_linear(self):
        su = self._su(sram_miss_rate=0.0)
        d100 = su.duration(read_task(100))
        d200 = su.duration(read_task(200))
        assert d200 - d100 == 100  # 1 cycle per access

    def test_misses_add_dram_latency(self):
        hot = self._su(sram_miss_rate=0.0)
        cold = self._su(sram_miss_rate=1.0)
        assert cold.duration(read_task(100)) > hot.duration(read_task(100))

    def test_state_machine(self):
        su = self._su()
        assert su.idle
        finish = su.start(read_task(), now=10)
        assert su.state is UnitState.BUSY
        assert finish > 10
        with pytest.raises(RuntimeError):
            su.start(read_task(), now=20)
        su.finish()
        assert su.idle
        assert su.reads_processed == 1

    def test_finish_when_idle_raises(self):
        with pytest.raises(RuntimeError):
            self._su().finish()

    def test_stop_control(self):
        su = self._su()
        su.stop()
        assert su.state is UnitState.STOP
        assert not su.idle

    def test_stop_busy_raises(self):
        su = self._su()
        su.start(read_task(), now=0)
        with pytest.raises(RuntimeError):
            su.stop()

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            self._su(sram_miss_rate=1.5)
        with pytest.raises(ValueError):
            self._su(cycles_per_access=0)


class TestExtensionUnit:
    def _hit(self, q, r=None):
        return HitTask(read_idx=0, hit_idx=0, query_len=q, ref_len=r or q + 8)

    def test_duration_matches_formula3(self):
        eu = ExtensionUnit(unit_id=0, pe_count=16, load_overhead=2)
        hit = self._hit(10)
        assert eu.duration(hit) == 2 + matrix_fill_latency(18, 10, 16)

    def test_matched_unit_is_faster(self):
        small = ExtensionUnit(unit_id=0, pe_count=16)
        big = ExtensionUnit(unit_id=1, pe_count=128)
        short_hit = self._hit(8)
        assert small.duration(short_hit) < big.duration(short_hit)

    def test_gact_for_long_windows(self):
        eu = ExtensionUnit(unit_id=0, pe_count=64, load_overhead=0)
        long_hit = self._hit(900, 900)
        assert long_hit.ref_len > GACT_TILE_SIZE
        assert eu.duration(long_hit) == gact_tiled_latency(
            900, 900, 64, tile_size=GACT_TILE_SIZE)

    def test_traceback_opt_in(self):
        with_tb = ExtensionUnit(unit_id=0, pe_count=16,
                                include_traceback=True)
        without = ExtensionUnit(unit_id=1, pe_count=16)
        assert with_tb.duration(self._hit(10)) > without.duration(self._hit(10))

    def test_state_machine_and_bookkeeping(self):
        eu = ExtensionUnit(unit_id=0, pe_count=16)
        hit = self._hit(10)
        finish = eu.start(hit, now=5)
        assert finish == 5 + eu.duration(hit)
        assert eu.state is UnitState.BUSY
        with pytest.raises(RuntimeError):
            eu.start(hit, now=6)
        returned = eu.finish()
        assert returned is hit
        assert eu.hits_processed == 1
        assert eu.busy_cycles == eu.duration(hit)

    def test_pe_efficiency(self):
        eu = ExtensionUnit(unit_id=0, pe_count=16, load_overhead=0)
        hit = self._hit(16, 16)
        eu.start(hit, now=0)
        eu.finish()
        assert 0 < eu.pe_efficiency() <= 1.0

    def test_pe_efficiency_idle_unit(self):
        assert ExtensionUnit(unit_id=0, pe_count=16).pe_efficiency() == 0.0

    def test_finish_idle_raises(self):
        with pytest.raises(RuntimeError):
            ExtensionUnit(unit_id=0, pe_count=16).finish()

    def test_invalid_pe_count(self):
        with pytest.raises(ValueError):
            ExtensionUnit(unit_id=0, pe_count=0)
