"""Hybrid Units Strategy tests: Equation 5, intervals, Fig 9(d)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hybrid_units import (
    IntervalPartition,
    assignment_is_optimal,
    execute_on_pool,
    expand_pool,
    paper_unit_mix,
    solve_unit_mix,
)
from repro.genome.datasets import NA12878_INTERVAL_MASS


class TestIntervalPartition:
    def test_interval_of(self):
        part = IntervalPartition((16, 32, 64, 128))
        assert part.interval_of(1) == 0
        assert part.interval_of(16) == 0
        assert part.interval_of(17) == 1
        assert part.interval_of(64) == 2
        assert part.interval_of(128) == 3
        assert part.interval_of(500) == 3  # long hits absorbed by last

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            IntervalPartition(())
        with pytest.raises(ValueError):
            IntervalPartition((16, 16))
        with pytest.raises(ValueError):
            IntervalPartition((16, 32)).interval_of(0)

    def test_interval_mass(self):
        part = IntervalPartition((16, 32))
        mass = part.interval_mass([1, 8, 16, 20, 30])
        assert mass == [pytest.approx(0.6), pytest.approx(0.4)]

    def test_interval_mass_empty_raises(self):
        with pytest.raises(ValueError):
            IntervalPartition((16,)).interval_mass([])


class TestEquation5:
    def test_reproduces_paper_design_point(self):
        """N=2880 over the NA12878 demand mass -> x=(28,20,16,6)."""
        mix = solve_unit_mix(NA12878_INTERVAL_MASS, (16, 32, 64, 128), 2880)
        assert mix == paper_unit_mix()

    def test_budget_exactly_met_for_paper_point(self):
        mix = solve_unit_mix(NA12878_INTERVAL_MASS, (16, 32, 64, 128), 2880)
        assert sum(pe * n for pe, n in mix.items()) == 2880

    def test_budget_never_exceeded(self):
        mix = solve_unit_mix((0.5, 0.3, 0.2), (8, 32, 64), 500)
        assert sum(pe * n for pe, n in mix.items()) <= 500

    def test_zero_mass_interval_gets_no_unit(self):
        mix = solve_unit_mix((1.0, 0.0), (16, 128), 160)
        assert mix[128] == 0

    def test_every_positive_interval_served(self):
        mix = solve_unit_mix((0.97, 0.01, 0.01, 0.01), (16, 32, 64, 128), 512)
        for pe in (16, 32, 64, 128):
            assert mix[pe] >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            solve_unit_mix((0.5,), (16, 32), 100)
        with pytest.raises(ValueError):
            solve_unit_mix((0.0, 0.0), (16, 32), 100)
        with pytest.raises(ValueError):
            solve_unit_mix((1.0,), (16,), 8)  # budget below largest class
        with pytest.raises(ValueError):
            solve_unit_mix((1.0, -0.1), (16, 32), 100)

    @given(st.lists(st.floats(0.01, 1.0), min_size=2, max_size=5),
           st.integers(1, 6))
    @settings(max_examples=40)
    def test_property_proportionality(self, masses, scale):
        """More mass never means fewer units (within one solution)."""
        classes = tuple(2 ** (4 + i) for i in range(len(masses)))
        budget = sum(classes) * scale * 4
        mix = solve_unit_mix(masses, classes, budget)
        ranked = sorted(zip(masses, classes), reverse=True)
        # exact-solution check: x_i ~ s_i * N / denom within rounding
        denom = sum(p * s for s, p in zip(masses, classes))
        for s, p in ranked:
            exact = s * budget / denom
            assert abs(mix[p] - exact) <= len(masses) + 1


class TestFig9Toy:
    """The Fig 9(d) walk-through: hybrid beats uniform on the toy hits."""

    HITS = (20, 40, 10, 65, 127)
    UNIFORM = (64, 64, 64, 64)
    HYBRID = (16, 16, 32, 64, 128)

    def test_paper_exact_cycle_counts(self):
        """Fig 9(d): 455 cycles uniform vs 257 hybrid, load at cycle 1."""
        uniform = execute_on_pool(self.HITS, self.UNIFORM, load_overhead=1)
        hybrid = execute_on_pool(self.HITS, self.HYBRID, load_overhead=1,
                                 policy="ranked")
        assert uniform.makespan == 455
        assert hybrid.makespan == 257

    def test_uniform_flow_details(self):
        """Figure narration: hit 10 done at 74, hit 20 done at 84."""
        uniform = execute_on_pool(self.HITS, self.UNIFORM, load_overhead=1)
        assert uniform.per_hit_latency[2] == 73   # hit 10: done cycle 74
        assert uniform.per_hit_latency[0] == 83   # hit 20: done cycle 84
        # hit 127 waits for the first free unit, reloaded at cycle 75
        assert uniform.per_hit_latency[4] == 380

    def test_hybrid_loads_all_hits_at_once(self):
        hybrid = execute_on_pool(self.HITS, self.HYBRID, load_overhead=1,
                                 policy="ranked")
        assert len(set(hybrid.per_hit_unit.values())) == 5

    def test_ranked_matches_length_order(self):
        hybrid = execute_on_pool(self.HITS, self.HYBRID, policy="ranked")
        # shortest hit (10) on a 16-PE unit, longest (127) on the 128-PE
        assert self.HYBRID[hybrid.per_hit_unit[2]] == 16
        assert self.HYBRID[hybrid.per_hit_unit[4]] == 128

    def test_greedy_hybrid_still_beats_uniform(self):
        uniform = execute_on_pool(self.HITS, self.UNIFORM)
        hybrid = execute_on_pool(self.HITS, self.HYBRID)
        assert hybrid.makespan < uniform.makespan

    def test_empty_pool_raises(self):
        with pytest.raises(ValueError):
            execute_on_pool(self.HITS, [])

    def test_invalid_hit_raises(self):
        with pytest.raises(ValueError):
            execute_on_pool([0], [16])

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError):
            execute_on_pool(self.HITS, self.HYBRID, policy="magic")


class TestHelpers:
    def test_expand_pool(self):
        assert expand_pool({32: 2, 16: 1}) == [16, 32, 32]

    def test_expand_pool_empty_raises(self):
        with pytest.raises(ValueError):
            expand_pool({})

    def test_expand_pool_negative_raises(self):
        with pytest.raises(ValueError):
            expand_pool({16: -1})

    def test_assignment_is_optimal(self):
        classes = (16, 32, 64, 128)
        assert assignment_is_optimal(10, 16, classes)
        assert not assignment_is_optimal(10, 128, classes)
        assert assignment_is_optimal(100, 128, classes)
