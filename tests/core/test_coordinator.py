"""Coordinator tests: double buffering, fragmentation, greedy allocation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coordinator import (
    FIFOAllocator,
    HitsAllocator,
    HitsBuffer,
    PooledAllocator,
    build_groups,
    split_thresholds,
)
from repro.core.workload import HitTask


def hit(idx, length, read_idx=0):
    return HitTask(read_idx=read_idx, hit_idx=idx, query_len=length,
                   ref_len=length + 8)


class TestHitsBuffer:
    def test_offer_within_capacity(self):
        buf = HitsBuffer(depth=8)
        assert buf.offer([hit(i, 10) for i in range(5)]) == 5
        assert buf.store_occupancy == 5

    def test_offer_overflow_rejected(self):
        buf = HitsBuffer(depth=4)
        accepted = buf.offer([hit(i, 10) for i in range(6)])
        assert accepted == 4
        assert buf.counters.get("sb_rejects") == 2

    def test_switch_at_threshold(self):
        buf = HitsBuffer(depth=8, switch_threshold=0.75)
        buf.offer([hit(i, 10) for i in range(5)])
        assert not buf.should_switch()
        buf.offer([hit(5, 10)])  # 6 >= ceil(0.75*8)
        assert buf.should_switch()
        assert buf.switch() == 6
        assert buf.store_occupancy == 0
        assert buf.processing_remaining == 6

    def test_flush_when_producers_done(self):
        buf = HitsBuffer(depth=100)
        buf.offer([hit(0, 10)])
        assert not buf.should_switch()
        assert buf.should_switch(producers_done=True)

    def test_no_switch_while_pb_busy(self):
        buf = HitsBuffer(depth=4, switch_threshold=0.5)
        buf.offer([hit(i, 10) for i in range(3)])
        buf.switch()
        buf.offer([hit(i, 10) for i in range(3, 6)])
        assert not buf.should_switch()  # PB not drained
        with pytest.raises(RuntimeError):
            buf.switch()

    def test_batch_and_writeback_fragmentation(self):
        """Fig 10 steps ❼-❾: unallocated hits retried at the offset."""
        buf = HitsBuffer(depth=16, switch_threshold=0.25)
        hits = [hit(i, 10 * (i + 1)) for i in range(4)]
        buf.offer(hits)
        buf.switch()
        batch = buf.next_batch(4)
        assert batch == hits
        allocated, unallocated = batch[:3], batch[3:]
        buf.writeback(allocated, unallocated)
        assert buf.offset == 3
        # the deferred hit is first in the next batch
        assert buf.next_batch(4) == unallocated

    def test_writeback_too_large_raises(self):
        buf = HitsBuffer(depth=8)
        buf.offer([hit(0, 10)])
        buf.switch()
        with pytest.raises(ValueError):
            buf.writeback([hit(0, 10), hit(1, 10)], [])

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            HitsBuffer(depth=0)
        with pytest.raises(ValueError):
            HitsBuffer(depth=4, switch_threshold=0.0)
        with pytest.raises(ValueError):
            HitsBuffer(depth=4).next_batch(0)


class TestGrouping:
    def test_paper_groups(self):
        """Fig 10 step ❺: {16,32} and {64,128}."""
        groups = build_groups((16, 32, 64, 128))
        assert groups[0].classes == (16, 32)
        assert groups[1].classes == (64, 128)

    def test_single_class(self):
        assert build_groups((64,))[0].classes == (64,)

    def test_odd_class_count(self):
        groups = build_groups((16, 32, 64))
        assert groups[0].classes == (16,)
        assert groups[1].classes == (32, 64)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            build_groups(())

    def test_split_threshold_covers_fig10_example(self):
        """Hit lengths (7, 29, 40) fall in the upper group, 103 in the
        lower — the geometric midpoint √(32·64) ≈ 45 splits them."""
        groups = build_groups((16, 32, 64, 128))
        (threshold,) = split_thresholds(groups)
        assert 40 <= threshold <= 64
        allocator = HitsAllocator((16, 32, 64, 128))
        assert allocator.group_of(7) == 0
        assert allocator.group_of(29) == 0
        assert allocator.group_of(40) == 0
        assert allocator.group_of(103) == 1


class TestHitsAllocator:
    def test_optimal_placement(self):
        allocator = HitsAllocator((16, 32, 64, 128))
        idle = {0: 16, 1: 32, 2: 64, 3: 128}
        placements, unallocated = allocator.allocate(
            [hit(0, 8), hit(1, 30), hit(2, 60), hit(3, 120)], idle)
        assert not unallocated
        assert {p.pe_count for p in placements} == {16, 32, 64, 128}
        assert all(p.optimal for p in placements)

    def test_suboptimal_within_group(self):
        allocator = HitsAllocator((16, 32, 64, 128))
        # only a 32-PE unit idle; a short hit takes it (sub-optimal)
        placements, unallocated = allocator.allocate([hit(0, 8)], {5: 32})
        assert len(placements) == 1
        assert placements[0].pe_count == 32
        assert not placements[0].optimal

    def test_never_crosses_groups(self):
        allocator = HitsAllocator((16, 32, 64, 128))
        # short hit, only big units idle -> deferred (Fig 10's hit_len 40)
        placements, unallocated = allocator.allocate([hit(0, 8)],
                                                     {5: 64, 6: 128})
        assert not placements
        assert len(unallocated) == 1

    def test_unallocated_preserve_batch_order(self):
        allocator = HitsAllocator((16, 32, 64, 128))
        batch = [hit(0, 8), hit(1, 9), hit(2, 10)]
        placements, unallocated = allocator.allocate(batch, {0: 16})
        assert len(placements) == 1
        assert [h.hit_idx for h in unallocated] == \
            [h.hit_idx for h in batch if h is not placements[0].hit]

    def test_shortest_hits_first(self):
        """Fig 10 step ❸: sorting by hit_len gives short hits priority."""
        allocator = HitsAllocator((16, 32, 64, 128))
        batch = [hit(0, 15), hit(1, 3)]
        placements, _ = allocator.allocate(batch, {0: 16})
        assert placements[0].hit.hit_idx == 1

    def test_counters(self):
        allocator = HitsAllocator((16, 32, 64, 128))
        allocator.allocate([hit(0, 8), hit(1, 100)], {0: 16})
        assert allocator.counters.get("allocated") == 1
        assert allocator.counters.get("deferred") == 1

    def test_empty_classes_raise(self):
        with pytest.raises(ValueError):
            HitsAllocator(())


class TestPooledAllocator:
    def test_optimal_first(self):
        allocator = PooledAllocator((16, 32, 64, 128))
        placements, _ = allocator.allocate([hit(0, 8)], {0: 128, 1: 16})
        assert placements[0].pe_count == 16
        assert placements[0].optimal

    def test_aggressive_fallback_crosses_groups(self):
        """Method (2): short hits land on large units when small are busy."""
        allocator = PooledAllocator((16, 32, 64, 128))
        placements, unallocated = allocator.allocate([hit(0, 8)], {5: 128})
        assert len(placements) == 1
        assert placements[0].pe_count == 128
        assert not placements[0].optimal
        assert not unallocated


class TestFIFOAllocator:
    def test_in_order_dispatch(self):
        allocator = FIFOAllocator((16, 32, 64, 128))
        batch = [hit(0, 100), hit(1, 5)]
        placements, unallocated = allocator.allocate(batch, {3: 16, 7: 64})
        assert [p.unit_id for p in placements] == [3, 7]
        assert [p.hit.hit_idx for p in placements] == [0, 1]
        assert not unallocated

    def test_excess_hits_deferred(self):
        allocator = FIFOAllocator((16,))
        placements, unallocated = allocator.allocate(
            [hit(i, 5) for i in range(3)], {0: 16})
        assert len(placements) == 1
        assert len(unallocated) == 2


@given(st.lists(st.integers(1, 200), min_size=0, max_size=40),
       st.dictionaries(st.integers(0, 99), st.sampled_from([16, 32, 64, 128]),
                       max_size=20))
@settings(max_examples=60)
def test_property_allocation_conserves_hits(lengths, idle):
    """Every hit is either placed exactly once or deferred exactly once."""
    allocator = HitsAllocator((16, 32, 64, 128))
    batch = [hit(i, length) for i, length in enumerate(lengths)]
    placements, unallocated = allocator.allocate(batch, dict(idle))
    placed_ids = [p.hit.hit_idx for p in placements]
    deferred_ids = [h.hit_idx for h in unallocated]
    assert sorted(placed_ids + deferred_ids) == sorted(h.hit_idx for h in batch)
    assert len(set(p.unit_id for p in placements)) == len(placements)
    for p in placements:
        assert idle[p.unit_id] == p.pe_count
