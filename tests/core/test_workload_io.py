"""Workload serialization and experiment CSV export tests."""

import pytest

from repro.core import NvWaAccelerator, baseline, synthetic_workload
from repro.core.workload import HitTask, ReadTask, Workload
from repro.genome.datasets import get_dataset


class TestWorkloadSerialization:
    def test_roundtrip(self, tmp_path):
        wl = synthetic_workload(get_dataset("H.s."), 40, seed=3)
        path = tmp_path / "wl.json"
        wl.save(path)
        loaded = Workload.load(path)
        assert len(loaded) == len(wl)
        assert loaded.hit_lengths() == wl.hit_lengths()
        assert [t.seeding_accesses for t in loaded.tasks] == \
            [t.seeding_accesses for t in wl.tasks]

    def test_roundtrip_preserves_simulation(self, tmp_path):
        wl = synthetic_workload(get_dataset("C.e."), 60, seed=4)
        path = tmp_path / "wl.json"
        wl.save(path)
        loaded = Workload.load(path)
        a = NvWaAccelerator(baseline.nvwa()).run(wl)
        b = NvWaAccelerator(baseline.nvwa()).run(loaded)
        assert a.cycles == b.cycles

    def test_sequences_survive(self, tmp_path):
        task = ReadTask(read_idx=0, seeding_accesses=10, hits=(
            HitTask(0, 0, 4, 6, query_seq="ACGT", ref_seq="ACGTAC"),))
        path = tmp_path / "wl.json"
        Workload([task]).save(path)
        loaded = Workload.load(path)
        hit = loaded.tasks[0].hits[0]
        assert hit.query_seq == "ACGT" and hit.ref_seq == "ACGTAC"

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99, "tasks": []}')
        with pytest.raises(ValueError):
            Workload.load(path)


class TestExperimentCSV:
    def test_to_csv_file(self, tmp_path):
        from repro.experiments import table2_area_power
        result = table2_area_power.run()
        path = tmp_path / "table2.csv"
        count = result.to_csv(path)
        content = path.read_text()
        assert count == len(result.rows)
        assert content.startswith("# Table II")
        assert "module,category,area_mm2,power_w" in content
        assert "Coordinator" in content

    def test_runner_csv_dir(self, tmp_path):
        from repro.experiments.runner import run_experiments
        out = tmp_path / "csv"
        run_experiments(["fig07"], quick=True, csv_dir=str(out))
        assert (out / "fig07.csv").exists()
