"""Property-based tests: accelerator invariants over random workloads."""

from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import NvWaAccelerator, baseline
from repro.core.config import NvWaConfig
from repro.core.workload import HitTask, ReadTask, Workload

#: A small accelerator so property runs stay fast.
SMALL = NvWaConfig(num_seeding_units=8,
                   eu_config=((16, 3), (32, 2), (64, 2), (128, 1)),
                   hits_buffer_depth=32, allocation_batch_size=8,
                   spm_capacity_reads=64)


@st.composite
def workloads(draw):
    n_reads = draw(st.integers(1, 25))
    tasks = []
    for idx in range(n_reads):
        accesses = draw(st.integers(0, 800))
        n_hits = draw(st.integers(0, 5))
        hits = tuple(
            HitTask(read_idx=idx, hit_idx=h,
                    query_len=draw(st.integers(1, 150)),
                    ref_len=draw(st.integers(1, 150)))
            for h in range(n_hits))
        tasks.append(ReadTask(read_idx=idx, seeding_accesses=accesses,
                              hits=hits))
    return Workload(tasks)


class TestInvariants:
    @given(workloads())
    @settings(max_examples=40, deadline=None)
    def test_conservation_and_termination(self, workload):
        """Every run terminates, processes every hit exactly once, and
        issues every read exactly once — for every scheduling policy."""
        for policy in ("grouped", "pooled", "strict", "fifo"):
            config = replace(baseline.nvwa(SMALL), allocator_policy=policy)
            report = NvWaAccelerator(config).run(workload)
            assert report.hits_processed == workload.total_hits, policy
            assert report.counters.get("reads_issued") == len(workload)

    @given(workloads())
    @settings(max_examples=25, deadline=None)
    def test_determinism(self, workload):
        config = baseline.nvwa(SMALL)
        a = NvWaAccelerator(config).run(workload)
        b = NvWaAccelerator(config).run(workload)
        assert a.cycles == b.cycles
        assert a.counters.as_dict() == b.counters.as_dict()

    @given(workloads())
    @settings(max_examples=25, deadline=None)
    def test_utilizations_bounded(self, workload):
        report = NvWaAccelerator(baseline.nvwa(SMALL)).run(workload)
        assert 0.0 <= report.su_utilization <= 1.0
        assert 0.0 <= report.eu_utilization <= 1.0
        assert 0.0 <= report.eu_pe_efficiency <= 1.0
        assert report.memory_bandwidth_utilization >= 0.0

    @given(workloads())
    @settings(max_examples=20, deadline=None)
    def test_baseline_never_faster(self, workload):
        """On any workload the full scheduler is at least as fast as the
        unscheduled baseline up to a small constant (switch and trigger
        overheads on trivially small runs)."""
        nvwa = NvWaAccelerator(baseline.nvwa(SMALL)).run(workload)
        base = NvWaAccelerator(baseline.sus_eus_baseline(SMALL)).run(workload)
        # The additive term absorbs the fixed allocation/switch overhead,
        # which can approach ~300 cycles on runs this small (a found
        # counterexample sat 1 cycle over the old 200-cycle allowance).
        slack = 1.3 + 400 / max(base.cycles, 1)
        assert nvwa.cycles <= base.cycles * slack

    @given(workloads(), st.booleans())
    @settings(max_examples=20, deadline=None)
    def test_fragmentation_flag_conserves(self, workload, frag):
        config = replace(baseline.nvwa(SMALL), fragmentation_handling=frag)
        report = NvWaAccelerator(config).run(workload)
        assert report.hits_processed == workload.total_hits

    @given(workloads())
    @settings(max_examples=15, deadline=None)
    def test_trace_event_counts_match(self, workload):
        config = replace(baseline.nvwa(SMALL), record_trace=True)
        report = NvWaAccelerator(config).run(workload)
        trace = report.trace
        assert len(trace.events(kind="read_start")) == len(workload)
        assert len(trace.events(kind="hit_finish")) == workload.total_hits


class TestScalingShape:
    def test_more_sus_never_slower_on_seeding_bound(self):
        """Unit-count monotonicity on a seeding-heavy workload."""
        tasks = [ReadTask(read_idx=i, seeding_accesses=2000,
                          hits=(HitTask(i, 0, 10, 18),))
                 for i in range(64)]
        workload = Workload(tasks)
        small = replace(SMALL, num_seeding_units=4)
        big = replace(SMALL, num_seeding_units=16)
        cycles_small = NvWaAccelerator(baseline.nvwa(small)).run(workload).cycles
        cycles_big = NvWaAccelerator(baseline.nvwa(big)).run(workload).cycles
        assert cycles_big <= cycles_small

    def test_double_workload_roughly_double_time(self):
        tasks = [ReadTask(read_idx=i, seeding_accesses=500,
                          hits=(HitTask(i, 0, 20, 28),))
                 for i in range(200)]
        single = NvWaAccelerator(baseline.nvwa(SMALL)).run(
            Workload(tasks)).cycles
        doubled_tasks = [ReadTask(read_idx=i, seeding_accesses=500,
                                  hits=(HitTask(i, 0, 20, 28),))
                         for i in range(400)]
        double = NvWaAccelerator(baseline.nvwa(SMALL)).run(
            Workload(doubled_tasks)).cycles
        assert 1.6 * single < double < 2.6 * single
