"""Seeding Scheduler and Extension Scheduler tests."""

import pytest

from repro.core.extension_scheduler import AllocateTrigger, HybridUnitsManager
from repro.core.coordinator import Placement
from repro.core.seeding_scheduler import SeedingScheduler
from repro.core.workload import HitTask
from repro.hw.extension_unit import ExtensionUnit
from repro.sim.spm import Scratchpad


class TestSeedingScheduler:
    def test_ocra_serves_idle_units(self):
        sched = SeedingScheduler(num_units=4, total_reads=10, use_ocra=True)
        loads = sched.schedule([0, 1, 0, 1])
        assert [(l.unit_id, l.read_idx) for l in loads] == [(0, 0), (2, 1)]

    def test_batch_mode_waits_for_all_idle(self):
        sched = SeedingScheduler(num_units=4, total_reads=10, use_ocra=False)
        assert sched.schedule([0, 1, 0, 0]) == ()
        loads = sched.schedule([0, 0, 0, 0])
        assert len(loads) == 4

    def test_prefetched_loads_cost_one_cycle(self):
        sched = SeedingScheduler(num_units=2, total_reads=10, use_ocra=True)
        loads = sched.schedule([0, 0])
        assert all(l.load_latency == sched.spm.read_latency for l in loads)

    def test_spm_keeps_prefetching(self):
        sched = SeedingScheduler(num_units=2, total_reads=100, use_ocra=True,
                                 prefetch_ahead=8)
        for _ in range(10):
            sched.schedule([0, 0])
        # SPM stays topped up as reads drain
        assert sched.spm.occupancy > 0
        assert sched.spm.stats.hit_rate == 1.0

    def test_unprefetched_read_pays_miss(self):
        spm = Scratchpad(capacity=1, miss_penalty=45)
        sched = SeedingScheduler(num_units=4, total_reads=10, use_ocra=True,
                                 spm=spm, prefetch_ahead=1)
        loads = sched.schedule([0, 0, 0, 0])
        latencies = sorted(l.load_latency for l in loads)
        assert latencies[0] == spm.read_latency
        assert latencies[-1] == 45

    def test_exhaustion(self):
        sched = SeedingScheduler(num_units=4, total_reads=3, use_ocra=True)
        loads = sched.schedule([0, 0, 0, 0])
        assert len(loads) == 3
        assert sched.exhausted
        assert sched.schedule([0, 0, 0, 0]) == ()

    def test_invalid_prefetch(self):
        with pytest.raises(ValueError):
            SeedingScheduler(2, 10, prefetch_ahead=0)


class TestAllocateTrigger:
    def test_threshold_15_percent_of_70(self):
        trigger = AllocateTrigger(num_units=70, idle_fraction=0.15)
        assert trigger.threshold == 11
        assert not trigger.should_request(10)
        assert trigger.should_request(11)

    def test_minimum_threshold_is_one(self):
        trigger = AllocateTrigger(num_units=4, idle_fraction=0.0)
        assert trigger.threshold == 1
        assert not trigger.should_request(0)

    def test_bounds_validated(self):
        trigger = AllocateTrigger(num_units=4)
        with pytest.raises(ValueError):
            trigger.should_request(5)
        with pytest.raises(ValueError):
            trigger.should_request(-1)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            AllocateTrigger(0)
        with pytest.raises(ValueError):
            AllocateTrigger(4, idle_fraction=1.5)


class TestHybridUnitsManager:
    def _units(self):
        return [ExtensionUnit(unit_id=i, pe_count=pe)
                for i, pe in enumerate([16, 16, 64])]

    def test_idle_census(self):
        manager = HybridUnitsManager(self._units())
        assert manager.idle_units() == {0: 16, 1: 16, 2: 64}
        assert manager.idle_count() == 3

    def test_dispatch_starts_units(self):
        manager = HybridUnitsManager(self._units())
        task = HitTask(read_idx=0, hit_idx=0, query_len=10, ref_len=18)
        placement = Placement(hit=task, unit_id=0, pe_count=16, optimal=True)
        finish_times = manager.dispatch([placement], now=100)
        assert finish_times[0] > 100
        assert manager.idle_count() == 2

    def test_dispatch_wrong_pe_count_raises(self):
        manager = HybridUnitsManager(self._units())
        task = HitTask(read_idx=0, hit_idx=0, query_len=10, ref_len=18)
        bad = Placement(hit=task, unit_id=0, pe_count=64, optimal=False)
        with pytest.raises(ValueError):
            manager.dispatch([bad], now=0)

    def test_dispatch_unknown_unit_raises(self):
        manager = HybridUnitsManager(self._units())
        task = HitTask(read_idx=0, hit_idx=0, query_len=10, ref_len=18)
        ghost = Placement(hit=task, unit_id=99, pe_count=16, optimal=True)
        with pytest.raises(KeyError):
            manager.dispatch([ghost], now=0)

    def test_unit_lookup(self):
        manager = HybridUnitsManager(self._units())
        assert manager.unit(2).pe_count == 64
        with pytest.raises(KeyError):
            manager.unit(42)

    def test_duplicate_ids_rejected(self):
        units = [ExtensionUnit(unit_id=0, pe_count=16),
                 ExtensionUnit(unit_id=0, pe_count=32)]
        with pytest.raises(ValueError):
            HybridUnitsManager(units)

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            HybridUnitsManager([])
