"""Integration tests for the full NvWa accelerator simulation."""

import pytest

from repro.core import baseline
from repro.core.accelerator import NvWaAccelerator
from repro.core.config import NvWaConfig
from repro.core.workload import synthetic_workload
from repro.genome.datasets import get_dataset


@pytest.fixture(scope="module")
def workload():
    return synthetic_workload(get_dataset("H.s."), 400, seed=11)


@pytest.fixture(scope="module")
def reports(workload):
    return {name: NvWaAccelerator(cfg).run(workload)
            for name, cfg in baseline.ablation_ladder().items()}


class TestConservation:
    def test_every_hit_processed(self, workload, reports):
        for name, report in reports.items():
            assert report.hits_processed == workload.total_hits, name

    def test_every_read_counted(self, workload, reports):
        for report in reports.values():
            assert report.reads == len(workload)
            assert report.counters.get("reads_issued") == len(workload)

    def test_simulation_terminates(self, reports):
        for report in reports.values():
            assert report.cycles > 0


class TestAblationShape:
    """The Fig 11 ladder: every mechanism must help, cumulatively."""

    def test_full_nvwa_fastest(self, reports):
        nvwa = reports["+HA (NvWa)"].cycles
        for name, report in reports.items():
            assert nvwa <= report.cycles, name

    def test_baseline_slowest(self, reports):
        base = reports["SUs+EUs"].cycles
        for name, report in reports.items():
            assert report.cycles <= base, name

    def test_monotone_ladder(self, reports):
        order = ["SUs+EUs", "+HUS", "+OCRA", "+HA (NvWa)"]
        cycles = [reports[n].cycles for n in order]
        assert cycles == sorted(cycles, reverse=True)

    def test_meaningful_total_speedup(self, reports):
        speedup = reports["SUs+EUs"].cycles / reports["+HA (NvWa)"].cycles
        assert speedup > 1.5


class TestUtilization:
    def test_ocra_improves_su_utilization(self, reports):
        """Fig 12(a) vs (b): one-cycle feeding vs Read-in-Batch."""
        assert reports["+HA (NvWa)"].su_utilization > \
            1.5 * reports["SUs+EUs"].su_utilization

    def test_hybrid_improves_pe_efficiency(self, reports):
        """Fig 12(c) vs (d): matched units waste fewer PE cycles."""
        assert reports["+HA (NvWa)"].eu_pe_efficiency > \
            1.5 * reports["SUs+EUs"].eu_pe_efficiency

    def test_utilizations_bounded(self, reports):
        for report in reports.values():
            assert 0.0 <= report.su_utilization <= 1.0
            assert 0.0 <= report.eu_utilization <= 1.0
            assert 0.0 <= report.eu_pe_efficiency <= 1.0


class TestAssignmentQuality:
    def test_nvwa_mostly_optimal(self, reports):
        """Fig 12(e): the Hits Allocator places most hits optimally."""
        assert reports["+HA (NvWa)"].assignment_quality.overall_fraction() \
            > 0.6

    def test_baseline_mostly_suboptimal(self, reports):
        """Fig 12(f): without scheduling only ~14.5% are optimal."""
        assert reports["SUs+EUs"].assignment_quality.overall_fraction() < 0.3

    def test_quality_recorded_for_each_class(self, reports):
        quality = reports["+HA (NvWa)"].assignment_quality
        for pe_class in (16, 32, 64, 128):
            assert quality.total.get(pe_class, 0) > 0


class TestDeterminism:
    def test_same_workload_same_cycles(self, workload):
        a = NvWaAccelerator(baseline.nvwa()).run(workload)
        b = NvWaAccelerator(baseline.nvwa()).run(workload)
        assert a.cycles == b.cycles
        assert a.hits_processed == b.hits_processed


class TestEdgeCases:
    def test_single_read(self):
        wl = synthetic_workload(get_dataset("H.s."), 1, seed=1)
        report = NvWaAccelerator(baseline.nvwa()).run(wl)
        assert report.hits_processed == wl.total_hits
        assert report.cycles > 0

    def test_tiny_buffer_still_terminates(self):
        wl = synthetic_workload(get_dataset("H.s."), 50, seed=2)
        config = baseline.nvwa(NvWaConfig(hits_buffer_depth=4,
                                          allocation_batch_size=4))
        report = NvWaAccelerator(config).run(wl)
        assert report.hits_processed == wl.total_hits

    def test_single_su_single_eu_class(self):
        wl = synthetic_workload(get_dataset("H.s."), 20, seed=3)
        config = NvWaConfig(num_seeding_units=1, eu_config=((64, 2),),
                            reference_classes=(64,))
        report = NvWaAccelerator(config).run(wl)
        assert report.hits_processed == wl.total_hits

    def test_max_cycles_cuts_run_short(self, workload):
        report = NvWaAccelerator(baseline.nvwa()).run(workload, max_cycles=50)
        assert report.cycles <= 50
        assert report.hits_processed < workload.total_hits

    def test_uniform_flag_forces_uniform_pool(self):
        config = NvWaConfig(use_hybrid_units=False)
        wl = synthetic_workload(get_dataset("H.s."), 20, seed=4)
        report = NvWaAccelerator(config).run(wl)
        assert len(report.config.eu_classes) == 1

    def test_memory_energy_accounted(self, reports):
        for report in reports.values():
            assert report.memory_energy_pj > 0


class TestSuspension:
    def test_small_buffer_causes_su_suspensions(self):
        """A congested Hits Buffer must back-pressure the SUs (blocking)."""
        wl = synthetic_workload(get_dataset("H.s."), 200, seed=5)
        config = baseline.nvwa(NvWaConfig(hits_buffer_depth=8,
                                          allocation_batch_size=8))
        report = NvWaAccelerator(config).run(wl)
        assert report.counters.get("su_suspensions") > 0
        assert report.hits_processed == wl.total_hits
