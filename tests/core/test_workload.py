"""Workload generation tests."""

import pytest

from repro.core.workload import (
    HitTask,
    ReadTask,
    Workload,
    hit_extension_span,
    synthetic_workload,
    workload_from_pipeline,
)
from repro.genome.datasets import get_dataset


class TestTypes:
    def test_hit_task_validation(self):
        with pytest.raises(ValueError):
            HitTask(0, 0, query_len=0, ref_len=5)
        with pytest.raises(ValueError):
            HitTask(0, 0, query_len=5, ref_len=0)

    def test_read_task_validation(self):
        with pytest.raises(ValueError):
            ReadTask(read_idx=0, seeding_accesses=-1)

    def test_hit_len_is_query_len(self):
        assert HitTask(0, 0, query_len=7, ref_len=20).hit_len == 7


class TestExtensionSpan:
    def test_full_chain_leaves_slack_only(self):
        assert hit_extension_span(100, 0, 100, slack=4) == 4

    def test_partial_chain(self):
        assert hit_extension_span(100, 10, 80, slack=4) == 10 + 20 + 4

    def test_minimum_one(self):
        assert hit_extension_span(100, 0, 100, slack=0) == 1

    def test_invalid_span_raises(self):
        with pytest.raises(ValueError):
            hit_extension_span(100, 50, 40)
        with pytest.raises(ValueError):
            hit_extension_span(100, 0, 101)


class TestSyntheticWorkload:
    def test_deterministic(self):
        profile = get_dataset("H.s.")
        a = synthetic_workload(profile, 50, seed=3)
        b = synthetic_workload(profile, 50, seed=3)
        assert [t.seeding_accesses for t in a.tasks] == \
            [t.seeding_accesses for t in b.tasks]
        assert a.hit_lengths() == b.hit_lengths()

    def test_read_count(self):
        wl = synthetic_workload(get_dataset("C.e."), 30, seed=1)
        assert len(wl) == 30

    def test_every_read_has_a_hit(self):
        wl = synthetic_workload(get_dataset("H.s."), 100, seed=2)
        assert all(len(t.hits) >= 1 for t in wl.tasks)

    def test_hit_count_near_profile_mean(self):
        profile = get_dataset("H.s.")
        wl = synthetic_workload(profile, 500, seed=4)
        mean = wl.total_hits / len(wl)
        assert abs(mean - profile.mean_hits_per_read) < 0.8

    def test_interval_histogram_matches_mass(self):
        profile = get_dataset("H.s.")
        wl = synthetic_workload(profile, 2000, seed=5)
        histogram = wl.interval_histogram()
        total = sum(histogram)
        for count, mass in zip(histogram, profile.interval_mass):
            assert abs(count / total - mass) < 0.03

    def test_access_diversity(self):
        """Fig 2's point: per-read work varies widely."""
        wl = synthetic_workload(get_dataset("H.s."), 500, seed=6)
        accesses = [t.seeding_accesses for t in wl.tasks]
        assert max(accesses) > 2 * min(accesses)

    def test_invalid_params(self):
        profile = get_dataset("H.s.")
        with pytest.raises(ValueError):
            synthetic_workload(profile, 0)
        with pytest.raises(ValueError):
            synthetic_workload(profile, 10, mean_seeding_accesses=0)


class TestPipelineWorkload:
    def test_roundtrip_from_aligner(self):
        from repro.align.pipeline import SoftwareAligner
        from repro.genome.reads import ReadSimulator
        profile = get_dataset("H.s.")
        ref = profile.build_reference(seed=7, length=30_000)
        aligner = SoftwareAligner(ref, occ_interval=64)
        reads = ReadSimulator(ref, read_length=101, seed=8).simulate(10)
        results = aligner.align_all(reads)
        wl = workload_from_pipeline(results)
        assert len(wl) == 10
        for task, result in zip(wl.tasks, results):
            assert task.seeding_accesses == result.work.seeding_accesses
            assert len(task.hits) == len(result.hits)
        for length in wl.hit_lengths():
            assert 1 <= length <= 101 + 4
