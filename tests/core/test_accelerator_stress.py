"""Pathological-workload stress tests for the accelerator."""

from repro.core import NvWaAccelerator, baseline
from repro.core.config import NvWaConfig
from repro.core.workload import HitTask, ReadTask, Workload

SMALL = NvWaConfig(num_seeding_units=8,
                   eu_config=((16, 3), (32, 2), (64, 2), (128, 1)),
                   hits_buffer_depth=32, allocation_batch_size=8)


def run(workload, config=None):
    return NvWaAccelerator(baseline.nvwa(config or SMALL)).run(workload)


class TestPathologicalShapes:
    def test_all_hits_minimum_length(self):
        tasks = [ReadTask(i, 50, tuple(HitTask(i, h, 1, 2)
                                       for h in range(4)))
                 for i in range(100)]
        report = run(Workload(tasks))
        assert report.hits_processed == 400

    def test_all_hits_maximum_class_length(self):
        tasks = [ReadTask(i, 50, (HitTask(i, 0, 128, 136),))
                 for i in range(100)]
        report = run(Workload(tasks))
        assert report.hits_processed == 100

    def test_hits_far_beyond_largest_class(self):
        """Hits longer than every class still place (largest class wins)."""
        tasks = [ReadTask(i, 50, (HitTask(i, 0, 5000, 5008),))
                 for i in range(10)]
        report = run(Workload(tasks))
        assert report.hits_processed == 10

    def test_single_monster_read(self):
        monster = ReadTask(0, 1_000_000,
                           tuple(HitTask(0, h, 64, 72) for h in range(200)))
        report = run(Workload([monster]))
        assert report.hits_processed == 200
        assert report.cycles > 1_000_000  # seeding alone takes that long

    def test_many_zero_work_reads(self):
        tasks = [ReadTask(i, 0, ()) for i in range(500)]
        report = run(Workload(tasks))
        assert report.reads == 500
        assert report.hits_processed == 0

    def test_extreme_skew_one_class(self):
        """Every hit optimal for the single 128-PE unit: queueing works."""
        tasks = [ReadTask(i, 10, (HitTask(i, 0, 100, 108),))
                 for i in range(60)]
        report = run(Workload(tasks))
        assert report.hits_processed == 60

    def test_buffer_smaller_than_one_read_output(self):
        """A read producing more hits than the whole buffer must still
        drain via suspension and retries."""
        config = NvWaConfig(num_seeding_units=2,
                            eu_config=((16, 2),), reference_classes=(16,),
                            hits_buffer_depth=4, allocation_batch_size=4)
        tasks = [ReadTask(0, 10, tuple(HitTask(0, h, 8, 16)
                                       for h in range(20)))]
        report = run(Workload(tasks), config)
        assert report.hits_processed == 20
        assert report.counters.get("su_suspensions") >= 1

    def test_alternating_extremes(self):
        tasks = []
        for i in range(50):
            length = 1 if i % 2 == 0 else 128
            tasks.append(ReadTask(i, 5 if i % 2 else 2000,
                                  (HitTask(i, 0, length, length + 8),)))
        report = run(Workload(tasks))
        assert report.hits_processed == 50
