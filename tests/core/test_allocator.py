"""One-Cycle Read Allocator tests: equations, microarchitecture, Fig 5."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocator import OneCycleReadAllocator, ReadInBatchAllocator


class TestEquations:
    def test_all_idle_initial_allocation(self):
        alloc = OneCycleReadAllocator(num_units=4, total_reads=100)
        result = alloc.allocate([0, 0, 0, 0])
        assert result.assignments == {0: 0, 1: 1, 2: 2, 3: 3}
        assert alloc.offset == 3

    def test_paper_toy_example(self):
        """Fig 5(b) at cycle T1+2: units 1 and 2 idle, offset g=3 ->
        unit 1 gets read 4, unit 2 gets read 5."""
        alloc = OneCycleReadAllocator(num_units=4, total_reads=100)
        alloc.allocate([0, 0, 0, 0])  # reads 0-3, offset -> 3
        result = alloc.allocate([1, 0, 0, 1])
        assert result.assignments == {1: 4, 2: 5}
        assert alloc.offset == 5

    def test_all_busy_allocates_nothing(self):
        alloc = OneCycleReadAllocator(num_units=3, total_reads=10)
        result = alloc.allocate([1, 1, 1])
        assert result.assignments == {}
        assert alloc.offset == -1

    def test_priority_by_index(self):
        alloc = OneCycleReadAllocator(num_units=4, total_reads=10)
        result = alloc.allocate([1, 0, 1, 0])
        # lower index gets lower read index
        assert result.assignments == {1: 0, 3: 1}

    def test_stream_exhaustion(self):
        alloc = OneCycleReadAllocator(num_units=4, total_reads=2)
        result = alloc.allocate([0, 0, 0, 0])
        assert result.assignments == {0: 0, 1: 1}
        assert alloc.exhausted
        assert alloc.allocate([0, 0, 0, 0]).assignments == {}

    def test_status_validation(self):
        alloc = OneCycleReadAllocator(num_units=2, total_reads=5)
        with pytest.raises(ValueError):
            alloc.allocate([0])
        with pytest.raises(ValueError):
            alloc.allocate([0, 2])

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            OneCycleReadAllocator(0, 10)
        with pytest.raises(ValueError):
            OneCycleReadAllocator(4, -1)

    def test_single_cycle_timing_claim(self):
        """Paper: 64-512 units, tree depth 6-9, fits 1 GHz."""
        for units in (64, 128, 256, 512):
            alloc = OneCycleReadAllocator(units, 10)
            assert alloc.popcount_tree.depth in range(6, 10)
            assert alloc.single_cycle_at(1e9)


class TestMicroarchitecture:
    @given(st.integers(2, 64), st.integers(0, 1000))
    @settings(max_examples=60)
    def test_matches_equations(self, num_units, seed):
        """Fig 6's five hardware steps == Equations (1)-(2), always."""
        rng = np.random.RandomState(seed)
        eq = OneCycleReadAllocator(num_units, total_reads=10_000)
        hw = OneCycleReadAllocator(num_units, total_reads=10_000)
        for _ in range(5):
            status = rng.randint(0, 2, size=num_units)
            r_eq = eq.allocate(status)
            r_hw = hw.allocate_microarch(status)
            assert r_eq.assignments == r_hw.assignments
            assert eq.offset == hw.offset

    def test_no_duplicate_reads_ever(self):
        rng = np.random.RandomState(7)
        alloc = OneCycleReadAllocator(8, total_reads=200)
        seen = set()
        for _ in range(50):
            result = alloc.allocate(rng.randint(0, 2, size=8))
            for read in result.assignments.values():
                assert read not in seen
                seen.add(read)

    def test_reads_issued_in_order_without_gaps(self):
        rng = np.random.RandomState(11)
        alloc = OneCycleReadAllocator(8, total_reads=100)
        issued = []
        while not alloc.exhausted:
            result = alloc.allocate(rng.randint(0, 2, size=8))
            issued.extend(sorted(result.assignments.values()))
        assert issued == list(range(100))


class TestReadInBatch:
    def test_batch_only_when_all_idle(self):
        alloc = ReadInBatchAllocator(4, total_reads=10)
        assert alloc.allocate_batch([0, 1, 0, 0]).assignments == {}
        result = alloc.allocate_batch([0, 0, 0, 0])
        assert result.assignments == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_sequential_batches(self):
        alloc = ReadInBatchAllocator(2, total_reads=5)
        assert alloc.allocate_batch([0, 0]).assignments == {0: 0, 1: 1}
        assert alloc.allocate_batch([0, 0]).assignments == {0: 2, 1: 3}
        assert alloc.allocate_batch([0, 0]).assignments == {0: 4}
        assert alloc.exhausted

    def test_wrong_status_length_raises(self):
        with pytest.raises(ValueError):
            ReadInBatchAllocator(2, 4).allocate_batch([0])

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ReadInBatchAllocator(0, 5)
        with pytest.raises(ValueError):
            ReadInBatchAllocator(2, -1)
