"""Unit tests for the three Sec. IV-D allocation methods + ablation flags."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coordinator import (
    HitsAllocator,
    PooledAllocator,
    StrictClassAllocator,
)
from repro.core.workload import HitTask


def hit(idx, length):
    return HitTask(read_idx=0, hit_idx=idx, query_len=length,
                   ref_len=length + 8)


class TestStrictClassAllocator:
    def test_optimal_only(self):
        allocator = StrictClassAllocator((16, 32, 64, 128))
        placements, deferred = allocator.allocate(
            [hit(0, 8), hit(1, 100)], {0: 16, 1: 128})
        assert all(p.optimal for p in placements)
        assert not deferred

    def test_defers_when_optimal_class_busy(self):
        """Method (1)'s weakness: idle units of other classes go unused."""
        allocator = StrictClassAllocator((16, 32, 64, 128))
        placements, deferred = allocator.allocate(
            [hit(0, 8)], {5: 32, 6: 64, 7: 128})
        assert not placements
        assert len(deferred) == 1

    def test_shortest_first(self):
        allocator = StrictClassAllocator((16, 32, 64, 128))
        placements, _ = allocator.allocate([hit(0, 15), hit(1, 2)], {0: 16})
        assert placements[0].hit.hit_idx == 1

    def test_counters(self):
        allocator = StrictClassAllocator((16,))
        allocator.allocate([hit(0, 5), hit(1, 6)], {0: 16})
        assert allocator.counters.get("allocated") == 1
        assert allocator.counters.get("deferred") == 1
        assert allocator.counters.get("optimal") == 1

    def test_empty_classes_raise(self):
        with pytest.raises(ValueError):
            StrictClassAllocator(())


class TestPolicyOrdering:
    """The structural relation between the three methods on one batch."""

    @given(st.lists(st.integers(1, 128), min_size=1, max_size=30),
           st.dictionaries(st.integers(0, 50),
                           st.sampled_from([16, 32, 64, 128]), max_size=16))
    @settings(max_examples=50)
    def test_property_allocation_counts_ordered(self, lengths, idle):
        """pooled places >= grouped places >= strict places, always —
        each method is strictly more permissive than the next."""
        batch = [hit(i, length) for i, length in enumerate(lengths)]
        classes = (16, 32, 64, 128)
        strict_n = len(StrictClassAllocator(classes).allocate(
            batch, dict(idle))[0])
        grouped_n = len(HitsAllocator(classes).allocate(
            batch, dict(idle))[0])
        pooled_n = len(PooledAllocator(classes).allocate(
            batch, dict(idle))[0])
        assert strict_n <= grouped_n <= pooled_n

    @given(st.lists(st.integers(1, 128), min_size=1, max_size=30),
           st.dictionaries(st.integers(0, 50),
                           st.sampled_from([16, 32, 64, 128]), max_size=16))
    @settings(max_examples=50)
    def test_property_strict_quality_is_total(self, lengths, idle):
        batch = [hit(i, length) for i, length in enumerate(lengths)]
        placements, _ = StrictClassAllocator((16, 32, 64, 128)).allocate(
            batch, dict(idle))
        assert all(p.optimal for p in placements)


class TestAblationFlags:
    def test_fragmentation_flag_conserves_hits(self):
        from dataclasses import replace
        from repro.core import NvWaAccelerator, baseline, synthetic_workload
        from repro.genome.datasets import get_dataset
        wl = synthetic_workload(get_dataset("H.s."), 120, seed=9)
        config = replace(baseline.nvwa(), fragmentation_handling=False)
        report = NvWaAccelerator(config).run(wl)
        assert report.hits_processed == wl.total_hits

    def test_prefetch_flag_slows_loads(self):
        from repro.core.seeding_scheduler import SeedingScheduler
        from repro.sim.spm import Scratchpad
        cold = SeedingScheduler(num_units=4, total_reads=20,
                                spm=Scratchpad(capacity=64, miss_penalty=45),
                                prefetch=False)
        loads = cold.schedule([0, 0, 0, 0])
        assert all(l.load_latency == 45 for l in loads)

    def test_invalid_policy_rejected(self):
        from repro.core.config import NvWaConfig
        with pytest.raises(ValueError):
            NvWaConfig(allocator_policy="greedy")
