"""NvWaConfig validation and variant tests."""

from dataclasses import replace

import pytest

from repro.core.config import (
    PAPER_CONFIG,
    PAPER_EU_CONFIG,
    PAPER_TOTAL_PES,
    NvWaConfig,
)


class TestPaperDesignPoint:
    def test_published_numbers(self):
        config = PAPER_CONFIG
        assert config.num_seeding_units == 128
        assert config.num_extension_units == 70
        assert config.total_pes == PAPER_TOTAL_PES == 2880
        assert dict(config.eu_config) == PAPER_EU_CONFIG
        assert config.frequency_hz == 1e9
        assert config.hits_buffer_depth == 1024
        assert config.switch_threshold == 0.75
        assert config.idle_trigger_fraction == 0.15

    def test_eu_classes_sorted(self):
        assert PAPER_CONFIG.eu_classes == (16, 32, 64, 128)


class TestValidation:
    def test_rejects_zero_sus(self):
        with pytest.raises(ValueError):
            NvWaConfig(num_seeding_units=0)

    def test_rejects_empty_eu_config(self):
        with pytest.raises(ValueError):
            NvWaConfig(eu_config=())

    def test_rejects_invalid_eu_class(self):
        with pytest.raises(ValueError):
            NvWaConfig(eu_config=((0, 4),))
        with pytest.raises(ValueError):
            NvWaConfig(eu_config=((16, 0),))

    def test_rejects_bad_thresholds(self):
        with pytest.raises(ValueError):
            NvWaConfig(switch_threshold=0.0)
        with pytest.raises(ValueError):
            NvWaConfig(switch_threshold=1.5)
        with pytest.raises(ValueError):
            NvWaConfig(idle_trigger_fraction=-0.1)

    def test_rejects_bad_buffer_params(self):
        with pytest.raises(ValueError):
            NvWaConfig(hits_buffer_depth=0)
        with pytest.raises(ValueError):
            NvWaConfig(allocation_batch_size=0)

    def test_rejects_unknown_policies(self):
        with pytest.raises(ValueError):
            NvWaConfig(allocator_policy="best-effort")
        with pytest.raises(ValueError):
            NvWaConfig(eu_datapath="tpu")


class TestVariants:
    def test_uniform_variant_preserves_pe_budget(self):
        uniform = PAPER_CONFIG.uniform_variant()
        assert len(uniform.eu_classes) == 1
        assert uniform.total_pes <= PAPER_CONFIG.total_pes
        assert uniform.total_pes >= PAPER_CONFIG.total_pes - 64
        assert not uniform.use_hybrid_units

    def test_uniform_variant_uses_median_class(self):
        uniform = PAPER_CONFIG.uniform_variant()
        assert uniform.eu_classes[0] == 64  # median of (16,32,64,128)

    def test_baseline_variant_disables_everything(self):
        base = PAPER_CONFIG.baseline_variant()
        assert not base.use_ocra
        assert base.allocator_policy == "fifo"
        assert len(base.eu_classes) == 1

    def test_frozen(self):
        with pytest.raises(AttributeError):
            PAPER_CONFIG.num_seeding_units = 5  # type: ignore

    def test_replace_roundtrip(self):
        modified = replace(PAPER_CONFIG, hits_buffer_depth=2048)
        assert modified.hits_buffer_depth == 2048
        assert modified.eu_config == PAPER_CONFIG.eu_config
