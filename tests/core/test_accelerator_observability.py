"""Tests for trace recording, bandwidth accounting, and EU datapaths."""

from dataclasses import replace

import pytest

from repro.core import NvWaAccelerator, baseline, synthetic_workload
from repro.core.config import NvWaConfig
from repro.core.workload import ReadTask, Workload
from repro.genome.datasets import get_dataset


@pytest.fixture(scope="module")
def workload():
    return synthetic_workload(get_dataset("H.s."), 100, seed=17)


class TestExecutionTrace:
    def test_disabled_by_default(self, workload):
        report = NvWaAccelerator(baseline.nvwa()).run(workload)
        assert report.trace is None

    def test_recorded_when_enabled(self, workload):
        config = replace(baseline.nvwa(), record_trace=True)
        report = NvWaAccelerator(config).run(workload)
        trace = report.trace
        assert trace is not None
        assert len(trace.events(kind="read_start")) == len(workload)
        assert len(trace.events(kind="read_finish")) == len(workload)
        assert len(trace.events(kind="hit_start")) == workload.total_hits
        assert len(trace.events(kind="hit_finish")) == workload.total_hits
        assert trace.events(kind="buffer_switch")

    def test_trace_timeline_ordered_per_unit(self, workload):
        config = replace(baseline.nvwa(), record_trace=True)
        report = NvWaAccelerator(config).run(workload)
        su0 = report.trace.events(source="SU0")
        cycles = [e.cycle for e in su0]
        assert cycles == sorted(cycles)

    def test_fig3_style_narrative(self, workload):
        """The trace renders a readable Fig 3-style timeline."""
        config = replace(baseline.nvwa(), record_trace=True)
        report = NvWaAccelerator(config).run(workload)
        text = report.trace.render(limit=20)
        assert "read_start" in text


class TestBandwidthAccounting:
    def test_within_hbm_budget(self, workload):
        """The paper's HBM 1.0 must not be oversubscribed by the model."""
        report = NvWaAccelerator(baseline.nvwa()).run(workload)
        assert 0.0 <= report.memory_bandwidth_utilization < 1.0

    def test_zero_for_empty_run(self):
        empty = Workload([])
        report = NvWaAccelerator(baseline.nvwa()).run(empty)
        assert report.memory_bandwidth_utilization == 0.0


class TestEUDatapaths:
    def test_genasm_pool_runs(self, workload):
        config = replace(baseline.nvwa(), eu_datapath="genasm")
        report = NvWaAccelerator(config).run(workload)
        assert report.hits_processed == workload.total_hits

    def test_scheduling_speedup_on_both_datapaths(self):
        # needs a stream much longer than the SU pool for batch stalls to
        # matter (100 reads on 128 SUs is a single trivial batch)
        big = synthetic_workload(get_dataset("H.s."), 600, seed=18)
        for datapath in ("systolic", "genasm"):
            nvwa = NvWaAccelerator(replace(baseline.nvwa(),
                                           eu_datapath=datapath)).run(big)
            base = NvWaAccelerator(replace(baseline.sus_eus_baseline(),
                                           eu_datapath=datapath)).run(big)
            assert nvwa.cycles < base.cycles, datapath

    def test_invalid_datapath_rejected(self):
        with pytest.raises(ValueError):
            NvWaConfig(eu_datapath="quantum")

    def test_genasm_word_insensitive(self):
        from repro.hw.extension_unit import ExtensionUnit
        from repro.core.workload import HitTask
        eu = ExtensionUnit(unit_id=0, pe_count=16, datapath="genasm",
                           load_overhead=0)
        short = HitTask(0, 0, query_len=8, ref_len=100)
        mid = HitTask(0, 1, query_len=60, ref_len=100)
        assert eu.duration(short) == eu.duration(mid)


class TestZeroHitReads:
    def test_reads_without_hits_flow_through(self):
        """Pipeline junk reads produce ReadTasks with no hits."""
        tasks = [ReadTask(read_idx=i, seeding_accesses=100, hits=())
                 for i in range(10)]
        report = NvWaAccelerator(baseline.nvwa()).run(Workload(tasks))
        assert report.reads == 10
        assert report.hits_processed == 0
        assert report.cycles > 0
