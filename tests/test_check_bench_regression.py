"""Tests for scripts/check_bench_regression.py.

The script lives outside the package, so it is loaded by file path.
"""

import importlib.util
import json
import pathlib

import pytest

_SCRIPT = (pathlib.Path(__file__).resolve().parent.parent
           / "scripts" / "check_bench_regression.py")


@pytest.fixture(scope="module")
def bench_check():
    spec = importlib.util.spec_from_file_location(
        "check_bench_regression", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _write_bench_json(path, means):
    payload = {"benchmarks": [
        {"name": name, "stats": {"mean": mean}}
        for name, mean in means.items()
    ]}
    path.write_text(json.dumps(payload))


class TestReduceMean:
    def test_sub_microsecond_means_stay_nonzero(self, bench_check):
        """Regression: ``round(mean, 6)`` flattened anything under
        ~0.5 µs to 0.0, which the ``baseline_mean > 0`` guard then
        skipped forever."""
        assert bench_check.reduce_mean(2.37e-7) > 0
        assert bench_check.reduce_mean(2.37e-7) == pytest.approx(
            2.37e-7, rel=1e-9)

    def test_three_significant_digits(self, bench_check):
        assert bench_check.reduce_mean(0.123456) == 0.123
        assert bench_check.reduce_mean(1234.5) == 1230.0
        assert bench_check.reduce_mean(4.56789e-8) == pytest.approx(
            4.57e-8)


class TestSubMicrosecondRegression:
    def test_regressed_nanosecond_benchmark_fails_check(
            self, bench_check, tmp_path, capsys):
        """A 200 ns kernel that regresses 5x must fail the gate; with
        the old decimal-place rounding its baseline was stored as 0.0
        and the regression passed silently."""
        fast_run = tmp_path / "fast.json"
        slow_run = tmp_path / "slow.json"
        baseline = tmp_path / "baseline.json"
        _write_bench_json(fast_run, {"test_popcount_kernel": 2e-7})
        _write_bench_json(slow_run, {"test_popcount_kernel": 1e-6})

        assert bench_check.main(
            [str(fast_run), "--baseline", str(baseline), "--update"]) == 0
        stored = json.loads(baseline.read_text())["means"]
        assert stored["test_popcount_kernel"] > 0

        rc = bench_check.main([str(slow_run), "--baseline", str(baseline)])
        assert rc == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_within_threshold_passes(self, bench_check, tmp_path):
        run = tmp_path / "run.json"
        baseline = tmp_path / "baseline.json"
        _write_bench_json(run, {"test_popcount_kernel": 2e-7})
        bench_check.main(
            [str(run), "--baseline", str(baseline), "--update"])
        _write_bench_json(run, {"test_popcount_kernel": 3e-7})
        assert bench_check.main(
            [str(run), "--baseline", str(baseline)]) == 0


class TestCheck:
    def test_new_and_missing_are_not_fatal(self, bench_check, tmp_path):
        run = tmp_path / "run.json"
        baseline = tmp_path / "baseline.json"
        _write_bench_json(run, {"a": 1.0, "b": 2.0})
        bench_check.main(
            [str(run), "--baseline", str(baseline), "--update"])
        _write_bench_json(run, {"a": 1.0, "c": 9.9})
        assert bench_check.main(
            [str(run), "--baseline", str(baseline)]) == 0
