"""Tests for the deterministic (toy/analytic) experiments."""

import pytest

from repro.experiments import (
    fig05_scheduling,
    fig07_systolic_example,
    fig08_latency_curves,
    fig09_hybrid_toy,
    table1_configs,
    table2_area_power,
    table3_interface,
)


class TestFig05:
    def test_one_cycle_beats_batch(self):
        result = fig05_scheduling.run()
        batch, one_cycle = result.rows
        assert one_cycle["cycles"] < batch["cycles"]
        assert one_cycle["su_utilization"] > batch["su_utilization"]

    def test_identical_durations_tie(self):
        """With uniform reads there is nothing for OCRA to win."""
        batch = fig05_scheduling.simulate_strategy([5] * 8, 4, False)
        one = fig05_scheduling.simulate_strategy([5] * 8, 4, True)
        assert one["cycles"] == batch["cycles"]

    def test_invalid_units(self):
        with pytest.raises(ValueError):
            fig05_scheduling.simulate_strategy([1], 0, True)


class TestFig07:
    def test_paper_33_cycles(self):
        result = fig07_systolic_example.run()
        total = result.rows[-1]
        assert total["cycles"] == 33
        assert all(r["cycles"] == 11 for r in result.rows[:-1])

    def test_three_blocks(self):
        result = fig07_systolic_example.run()
        assert len(result.rows) == 4  # 3 blocks + total


class TestFig08:
    def test_best_pe_tracks_length(self):
        result = fig08_latency_curves.run()
        bests = {r["hit_length"]: r["latency_cycles"] for r in result.rows
                 if str(r["pe_count"]).startswith("best")}
        assert bests[9] == 24    # best at P=16
        assert bests[64] == 127  # best at P=64

    def test_mismatch_penalties_visible(self):
        result = fig08_latency_curves.run()
        by_key = {(r["hit_length"], r["pe_count"]): r["latency_cycles"]
                  for r in result.rows if isinstance(r["pe_count"], int)}
        assert by_key[(9, 128)] > 3 * by_key[(9, 16)]
        assert by_key[(64, 2)] > 10 * by_key[(64, 64)]


class TestFig09:
    def test_paper_exact_makespans(self):
        result = fig09_hybrid_toy.run()
        totals = result.rows[-1]
        assert totals["uniform_latency"] == 455
        assert totals["hybrid_latency"] == 257

    def test_per_hit_rows(self):
        result = fig09_hybrid_toy.run()
        assert [r["hit_length"] for r in result.rows[:-1]] == \
            list(fig09_hybrid_toy.TOY_HITS)


class TestTables:
    def test_table1_lists_three_platforms(self):
        result = table1_configs.run()
        assert [r["platform"] for r in result.rows] == \
            ["BWA-MEM", "GASAL2", "NvWa"]
        assert "128 SUs" in result.rows[2]["compute"]

    def test_table2_totals(self):
        result = table2_area_power.run()
        total = result.rows[-1]
        assert total["area_mm2"] == pytest.approx(27.009, abs=0.01)
        assert total["power_w"] == pytest.approx(5.754, abs=0.01)

    def test_table3_rows(self):
        result = table3_interface.run()
        assert len(result.rows) == 6
        control_eu = result.rows[-1]
        assert "pe_number" in control_eu["signals"]


class TestFormatting:
    def test_format_renders(self):
        text = table2_area_power.run().format()
        assert "Table II" in text
        assert "Coordinator" in text

    def test_format_row_cap(self):
        result = fig08_latency_curves.run()
        text = result.format(max_rows=3)
        assert "more rows" in text
