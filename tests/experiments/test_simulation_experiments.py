"""Tests for the simulation-backed experiments (small workloads)."""

import pytest

from repro.experiments import (
    energy_comparison,
    fig02_breakdown,
    fig11_throughput,
    fig12_utilization,
    fig13_dse,
    fig14_datasets,
)
from repro.experiments.runner import EXPERIMENTS, run_experiments


class TestFig02:
    def test_breakdown_shape(self):
        result = fig02_breakdown.run(reads=60, genome_length=30_000,
                                     zoom=slice(20, 40))
        assert len(result.rows) == 60
        assert all(r["seeding_us"] > 0 for r in result.rows)

    def test_diversity_documented(self):
        result = fig02_breakdown.run(reads=60, genome_length=30_000,
                                     zoom=slice(20, 40))
        assert "spread" in result.notes


class TestFig03:
    def test_scheduling_removes_su_idle_gaps(self):
        from repro.experiments import fig03_scheduling_effect
        result = fig03_scheduling_effect.run(reads=150, seed=8)
        scheduled, unscheduled = result.rows
        assert scheduled["cycles"] < unscheduled["cycles"]
        assert scheduled["mean_su_idle_gap"] < \
            unscheduled["mean_su_idle_gap"]
        assert scheduled["hits_on_optimal_unit"] > \
            unscheduled["hits_on_optimal_unit"]


class TestFig11:
    @pytest.fixture(scope="class")
    def result(self):
        return fig11_throughput.run(reads=400, seed=7)

    def test_ladder_monotone(self, result):
        ladder = [r for r in result.rows if "step_speedup" in r
                  and r.get("step_speedup") is not None]
        speeds = [r["kreads_per_s"] for r in ladder]
        assert speeds == sorted(speeds)

    def test_platform_ordering(self, result):
        platforms = [r for r in result.rows if "nvwa_speedup" in r
                     and r.get("nvwa_speedup") is not None]
        rates = [r["kreads_per_s"] for r in platforms]
        assert rates == sorted(rates)  # CPU slowest ... GenCache fastest

    def test_nvwa_beats_every_platform(self, result):
        platforms = [r for r in result.rows
                     if r.get("nvwa_speedup") is not None]
        assert all(r["nvwa_speedup"] > 1 for r in platforms)

    def test_paper_references_attached(self, result):
        assert result.paper["speedups"]["CPU-BWA-MEM"] == 493.0


class TestFig12:
    @pytest.fixture(scope="class")
    def result(self):
        return fig12_utilization.run(reads=400, seed=9)

    def test_nvwa_su_beats_baseline(self, result):
        nvwa = result.reports["nvwa"]
        base = result.reports["baseline"]
        assert nvwa.su_utilization > base.su_utilization

    def test_nvwa_eu_effective_beats_baseline(self, result):
        nvwa = result.reports["nvwa"]
        base = result.reports["baseline"]
        assert nvwa.eu_effective_utilization > base.eu_effective_utilization

    def test_series_attached(self, result):
        for key in ("nvwa_su", "baseline_su", "nvwa_eu", "baseline_eu"):
            assert len(result.series[key]) == 50

    def test_quality_gap(self, result):
        nvwa_q = result.reports["nvwa"].assignment_quality.overall_fraction()
        base_q = result.reports[
            "baseline"].assignment_quality.overall_fraction()
        assert nvwa_q > 2 * base_q


class TestFig13:
    @pytest.fixture(scope="class")
    def result(self):
        return fig13_dse.run(reads=250, depths=(64, 512, 4096),
                             interval_counts=(1, 4))

    def test_all_sweeps_present(self, result):
        sweeps = {r["sweep"] for r in result.rows}
        assert sweeps == {"buffer_depth", "intervals", "switch_threshold",
                          "idle_trigger"}

    def test_four_intervals_beat_one(self, result):
        by_x = {p.intervals: p for p in result.interval_points}
        assert by_x[4].kreads_per_second > by_x[1].kreads_per_second

    def test_interval_power_monotone(self, result):
        powers = [p.coordinator_power_w for p in result.interval_points]
        assert powers == sorted(powers)


class TestFig14:
    @pytest.fixture(scope="class")
    def result(self):
        return fig14_datasets.run(reads_per_dataset=120, seed=13)

    def test_all_datasets_covered(self, result):
        speedup_rows = [r for r in result.rows
                        if r["kind"] in ("short", "long")]
        assert len(speedup_rows) == 9

    def test_every_speedup_large(self, result):
        assert all(s > 10 for s in result.speedups.values())

    def test_long_reads_slower_than_short(self, result):
        """Fig 14(a): long-read speedups sit below short-read ones."""
        shorts = [s for n, s in result.speedups.items()
                  if not n.endswith("-long")]
        longs = [s for n, s in result.speedups.items()
                 if n.endswith("-long")]
        assert max(longs) < min(shorts)

    def test_interval_table_attached(self, result):
        assert len(result.interval_table) == 6


class TestEnergy:
    def test_paper_factors_reproduced(self):
        result = energy_comparison.run(reads=150)
        by_name = {r["baseline"]: r for r in result.rows}
        assert by_name["ASIC-GenAx"]["power_reduction"] == \
            pytest.approx(4.34, abs=0.05)
        assert by_name["PIM-GenCache"]["power_reduction"] == \
            pytest.approx(5.85, abs=0.05)
        assert by_name["CPU-BWA-MEM"]["power_reduction"] == \
            pytest.approx(14.21, abs=0.3)


class TestRunner:
    def test_registry_covers_all_exhibits(self):
        assert set(EXPERIMENTS) == {
            "fig02", "fig03", "fig05", "fig07", "fig08", "fig09", "fig11",
            "fig12", "fig13", "fig14", "table1", "table2", "table3",
            "energy"}

    def test_run_selected(self):
        results = run_experiments(["fig07", "table2"], quick=True)
        assert [r.exhibit for r in results] == ["Figure 7", "Table II"]

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiments(["fig99"])
