"""Report-card tests (exact criteria only — shape criteria run in the
benchmark suite at full scale)."""

from repro.experiments.report_card import Criterion, _exact_criteria, \
    format_card


class TestExactCriteria:
    def test_all_exact_criteria_pass(self):
        criteria = _exact_criteria()
        failing = [c for c in criteria if not c.passed]
        assert not failing, [f"{c.exhibit}: {c.name} ({c.detail})"
                             for c in failing]

    def test_covers_the_deterministic_exhibits(self):
        exhibits = {c.exhibit for c in _exact_criteria()}
        assert {"Fig 7", "Fig 9", "Eq 5", "Table II", "Energy",
                "Fig 5"} <= exhibits


class TestFormatting:
    def test_format_card(self):
        criteria = [Criterion("X", "works", True),
                    Criterion("Y", "broken", False, "detail")]
        text = format_card(criteria)
        assert "[PASS] X: works" in text
        assert "[FAIL] Y: broken" in text
        assert "1/2 criteria pass" in text
