"""Scatter/gather merge rule: mapped desc, score desc, shard asc."""

import pytest

from repro.cluster.merge import (
    MergeError,
    gather_complete,
    merge_align_payloads,
    merge_stats_payloads,
)


def payload(mapped, score, tag):
    return {"mapped": mapped, "score": score, "sam": [tag]}


def test_mapped_beats_unmapped_regardless_of_score():
    merged = merge_align_payloads([
        (0, payload(False, 99.0, "unmapped")),
        (1, payload(True, 1.0, "mapped")),
    ])
    assert merged["sam"] == ["mapped"]
    assert merged["shard"] == 1


def test_higher_score_wins():
    merged = merge_align_payloads([
        (0, payload(True, 40.0, "low")),
        (1, payload(True, 75.0, "high")),
        (2, payload(True, 60.0, "mid")),
    ])
    assert merged["sam"] == ["high"] and merged["shard"] == 1


def test_score_tie_breaks_to_lowest_shard():
    candidates = [
        (2, payload(True, 50.0, "shard2")),
        (1, payload(True, 50.0, "shard1")),
    ]
    merged = merge_align_payloads(candidates)
    assert merged["shard"] == 1
    # Order of arrival must not matter.
    assert merge_align_payloads(list(reversed(candidates))) == merged


def test_missing_score_sorts_below_any_present_score():
    merged = merge_align_payloads([
        (0, {"mapped": True, "sam": ["scoreless"]}),
        (1, payload(True, 0.0, "scored")),
    ])
    assert merged["sam"] == ["scored"]


def test_winner_passes_through_verbatim():
    rich = {"mapped": True, "score": 9.0, "sam": ["line"],
            "pair": {"proper": True}}
    merged = merge_align_payloads([(0, rich), (1, payload(False, None,
                                                          "no"))])
    assert merged["pair"] == {"proper": True}
    assert merged["shard"] == 0
    # The input payload is not mutated.
    assert "shard" not in rich


def test_merge_rejects_empty_and_duplicate_shards():
    with pytest.raises(MergeError):
        merge_align_payloads([])
    with pytest.raises(MergeError):
        merge_align_payloads([(0, payload(True, 1, "a")),
                              (0, payload(True, 2, "b"))])


def test_gather_complete():
    got = [(0, {}), (2, {})]
    assert gather_complete(got, 3) == [1]
    assert gather_complete(got, 2) == [1]
    assert gather_complete([(0, {}), (1, {})], 2) == []


def test_merge_stats_sums_numeric_scalars_only():
    merged = merge_stats_payloads({
        "s0r0": {"requests": 10, "uptime_s": 1.5, "ok": True,
                 "name": "a", "nested": {"x": 1}},
        "s0r1": {"requests": 5, "uptime_s": 2.5, "ok": False},
    }, gateway={"requests": 3})
    assert merged["cluster"] == {"requests": 15, "uptime_s": 4.0}
    assert set(merged["backends"]) == {"s0r0", "s0r1"}
    assert merged["gateway"] == {"requests": 3}
