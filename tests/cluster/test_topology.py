"""Topology shape, chromosome bin-packing, and shard references."""

import pytest

from repro.cluster.topology import (
    ClusterTopology,
    shard_assignment,
    shard_for_chromosome,
    shard_reference,
)


def test_topology_generates_backend_specs():
    topo = ClusterTopology(shards=2, replicas=2)
    assert [spec.backend_id for spec in topo.backends] == \
        ["s0r0", "s0r1", "s1r0", "s1r1"]
    assert topo.sharded
    assert [s.backend_id for s in topo.shard_group(1)] == ["s1r0", "s1r1"]
    assert topo.backend("s0r1").replica == 1
    with pytest.raises(IndexError):
        topo.shard_group(2)
    with pytest.raises(KeyError):
        topo.backend("nope")


def test_topology_validation():
    with pytest.raises(ValueError):
        ClusterTopology(shards=0)
    with pytest.raises(ValueError):
        ClusterTopology(replicas=0)
    assert not ClusterTopology(shards=1, replicas=3).sharded


def test_with_endpoints_preserves_shape():
    topo = ClusterTopology(shards=1, replicas=2)
    bound = topo.with_endpoints({"s0r0": "127.0.0.1:1", "s0r1": "u:2"})
    assert bound.backend("s0r0").endpoint == "127.0.0.1:1"
    assert bound.backend("s0r1").endpoint == "u:2"
    # Original is untouched (frozen dataclasses all the way down).
    assert topo.backend("s0r0").endpoint == ""
    desc = bound.describe()
    assert desc["shards"] == 1 and len(desc["backends"]) == 2


def test_shard_assignment_covers_and_balances(cluster_reference):
    buckets = shard_assignment(cluster_reference, 2)
    names = sorted(n for bucket in buckets for n in bucket)
    assert names == sorted(c.name for c in cluster_reference.chromosomes)
    assert all(bucket for bucket in buckets)
    # Greedy longest-first keeps the split within 2x of even here.
    sizes = [sum(len(cluster_reference.chromosome(n)) for n in bucket)
             for bucket in buckets]
    assert max(sizes) <= 2 * min(sizes)


def test_shard_assignment_is_deterministic(cluster_reference):
    first = shard_assignment(cluster_reference, 3)
    assert all(shard_assignment(cluster_reference, 3) == first
               for _ in range(3))


def test_shard_assignment_rejects_too_many_shards(cluster_reference):
    with pytest.raises(ValueError):
        shard_assignment(cluster_reference,
                         len(cluster_reference.chromosomes) + 1)
    with pytest.raises(ValueError):
        shard_assignment(cluster_reference, 0)


def test_shard_reference_preserves_names_and_sequences(cluster_reference):
    for shard in range(2):
        sub = shard_reference(cluster_reference, 2, shard)
        for chrom in sub.chromosomes:
            original = cluster_reference.chromosome(chrom.name)
            assert chrom.sequence == original.sequence
            assert shard_for_chromosome(cluster_reference, 2,
                                        chrom.name) == shard
    with pytest.raises(KeyError):
        shard_for_chromosome(cluster_reference, 2, "chrX")
