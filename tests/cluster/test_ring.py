"""Consistent-hash ring: determinism, balance, minimal remap."""

import hashlib

import pytest

from repro.cluster.ring import DEFAULT_VNODES, HashRing, stable_hash

KEYS = [f"read_{i}" for i in range(400)]


def test_stable_hash_is_sha256_derived_not_process_salted():
    digest = hashlib.sha256(b"read_0").digest()
    expected = int.from_bytes(digest[:8], "big")
    assert stable_hash("read_0") == expected
    # Re-deriving gives the same answer (unlike builtin hash() across
    # interpreter runs).
    assert stable_hash("read_0") == stable_hash("read_0")


def test_route_is_deterministic_across_instances():
    a = HashRing(["s0r0", "s0r1", "s0r2"])
    b = HashRing(["s0r2", "s0r0", "s0r1"])  # insertion order irrelevant
    assert [a.route(k) for k in KEYS] == [b.route(k) for k in KEYS]


def test_vnodes_validation_and_empty_ring():
    with pytest.raises(ValueError):
        HashRing(vnodes=0)
    ring = HashRing()
    with pytest.raises(LookupError):
        ring.route("x")
    with pytest.raises(LookupError):
        ring.preference("x")


def test_membership_edits():
    ring = HashRing(["a", "b"])
    assert len(ring) == 2 and "a" in ring
    with pytest.raises(ValueError):
        ring.add("a")
    with pytest.raises(KeyError):
        ring.remove("zzz")
    ring.remove("a")
    assert ring.members == ["b"]
    assert all(ring.route(k) == "b" for k in KEYS[:20])


def test_preference_is_distinct_and_starts_at_route():
    ring = HashRing(["a", "b", "c", "d"])
    for key in KEYS[:50]:
        order = ring.preference(key)
        assert order[0] == ring.route(key)
        assert sorted(order) == ["a", "b", "c", "d"]  # all, no dups
    assert len(ring.preference(KEYS[0], count=2)) == 2


def test_removal_remaps_only_the_removed_members_keys():
    ring = HashRing(["a", "b", "c", "d"])
    before = {k: ring.route(k) for k in KEYS}
    ring.remove("b")
    after = {k: ring.route(k) for k in KEYS}
    moved = [k for k in KEYS if before[k] != after[k]]
    # Exactly the keys "b" owned moved; everyone else stayed put.
    assert moved == [k for k in KEYS if before[k] == "b"]
    # And the displaced keys follow the documented failover order: the
    # next distinct member clockwise.
    ring_all = HashRing(["a", "b", "c", "d"])
    for key in moved:
        assert after[key] == ring_all.preference(key)[1]


def test_re_adding_restores_original_routing():
    ring = HashRing(["a", "b", "c"])
    before = {k: ring.route(k) for k in KEYS}
    ring.remove("c")
    ring.add("c")
    assert {k: ring.route(k) for k in KEYS} == before


def test_spread_is_roughly_even():
    ring = HashRing(["a", "b", "c", "d"], vnodes=DEFAULT_VNODES)
    counts = ring.spread(KEYS)
    assert sum(counts.values()) == len(KEYS)
    # 400 keys over 4 members: each should land within a loose band of
    # the 100-key ideal (vnode placement keeps skew small, not zero).
    for member, count in counts.items():
        assert 40 <= count <= 180, (member, counts)
