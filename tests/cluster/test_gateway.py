"""Gateway behavior against in-process backends: routing, failover,
health-driven membership, hedging, scatter/gather, idempotency."""

import asyncio
import contextlib
import time

from repro.cluster.gateway import ClusterGateway, GatewayConfig
from repro.cluster.ring import HashRing
from repro.cluster.topology import ClusterTopology, shard_reference
from repro.service.client import AsyncServiceClient
from repro.service.engine import AlignmentEngine
from repro.service.server import AlignmentServer, ServerConfig
from tests.cluster.helpers import async_wait_until
from tests.service.helpers import run


class SlowEngine:
    """Delays every batch so hedging races are deterministic."""

    def __init__(self, inner, delay_s):
        self.inner = inner
        self.delay_s = delay_s

    def execute(self, requests):
        time.sleep(self.delay_s)
        return self.inner.execute(requests)


@contextlib.asynccontextmanager
async def cluster(reference, shards=1, replicas=2, engine_factories=None,
                  **gateway_overrides):
    """Backends as in-process AlignmentServers + a started gateway +
    a client connected to the gateway's front door."""
    topo = ClusterTopology(shards=shards, replicas=replicas)
    servers = {}
    for spec in topo.backends:
        ref = (reference if shards == 1
               else shard_reference(reference, shards, spec.shard))
        factory = (engine_factories or {}).get(spec.backend_id)
        server = AlignmentServer(
            ref, config=ServerConfig(port=0, stats_interval_s=0.0,
                                     workers=1),
            engine_factory=factory)
        await server.start()
        servers[spec.backend_id] = server
    topo = topo.with_endpoints({bid: f"127.0.0.1:{server.port}"
                                for bid, server in servers.items()})
    overrides = {"port": 0, "health_interval_s": 0.0,
                 "hedge_delay_ms": 0.0}
    overrides.update(gateway_overrides)
    gateway = ClusterGateway(topo, config=GatewayConfig(**overrides))
    await gateway.start()
    client = await AsyncServiceClient.connect("127.0.0.1", gateway.port)
    try:
        yield gateway, servers, client
    finally:
        await client.close()
        await gateway.shutdown()
        for server in servers.values():
            await server.shutdown(drain=True)


def counters(gateway):
    return gateway.metrics.snapshot()["counters"]


def gauges(gateway):
    return gateway.metrics.snapshot()["gauges"]


async def single_server_sam(reference, reads):
    """What one full-reference server answers — the cluster's truth."""
    server = AlignmentServer(reference, config=ServerConfig(
        port=0, stats_interval_s=0.0, workers=1))
    await server.start()
    client = await AsyncServiceClient.connect("127.0.0.1", server.port)
    try:
        return {read.read_id: (await client.align(read))["sam"]
                for read in reads}
    finally:
        await client.close()
        await server.shutdown(drain=True)


def test_replicated_routing_and_protocol(cluster_reference, cluster_reads):
    async def scenario():
        truth = await single_server_sam(cluster_reference, cluster_reads)
        async with cluster(cluster_reference, replicas=2) as \
                (gateway, servers, client):
            assert await client.ping()
            for read in cluster_reads:
                assert (await client.align(read))["sam"] == \
                    truth[read.read_id]
            snap = counters(gateway)
            assert snap["responses_total"] == len(cluster_reads)
            # Consistent hashing spread work over both replicas.
            assert snap["backend_s0r0_requests_total"] > 0
            assert snap["backend_s0r1_requests_total"] > 0
            stats = await client.stats()
            assert stats["topology"]["replicas"] == 2
            assert set(stats["backends"]) == {"s0r0", "s0r1"}
            assert "cluster_metrics" in stats
            # Malformed line → bad_request error, connection stays up.
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", gateway.port)
            writer.write(b"not json\n")
            await writer.drain()
            assert '"bad_request"' in (await reader.readline()).decode()
            writer.close()
    run(scenario())


def test_failover_when_backend_dies(cluster_reference, cluster_reads):
    async def scenario():
        truth = await single_server_sam(cluster_reference, cluster_reads)
        async with cluster(cluster_reference, replicas=2) as \
                (gateway, servers, client):
            ring = HashRing(["s0r0", "s0r1"])
            # Kill whichever replica is primary for the first read; the
            # gateway must fail the call over to the survivor.
            victim = ring.route(cluster_reads[0].read_id)
            await servers[victim].shutdown(drain=False)
            for read in cluster_reads:
                assert (await client.align(read))["sam"] == \
                    truth[read.read_id]
            snap = counters(gateway)
            assert snap["failovers_total"] > 0
            assert snap["responses_total"] == len(cluster_reads)
    run(scenario())


def test_health_loop_ejects_and_readmits(cluster_reference, cluster_reads):
    async def scenario():
        async with cluster(cluster_reference, replicas=2,
                           health_interval_s=0.05, health_timeout_s=0.5,
                           health_failures=2, health_successes=2) as \
                (gateway, servers, client):
            port = servers["s0r1"].port
            await servers["s0r1"].shutdown(drain=False)

            async def wait_healthy(value):
                await async_wait_until(
                    lambda: gauges(gateway)["backend_s0r1_healthy"]
                    == value,
                    message=lambda: (f"s0r1 never became healthy="
                                     f"{value}: {gauges(gateway)}"))

            await wait_healthy(0)
            assert counters(gateway)["backend_ejects_total"] == 1
            # Every request now routes to the survivor.
            for read in cluster_reads[:4]:
                assert "sam" in await client.align(read)
            # Revive the backend on its old endpoint → readmitted.
            servers["s0r1"] = AlignmentServer(
                cluster_reference, config=ServerConfig(
                    port=port, stats_interval_s=0.0, workers=1))
            await servers["s0r1"].start()
            await wait_healthy(1)
            assert counters(gateway)["backend_readmits_total"] == 1
    run(scenario())


def test_hedge_wins_and_loser_is_not_double_counted(
        cluster_reference, cluster_reads):
    async def scenario():
        read = cluster_reads[0]
        primary = HashRing(["s0r0", "s0r1"]).route(read.read_id)
        slow = {primary: (lambda: SlowEngine(
            AlignmentEngine(cluster_reference), 1.0))}
        async with cluster(cluster_reference, replicas=2,
                           engine_factories=slow,
                           hedge_delay_ms=50.0) as \
                (gateway, servers, client):
            started = time.monotonic()
            response = await client.align(read, idempotency_key="k1")
            elapsed = time.monotonic() - started
            assert "sam" in response
            # The hedge answered well before the slow primary could.
            assert elapsed < 0.9
            snap = counters(gateway)
            assert snap["hedges_total"] == 1
            assert snap["hedge_wins_total"] == 1
            assert snap["responses_total"] == 1
            assert snap[f"backend_{primary}_requests_total"] == 1
            # Wait past the slow engine's delay: the cancelled loser
            # must not surface as a second response or idempotent hit.
            await asyncio.sleep(1.2)
            snap = counters(gateway)
            assert snap["responses_total"] == 1
            assert snap.get("idempotent_hits_total", 0) == 0
            # A client retry with the same key hits the gateway's
            # cache and returns the identical payload.
            again = await client.align(read, idempotency_key="k1")
            assert again["sam"] == response["sam"]
            assert counters(gateway)["idempotent_hits_total"] == 1
    run(scenario())


def test_sharded_scatter_gather_matches_single_server(
        cluster_reference, cluster_reads):
    async def scenario():
        truth = await single_server_sam(cluster_reference, cluster_reads)
        async with cluster(cluster_reference, shards=2, replicas=1) as \
                (gateway, servers, client):
            for read in cluster_reads:
                assert (await client.align(read))["sam"] == \
                    truth[read.read_id]
            snap = counters(gateway)
            assert snap["scatters_total"] == len(cluster_reads)
            assert snap["backend_s0r0_requests_total"] == \
                len(cluster_reads)
            assert snap["backend_s1r0_requests_total"] == \
                len(cluster_reads)
    run(scenario())


def test_request_ids_do_not_collide_across_connections(
        cluster_reference, cluster_reads):
    """Regression: backend idempotency keys derived from (session,
    request_id) alone replayed one connection's responses to another,
    cross-wiring SAM records between clients."""
    async def scenario():
        async with cluster(cluster_reference, replicas=2) as \
                (gateway, servers, client):
            await client.align(cluster_reads[0])  # request id 1 here
            other = await AsyncServiceClient.connect(
                "127.0.0.1", gateway.port)
            try:
                # First request on a fresh connection reuses id 1; it
                # must get ITS read's alignment, not a cached replay.
                response = await other.align(cluster_reads[1])
            finally:
                await other.close()
            assert response["sam"][0].split("\t")[0] == \
                cluster_reads[1].read_id
    run(scenario())


def test_gateway_pair_alignment(cluster_reference):
    from repro.genome.pairs import PairedReadSimulator

    pairs = PairedReadSimulator(cluster_reference, read_length=80,
                                seed=9).simulate(3)

    async def scenario():
        async with cluster(cluster_reference, replicas=2) as \
                (gateway, servers, client):
            for pair in pairs:
                response = await client.align_pair(pair.mate1, pair.mate2)
                assert len(response["sam"]) == 2
            assert counters(gateway)["pair_requests_total"] == len(pairs)
    run(scenario())


def test_reconcile_adopts_new_endpoint_and_readmits(
        cluster_reference, cluster_reads):
    """A restarted backend on a fresh port rejoins its ring the moment
    reconciliation's probe answers — no health-loop convalescence."""
    async def scenario():
        async with cluster(cluster_reference, replicas=2) as \
                (gateway, servers, client):
            await servers["s0r1"].shutdown(drain=False)
            # Respawn "the replica" on a brand-new port.
            servers["s0r1"] = AlignmentServer(
                cluster_reference, config=ServerConfig(
                    port=0, stats_interval_s=0.0, workers=1))
            await servers["s0r1"].start()
            endpoint = f"127.0.0.1:{servers['s0r1'].port}"
            assert await gateway.reconcile_backend("s0r1", endpoint)
            handle = gateway.handles["s0r1"]
            assert handle.endpoint == endpoint
            assert handle.healthy and not handle.retired
            assert "s0r1" in gateway._rings[0]
            snap = counters(gateway)
            assert snap["backend_restarts_total"] == 1
            assert snap["backend_reconciles_total"] == 1
            for read in cluster_reads[:6]:
                assert "sam" in await client.align(read)
    run(scenario())


def test_reconcile_onto_dead_endpoint_ejects_until_it_answers(
        cluster_reference, cluster_reads):
    async def scenario():
        async with cluster(cluster_reference, replicas=2,
                           connect_timeout_s=0.5) as \
                (gateway, servers, client):
            port = servers["s0r1"].port
            await servers["s0r1"].shutdown(drain=False)
            # The supervisor claims a restart but the probe misses
            # (nothing listens there): the backend must leave the ring
            # rather than take live traffic.
            assert not await gateway.reconcile_backend(
                "s0r1", f"127.0.0.1:{port}")
            assert not gateway.handles["s0r1"].healthy
            assert "s0r1" not in gateway._rings[0]
            assert counters(gateway).get("backend_reconciles_total",
                                         0) == 0
            # Traffic keeps flowing on the survivor meanwhile.
            for read in cluster_reads[:4]:
                assert "sam" in await client.align(read)
    run(scenario())


def test_retired_backend_is_never_a_candidate(cluster_reference,
                                              cluster_reads):
    """Crash-loop retirement: permanent, alert-counted, and the gateway
    keeps serving on the survivors without wedging."""
    async def scenario():
        async with cluster(cluster_reference, replicas=2) as \
                (gateway, servers, client):
            gateway.retire_backend("s0r1", "crash loop (test)")
            handle = gateway.handles["s0r1"]
            assert handle.retired and not handle.healthy
            assert "s0r1" not in gateway._rings[0]
            snap = counters(gateway)
            assert snap["backend_crash_loop_ejects_total"] == 1
            # Retirement is sticky: a later restart event must not
            # resurrect the backend.
            assert not await gateway.reconcile_backend(
                "s0r1", f"127.0.0.1:{servers['s0r1'].port}")
            assert "s0r1" not in gateway._rings[0]
            for read in cluster_reads:
                assert "sam" in await client.align(read)
            assert counters(gateway).get("backend_s0r1_requests_total",
                                         0) == 0
            stats = await client.stats()
            assert stats["backends"]["s0r1"]["retired"] is True
    run(scenario())


def test_hedge_loser_cancellation_races_backend_restart(
        cluster_reference, cluster_reads):
    """Regression: a hedged request's slow loser is cancelled while the
    losing backend is torn down and reconciled onto a new endpoint.
    The loser must neither double-count a response nor write to the
    dead process's connection."""
    async def scenario():
        read = cluster_reads[0]
        primary = HashRing(["s0r0", "s0r1"]).route(read.read_id)
        slow = {primary: (lambda: SlowEngine(
            AlignmentEngine(cluster_reference), 1.0))}
        async with cluster(cluster_reference, replicas=2,
                           engine_factories=slow,
                           hedge_delay_ms=50.0) as \
                (gateway, servers, client):
            response = await client.align(read, idempotency_key="race")
            assert "sam" in response
            assert counters(gateway)["hedge_wins_total"] == 1
            # The loser's batch is still cooking inside the slow
            # engine.  Kill that backend and reconcile onto a fresh
            # replacement while the cancelled call unwinds.
            await servers[primary].shutdown(drain=False)
            servers[primary] = AlignmentServer(
                cluster_reference, config=ServerConfig(
                    port=0, stats_interval_s=0.0, workers=1))
            await servers[primary].start()
            assert await gateway.reconcile_backend(
                primary, f"127.0.0.1:{servers[primary].port}")
            # Wait past the slow engine's delay: the loser must not
            # surface anywhere.
            await asyncio.sleep(1.2)
            snap = counters(gateway)
            assert snap["responses_total"] == 1
            assert snap.get("idempotent_hits_total", 0) == 0
            # The restarted backend serves new traffic, and the cached
            # idempotent response is intact.
            for r in cluster_reads[:4]:
                assert "sam" in await client.align(r)
            again = await client.align(read, idempotency_key="race")
            assert again["sam"] == response["sam"]
            assert counters(gateway)["idempotent_hits_total"] == 1
    run(scenario())


def test_gateway_config_validation():
    import pytest

    with pytest.raises(ValueError):
        GatewayConfig(hedge_delay_ms=-1)
    with pytest.raises(ValueError):
        GatewayConfig(hedge_max=-1)
    with pytest.raises(ValueError):
        GatewayConfig(health_failures=0)
    with pytest.raises(ValueError):
        GatewayConfig(shard_concurrency=0)
    with pytest.raises(ValueError):
        GatewayConfig(queue_depth=-1)
    with pytest.raises(ValueError):
        GatewayConfig(default_budget_ms=-1.0)
