"""AdmissionQueue semantics + the gateway's typed shedding behavior.

The unit half drives the queue directly on one event loop (its
documented concurrency model); the integration half pushes real
requests through a gateway whose shard has one slot and a tiny queue,
and asserts the two shed flavors stay distinct on the wire:
``overloaded`` (queue full) vs ``queue_timeout`` (budget spent).
"""

import asyncio
import time

import pytest

from repro.cluster.gateway import (
    AdmissionQueue,
    QueueFullShed,
    QueueTimeoutShed,
)
from repro.service.client import ServiceError
from repro.service.engine import AlignmentEngine
from repro.service.metrics import MetricsRegistry
from repro.service.protocol import ERR_OVERLOADED, ERR_QUEUE_TIMEOUT
from tests.cluster.test_gateway import SlowEngine, cluster, counters
from tests.service.helpers import run


def make_queue(concurrency=1, depth=4):
    return AdmissionQueue(0, concurrency, depth, MetricsRegistry())


class TestAdmissionQueueUnit:
    def test_admits_up_to_concurrency_then_queues(self):
        async def scenario():
            queue = make_queue(concurrency=2)
            await queue.acquire(None)
            await queue.acquire(None)
            assert queue.in_flight == 2
            waiter = asyncio.ensure_future(queue.acquire(None))
            await asyncio.sleep(0)
            assert not waiter.done()
            assert queue.as_dict()["depth"] == 1
            queue.release()
            await waiter  # the freed slot went to the waiter
            assert queue.in_flight == 2
            queue.release()
            queue.release()
            assert queue.in_flight == 0
        run(scenario())

    def test_queue_full_sheds_immediately(self):
        async def scenario():
            queue = make_queue(concurrency=1, depth=1)
            await queue.acquire(None)
            waiter = asyncio.ensure_future(queue.acquire(None))
            await asyncio.sleep(0)
            with pytest.raises(QueueFullShed):
                await queue.acquire(None)
            queue.release()
            await waiter
            queue.release()
        run(scenario())

    def test_depth_zero_never_queues(self):
        async def scenario():
            queue = make_queue(concurrency=1, depth=0)
            await queue.acquire(None)
            with pytest.raises(QueueFullShed):
                await queue.acquire(None)
            queue.release()
        run(scenario())

    def test_spent_budget_sheds_before_admission(self):
        async def scenario():
            queue = make_queue()
            with pytest.raises(QueueTimeoutShed):
                await queue.acquire(time.monotonic() - 0.01)
            assert queue.in_flight == 0
        run(scenario())

    def test_budget_expires_while_waiting(self):
        async def scenario():
            queue = make_queue(concurrency=1)
            await queue.acquire(None)
            started = time.monotonic()
            with pytest.raises(QueueTimeoutShed):
                await queue.acquire(time.monotonic() + 0.05)
            assert time.monotonic() - started < 1.0
            # The dead waiter left no residue: a release hands the slot
            # to nobody and the queue is reusable.
            queue.release()
            assert queue.in_flight == 0
            await queue.acquire(None)
            queue.release()
        run(scenario())

    def test_deadline_aware_dequeue_skips_expired_waiter(self):
        async def scenario():
            queue = make_queue(concurrency=1)
            await queue.acquire(None)
            expired = asyncio.ensure_future(
                queue.acquire(time.monotonic() + 0.05))
            live = asyncio.ensure_future(queue.acquire(None))
            await asyncio.sleep(0)
            assert queue.as_dict()["depth"] == 2
            # Block the loop past the first waiter's deadline WITHOUT
            # yielding, so its wait_for timer cannot fire first — the
            # release() below must be the one to notice it expired.
            time.sleep(0.08)
            queue.release()
            with pytest.raises(QueueTimeoutShed):
                await expired
            await live  # the slot skipped the corpse
            assert queue.in_flight == 1
            queue.release()
        run(scenario())

    def test_cancelled_waiter_is_skipped_on_release(self):
        async def scenario():
            queue = make_queue(concurrency=1)
            await queue.acquire(None)
            cancelled = asyncio.ensure_future(queue.acquire(None))
            live = asyncio.ensure_future(queue.acquire(None))
            await asyncio.sleep(0)
            cancelled.cancel()
            with pytest.raises(asyncio.CancelledError):
                await cancelled
            queue.release()
            await live
            assert queue.in_flight == 1
            queue.release()
            assert queue.in_flight == 0
        run(scenario())

    def test_peak_depth_gauge_tracks_high_water_mark(self):
        async def scenario():
            queue = make_queue(concurrency=1, depth=8)
            await queue.acquire(None)
            waiters = [asyncio.ensure_future(queue.acquire(None))
                       for _ in range(3)]
            await asyncio.sleep(0)
            snap = queue.metrics.snapshot()["gauges"]
            assert snap["shard0_queue_depth"] == 3
            assert snap["shard0_queue_depth_peak"] == 3
            for _ in range(3):
                queue.release()
            await asyncio.gather(*waiters)
            snap = queue.metrics.snapshot()["gauges"]
            assert snap["shard0_queue_depth"] == 0
            assert snap["shard0_queue_depth_peak"] == 3
        run(scenario())


class TestGatewayShedding:
    def test_budget_expiry_sheds_queue_timeout(self, cluster_reference,
                                               cluster_reads):
        """A queued request whose budget runs out gets the *typed*
        ``queue_timeout`` error, not a generic busy/timeout."""
        slow = {bid: (lambda: SlowEngine(
            AlignmentEngine(cluster_reference), 0.5))
            for bid in ("s0r0", "s0r1")}

        async def scenario():
            async with cluster(cluster_reference, replicas=2,
                               engine_factories=slow,
                               shard_concurrency=1,
                               queue_depth=4) as \
                    (gateway, servers, client):
                from repro.service.client import AsyncServiceClient
                other = await AsyncServiceClient.connect(
                    "127.0.0.1", gateway.port)
                try:
                    # Occupy the single slot with a slow request, then
                    # queue one carrying a budget far below the slot
                    # holder's service time.
                    holder = asyncio.ensure_future(
                        client.align(cluster_reads[0]))
                    await asyncio.sleep(0.05)
                    with pytest.raises(ServiceError) as err:
                        await other.align(cluster_reads[1],
                                          budget_ms=100.0)
                    assert err.value.code == ERR_QUEUE_TIMEOUT
                    assert "sam" in await holder
                finally:
                    await other.close()
                snap = counters(gateway)
                assert snap["shed_queue_timeout_total"] == 1
                assert snap.get("shed_queue_full_total", 0) == 0
        run(scenario())

    def test_queue_full_sheds_overloaded(self, cluster_reference,
                                         cluster_reads):
        slow = {bid: (lambda: SlowEngine(
            AlignmentEngine(cluster_reference), 0.5))
            for bid in ("s0r0", "s0r1")}

        async def scenario():
            async with cluster(cluster_reference, replicas=2,
                               engine_factories=slow,
                               shard_concurrency=1,
                               queue_depth=0) as \
                    (gateway, servers, client):
                from repro.service.client import AsyncServiceClient
                other = await AsyncServiceClient.connect(
                    "127.0.0.1", gateway.port)
                try:
                    holder = asyncio.ensure_future(
                        client.align(cluster_reads[0]))
                    await asyncio.sleep(0.05)
                    with pytest.raises(ServiceError) as err:
                        await other.align(cluster_reads[1])
                    assert err.value.code == ERR_OVERLOADED
                    assert "sam" in await holder
                finally:
                    await other.close()
                assert counters(gateway)["shed_queue_full_total"] == 1
        run(scenario())

    def test_default_budget_applies_when_request_carries_none(
            self, cluster_reference, cluster_reads):
        slow = {bid: (lambda: SlowEngine(
            AlignmentEngine(cluster_reference), 0.5))
            for bid in ("s0r0", "s0r1")}

        async def scenario():
            async with cluster(cluster_reference, replicas=2,
                               engine_factories=slow,
                               shard_concurrency=1, queue_depth=4,
                               default_budget_ms=100.0) as \
                    (gateway, servers, client):
                from repro.service.client import AsyncServiceClient
                other = await AsyncServiceClient.connect(
                    "127.0.0.1", gateway.port)
                try:
                    # The holder's explicit budget overrides the
                    # default; the queued request carries none, so the
                    # gateway's default budget governs it.
                    holder = asyncio.ensure_future(
                        client.align(cluster_reads[0],
                                     budget_ms=10_000.0))
                    await asyncio.sleep(0.05)
                    with pytest.raises(ServiceError) as err:
                        await other.align(cluster_reads[1])  # no budget
                    assert err.value.code == ERR_QUEUE_TIMEOUT
                    assert "sam" in await holder
                finally:
                    await other.close()
        run(scenario())
