"""Shared fixtures for the cluster tests: a small reference + reads."""

import pytest

from repro.genome.reads import ErrorModel, ReadSimulator
from repro.genome.reference import SyntheticReference


@pytest.fixture(scope="session")
def cluster_reference():
    """Four chromosomes so sharded topologies have something to split;
    no repeat families so every read has one unambiguous home."""
    return SyntheticReference(length=24_000, chromosomes=4, seed=11,
                              repeat_families=[]).build()


@pytest.fixture(scope="session")
def cluster_reads(cluster_reference):
    error = ErrorModel(substitution_rate=0.002, insertion_rate=0.0002,
                       deletion_rate=0.0002)
    return ReadSimulator(cluster_reference, read_length=80,
                         error_model=error, seed=7).simulate(16)
