"""The chaos harness's cluster invariants, end to end.

This is the run CI's chaos cluster smoke gates on: a replicated gateway
cluster under load with plan-scheduled backend SIGKILLs, the supervisor
monitor restarting every victim with the gateway readmitting it (no
manual readmission anywhere), zero lost responses with byte-identical
SAM, and graceful typed-shed degradation under open-loop overload.
"""

import pytest

from repro.faults.chaos import run_chaos

pytestmark = [pytest.mark.integration, pytest.mark.slow]


@pytest.fixture(scope="module")
def cluster_chaos_report():
    return run_chaos(plan_name="cluster-restart", seed=7, requests=24,
                     parallelism=1, cluster_backends=2)


def _invariant(report, name):
    return {inv.name: inv for inv in report.invariants}[name]


def test_backend_kill_zero_loss(cluster_chaos_report):
    report = cluster_chaos_report
    invariant = _invariant(report, "backend_kill_zero_loss")
    assert invariant.ok, invariant.detail
    cluster = report.chaos["cluster"]
    assert cluster["completed"] == 24
    assert cluster["dropped"] == 0 and cluster["errors"] == 0
    # The plan scheduled kills and they landed mid-load.
    assert cluster["kills"], "cluster-restart plan must kill backends"
    assert all(0 < kill["responses_at_kill"] < 24
               for kill in cluster["kills"])


def test_backend_restart_zero_loss(cluster_chaos_report):
    report = cluster_chaos_report
    invariant = _invariant(report, "backend_restart_zero_loss")
    assert invariant.ok, invariant.detail
    cluster = report.chaos["cluster"]
    # The supervisor restarted every victim; nothing was ejected.
    victims = {kill["backend"] for kill in cluster["kills"]}
    for victim in victims:
        state = cluster["supervisor"][victim]
        assert state["restarts"] >= 1
        assert state["alive"] and not state["ejected"]
    # Recovery was gateway-reconciliation driven, and observable.
    assert cluster["backend_restarts"] >= len(victims)
    assert cluster["backend_reconciles"] >= len(victims)


def test_overload_graceful_degradation(cluster_chaos_report):
    report = cluster_chaos_report
    invariant = _invariant(report, "overload_graceful_degradation")
    assert invariant.ok, invariant.detail
    overload = report.chaos["cluster"]["overload"]
    assert overload["dropped"] == 0
    # Everything that wasn't served was shed with a typed code.
    assert overload["completed"] + overload["shed"] == overload["requests"]


def test_plan_with_no_kills_still_gates_zero_loss():
    report = run_chaos(plan_name="none", seed=7, requests=12,
                       parallelism=1, cluster_backends=2)
    invariant = _invariant(report, "backend_kill_zero_loss")
    assert invariant.ok, invariant.detail
    assert "no backend_kill" in invariant.detail
    assert report.chaos["cluster"]["kills"] == []
    # No kills → no restart invariant to gate.
    names = {inv.name for inv in report.invariants}
    assert "backend_restart_zero_loss" not in names
    assert "overload_graceful_degradation" in names
