"""The chaos harness's backend-kill invariant, end to end.

This is the run CI's cluster-smoke gates on: a replicated gateway
cluster under load, one backend SIGKILLed mid-batch, and the invariant
that zero responses are lost and the SAM stream stays byte-identical to
the fault-free single-server baseline.
"""

import pytest

from repro.faults.chaos import run_chaos

pytestmark = [pytest.mark.integration, pytest.mark.slow]


def test_backend_kill_zero_loss():
    report = run_chaos(plan_name="none", seed=7, requests=24,
                       parallelism=1, cluster_backends=2)
    invariant = {inv.name: inv for inv in report.invariants}[
        "backend_kill_zero_loss"]
    assert invariant.ok, invariant.detail
    cluster = report.chaos["cluster"]
    assert cluster["completed"] == 24
    assert cluster["dropped"] == 0 and cluster["errors"] == 0
    # The kill landed mid-load, not after the run drained.
    assert 0 < cluster["responses_at_kill"] < 24
