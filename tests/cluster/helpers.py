"""Shared helpers for the cluster test suite.

``wait_until`` / ``async_wait_until`` replace ad-hoc ``time.sleep``
polling loops: they poll a predicate on a short interval under a hard
deadline and fail with a useful message instead of hanging a CI job or
passing by luck on a fast machine.
"""

import asyncio
import time
from typing import Any, Callable, Union


def _fail(message: Union[str, Callable[[], str]],
          timeout_s: float) -> None:
    text = message() if callable(message) else message
    raise AssertionError(
        text or f"condition not met within {timeout_s}s")


def wait_until(predicate: Callable[[], Any], timeout_s: float = 10.0,
               interval_s: float = 0.02,
               message: Union[str, Callable[[], str]] = "") -> Any:
    """Poll ``predicate`` until truthy; its value on success.

    ``message`` (a string, or a zero-arg callable evaluated at failure
    time so it can capture fresh state) becomes the AssertionError.
    """
    deadline = time.monotonic() + timeout_s
    while True:
        result = predicate()
        if result:
            return result
        if time.monotonic() >= deadline:
            _fail(message, timeout_s)
        time.sleep(interval_s)


async def async_wait_until(predicate: Callable[[], Any],
                           timeout_s: float = 10.0,
                           interval_s: float = 0.02,
                           message: Union[str, Callable[[], str]] = ""
                           ) -> Any:
    """:func:`wait_until` for coroutines — yields to the event loop
    between polls so the condition can actually make progress."""
    deadline = time.monotonic() + timeout_s
    while True:
        result = predicate()
        if result:
            return result
        if time.monotonic() >= deadline:
            _fail(message, timeout_s)
        await asyncio.sleep(interval_s)
