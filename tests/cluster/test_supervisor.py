"""Supervisor end-to-end: real backend processes, state file, SIGKILL."""

import asyncio
import os

import pytest

from repro.cluster import (
    ClusterGateway,
    ClusterSupervisor,
    GatewayConfig,
    SupervisorError,
    read_state,
)
from repro.genome.io import write_fasta
from tests.service.helpers import run

pytestmark = [pytest.mark.integration, pytest.mark.slow]


@pytest.fixture
def reference_path(cluster_reference, tmp_path):
    path = str(tmp_path / "ref.fa")
    write_fasta(cluster_reference, path)
    return path


def test_spawn_serve_state_and_drain(reference_path, tmp_path,
                                     cluster_reads):
    supervisor = ClusterSupervisor(
        reference_path=reference_path, workdir=str(tmp_path / "work"),
        shards=1, replicas=2, workers=1)
    with supervisor:
        topology = supervisor.start()
        assert len(supervisor.backends) == 2
        assert all(b.alive for b in supervisor.backends)
        assert all(spec.endpoint for spec in topology.backends)
        state = read_state(supervisor.state_path)
        assert {b["id"] for b in state["backends"]} == {"s0r0", "s0r1"}
        assert all(b["pid"] > 0 and b["endpoint"]
                   for b in state["backends"])

        async def scenario():
            gateway = ClusterGateway(topology, config=GatewayConfig(
                port=0, health_interval_s=0.0, hedge_delay_ms=0.0))
            await gateway.start()
            from repro.service.client import AsyncServiceClient
            client = await AsyncServiceClient.connect(
                "127.0.0.1", gateway.port)
            try:
                for read in cluster_reads[:4]:
                    assert "sam" in await client.align(read)
            finally:
                await client.close()
                await gateway.shutdown()
        run(scenario())

        # Logs captured per backend.
        for backend in supervisor.backends:
            assert os.path.exists(backend.log_path)
            with open(backend.log_path, encoding="utf-8") as handle:
                assert "serving on" in handle.read()
    # Context exit drained the fleet.
    assert supervisor.dead_backends() == ["s0r0", "s0r1"]


def test_kill_is_immediate_and_tracked(reference_path, tmp_path):
    supervisor = ClusterSupervisor(
        reference_path=reference_path, workdir=str(tmp_path / "work"),
        shards=1, replicas=2, workers=1)
    with supervisor:
        supervisor.start()
        supervisor.kill("s0r0")
        assert supervisor.dead_backends() == ["s0r0"]
        assert supervisor.backend("s0r1").alive
        with pytest.raises(KeyError):
            supervisor.backend("nope")


def test_sharded_supervisor_builds_per_shard_stores(reference_path,
                                                    tmp_path):
    workdir = str(tmp_path / "work")
    supervisor = ClusterSupervisor(
        reference_path=reference_path, workdir=workdir,
        shards=2, replicas=1, workers=1)
    with supervisor:
        supervisor.start()
        for shard in range(2):
            assert os.path.exists(os.path.join(workdir,
                                               f"shard{shard}.fa"))
            assert os.path.exists(os.path.join(workdir,
                                               f"shard{shard}.idx"))


def test_double_start_rejected(reference_path, tmp_path):
    supervisor = ClusterSupervisor(
        reference_path=reference_path, workdir=str(tmp_path / "work"),
        shards=1, replicas=1, workers=1)
    with supervisor:
        supervisor.start()
        with pytest.raises(SupervisorError):
            supervisor.start()
