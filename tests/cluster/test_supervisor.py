"""Supervisor end-to-end: real backend processes, state file, SIGKILL,
and the self-healing monitor loop (restart, backoff, crash-loop eject,
atomic state rewrites)."""

import json
import os
import threading
import time

import pytest

from repro.cluster import (
    ClusterGateway,
    ClusterSupervisor,
    GatewayConfig,
    RestartPolicy,
    SupervisorError,
    read_state,
)
from repro.genome.io import write_fasta
from tests.cluster.helpers import wait_until
from tests.service.helpers import run

pytestmark = [pytest.mark.integration, pytest.mark.slow]


@pytest.fixture
def reference_path(cluster_reference, tmp_path):
    path = str(tmp_path / "ref.fa")
    write_fasta(cluster_reference, path)
    return path


def test_spawn_serve_state_and_drain(reference_path, tmp_path,
                                     cluster_reads):
    supervisor = ClusterSupervisor(
        reference_path=reference_path, workdir=str(tmp_path / "work"),
        shards=1, replicas=2, workers=1)
    with supervisor:
        topology = supervisor.start()
        assert len(supervisor.backends) == 2
        assert all(b.alive for b in supervisor.backends)
        assert all(spec.endpoint for spec in topology.backends)
        state = read_state(supervisor.state_path)
        assert {b["id"] for b in state["backends"]} == {"s0r0", "s0r1"}
        assert all(b["pid"] > 0 and b["endpoint"]
                   for b in state["backends"])

        async def scenario():
            gateway = ClusterGateway(topology, config=GatewayConfig(
                port=0, health_interval_s=0.0, hedge_delay_ms=0.0))
            await gateway.start()
            from repro.service.client import AsyncServiceClient
            client = await AsyncServiceClient.connect(
                "127.0.0.1", gateway.port)
            try:
                for read in cluster_reads[:4]:
                    assert "sam" in await client.align(read)
            finally:
                await client.close()
                await gateway.shutdown()
        run(scenario())

        # Logs captured per backend.
        for backend in supervisor.backends:
            assert os.path.exists(backend.log_path)
            with open(backend.log_path, encoding="utf-8") as handle:
                assert "serving on" in handle.read()
    # Context exit drained the fleet.
    assert supervisor.dead_backends() == ["s0r0", "s0r1"]


def test_kill_is_immediate_and_tracked(reference_path, tmp_path):
    supervisor = ClusterSupervisor(
        reference_path=reference_path, workdir=str(tmp_path / "work"),
        shards=1, replicas=2, workers=1)
    with supervisor:
        supervisor.start()
        supervisor.kill("s0r0")
        assert supervisor.dead_backends() == ["s0r0"]
        assert supervisor.backend("s0r1").alive
        with pytest.raises(KeyError):
            supervisor.backend("nope")


def test_sharded_supervisor_builds_per_shard_stores(reference_path,
                                                    tmp_path):
    workdir = str(tmp_path / "work")
    supervisor = ClusterSupervisor(
        reference_path=reference_path, workdir=workdir,
        shards=2, replicas=1, workers=1)
    with supervisor:
        supervisor.start()
        for shard in range(2):
            assert os.path.exists(os.path.join(workdir,
                                               f"shard{shard}.fa"))
            assert os.path.exists(os.path.join(workdir,
                                               f"shard{shard}.idx"))


def test_double_start_rejected(reference_path, tmp_path):
    supervisor = ClusterSupervisor(
        reference_path=reference_path, workdir=str(tmp_path / "work"),
        shards=1, replicas=1, workers=1)
    with supervisor:
        supervisor.start()
        with pytest.raises(SupervisorError):
            supervisor.start()


def test_restart_policy_backoff_and_validation():
    policy = RestartPolicy(backoff_base_s=0.25, backoff_multiplier=2.0,
                           backoff_max_s=5.0)
    assert policy.delay_s(1) == 0.25
    assert policy.delay_s(2) == 0.5
    assert policy.delay_s(3) == 1.0
    assert policy.delay_s(100) == 5.0  # capped
    with pytest.raises(ValueError):
        RestartPolicy(backoff_base_s=0.0)
    with pytest.raises(ValueError):
        RestartPolicy(backoff_multiplier=0.5)
    with pytest.raises(ValueError):
        RestartPolicy(backoff_max_s=0.1, backoff_base_s=0.25)
    with pytest.raises(ValueError):
        RestartPolicy(crash_loop_threshold=0)


def test_monitor_restarts_sigkilled_backend(reference_path, tmp_path):
    """The whole self-healing loop, with a real SIGKILL: death noticed,
    backoff waited out, replica respawned on a fresh endpoint, state
    file rewritten — no manual intervention anywhere."""
    events = []
    supervisor = ClusterSupervisor(
        reference_path=reference_path, workdir=str(tmp_path / "work"),
        shards=1, replicas=2, workers=1,
        restart_policy=RestartPolicy(backoff_base_s=0.05,
                                     backoff_max_s=0.5))
    with supervisor:
        supervisor.start()
        old_endpoint = supervisor.backend("s0r0").endpoint
        old_pid = supervisor.backend("s0r0").pid
        supervisor.start_monitor(interval_s=0.02, on_event=events.append)
        supervisor.kill("s0r0")
        wait_until(lambda: supervisor.backend("s0r0").restarts >= 1
                   and supervisor.backend("s0r0").alive,
                   timeout_s=30.0,
                   message=lambda: f"never restarted; events={events}")
        backend = supervisor.backend("s0r0")
        assert backend.generation == 1
        assert backend.pid != old_pid
        assert backend.endpoint and backend.endpoint != ""
        # The topology follows the respawn (fresh ephemeral port).
        spec = {s.backend_id: s for s in
                supervisor.topology.backends}["s0r0"]
        assert spec.endpoint == backend.endpoint
        kinds = [e.kind for e in events if e.backend_id == "s0r0"]
        assert kinds[:3] == ["died", "restart_scheduled", "restarted"]
        restarted = [e for e in events if e.kind == "restarted"][0]
        assert restarted.endpoint == backend.endpoint
        # cluster.json reflects the new incarnation.
        state = read_state(supervisor.state_path)
        entry = {b["id"]: b for b in state["backends"]}["s0r0"]
        assert entry["restarts"] == 1
        assert entry["pid"] == backend.pid
        assert entry["ejected"] is False
        assert old_endpoint != backend.endpoint or True  # ports may reuse


def test_crash_loop_ejects_permanently(reference_path, tmp_path):
    """Driven via monitor_step with an injected clock: repeated rapid
    deaths must hit the crash-loop threshold and permanently eject the
    backend instead of restarting forever."""
    supervisor = ClusterSupervisor(
        reference_path=reference_path, workdir=str(tmp_path / "work"),
        shards=1, replicas=2, workers=1,
        restart_policy=RestartPolicy(backoff_base_s=0.01,
                                     backoff_max_s=0.02,
                                     crash_loop_threshold=2,
                                     crash_loop_window_s=300.0))
    with supervisor:
        supervisor.start()
        now = time.monotonic()
        supervisor.kill("s0r0")
        events = supervisor.monitor_step(now=now)
        assert [e.kind for e in events] == ["died", "restart_scheduled"]
        # Backoff timer fires → real respawn.
        events = supervisor.monitor_step(now=now + 60.0)
        assert [e.kind for e in events] == ["restarted"]
        assert supervisor.backend("s0r0").alive
        # Second rapid death crosses the threshold → permanent eject.
        supervisor.kill("s0r0")
        events = supervisor.monitor_step(now=now + 61.0)
        assert [e.kind for e in events] == ["died", "ejected"]
        backend = supervisor.backend("s0r0")
        assert backend.ejected and not backend.alive
        assert backend.restart_at is None
        state = read_state(supervisor.state_path)
        entry = {b["id"]: b for b in state["backends"]}["s0r0"]
        assert entry["ejected"] is True
        # Ejected backends are dead to the monitor: no further events.
        assert supervisor.monitor_step(now=now + 120.0) == []
        assert supervisor.backend("s0r1").alive


def test_write_state_atomic_under_concurrent_writers(tmp_path):
    """Torn-read regression: a reader polling cluster.json while many
    writers rewrite it must always parse complete JSON — never a
    half-written or truncated file."""
    workdir = str(tmp_path / "work")
    os.makedirs(workdir)
    supervisor = ClusterSupervisor(
        reference_path="unused.fa", workdir=workdir, shards=1,
        replicas=2, workers=1)
    supervisor.write_state(gateway_endpoint="127.0.0.1:0")
    stop = threading.Event()
    torn = []

    def writer():
        while not stop.is_set():
            supervisor.write_state()

    def reader():
        while not stop.is_set():
            try:
                state = read_state(supervisor.state_path)
                assert "backends" in state
            except (json.JSONDecodeError, AssertionError) as exc:
                torn.append(repr(exc))

    threads = ([threading.Thread(target=writer) for _ in range(3)]
               + [threading.Thread(target=reader) for _ in range(2)])
    for thread in threads:
        thread.start()
    time.sleep(1.0)
    stop.set()
    for thread in threads:
        thread.join(timeout=10.0)
    assert torn == [], f"torn reads observed: {torn[:3]}"
    # No temp-file litter left behind by the atomic rename dance.
    leftovers = [name for name in os.listdir(workdir)
                 if name.startswith("cluster.json.")]
    assert leftovers == []
    # Gateway identity stayed sticky across every rewrite.
    assert read_state(supervisor.state_path)["gateway"]["endpoint"] == \
        "127.0.0.1:0"


def test_stop_during_pending_restart_leaks_nothing(reference_path,
                                                   tmp_path):
    """stop() racing the monitor: a backend dies, the backoff timer is
    armed, and the supervisor shuts down before it fires — the fleet
    must drain cleanly with no respawn afterwards."""
    supervisor = ClusterSupervisor(
        reference_path=reference_path, workdir=str(tmp_path / "work"),
        shards=1, replicas=2, workers=1,
        restart_policy=RestartPolicy(backoff_base_s=5.0,
                                     backoff_max_s=5.0))
    with supervisor:
        supervisor.start()
        supervisor.start_monitor(interval_s=0.02)
        supervisor.kill("s0r0")
        wait_until(
            lambda: supervisor.backend("s0r0").restart_at is not None,
            timeout_s=10.0, message="death never noticed")
    # Context exit stopped monitor + fleet; the armed restart must not
    # have produced a new process.
    assert supervisor.backend("s0r0").restarts == 0
    assert not supervisor.backend("s0r0").alive
    assert supervisor.dead_backends() == ["s0r0", "s0r1"]
