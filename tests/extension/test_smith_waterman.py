"""Smith-Waterman correctness: vectorized vs scalar oracle, known cases."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.genome.sequence import encode, random_sequence
from repro.extension.scoring import BWA_MEM_SCORING, DARWIN_SCORING, ScoringScheme
from repro.extension.smith_waterman import (
    fill_matrices,
    fill_matrices_scalar,
    score_only,
    smith_waterman,
)

dna = st.text(alphabet="ACGT", min_size=1, max_size=30)
schemes = st.sampled_from([
    BWA_MEM_SCORING,
    DARWIN_SCORING,
    ScoringScheme(match=2, mismatch=-1, gap_open=-2, gap_extend=-1),
    ScoringScheme(match=1, mismatch=-1, gap_open=0, gap_extend=-1),
])


class TestKnownAlignments:
    def test_perfect_match(self):
        a = smith_waterman("ACGTACGT", "ACGTACGT")
        assert a.score == 8
        assert str(a.cigar) == "8M"
        assert a.read_span == 8 and a.ref_span == 8

    def test_substring_match(self):
        a = smith_waterman("CGTA", "AACGTAAA")
        assert a.score == 4
        assert a.ref_start == 2 and a.ref_end == 6

    def test_single_mismatch_kept_when_profitable(self):
        scheme = ScoringScheme(match=2, mismatch=-1, gap_open=-4,
                               gap_extend=-1)
        a = smith_waterman("AAAATAAAA", "AAAACAAAA", scoring=scheme)
        assert str(a.cigar) == "9M"
        assert a.score == 8 * 2 - 1

    def test_mismatch_clipped_with_harsh_penalty(self):
        # BWA scheme: mismatch -4 vs match 1 → better to align one side only.
        a = smith_waterman("AAAAATAAA", "AAAAACAAA")
        assert a.score == 5
        assert str(a.cigar) == "5M"

    def test_insertion(self):
        scheme = ScoringScheme(match=2, mismatch=-4, gap_open=-2,
                               gap_extend=-1)
        a = smith_waterman("ACGTTTACGT", "ACGTACGT", scoring=scheme)
        assert a.score == 8 * 2 - 2 - 2  # 8 matches, gap of 2
        assert "I" in str(a.cigar)
        a.validate_against(10)

    def test_deletion(self):
        scheme = ScoringScheme(match=2, mismatch=-4, gap_open=-2,
                               gap_extend=-1)
        a = smith_waterman("ACGTACGT", "ACGTTTACGT", scoring=scheme)
        assert "D" in str(a.cigar)
        a.validate_against(8)

    def test_no_similarity(self):
        a = smith_waterman("AAAA", "CCCC")
        assert a.score == 0
        assert a.cigar.ops == ()

    def test_empty_inputs(self):
        assert smith_waterman("", "ACGT").score == 0
        assert smith_waterman("ACGT", "").score == 0

    def test_cells_counted(self):
        a = smith_waterman("ACGT", "ACGTACGT")
        assert a.cells == 4 * 8


class TestAffineGapSemantics:
    def test_one_long_gap_beats_two_short(self):
        """Affine: opening costs once, so a single gap of 2 is preferred
        over two gaps of 1 when mismatches block the diagonal."""
        scheme = ScoringScheme(match=3, mismatch=-10, gap_open=-4,
                               gap_extend=-1)
        read = "AACCGGTT"
        ref = "AACCXXGGTT".replace("X", "A")  # AACCAAGGTT
        a = smith_waterman(read, ref, scoring=scheme)
        gap_runs = [(l, op) for l, op in a.cigar.ops if op == "D"]
        assert gap_runs == [(2, "D")]
        assert a.score == 8 * 3 - 4 - 2

    def test_score_matches_cigar_arithmetic(self):
        rng = random.Random(3)
        scheme = DARWIN_SCORING
        for _ in range(10):
            ref = random_sequence(80, rng)
            read = ref[10:60]
            a = smith_waterman(read, ref, scoring=scheme)
            recomputed = _score_from_cigar(a, read, ref, scheme)
            assert recomputed == a.score


def _score_from_cigar(alignment, read, ref, scheme):
    i, j = alignment.read_start, alignment.ref_start
    score = 0
    for length, op in alignment.cigar.ops:
        if op == "M":
            for _ in range(length):
                score += scheme.match if read[i] == ref[j] else scheme.mismatch
                i += 1
                j += 1
        elif op == "I":
            score += scheme.gap_cost(length)
            i += length
        elif op == "D":
            score += scheme.gap_cost(length)
            j += length
    return score


class TestVectorizedAgainstScalar:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_pairs(self, seed):
        rng = random.Random(seed)
        read = random_sequence(rng.randint(1, 60), rng)
        ref = random_sequence(rng.randint(1, 60), rng)
        fast = fill_matrices(encode(read), encode(ref), BWA_MEM_SCORING)
        slow = fill_matrices_scalar(encode(read), encode(ref), BWA_MEM_SCORING)
        assert np.array_equal(fast.h, slow.h)
        assert np.array_equal(fast.e, slow.e)

    def test_alignment_equal_via_both_paths(self):
        rng = random.Random(9)
        ref = random_sequence(100, rng)
        read = ref[20:70]
        fast = smith_waterman(read, ref)
        slow = smith_waterman(read, ref, use_scalar=True)
        assert fast.score == slow.score
        assert str(fast.cigar) == str(slow.cigar)


@given(dna, dna, schemes)
@settings(max_examples=80, deadline=None)
def test_property_fast_equals_scalar(read, ref, scheme):
    fast = fill_matrices(encode(read), encode(ref), scheme)
    slow = fill_matrices_scalar(encode(read), encode(ref), scheme)
    assert np.array_equal(fast.h, slow.h)


@given(dna, dna)
@settings(max_examples=50, deadline=None)
def test_property_score_only_matches_full(read, ref):
    assert score_only(read, ref) == smith_waterman(read, ref).score


@given(dna, dna)
@settings(max_examples=50, deadline=None)
def test_property_alignment_is_consistent(read, ref):
    a = smith_waterman(read, ref)
    a.validate_against(len(read))
    assert a.score >= 0
    # alignment score never exceeds perfect-match upper bound
    assert a.score <= min(len(read), len(ref)) * BWA_MEM_SCORING.match


@given(dna)
@settings(max_examples=30, deadline=None)
def test_property_self_alignment_is_perfect(text):
    a = smith_waterman(text, text)
    assert a.score == len(text) * BWA_MEM_SCORING.match
    assert str(a.cigar) == f"{len(text)}M"
