"""Global alignment tests, including a scalar DP oracle."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.genome.sequence import random_sequence
from repro.extension.needleman_wunsch import needleman_wunsch
from repro.extension.scoring import BWA_MEM_SCORING, ScoringScheme

dna = st.text(alphabet="ACGT", min_size=1, max_size=25)


def oracle_global_score(read, ref, scheme):
    """Plain dict-based affine global DP, written independently."""
    neg = float("-inf")
    m, n = len(read), len(ref)
    H = {(0, 0): 0}
    E = {}
    F = {}
    for i in range(1, m + 1):
        H[(i, 0)] = scheme.gap_open + scheme.gap_extend * i
        E[(i, 0)] = H[(i, 0)]
    for j in range(1, n + 1):
        H[(0, j)] = scheme.gap_open + scheme.gap_extend * j
        F[(0, j)] = H[(0, j)]
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            E[(i, j)] = max(E.get((i - 1, j), neg) + scheme.gap_extend,
                            H[(i - 1, j)] + scheme.gap_open + scheme.gap_extend)
            F[(i, j)] = max(F.get((i, j - 1), neg) + scheme.gap_extend,
                            H[(i, j - 1)] + scheme.gap_open + scheme.gap_extend)
            sub = scheme.match if read[i - 1] == ref[j - 1] else scheme.mismatch
            H[(i, j)] = max(H[(i - 1, j - 1)] + sub, E[(i, j)], F[(i, j)])
    return H[(m, n)]


class TestKnownCases:
    def test_identical(self):
        a = needleman_wunsch("ACGTACGT", "ACGTACGT")
        assert a.score == 8
        assert str(a.cigar) == "8M"

    def test_full_spans(self):
        a = needleman_wunsch("ACG", "ACGTACG")
        assert a.read_span == 3 and a.ref_span == 7
        a.validate_against(3)

    def test_empty_read(self):
        a = needleman_wunsch("", "ACGT")
        assert str(a.cigar) == "4D"
        assert a.score == BWA_MEM_SCORING.gap_cost(4)

    def test_empty_ref(self):
        a = needleman_wunsch("ACGT", "")
        assert str(a.cigar) == "4I"

    def test_both_empty(self):
        a = needleman_wunsch("", "")
        assert a.score == 0 and a.cigar.ops == ()

    def test_single_substitution(self):
        scheme = ScoringScheme(match=1, mismatch=-1, gap_open=-5,
                               gap_extend=-2)
        a = needleman_wunsch("ACGT", "AGGT", scoring=scheme)
        assert a.score == 3 - 1
        assert str(a.cigar) == "4M"


class TestAgainstOracle:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_pairs(self, seed):
        rng = random.Random(seed)
        read = random_sequence(rng.randint(1, 40), rng)
        ref = random_sequence(rng.randint(1, 40), rng)
        a = needleman_wunsch(read, ref)
        assert a.score == oracle_global_score(read, ref, BWA_MEM_SCORING)
        a.validate_against(len(read))


@given(dna, dna)
@settings(max_examples=60, deadline=None)
def test_property_score_matches_oracle(read, ref):
    a = needleman_wunsch(read, ref)
    assert a.score == oracle_global_score(read, ref, BWA_MEM_SCORING)


@given(dna, dna)
@settings(max_examples=40, deadline=None)
def test_property_cigar_consumes_everything(read, ref):
    a = needleman_wunsch(read, ref)
    assert a.cigar.query_length == len(read)
    assert a.cigar.reference_length == len(ref)


@given(dna, dna)
@settings(max_examples=30, deadline=None)
def test_property_global_le_local_upper_bound(read, ref):
    from repro.extension.smith_waterman import smith_waterman
    global_score = needleman_wunsch(read, ref).score
    local_score = smith_waterman(read, ref).score
    assert global_score <= local_score  # local may clip penalties away
