"""GACT tiled alignment tests against full Needleman-Wunsch."""

import random

import pytest

from repro.genome.reads import LONG_READ, ErrorModel
from repro.genome.sequence import random_sequence
from repro.extension.gact import gact_align
from repro.extension.needleman_wunsch import needleman_wunsch
from repro.extension.scoring import DARWIN_SCORING


def mutate_with_indels(text, rng, sub=0.05, indel=0.01):
    model = ErrorModel(substitution_rate=sub, insertion_rate=indel,
                       deletion_rate=indel)
    return model.apply(text, rng)


class TestCorrectness:
    def test_identical_sequences(self):
        text = random_sequence(600, random.Random(1))
        result = gact_align(text, text, tile_size=128, overlap=32)
        assert result.alignment.score == 600
        assert str(result.alignment.cigar) == "600M"
        assert result.tiles >= 5

    def test_path_consumes_both_sequences(self):
        rng = random.Random(2)
        ref = random_sequence(500, rng)
        query = mutate_with_indels(ref, rng)
        result = gact_align(query, ref, tile_size=96, overlap=24)
        result.alignment.validate_against(len(query))
        assert result.alignment.cigar.query_length == len(query)
        assert result.alignment.cigar.reference_length == len(ref)

    @pytest.mark.parametrize("seed", range(5))
    def test_near_optimal_on_related_sequences(self, seed):
        """GACT with reasonable overlap stays close to full-NW optimum."""
        rng = random.Random(100 + seed)
        ref = random_sequence(400, rng)
        query = mutate_with_indels(ref, rng)
        optimal = needleman_wunsch(query, ref).score
        tiled = gact_align(query, ref, tile_size=128, overlap=48)
        assert tiled.alignment.score <= optimal  # optimal is an upper bound
        # within a small margin of optimal (Darwin reports ~no loss at
        # sufficient overlap)
        margin = max(8, abs(optimal) // 10)
        assert tiled.alignment.score >= optimal - margin

    def test_single_tile_equals_nw_exactly(self):
        rng = random.Random(3)
        ref = random_sequence(100, rng)
        query = mutate_with_indels(ref, rng)
        tiled = gact_align(query, ref, tile_size=256, overlap=32)
        assert tiled.tiles == 1
        assert tiled.alignment.score == needleman_wunsch(query, ref).score

    def test_length_mismatch(self):
        rng = random.Random(4)
        ref = random_sequence(500, rng)
        query = ref[:200] + ref[300:]  # 100 bp deletion in the query
        scheme = DARWIN_SCORING
        result = gact_align(query, ref, tile_size=128, overlap=48,
                            scoring=scheme)
        assert result.alignment.cigar.reference_length == len(ref)
        assert "D" in str(result.alignment.cigar)

    def test_empty_inputs(self):
        result = gact_align("", "ACGT")
        assert str(result.alignment.cigar) == "4D"
        result = gact_align("ACGT", "")
        assert str(result.alignment.cigar) == "4I"


class TestConstantMemory:
    def test_tile_cells_bounded(self):
        """The whole point: memory per tile is O(tile²), not O(nm)."""
        rng = random.Random(5)
        ref = random_sequence(1500, rng)
        query = mutate_with_indels(ref, rng, sub=0.02)
        result = gact_align(query, ref, tile_size=128, overlap=32)
        assert result.max_tile_cells <= 128 * 128
        assert result.tiles >= 10

    def test_more_overlap_no_worse(self):
        rng = random.Random(6)
        ref = random_sequence(600, rng)
        query = mutate_with_indels(ref, rng)
        small = gact_align(query, ref, tile_size=128, overlap=8)
        large = gact_align(query, ref, tile_size=128, overlap=64)
        assert large.alignment.score >= small.alignment.score - 2


class TestValidation:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            gact_align("ACGT", "ACGT", tile_size=1)
        with pytest.raises(ValueError):
            gact_align("ACGT", "ACGT", tile_size=16, overlap=16)

    def test_noisy_long_read_case(self):
        """The Sec. V-F scenario: a 3rd-gen read against its locus."""
        rng = random.Random(7)
        ref = random_sequence(1200, rng)
        query = LONG_READ.apply(ref, rng)
        result = gact_align(query, ref, tile_size=128, overlap=48,
                            scoring=DARWIN_SCORING)
        result.alignment.validate_against(len(query))
        assert result.alignment.score > 0
