"""Bit-parallel matching tests against DP oracles."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.genome.sequence import random_sequence
from repro.extension.bitap import (
    best_semi_global_distance,
    bitap_exact_positions,
    bitap_search,
    edit_distance,
    genasm_latency,
    myers_distances,
)

dna = st.text(alphabet="ACGT", min_size=1, max_size=40)


def oracle_edit_distance(a, b):
    """Textbook DP, written independently of the module under test."""
    m, n = len(a), len(b)
    d = [[0] * (n + 1) for _ in range(m + 1)]
    for i in range(m + 1):
        d[i][0] = i
    for j in range(n + 1):
        d[0][j] = j
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            d[i][j] = min(d[i - 1][j] + 1, d[i][j - 1] + 1,
                          d[i - 1][j - 1] + (a[i - 1] != b[j - 1]))
    return d[m][n]


def oracle_semi_global(pattern, text):
    """Best edit distance of pattern vs any substring of text."""
    m, n = len(pattern), len(text)
    prev = [0] * (n + 1)  # first row zero: free start anywhere
    for i in range(1, m + 1):
        curr = [i, *([0] * n)]
        for j in range(1, n + 1):
            curr[j] = min(prev[j] + 1, curr[j - 1] + 1,
                          prev[j - 1] + (pattern[i - 1] != text[j - 1]))
        prev = curr
    return min(prev)


class TestEditDistance:
    def test_known_values(self):
        assert edit_distance("ACGT", "ACGT") == 0
        assert edit_distance("ACGT", "AGGT") == 1
        assert edit_distance("ACGT", "") == 4
        assert edit_distance("", "ACG") == 3
        assert edit_distance("AAAA", "TTTT") == 4

    @given(dna, dna)
    @settings(max_examples=60, deadline=None)
    def test_matches_oracle(self, a, b):
        assert edit_distance(a, b) == oracle_edit_distance(a, b)

    @given(dna, dna)
    @settings(max_examples=40, deadline=None)
    def test_symmetry(self, a, b):
        assert edit_distance(a, b) == edit_distance(b, a)


class TestMyers:
    def test_exact_occurrence_scores_zero(self):
        text = random_sequence(200, random.Random(1))
        pattern = text[50:80]
        distances = myers_distances(pattern, text)
        assert min(distances) == 0
        assert distances[79] == 0  # inclusive end position of the match

    def test_distances_match_oracle_columns(self):
        rng = random.Random(2)
        text = random_sequence(60, rng)
        pattern = random_sequence(12, rng)
        got = myers_distances(pattern, text)
        # oracle per-column: best distance of pattern vs substring ending at j
        m, n = len(pattern), len(text)
        last_rows = []
        # column DP over text, first row free
        dp_prev = [i for i in range(m + 1)]
        for j in range(1, n + 1):
            dp_curr = [0] * (m + 1)
            for i in range(1, m + 1):
                dp_curr[i] = min(dp_prev[i] + 1, dp_curr[i - 1] + 1,
                                 dp_prev[i - 1]
                                 + (pattern[i - 1] != text[j - 1]))
            last_rows.append(dp_curr[m])
            dp_prev = dp_curr
        assert got == last_rows

    def test_long_pattern_beyond_word_width(self):
        """Python bigints: patterns > 64 symbols work unchanged."""
        rng = random.Random(3)
        text = random_sequence(400, rng)
        pattern = text[100:200]  # 100-symbol pattern
        assert best_semi_global_distance(pattern, text) == 0

    @given(st.integers(0, 5000))
    @settings(max_examples=40, deadline=None)
    def test_property_matches_oracle(self, seed):
        rng = random.Random(seed)
        text = random_sequence(rng.randint(1, 80), rng)
        pattern = random_sequence(rng.randint(1, 30), rng)
        assert best_semi_global_distance(pattern, text) == \
            oracle_semi_global(pattern, text)

    def test_empty_pattern(self):
        assert myers_distances("", "ACGT") == [0, 0, 0, 0]


class TestBitap:
    def test_exact_positions(self):
        text = "ACGTACGTAC"
        assert bitap_exact_positions("ACGT", text) == [0, 4]

    def test_no_match(self):
        assert bitap_exact_positions("TTTT", "ACGCACGC") == []

    def test_one_error_finds_substitution(self):
        text = "AAAACGTAAA"
        hits = bitap_search("ACTT", text, max_errors=1)
        # ACGT at 3..6 differs from ACTT by one substitution
        assert any(err == 1 for _, err in hits)

    def test_error_levels_minimal(self):
        text = random_sequence(100, random.Random(4))
        pattern = text[20:30]
        hits = dict(bitap_search(pattern, text, max_errors=2))
        assert hits[29] == 0  # exact match reported at its minimal level

    def test_agrees_with_myers_at_k(self):
        rng = random.Random(5)
        text = random_sequence(120, rng)
        pattern = random_sequence(10, rng)
        for k in (0, 1, 2):
            bitap_ends = {end for end, _ in
                          bitap_search(pattern, text, max_errors=k)}
            myers = myers_distances(pattern, text)
            myers_ends = {j for j, d in enumerate(myers) if d <= k}
            assert bitap_ends == myers_ends, f"k={k}"

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            bitap_search("", "ACGT")
        with pytest.raises(ValueError):
            bitap_search("A", "ACGT", max_errors=-1)


class TestGenASMLatency:
    def test_word_insensitive_below_width(self):
        """Short patterns cost the same until a word boundary is crossed."""
        assert genasm_latency(8, 100) == genasm_latency(60, 100)
        assert genasm_latency(65, 100) == 2 * genasm_latency(60, 100)

    def test_linear_in_text(self):
        assert genasm_latency(30, 200) == 2 * genasm_latency(30, 100)

    def test_unroll(self):
        assert genasm_latency(128, 100, unroll=2) == \
            genasm_latency(64, 100, unroll=1)

    def test_invalid(self):
        with pytest.raises(ValueError):
            genasm_latency(0, 10)
        with pytest.raises(ValueError):
            genasm_latency(10, 10, word_bits=0)
