"""Tests for CIGAR and alignment records."""

import pytest

from repro.extension.alignment import Alignment, Cigar, identity


class TestCigar:
    def test_from_ops_merges_runs(self):
        cigar = Cigar.from_ops("MMMIIMM")
        assert str(cigar) == "3M2I2M"

    def test_parse_roundtrip(self):
        text = "10M2D5M1I4M"
        assert str(Cigar.parse(text)) == text

    def test_parse_empty(self):
        assert Cigar.parse("").ops == ()

    def test_parse_malformed_raises(self):
        with pytest.raises(ValueError):
            Cigar.parse("10M2X")
        with pytest.raises(ValueError):
            Cigar.parse("M10")

    def test_rejects_zero_run(self):
        with pytest.raises(ValueError):
            Cigar(((0, "M"),))

    def test_rejects_unknown_op(self):
        with pytest.raises(ValueError):
            Cigar(((3, "Z"),))

    def test_lengths(self):
        cigar = Cigar.parse("5M2I3M1D4M")
        assert cigar.query_length == 5 + 2 + 3 + 4
        assert cigar.reference_length == 5 + 3 + 1 + 4
        assert cigar.aligned_length == 12
        assert cigar.edit_ops == 3

    def test_soft_clip_counts_as_query(self):
        cigar = Cigar.parse("3S10M")
        assert cigar.query_length == 13
        assert cigar.reference_length == 10


class TestAlignment:
    def _mk(self, cigar="10M", **kw):
        defaults = dict(score=10, cigar=Cigar.parse(cigar), read_start=0,
                        read_end=10, ref_start=100, ref_end=110)
        defaults.update(kw)
        return Alignment(**defaults)

    def test_spans(self):
        a = self._mk()
        assert a.read_span == 10 and a.ref_span == 10

    def test_invalid_order_raises(self):
        with pytest.raises(ValueError):
            self._mk(read_end=0, read_start=5)

    def test_validate_against_ok(self):
        self._mk().validate_against(read_len=20)

    def test_validate_against_cigar_mismatch(self):
        with pytest.raises(ValueError):
            self._mk(cigar="9M").validate_against(read_len=20)

    def test_validate_against_ref_mismatch(self):
        bad = self._mk(cigar="10M1D", ref_end=110)
        with pytest.raises(ValueError):
            bad.validate_against(read_len=20)

    def test_validate_against_read_overflow(self):
        with pytest.raises(ValueError):
            self._mk().validate_against(read_len=5)

    def test_identity(self):
        a = self._mk(cigar="8M2I", read_end=10, ref_end=108)
        assert identity(a) == pytest.approx(0.8)

    def test_identity_empty(self):
        empty = Alignment(score=0, cigar=Cigar(()), read_start=0, read_end=0,
                          ref_start=0, ref_end=0)
        assert identity(empty) == 0.0
