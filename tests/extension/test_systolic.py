"""Systolic-array cycle model tests, anchored to the paper's examples."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extension.systolic import (
    SystolicArray,
    block_schedule,
    gact_tiled_latency,
    matrix_fill_latency,
    optimal_pe_count,
    traceback_latency,
)


class TestFormula3:
    def test_fig7_example(self):
        """Fig 7: Q = R = 9, P = 3 → 33 cycles."""
        assert matrix_fill_latency(9, 9, 3) == 33

    def test_single_block(self):
        # Q <= P: one block, R + P - 1 cycles.
        assert matrix_fill_latency(10, 4, 8) == 10 + 8 - 1

    def test_exact_formula(self):
        for r, q, p in [(9, 9, 3), (64, 64, 16), (101, 101, 128), (7, 20, 4)]:
            assert matrix_fill_latency(r, q, p) == \
                (r + p - 1) * math.ceil(q / p)

    def test_zero_lengths(self):
        assert matrix_fill_latency(0, 5, 4) == 0
        assert matrix_fill_latency(5, 0, 4) == 0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            matrix_fill_latency(-1, 5, 4)
        with pytest.raises(ValueError):
            matrix_fill_latency(5, 5, 0)

    def test_fig8_shape_length9(self):
        """Fig 8 observation: latency is minimised when P ≈ hit length.

        For length 9 the best power of two is 16: one block of 24 cycles
        beats two blocks on 8 PEs (32 cycles) — exactly why the paper maps
        hits ≤ 16 to the 16-PE unit class.
        """
        latencies = {p: matrix_fill_latency(9, 9, p)
                     for p in (2, 4, 8, 16, 32, 64, 128)}
        best_p = min(latencies, key=latencies.get)
        assert best_p == 16

    def test_fig8_shape_length64(self):
        latencies = {p: matrix_fill_latency(64, 64, p)
                     for p in (2, 4, 8, 16, 32, 64, 128)}
        assert min(latencies, key=latencies.get) == 64

    def test_oversized_pe_hurts_short_hits(self):
        """Observation (2): short hit on a big array is slow."""
        assert matrix_fill_latency(9, 9, 128) > matrix_fill_latency(9, 9, 8)

    def test_undersized_pe_hurts_long_hits(self):
        assert matrix_fill_latency(64, 64, 2) > matrix_fill_latency(64, 64, 64)


class TestBlockSchedule:
    def test_fig7_blocks(self):
        """Fig 7(c): three blocks of 3 rows, 11 cycles each."""
        blocks = block_schedule(9, 9, 3)
        assert len(blocks) == 3
        assert all(b.cycles == 11 for b in blocks)
        assert blocks[0].start_cycle == 0
        assert blocks[-1].end_cycle == 33
        assert all(b.rows == 3 for b in blocks)

    def test_partial_last_block(self):
        blocks = block_schedule(10, 10, 4)
        assert [b.rows for b in blocks] == [4, 4, 2]

    def test_contiguous_windows(self):
        blocks = block_schedule(20, 50, 8)
        for prev, nxt in zip(blocks, blocks[1:]):
            assert nxt.start_cycle == prev.end_cycle

    def test_empty_inputs(self):
        assert block_schedule(0, 5, 4) == []

    def test_total_matches_formula(self):
        blocks = block_schedule(31, 77, 16)
        assert blocks[-1].end_cycle == matrix_fill_latency(31, 77, 16)


class TestTraceback:
    def test_independent_of_pe(self):
        assert traceback_latency(30, 40) == 70

    def test_invalid(self):
        with pytest.raises(ValueError):
            traceback_latency(-1, 0)


class TestOptimalPE:
    def test_short_hits_prefer_small_units(self):
        assert optimal_pe_count(10) == 16
        assert optimal_pe_count(16) == 16

    def test_mid_hits(self):
        assert optimal_pe_count(30) == 32
        assert optimal_pe_count(60) == 64

    def test_long_hits(self):
        assert optimal_pe_count(128) == 128
        assert optimal_pe_count(100) == 128

    def test_invalid(self):
        with pytest.raises(ValueError):
            optimal_pe_count(0)
        with pytest.raises(ValueError):
            optimal_pe_count(10, choices=())


class TestSystolicArray:
    def test_latency_with_traceback(self):
        array = SystolicArray(pe_count=3)
        assert array.latency(9, 9) == 33 + 18
        assert array.latency(9, 9, include_traceback=False) == 33

    def test_utilization_bounds(self):
        array = SystolicArray(pe_count=64)
        util = array.utilization(64, 64)
        assert 0 < util <= 1

    def test_matched_size_utilization_beats_oversized(self):
        matched = SystolicArray(16).utilization(16, 16)
        oversized = SystolicArray(128).utilization(16, 16)
        assert matched > oversized

    def test_invalid_pe(self):
        with pytest.raises(ValueError):
            SystolicArray(0)


class TestGACTTiling:
    def test_short_pair_is_single_tile(self):
        assert gact_tiled_latency(100, 100, 64, tile_size=256) == \
            matrix_fill_latency(100, 100, 64)

    def test_long_pair_is_sum_of_tiles(self):
        total = gact_tiled_latency(1000, 1000, 64, tile_size=256, overlap=32)
        single = matrix_fill_latency(256, 256, 64)
        assert total > single
        assert total % 1 == 0

    def test_scales_with_length(self):
        short = gact_tiled_latency(1000, 1000, 64)
        long = gact_tiled_latency(4000, 4000, 64)
        assert long > 3 * short

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            gact_tiled_latency(10, 10, 4, tile_size=0)
        with pytest.raises(ValueError):
            gact_tiled_latency(10, 10, 4, tile_size=16, overlap=16)

    def test_zero_lengths(self):
        assert gact_tiled_latency(0, 10, 4) == 0


@given(st.integers(1, 500), st.integers(1, 500), st.integers(1, 256))
@settings(max_examples=80)
def test_property_latency_positive_and_formula(r, q, p):
    latency = matrix_fill_latency(r, q, p)
    assert latency == (r + p - 1) * math.ceil(q / p)
    assert latency >= max(r, q)  # cannot beat streaming either sequence


@given(st.integers(1, 200))
@settings(max_examples=40)
def test_property_optimal_pe_is_weakly_monotone(length):
    """Longer hits never prefer a smaller optimal unit class."""
    if length > 1:
        assert optimal_pe_count(length) >= optimal_pe_count(length - 1)
