"""Banded alignment tests."""

import random

import pytest

from repro.genome.sequence import random_sequence
from repro.extension.banded import banded_global
from repro.extension.needleman_wunsch import needleman_wunsch
from repro.extension.scoring import ScoringScheme


class TestBandedGlobal:
    def test_wide_band_equals_nw(self):
        rng = random.Random(1)
        for _ in range(8):
            read = random_sequence(rng.randint(5, 30), rng)
            ref = random_sequence(rng.randint(5, 30), rng)
            if abs(len(read) - len(ref)) > 40:
                continue
            banded = banded_global(read, ref, band_width=64)
            full = needleman_wunsch(read, ref)
            assert banded.alignment.score == full.score

    def test_identical_sequences_any_band(self):
        text = random_sequence(50, random.Random(2))
        result = banded_global(text, text, band_width=1)
        assert result.alignment.score == 50
        assert not result.touched_band_edge or result.band_width == 1

    def test_narrow_band_can_lose_score(self):
        """The SeedEx speculation trade-off: too-narrow bands miss gaps."""
        scheme = ScoringScheme(match=2, mismatch=-1, gap_open=-1,
                               gap_extend=-1)
        read = "ACGTACGTACGT"
        ref = "ACGT" + "AAAAA" + "ACGTACGT"  # needs a 5-base gap
        narrow = banded_global(read, ref, band_width=5, scoring=scheme)
        wide = banded_global(read, ref, band_width=20, scoring=scheme)
        assert wide.alignment.score >= narrow.alignment.score

    def test_touched_edge_signals_narrow_band(self):
        scheme = ScoringScheme(match=2, mismatch=-1, gap_open=-1,
                               gap_extend=-1)
        read = "ACGTACGTACGT"
        ref = "ACGT" + "AAAAA" + "ACGTACGT"
        narrow = banded_global(read, ref, band_width=5, scoring=scheme)
        assert narrow.touched_band_edge

    def test_cigar_consistency(self):
        rng = random.Random(3)
        read = random_sequence(30, rng)
        ref = random_sequence(32, rng)
        result = banded_global(read, ref, band_width=16)
        result.alignment.validate_against(len(read))

    def test_band_too_narrow_for_length_diff_raises(self):
        with pytest.raises(ValueError):
            banded_global("ACGT", "ACGTACGTACGTACGT", band_width=2)

    def test_invalid_band_raises(self):
        with pytest.raises(ValueError):
            banded_global("ACGT", "ACGT", band_width=0)

    def test_cells_bounded_by_band(self):
        read = random_sequence(60, random.Random(4))
        result = banded_global(read, read, band_width=4)
        assert result.alignment.cells <= 60 * (2 * 4 + 1)


class TestVectorisedAgainstScalar:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_pairs(self, seed):
        rng = random.Random(seed)
        m = rng.randint(5, 60)
        n = max(1, m + rng.randint(-6, 6))
        read = random_sequence(m, rng)
        ref = random_sequence(n, rng)
        band = rng.randint(abs(m - n) + 1, abs(m - n) + 20)
        fast = banded_global(read, ref, band_width=band)
        slow = banded_global(read, ref, band_width=band, use_scalar=True)
        assert fast.alignment.score == slow.alignment.score
        assert str(fast.alignment.cigar) == str(slow.alignment.cigar)
        assert fast.alignment.cells == slow.alignment.cells
        assert fast.touched_band_edge == slow.touched_band_edge

    def test_harsh_scheme(self):
        scheme = ScoringScheme(match=2, mismatch=-7, gap_open=-5,
                               gap_extend=-3)
        rng = random.Random(77)
        read = random_sequence(40, rng)
        ref = random_sequence(44, rng)
        fast = banded_global(read, ref, band_width=12, scoring=scheme)
        slow = banded_global(read, ref, band_width=12, scoring=scheme,
                             use_scalar=True)
        assert fast.alignment.score == slow.alignment.score
