"""Tests for scoring schemes."""

import numpy as np
import pytest

from repro.extension.scoring import BWA_MEM_SCORING, DARWIN_SCORING, ScoringScheme


class TestValidation:
    def test_defaults_are_bwa_mem(self):
        assert (BWA_MEM_SCORING.match, BWA_MEM_SCORING.mismatch,
                BWA_MEM_SCORING.gap_open, BWA_MEM_SCORING.gap_extend) == \
            (1, -4, -6, -1)

    def test_rejects_nonpositive_match(self):
        with pytest.raises(ValueError):
            ScoringScheme(match=0)

    def test_rejects_nonnegative_mismatch(self):
        with pytest.raises(ValueError):
            ScoringScheme(mismatch=1)

    def test_rejects_positive_gap_open(self):
        with pytest.raises(ValueError):
            ScoringScheme(gap_open=2)

    def test_rejects_nonnegative_gap_extend(self):
        with pytest.raises(ValueError):
            ScoringScheme(gap_extend=0)

    def test_zero_gap_open_allowed(self):
        ScoringScheme(gap_open=0)  # linear gap special case


class TestScoring:
    def test_substitution(self):
        assert BWA_MEM_SCORING.substitution(0, 0) == 1
        assert BWA_MEM_SCORING.substitution(0, 3) == -4

    def test_substitution_matrix(self):
        matrix = DARWIN_SCORING.substitution_matrix()
        assert matrix.shape == (4, 4)
        assert np.all(np.diag(matrix) == 2)
        off = matrix[~np.eye(4, dtype=bool)]
        assert np.all(off == -3)

    def test_gap_cost(self):
        assert BWA_MEM_SCORING.gap_cost(0) == 0
        assert BWA_MEM_SCORING.gap_cost(1) == -7
        assert BWA_MEM_SCORING.gap_cost(5) == -11

    def test_gap_cost_negative_length_raises(self):
        with pytest.raises(ValueError):
            BWA_MEM_SCORING.gap_cost(-1)
