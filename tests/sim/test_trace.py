"""Execution trace tests."""

import pytest

from repro.sim.trace import ExecutionTrace


class TestExecutionTrace:
    def test_record_and_filter(self):
        trace = ExecutionTrace()
        trace.record(0, "SU0", "start", read=3)
        trace.record(5, "EU1", "start", hit=7)
        trace.record(9, "SU0", "finish")
        assert len(trace) == 3
        assert len(trace.events(source="SU0")) == 2
        assert len(trace.events(kind="start")) == 2
        assert trace.events(source="SU0", kind="finish")[0].cycle == 9

    def test_span(self):
        trace = ExecutionTrace()
        assert trace.span() is None
        trace.record(3, "x", "a")
        trace.record(10, "x", "b")
        assert trace.span() == range(3, 11)

    def test_capacity_drops(self):
        trace = ExecutionTrace(capacity=2)
        for i in range(5):
            trace.record(i, "x", "e")
        assert len(trace) == 2
        assert trace.dropped == 3

    def test_unbounded(self):
        trace = ExecutionTrace(capacity=None)
        for i in range(10):
            trace.record(i, "x", "e")
        assert len(trace) == 10

    def test_render(self):
        trace = ExecutionTrace()
        trace.record(1, "SU0", "start", read=1)
        text = trace.render()
        assert "SU0" in text and "read=1" in text

    def test_render_limit(self):
        trace = ExecutionTrace()
        for i in range(5):
            trace.record(i, "x", "e")
        assert "more events" in trace.render(limit=2)

    def test_invalid(self):
        with pytest.raises(ValueError):
            ExecutionTrace(capacity=0)
        with pytest.raises(ValueError):
            ExecutionTrace().record(-1, "x", "e")
