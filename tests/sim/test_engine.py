"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine, SimulationError


class TestScheduling:
    def test_events_run_in_time_order(self):
        engine = Engine()
        log = []
        engine.schedule(5, lambda: log.append("b"))
        engine.schedule(1, lambda: log.append("a"))
        engine.schedule(9, lambda: log.append("c"))
        engine.run()
        assert log == ["a", "b", "c"]
        assert engine.now == 9

    def test_same_cycle_fifo(self):
        engine = Engine()
        log = []
        for tag in "abc":
            engine.schedule(3, lambda t=tag: log.append(t))
        engine.run()
        assert log == ["a", "b", "c"]

    def test_nested_scheduling(self):
        engine = Engine()
        log = []

        def first():
            log.append(engine.now)
            engine.schedule(10, lambda: log.append(engine.now))

        engine.schedule(2, first)
        engine.run()
        assert log == [2, 12]

    def test_zero_delay_runs_same_cycle(self):
        engine = Engine()
        hit = []
        engine.schedule(4, lambda: engine.schedule(0, lambda: hit.append(engine.now)))
        engine.run()
        assert hit == [4]

    def test_negative_delay_raises(self):
        with pytest.raises(SimulationError):
            Engine().schedule(-1, lambda: None)

    def test_schedule_at_past_raises(self):
        engine = Engine()
        engine.schedule(5, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(2, lambda: None)


class TestRunControl:
    def test_max_cycles_stops_early(self):
        engine = Engine()
        log = []
        engine.schedule(1, lambda: log.append(1))
        engine.schedule(100, lambda: log.append(100))
        engine.run(max_cycles=50)
        assert log == [1]
        assert engine.pending == 1

    def test_resume_after_max_cycles(self):
        engine = Engine()
        log = []
        engine.schedule(100, lambda: log.append(100))
        engine.run(max_cycles=50)
        engine.run()
        assert log == [100]

    def test_livelock_guard(self):
        engine = Engine()

        def loop():
            engine.schedule(0, loop)

        engine.schedule(0, loop)
        with pytest.raises(SimulationError):
            engine.run(max_events=1000)

    def test_step(self):
        engine = Engine()
        log = []
        engine.schedule(1, lambda: log.append("x"))
        assert engine.step()
        assert not engine.step()
        assert log == ["x"]

    def test_events_processed_counter(self):
        engine = Engine()
        for _ in range(5):
            engine.schedule(1, lambda: None)
        engine.run()
        assert engine.events_processed == 5
