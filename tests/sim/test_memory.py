"""Tests for the DRAM/HBM memory model."""

import pytest

from repro.sim.memory import DDR4, HBM_1_0, MemoryModel, MemorySpec


class TestSpecs:
    def test_presets_sane(self):
        assert HBM_1_0.energy_pj_per_bit == 7.0  # Sec V-B figure
        assert HBM_1_0.bandwidth_bytes_per_cycle == 256  # 256 GB/s at 1 GHz
        assert DDR4.bandwidth_bytes_per_cycle < HBM_1_0.bandwidth_bytes_per_cycle

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            MemorySpec("bad", row_hit_latency=0, row_miss_latency=10,
                       bandwidth_bytes_per_cycle=1, banks=1, row_bytes=1,
                       energy_pj_per_bit=1.0)
        with pytest.raises(ValueError):
            MemorySpec("bad", row_hit_latency=20, row_miss_latency=10,
                       bandwidth_bytes_per_cycle=1, banks=1, row_bytes=1,
                       energy_pj_per_bit=1.0)


class TestAccess:
    def test_first_access_misses(self):
        mem = MemoryModel()
        latency = mem.access(0)
        assert latency >= HBM_1_0.row_miss_latency
        assert mem.stats.row_misses == 1

    def test_same_row_hits(self):
        mem = MemoryModel()
        mem.access(0)
        latency = mem.access(64)
        assert latency == HBM_1_0.row_hit_latency
        assert mem.stats.row_hits == 1

    def test_different_row_same_bank_misses(self):
        mem = MemoryModel()
        mem.access(0)
        far = HBM_1_0.row_bytes * HBM_1_0.banks  # same bank, next row
        mem.access(far)
        assert mem.stats.row_misses == 2

    def test_energy_accounting(self):
        mem = MemoryModel()
        mem.access(0, size_bytes=64)
        assert mem.stats.energy_pj == pytest.approx(64 * 8 * 7.0)

    def test_invalid_inputs(self):
        mem = MemoryModel()
        with pytest.raises(ValueError):
            mem.access(-1)
        with pytest.raises(ValueError):
            mem.access(0, size_bytes=0)

    def test_reset(self):
        mem = MemoryModel()
        mem.access(0)
        mem.reset()
        assert mem.stats.accesses == 0
        assert mem.stats.row_hit_rate == 0.0


class TestBurstLatency:
    def test_zero_accesses_free(self):
        assert MemoryModel().burst_latency(0, 0) == 0

    def test_parallelism_reduces_latency(self):
        serial = MemoryModel().burst_latency(64 * 100, 100, parallelism=1)
        parallel = MemoryModel().burst_latency(64 * 100, 100, parallelism=8)
        assert parallel < serial

    def test_bandwidth_floor(self):
        mem = MemoryModel()
        # Huge transfer with few accesses: bandwidth-bound.
        latency = mem.burst_latency(1_000_000, 1, parallelism=64)
        assert latency >= 1_000_000 // HBM_1_0.bandwidth_bytes_per_cycle

    def test_row_hit_fraction_effect(self):
        hot = MemoryModel().burst_latency(6400, 100, row_hit_fraction=1.0)
        cold = MemoryModel().burst_latency(6400, 100, row_hit_fraction=0.0)
        assert hot < cold

    def test_invalid_params(self):
        mem = MemoryModel()
        with pytest.raises(ValueError):
            mem.burst_latency(10, -1)
        with pytest.raises(ValueError):
            mem.burst_latency(10, 1, parallelism=0)
        with pytest.raises(ValueError):
            mem.burst_latency(10, 1, row_hit_fraction=2.0)

    def test_stats_updated(self):
        mem = MemoryModel()
        mem.burst_latency(640, 10)
        assert mem.stats.accesses == 10
        assert mem.stats.bytes_transferred == 640
