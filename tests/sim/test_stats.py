"""Tests for utilization traces and counters."""

import numpy as np
import pytest

from repro.sim.stats import CounterSet, ThroughputResult, UtilizationTrace


class TestUtilizationTrace:
    def test_single_unit_full_busy(self):
        trace = UtilizationTrace(1)
        trace.begin(0, 0)
        trace.end(0, 100)
        assert trace.average_utilization(100) == pytest.approx(1.0)

    def test_half_busy(self):
        trace = UtilizationTrace(2)
        trace.begin(0, 0)
        trace.end(0, 100)
        assert trace.average_utilization(100) == pytest.approx(0.5)

    def test_window_start(self):
        trace = UtilizationTrace(1)
        trace.begin(0, 0)
        trace.end(0, 50)
        assert trace.average_utilization(100, start=50) == 0.0
        assert trace.average_utilization(100, start=0) == pytest.approx(0.5)

    def test_double_begin_raises(self):
        trace = UtilizationTrace(1)
        trace.begin(0, 0)
        with pytest.raises(ValueError):
            trace.begin(0, 5)

    def test_end_without_begin_raises(self):
        with pytest.raises(ValueError):
            UtilizationTrace(1).end(0, 5)

    def test_unit_bounds(self):
        with pytest.raises(IndexError):
            UtilizationTrace(2).begin(2, 0)

    def test_close_all(self):
        trace = UtilizationTrace(3)
        trace.begin(0, 0)
        trace.begin(1, 10)
        trace.close_all(20)
        assert trace.busy_cycles == 20 + 10

    def test_series_shape_and_values(self):
        trace = UtilizationTrace(1)
        trace.begin(0, 0)
        trace.end(0, 50)
        series = trace.series(100, bins=10)
        assert series.shape == (10,)
        assert np.allclose(series[:5], 1.0)
        assert np.allclose(series[5:], 0.0)

    def test_series_partial_bin(self):
        trace = UtilizationTrace(1)
        trace.begin(0, 0)
        trace.end(0, 25)
        series = trace.series(100, bins=2)
        assert series[0] == pytest.approx(0.5)

    def test_series_empty(self):
        assert np.all(UtilizationTrace(4).series(100) == 0)

    def test_series_out_of_order_intervals_not_dropped(self):
        """Regression: an interval ending past the window must not hide
        later-recorded intervals.

        ``_intervals`` is ordered by ``end()``-call time, not end cycle:
        unit 0 runs past the window and closes *first*, so its interval
        precedes unit 1's fully-in-window interval in the list.  The old
        ``series()`` broke out of its loop at the first interval with
        ``end > total_cycles`` and silently dropped everything recorded
        after it.
        """
        trace = UtilizationTrace(2)
        trace.begin(0, 0)
        trace.begin(1, 10)
        trace.end(0, 150)   # appended first, ends beyond the window
        trace.end(1, 50)    # appended second, fully inside the window
        series = trace.series(100, bins=10)
        # Unit 1's interval (cycles 10-50) must be present: bins 1-4
        # have both units busy.
        assert np.allclose(series[1:5], 1.0)
        # Unit 0's overlong interval is clipped, not discarded: bins
        # 5-9 still show it busy.
        assert np.allclose(series[5:], 0.5)
        assert series[0] == pytest.approx(0.5)
        # The binned series must agree with the closed-form average.
        assert np.mean(series) == pytest.approx(
            trace.average_utilization(100))

    def test_series_clips_interval_straddling_window_end(self):
        trace = UtilizationTrace(1)
        trace.begin(0, 80)
        trace.end(0, 200)
        series = trace.series(100, bins=10)
        assert np.allclose(series[:8], 0.0)
        assert np.allclose(series[8:], 1.0)

    def test_intervals_snapshot(self):
        trace = UtilizationTrace(2)
        trace.begin(0, 0)
        trace.begin(1, 5)
        trace.end(1, 9)
        trace.end(0, 12)
        assert trace.intervals() == [(5, 9), (0, 12)]
        trace.intervals().append((99, 100))  # copies, does not alias
        assert trace.intervals() == [(5, 9), (0, 12)]

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            UtilizationTrace(0)


class TestCounterSet:
    def test_add_and_get(self):
        counters = CounterSet()
        counters.add("stalls")
        counters.add("stalls", 4)
        assert counters.get("stalls") == 5
        assert counters.get("unknown") == 0
        assert counters.as_dict() == {"stalls": 5}


class TestThroughputResult:
    def test_reads_per_second(self):
        result = ThroughputResult(reads=1000, cycles=1_000_000)
        # 1 Mcycle at 1 GHz = 1 ms -> 1e6 reads/s
        assert result.reads_per_second == pytest.approx(1e6)
        assert result.kreads_per_second == pytest.approx(1000.0)

    def test_zero_cycles(self):
        assert ThroughputResult(reads=10, cycles=0).reads_per_second == 0.0
