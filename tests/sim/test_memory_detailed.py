"""Request-level memory scheduler tests + cross-validation of the summary
model's assumptions."""

import random

import pytest

from repro.sim.memory import HBM_1_0, MemoryModel
from repro.sim.memory_detailed import (
    DetailedMemory,
    observed_parallelism,
    observed_row_hit_fraction,
)


class TestBasics:
    def test_single_request(self):
        mem = DetailedMemory()
        mem.submit(0, size_bytes=64)
        (done,) = mem.drain()
        assert not done.row_hit  # cold row
        assert done.latency >= HBM_1_0.row_miss_latency

    def test_row_hit_after_open(self):
        mem = DetailedMemory()
        mem.submit(0)
        mem.submit(64)  # same row
        first, second = mem.drain()
        assert not first.row_hit
        assert second.row_hit

    def test_fr_fcfs_prefers_open_row(self):
        """Among queued requests, the open row's request is served first
        even if an older request targets a closed row."""
        mem = DetailedMemory()
        row_bytes = HBM_1_0.row_bytes
        banks = HBM_1_0.banks
        # Same bank: rows 0 and `banks` both map to bank 0.
        mem.submit(0, issue_time=0)                       # opens row 0
        mem.submit(row_bytes * banks, issue_time=1)       # other row, older
        mem.submit(128, issue_time=2)                     # row 0 again
        completions = mem.drain()
        order = [c.request.address for c in completions]
        assert order.index(128) < order.index(row_bytes * banks)

    def test_banks_overlap(self):
        """Requests to distinct banks overlap (service times interleave)."""
        mem = DetailedMemory()
        for bank in range(4):
            mem.submit(bank * HBM_1_0.row_bytes, issue_time=0)
        completions = mem.drain()
        makespan = max(c.finish_time for c in completions)
        serial = 4 * HBM_1_0.row_miss_latency
        assert makespan < serial

    def test_same_bank_serialises(self):
        mem = DetailedMemory()
        stride = HBM_1_0.row_bytes * HBM_1_0.banks  # same bank, new row
        for i in range(4):
            mem.submit(i * stride, issue_time=0)
        completions = mem.drain()
        makespan = max(c.finish_time for c in completions)
        assert makespan >= 4 * HBM_1_0.row_miss_latency

    def test_drain_clears(self):
        mem = DetailedMemory()
        mem.submit(0)
        assert len(mem.drain()) == 1
        assert mem.drain() == []

    def test_request_validation(self):
        mem = DetailedMemory()
        with pytest.raises(ValueError):
            mem.submit(-1)
        with pytest.raises(ValueError):
            mem.submit(0, size_bytes=0)
        with pytest.raises(ValueError):
            mem.submit(0, issue_time=-1)


class TestObservables:
    def test_sequential_stream_mostly_hits(self):
        mem = DetailedMemory()
        for i in range(200):
            mem.submit(i * 64, issue_time=i)
        fraction = observed_row_hit_fraction(mem.drain())
        assert fraction > 0.9

    def test_random_stream_mostly_misses(self):
        rng = random.Random(1)
        mem = DetailedMemory()
        for i in range(200):
            mem.submit(rng.randrange(0, 1 << 30) // 64 * 64, issue_time=i)
        fraction = observed_row_hit_fraction(mem.drain())
        assert fraction < 0.3

    def test_parallelism_grows_with_bank_spread(self):
        spread = DetailedMemory()
        for i in range(64):
            spread.submit((i % 16) * HBM_1_0.row_bytes
                          + (i // 16) * HBM_1_0.row_bytes * HBM_1_0.banks,
                          issue_time=0)
        focused = DetailedMemory()
        stride = HBM_1_0.row_bytes * HBM_1_0.banks
        for i in range(64):
            focused.submit(i * stride, issue_time=0)
        assert observed_parallelism(spread.drain()) > \
            observed_parallelism(focused.drain())

    def test_empty_observables(self):
        assert observed_row_hit_fraction([]) == 0.0
        assert observed_parallelism([]) == 0.0


class TestSummaryModelCrossValidation:
    """The burst model's knobs should bracket the detailed behaviour."""

    def test_burst_latency_within_factor_of_detailed(self):
        rng = random.Random(2)
        n = 128
        detailed = DetailedMemory()
        for _ in range(n):
            detailed.submit(rng.randrange(0, 1 << 26) // 16 * 16,
                            size_bytes=16, issue_time=0)
        completions = detailed.drain()
        detailed_makespan = max(c.finish_time for c in completions)
        hit_frac = observed_row_hit_fraction(completions)
        mlp = observed_parallelism(completions)

        summary = MemoryModel().burst_latency(
            total_bytes=n * 16, accesses=n,
            parallelism=max(1, int(round(mlp))),
            row_hit_fraction=hit_frac)
        assert summary == pytest.approx(detailed_makespan, rel=0.6)
