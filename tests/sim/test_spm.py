"""Tests for the Read SPM model."""

import pytest

from repro.sim.spm import Scratchpad


class TestScratchpad:
    def test_prefetch_then_hit(self):
        spm = Scratchpad(capacity=4)
        assert spm.prefetch(0)
        assert spm.fetch(0) == spm.read_latency
        assert spm.stats.hits == 1

    def test_miss_pays_dram(self):
        spm = Scratchpad(capacity=4, miss_penalty=45)
        assert spm.fetch(7) == 45
        assert spm.stats.misses == 1

    def test_fetch_frees_slot(self):
        spm = Scratchpad(capacity=1)
        spm.prefetch(0)
        assert not spm.prefetch(1)  # full
        spm.fetch(0)
        assert spm.prefetch(1)

    def test_duplicate_prefetch_idempotent(self):
        spm = Scratchpad(capacity=2)
        assert spm.prefetch(0)
        assert spm.prefetch(0)
        assert spm.occupancy == 1
        assert spm.stats.prefetches == 1

    def test_capacity_enforced(self):
        spm = Scratchpad(capacity=2)
        assert spm.prefetch(0) and spm.prefetch(1)
        assert not spm.prefetch(2)
        assert spm.free_slots == 0

    def test_evict(self):
        spm = Scratchpad(capacity=2)
        spm.prefetch(0)
        spm.evict(0)
        assert not spm.contains(0)
        assert spm.stats.evictions == 1
        spm.evict(99)  # no-op
        assert spm.stats.evictions == 1

    def test_hit_rate(self):
        spm = Scratchpad(capacity=4)
        spm.prefetch(0)
        spm.fetch(0)
        spm.fetch(1)
        assert spm.stats.hit_rate == pytest.approx(0.5)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            Scratchpad(capacity=0)
        with pytest.raises(ValueError):
            Scratchpad(read_latency=0)
