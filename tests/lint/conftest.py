"""Shared helpers for the ``repro.lint`` self-tests."""

import re
from pathlib import Path

import pytest

from repro.lint import Analyzer, LintConfig

FIXTURES = Path(__file__).parent / "fixtures"

#: ``# BAD: RULEID`` markers inside fixture files declare the expected
#: finding for their line, so every fixture pins true positives *and*
#: the absence of false positives on unmarked lines.
BAD_MARKER = re.compile(r"#\s*BAD:\s*([A-Z]+\d+)")


def expected_findings(fixture: Path):
    """Set of (line, rule_id) declared by # BAD markers."""
    expected = set()
    for lineno, line in enumerate(
            fixture.read_text(encoding="utf-8").splitlines(), start=1):
        for rule_id in BAD_MARKER.findall(line):
            expected.add((lineno, rule_id))
    return expected


def check_fixture(fixture: Path):
    """Run every rule over one fixture; return set of (line, rule_id)."""
    analyzer = Analyzer(LintConfig.everywhere())
    report = analyzer.check_source(
        fixture.name, fixture.read_text(encoding="utf-8"))
    assert not report.parse_errors, report.parse_errors
    return {(f.line, f.rule_id) for f in report.findings}


@pytest.fixture
def everywhere_analyzer():
    return Analyzer(LintConfig.everywhere())
