"""Flow fixture corpus: every flow rule fires where declared, nowhere else.

Flow rules are whole-program, so their fixtures are *case directories*
under ``tests/lint/fixtures/flow/`` — each a minimal multi-module
project (e.g. an async entry point in one module blocking through a
helper in another, or a producer/consumer pair whose wire fields
drifted). As in the per-file corpus, ``# BAD: RULEID`` markers pin the
exact finding lines; the meta-test pins that every registered flow rule
has a firing fixture.
"""

from pathlib import Path

import pytest

from repro.lint import LintConfig, all_flow_rules
from repro.lint.core import ModuleSource
from repro.lint.flow import run_flow_rules

from tests.lint.conftest import expected_findings

FLOW_FIXTURES = Path(__file__).parent / "fixtures" / "flow"
CASES = sorted(p for p in FLOW_FIXTURES.iterdir() if p.is_dir())


def case_sources(case: Path):
    """Parse every module of one fixture case, with case-relative paths
    so imports like ``from <case>.util import poll`` resolve."""
    sources = []
    for path in sorted(case.glob("*.py")):
        sources.append(ModuleSource.parse(
            f"{case.name}/{path.name}",
            path.read_text(encoding="utf-8")))
    return sources


def case_expected(case: Path):
    """Set of (path, line, rule_id) declared by the case's # BAD markers."""
    expected = set()
    for path in sorted(case.glob("*.py")):
        for line, rule_id in expected_findings(path):
            expected.add((f"{case.name}/{path.name}", line, rule_id))
    return expected


@pytest.mark.parametrize("case", CASES, ids=lambda p: p.name)
def test_flow_findings_match_markers_exactly(case: Path):
    expected = case_expected(case)
    assert expected, f"{case.name} declares no # BAD markers"
    findings = run_flow_rules(case_sources(case), LintConfig.everywhere())
    assert {(f.path, f.line, f.rule_id) for f in findings} == expected


def test_flow_corpus_exercises_every_flow_rule():
    fired = set()
    for case in CASES:
        fired.update(rule_id for _, _, rule_id in case_expected(case))
    missing = set(all_flow_rules()) - fired
    assert not missing, (
        f"flow rules with no firing fixture: {sorted(missing)} — add a "
        "# BAD-marked case to tests/lint/fixtures/flow/")


def test_select_restricts_flow_rules():
    """--select narrows the flow pass exactly like the per-file one."""
    case = FLOW_FIXTURES / "resources"
    findings = run_flow_rules(case_sources(case), LintConfig.everywhere(),
                              select=["RES401"])
    assert {f.rule_id for f in findings} == {"RES401"}
