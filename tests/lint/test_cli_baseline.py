"""`repro lint` CLI behaviour and the finding-baseline ratchet."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import Baseline
from repro.lint.core import Finding

BAD_SIM = textwrap.dedent("""\
    import random

    def jitter():
        return random.Random()
""")

CLEAN_SIM = textwrap.dedent("""\
    import random

    def jitter(seed):
        return random.Random(seed)
""")


@pytest.fixture
def project(tmp_path, monkeypatch):
    """A miniature project: pyproject scoping + one sim module."""
    (tmp_path / "pyproject.toml").write_text(textwrap.dedent("""\
        [tool.repro-lint.scopes]
        determinism = ["src/sim/*"]
    """))
    sim = tmp_path / "src" / "sim"
    sim.mkdir(parents=True)
    (sim / "engine.py").write_text(BAD_SIM)
    monkeypatch.chdir(tmp_path)
    return tmp_path


def test_exit_one_on_findings_text(project, capsys):
    assert main(["lint", "src"]) == 1
    out = capsys.readouterr().out
    assert "DET101" in out and "src/sim/engine.py:4" in out
    assert "FAIL" in out


def test_exit_zero_when_clean(project, capsys):
    (project / "src" / "sim" / "engine.py").write_text(CLEAN_SIM)
    assert main(["lint", "src"]) == 0
    assert "ok: 0 finding(s)" in capsys.readouterr().out


def test_json_output_shape(project, capsys):
    assert main(["lint", "--format", "json", "src"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert payload["files_checked"] == 1
    [finding] = payload["findings"]
    assert finding["rule_id"] == "DET101"
    assert finding["path"] == "src/sim/engine.py"
    assert finding["line"] == 4


def test_baseline_ratchet(project, capsys):
    # 1. accept the current findings as the baseline
    assert main(["lint", "--write-baseline", "lint-baseline.json",
                 "src"]) == 0
    # 2. baselined finding no longer fails the run
    assert main(["lint", "--baseline", "lint-baseline.json", "src"]) == 0
    out = capsys.readouterr().out
    assert "1 baselined" in out
    # 3. a *new* finding still fails
    (project / "src" / "sim" / "other.py").write_text(BAD_SIM)
    assert main(["lint", "--baseline", "lint-baseline.json", "src"]) == 1
    # 4. fixing the original finding surfaces the stale entry
    (project / "src" / "sim" / "engine.py").write_text(CLEAN_SIM)
    (project / "src" / "sim" / "other.py").write_text(CLEAN_SIM)
    assert main(["lint", "--baseline", "lint-baseline.json", "src"]) == 0
    assert "stale baseline entry" in capsys.readouterr().out


def test_write_baseline_prunes_stale_fingerprints(project, capsys):
    """Regression: a baseline carrying a fingerprint for since-deleted
    code must lose it on --write-baseline, not accrete it forever."""
    ghost = Finding(rule_id="DET101", rule_name="unseeded-rng",
                    path="src/sim/deleted.py", line=9, col=0,
                    message="m", source_line="rng = random.Random()")
    Baseline.from_findings([ghost]).save(Path("lint-baseline.json"))
    assert main(["lint", "--write-baseline", "lint-baseline.json",
                 "src"]) == 0
    out = capsys.readouterr().out
    assert "ratchet delta: +1 new, -1 pruned" in out
    text = Path("lint-baseline.json").read_text()
    assert "deleted.py" not in text and "engine.py" in text
    # an unchanged rewrite is a zero delta
    assert main(["lint", "--write-baseline", "lint-baseline.json",
                 "src"]) == 0
    assert "ratchet delta: +0 new, -0 pruned" in capsys.readouterr().out


def test_github_format_emits_error_annotations(project, capsys):
    assert main(["lint", "--format", "github", "src"]) == 1
    out = capsys.readouterr().out
    assert "::error file=src/sim/engine.py,line=4," in out
    assert "title=DET101 unseeded-rng" in out


def test_jobs_matches_serial_output(project, capsys):
    assert main(["lint", "src"]) == 1
    serial = capsys.readouterr().out
    assert main(["lint", "--jobs", "2", "src"]) == 1
    assert capsys.readouterr().out == serial


def test_jobs_zero_is_usage_error(project):
    assert main(["lint", "--jobs", "0", "src"]) == 2


def test_flow_findings_through_cli(project, capsys):
    """--flow (the default) surfaces whole-program findings; --no-flow
    restricts the run to per-file rules."""
    (project / "pyproject.toml").write_text(textwrap.dedent("""\
        [tool.repro-lint.scopes]
        determinism = ["nowhere/*"]
        async-safety = ["src/svc/*"]
    """))
    svc = project / "src" / "svc"
    svc.mkdir(parents=True)
    (svc / "util.py").write_text(textwrap.dedent("""\
        import time

        def backoff(seconds):
            time.sleep(seconds)
    """))
    (svc / "handlers.py").write_text(textwrap.dedent("""\
        from svc.util import backoff

        async def handle():
            backoff(1.0)
    """))
    assert main(["lint", "src"]) == 1
    out = capsys.readouterr().out
    assert "ASY301" in out and "src/svc/handlers.py:4" in out
    assert main(["lint", "--no-flow", "src"]) == 0


def test_missing_baseline_is_usage_error(project, capsys):
    assert main(["lint", "--baseline", "nope.json", "src"]) == 2


def test_unknown_select_is_usage_error(project):
    assert main(["lint", "--select", "DET999", "src"]) == 2


def test_list_rules(project, capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("DET101", "ASY201", "CFG301", "LINT001"):
        assert rule_id in out


def test_parse_error_fails_run(project, capsys):
    (project / "src" / "sim" / "broken.py").write_text("def broken(:\n")
    assert main(["lint", "src"]) == 1
    assert "parse error" in capsys.readouterr().out


class TestBaselineStore:
    def _finding(self, line=4, path="src/sim/engine.py"):
        return Finding(rule_id="DET101", rule_name="unseeded-rng",
                       path=path, line=line, col=11,
                       message="m", source_line="return random.Random()")

    def test_fingerprint_ignores_line_numbers(self, tmp_path: Path):
        baseline = Baseline.from_findings([self._finding(line=4)])
        path = tmp_path / "b.json"
        baseline.save(path)
        match = Baseline.load(path).match([self._finding(line=90)])
        assert match.new == [] and len(match.baselined) == 1

    def test_multiset_counts(self, tmp_path: Path):
        baseline = Baseline.from_findings([self._finding()])
        two = [self._finding(line=4), self._finding(line=9)]
        match = baseline.match(two)
        assert len(match.baselined) == 1 and len(match.new) == 1

    def test_stale_entries_reported(self):
        baseline = Baseline.from_findings([self._finding()])
        match = baseline.match([])
        assert len(match.stale) == 1
        assert match.stale[0]["rule_id"] == "DET101"
