"""Fixture: DET103 wall-clock — flagged lines end in # BAD."""

import os
import time
import uuid
from datetime import datetime


def stamp_result(result):
    result["at"] = time.time()  # BAD: DET103
    result["when"] = datetime.now()  # BAD: DET103
    result["id"] = uuid.uuid4()  # BAD: DET103
    result["salt"] = os.urandom(8)  # BAD: DET103
    return result


def measurement_clocks_are_fine():
    started = time.monotonic()
    t = time.perf_counter()
    return time.monotonic() - started + t
