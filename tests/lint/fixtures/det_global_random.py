"""Fixture: DET102 global-random — flagged lines end in # BAD."""

import random

import numpy as np


def draw_from_module():
    x = random.random()  # BAD: DET102
    y = random.randint(0, 10)  # BAD: DET102
    random.shuffle([1, 2, 3])  # BAD: DET102
    return x, y


def numpy_global():
    a = np.random.rand(4)  # BAD: DET102
    np.random.seed(0)  # BAD: DET102
    return a


def instance_draws_are_fine(rng):
    return rng.random() + rng.randint(0, 10)
