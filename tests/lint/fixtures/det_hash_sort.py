"""Fixture: DET105 hash-order-sort-key — flagged lines end in # BAD."""


def order_tasks(tasks):
    by_identity = sorted(tasks, key=id)  # BAD: DET105
    by_hash = sorted(tasks, key=lambda t: hash(t.name))  # BAD: DET105
    tasks.sort(key=lambda t: (t.prio, id(t)))  # BAD: DET105
    first = min(tasks, key=lambda t: hash(t))  # BAD: DET105
    return by_identity, by_hash, first


def stable_keys_are_fine(tasks):
    ordered = sorted(tasks, key=lambda t: (t.prio, t.name))
    tasks.sort(key=lambda t: t.arrival_cycle)
    return ordered
