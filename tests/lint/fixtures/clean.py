"""Fixture: a module no rule should fire on."""

import random

SCALE = 1e6


def deterministic_pipeline(seed, items):
    rng = random.Random(seed)
    ordered = sorted(set(items))
    sampled = [item for item in ordered if rng.random() < 0.5]
    return sampled


async def tidy_handler(batcher, request):
    future = batcher.submit(request)
    return await future
