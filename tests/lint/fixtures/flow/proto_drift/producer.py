"""Producer half of the wire-drift fixture."""

import json


def encode(seq, flags):
    obj = {
        "id": 7,
        "payload": "x" * seq,
        "debug": flags,  # BAD: PROTO501
    }
    return json.dumps(obj)


def encode_variant(seq):
    return json.dumps({"id": str(seq)})  # BAD: PROTO503
