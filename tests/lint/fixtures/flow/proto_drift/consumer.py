"""Consumer half of the wire-drift fixture."""

import json


def decode(line):
    obj = json.loads(line)
    ident = obj["id"]
    payload = obj.get("payload")
    trace = obj.get("trace")  # BAD: PROTO502
    return ident, payload, trace
