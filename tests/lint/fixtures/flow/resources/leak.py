"""Resource-lifecycle fixture: leaks and clean variants."""

import socket
import tempfile


def probe(host):
    sock = socket.create_connection((host, 80))  # BAD: RES401
    sock.sendall(b"ping")
    return True


def fetch(host):
    sock = socket.create_connection((host, 80))  # BAD: RES402
    sock.sendall(b"ping")
    data = sock.recv(1024)
    sock.close()
    return data


def spool():
    handle = tempfile.NamedTemporaryFile()  # BAD: RES401
    handle.write(b"scratch")


def clean_with(host):
    with socket.create_connection((host, 80)) as sock:
        sock.sendall(b"ping")


def clean_finally(host):
    sock = socket.create_connection((host, 80))
    try:
        sock.sendall(b"ping")
    finally:
        sock.close()


def clean_transfer(host):
    sock = socket.create_connection((host, 80))
    return sock
