"""Async entry point blocking through two sync hops (fixture)."""

import asyncio

from transitive_block.util import poll


async def handler():
    poll(0.25)  # BAD: ASY301
    await asyncio.sleep(0)
