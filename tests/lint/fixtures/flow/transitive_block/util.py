"""Sync helpers hiding a blocking sleep (fixture)."""

import time


def backoff(seconds):
    time.sleep(seconds)


def poll(seconds):
    backoff(seconds)
