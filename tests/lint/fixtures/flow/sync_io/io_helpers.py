"""Sync I/O helpers reached from coroutines (fixture)."""

from pathlib import Path


def load_config(path):
    with open(path) as handle:
        return handle.read()


def read_blob(path):
    return Path(path).read_text()
