"""Async entry points that reach sync file I/O (fixture)."""

from sync_io.io_helpers import load_config, read_blob


async def refresh(path):
    return load_config(path)  # BAD: ASY302


async def snapshot(path):
    blob = read_blob(path)  # BAD: ASY302
    return blob
