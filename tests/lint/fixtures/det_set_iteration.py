"""Fixture: DET104 set-iteration — flagged lines end in # BAD."""


def schedule(ready_ids, busy_ids):
    order = []
    for unit in set(ready_ids):  # BAD: DET104
        order.append(unit)
    order += [u for u in ready_ids if u in busy_ids]
    order += list({1, 2, 3})  # BAD: DET104
    order += [x for x in frozenset(busy_ids)]  # BAD: DET104
    for pair in set(ready_ids) & set(busy_ids):  # BAD: DET104
        order.append(pair)
    return order


def pinned_order_is_fine(ready_ids, busy_ids):
    order = []
    for unit in sorted(set(ready_ids)):
        order.append(unit)
    count = len(set(busy_ids))
    union = set(ready_ids) | set(busy_ids)
    return order, count, sorted(union)
