"""Fixture: ASY202 dropped-task — flagged lines end in # BAD."""

import asyncio


async def fire_and_forget(conn, payload):
    asyncio.create_task(send(conn, payload))  # BAD: ASY202
    asyncio.ensure_future(send(conn, payload))  # BAD: ASY202
    loop = asyncio.get_event_loop()
    loop.create_task(send(conn, payload))  # BAD: ASY202
    _ = asyncio.create_task(send(conn, payload))  # BAD: ASY202


async def kept_references_are_fine(conn, payload, tasks):
    task = asyncio.create_task(send(conn, payload))
    tasks.add(task)
    task.add_done_callback(tasks.discard)
    await asyncio.ensure_future(send(conn, payload))
    return task


async def send(conn, payload):
    await conn.write(payload)
