"""Fixture: the original ``genome/sequence.py`` unseeded-RNG bug,
verbatim — the corpus pins that DET101 catches it if reintroduced."""

import random

ALPHABET = "ACGT"


def random_sequence(length, rng=None, gc_content=0.5):
    if not 0.0 <= gc_content <= 1.0:
        raise ValueError(f"gc_content must be in [0, 1], got {gc_content}")
    rng = rng or random.Random()  # BAD: DET101
    weights = [(1 - gc_content) / 2, gc_content / 2,
               gc_content / 2, (1 - gc_content) / 2]
    return "".join(rng.choices(ALPHABET, weights=weights, k=length))


def mutate(sequence, rate, rng=None):
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"rate must be in [0, 1], got {rate}")
    rng = rng or random.Random()  # BAD: DET101
    out = []
    for base in sequence.upper():
        if rng.random() < rate:
            choices = [b for b in ALPHABET if b != base]
            out.append(rng.choice(choices))
        else:
            out.append(base)
    return "".join(out)
