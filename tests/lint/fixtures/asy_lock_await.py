"""Fixture: ASY203 lock-across-await — flagged lines end in # BAD."""

import asyncio
import threading

_lock = asyncio.Lock()
_thread_lock = threading.Lock()


async def held_across_await(writer, line):
    async with _lock:  # BAD: ASY203
        writer.write(line)
        await writer.drain()


async def thread_lock_is_worse(writer, line):
    with _thread_lock:  # BAD: ASY203
        await writer.drain()


async def narrow_sections_are_fine(state, writer, line):
    async with _lock:
        state.count += 1
    await writer.drain()
    with _thread_lock:
        state.count += 1
