"""Fixture: DET101 unseeded-rng — every flagged line ends in # BAD."""

import random

import numpy as np
from numpy.random import default_rng


def fresh_rng():
    return random.Random()  # BAD: DET101


def fresh_generator():
    return np.random.default_rng()  # BAD: DET101


def imported_ctor():
    return default_rng()  # BAD: DET101


def seeded_is_fine(seed):
    a = random.Random(seed)
    b = np.random.default_rng(seed)
    c = default_rng(12345)
    return a, b, c
