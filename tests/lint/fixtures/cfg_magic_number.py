"""Fixture: CFG301 magic-number — flagged lines end in # BAD."""

CYCLES_PER_ACCESS = 4
NS_PER_S = 1e9
BUFFER_DEPTH_DEFAULT = 1024  # module-level constants are the blessed home


def seeding_cycles(accesses):
    return accesses * 17  # BAD: CFG301


def throughput(cycles, frequency_hz):
    seconds = cycles / frequency_hz
    return 49150.0 / seconds  # BAD: CFG301


def named_flows_are_fine(accesses, depth=BUFFER_DEPTH_DEFAULT):
    cycles = accesses * CYCLES_PER_ACCESS
    halves = cycles / 2
    return cycles + depth - halves
