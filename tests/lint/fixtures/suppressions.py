"""Fixture: inline suppressions — one used, one unused (LINT001)."""

import random


def deliberately_unseeded():
    # This entropy is *meant* to differ per call (an example of a
    # justified, documented suppression).
    return random.Random()  # repro-lint: disable=DET101


def suppressed_by_name():
    return random.Random()  # repro-lint: disable=unseeded-rng


def clean_line_with_suppression(seed):
    return random.Random(seed)  # repro-lint: disable=DET101
