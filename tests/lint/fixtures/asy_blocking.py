"""Fixture: ASY201 blocking-call-in-async — flagged lines end in # BAD."""

import asyncio
import queue
import subprocess
import time

work_q = queue.Queue()


async def handler(request):
    time.sleep(0.1)  # BAD: ASY201
    subprocess.run(["aligner", request.path])  # BAD: ASY201
    with open(request.path) as fh:  # BAD: ASY201
        data = fh.read()
    item = work_q.get()  # BAD: ASY201
    return data, item


async def nonblocking_is_fine(loop):
    await asyncio.sleep(0.1)
    data = await loop.run_in_executor(None, expensive)
    return data


def sync_helpers_are_fine(path):
    time.sleep(0.01)
    with open(path) as fh:
        return fh.read()


def expensive():
    return 42
