"""The fixture corpus: every rule fires where declared and nowhere else.

Each fixture marks its intentionally-bad lines with ``# BAD: RULEID``;
the corpus test asserts the analyzer's findings match those markers
*exactly* — a missing finding is a false negative, an extra one a false
positive. A meta-test asserts the corpus exercises every registered
rule, so adding a rule without a fixture fails CI.
"""

from pathlib import Path

import pytest

from repro.lint import all_rules
from repro.lint.core import UNUSED_SUPPRESSION_ID

from tests.lint.conftest import FIXTURES, check_fixture, expected_findings

MARKED_FIXTURES = sorted(
    p for p in FIXTURES.glob("*.py")
    if p.name not in ("clean.py", "suppressions.py"))


@pytest.mark.parametrize("fixture", MARKED_FIXTURES,
                         ids=lambda p: p.stem)
def test_findings_match_markers_exactly(fixture: Path):
    expected = expected_findings(fixture)
    assert expected, f"{fixture.name} declares no # BAD markers"
    assert check_fixture(fixture) == expected


def test_clean_fixture_has_no_findings():
    assert check_fixture(FIXTURES / "clean.py") == set()


def test_suppressions_fixture():
    """Two justified suppressions hold; the pointless one is reported."""
    findings = check_fixture(FIXTURES / "suppressions.py")
    assert findings == {(17, UNUSED_SUPPRESSION_ID)}


def test_corpus_exercises_every_rule():
    fired = set()
    for fixture in FIXTURES.glob("*.py"):
        fired.update(rule_id for _, rule_id in expected_findings(fixture))
    fired.add(UNUSED_SUPPRESSION_ID)  # pinned by test_suppressions_fixture
    missing = (set(all_rules()) | {UNUSED_SUPPRESSION_ID}) - fired
    assert not missing, (
        f"rules with no firing fixture: {sorted(missing)} — add a "
        "# BAD-marked example to tests/lint/fixtures/")


def test_catches_the_original_sequence_bug():
    """Acceptance criterion: reintroducing the historical
    ``rng = rng or random.Random()`` pattern from genome/sequence.py
    is caught by DET101."""
    findings = check_fixture(FIXTURES / "genome_sequence_regression.py")
    det101_lines = {line for line, rule_id in findings
                    if rule_id == "DET101"}
    assert len(det101_lines) == 2  # once in random_sequence, once in mutate
