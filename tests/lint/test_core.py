"""Engine-level tests: aliases, suppressions, scoping, config parsing."""

import textwrap

from repro.lint import Analyzer, LintConfig, all_rules
from repro.lint.config import DEFAULT_SCOPES, _parse_toml_subset
from repro.lint.core import UNUSED_SUPPRESSION_ID, collect_aliases

import ast


def _findings(source, path="src/repro/sim/x.py", config=None, select=None):
    analyzer = Analyzer(config or LintConfig.everywhere(), select=select)
    report = analyzer.check_source(path, textwrap.dedent(source))
    assert not report.parse_errors
    return report.findings


class TestAliases:
    def test_import_as(self):
        tree = ast.parse("import numpy as np\nimport random as rnd\n")
        aliases = collect_aliases(tree)
        assert aliases["np"] == "numpy"
        assert aliases["rnd"] == "random"

    def test_from_import(self):
        tree = ast.parse("from numpy.random import default_rng as mk\n")
        assert collect_aliases(tree)["mk"] == "numpy.random.default_rng"

    def test_aliased_call_still_caught(self):
        findings = _findings("""
            import random as rnd
            def f():
                return rnd.Random()
        """)
        assert [f.rule_id for f in findings] == ["DET101"]


class TestSuppressions:
    def test_suppression_by_id_and_name(self):
        for marker in ("DET101", "unseeded-rng", "all"):
            findings = _findings(f"""
                import random
                def f():
                    return random.Random()  # repro-lint: disable={marker}
            """)
            assert findings == []

    def test_wrong_rule_does_not_suppress(self):
        findings = _findings("""
            import random
            def f():
                return random.Random()  # repro-lint: disable=DET103
        """)
        ids = sorted(f.rule_id for f in findings)
        # the finding survives AND the suppression is reported unused
        assert ids == ["DET101", UNUSED_SUPPRESSION_ID]

    def test_multiple_rules_one_comment(self):
        findings = _findings("""
            import random, time
            def f():
                return random.Random(int(time.time()))  # repro-lint: disable=DET101,DET103
        """)
        # DET103 fires on time.time() and is suppressed; DET101 does not
        # fire (seeded) so that entry is unused — but the comment as a
        # whole matched something, so no LINT001.
        assert findings == []

    def test_unknown_rule_name_reported(self):
        findings = _findings("""
            def f():
                return 1  # repro-lint: disable=DET999
        """)
        assert [f.rule_id for f in findings] == [UNUSED_SUPPRESSION_ID]
        assert "DET999" in findings[0].message


class TestScoping:
    def test_default_scopes_route_categories(self):
        config = LintConfig()
        rules = {cls.name: cls for cls in all_rules().values()}
        assert config.applies(rules["unseeded-rng"],
                              "src/repro/sim/engine.py")
        assert not config.applies(rules["unseeded-rng"],
                                  "src/repro/service/server.py")
        assert config.applies(rules["blocking-call-in-async"],
                              "src/repro/service/server.py")
        assert not config.applies(rules["blocking-call-in-async"],
                                  "src/repro/sim/engine.py")
        assert config.applies(rules["magic-number"],
                              "src/repro/hw/popcount.py")

    def test_out_of_scope_file_yields_nothing(self):
        findings = _findings("""
            import random
            def f():
                return random.Random()
        """, path="src/repro/service/server.py", config=LintConfig())
        assert findings == []

    def test_exclude_wins(self):
        config = LintConfig.everywhere()
        config.exclude = ["tests/lint/fixtures/*"]
        findings = _findings("""
            import random
            def f():
                return random.Random()
        """, path="tests/lint/fixtures/bad.py", config=config)
        assert findings == []

    def test_select_restricts_rules(self):
        source = """
            import random, time
            def f():
                return random.Random(), time.time()
        """
        assert {f.rule_id for f in _findings(source)} == {"DET101",
                                                          "DET103"}
        assert {f.rule_id for f in _findings(source, select=["DET101"])} \
            == {"DET101"}

    def test_disable_list(self):
        config = LintConfig.everywhere()
        config.disable = ["wall-clock"]
        findings = _findings("""
            import time
            def f():
                return time.time()
        """, config=config)
        assert findings == []


class TestConfigParsing:
    TOML = textwrap.dedent("""
        [project]
        name = "repro"

        [tool.repro-lint]
        exclude = ["tests/lint/fixtures/*"]
        disable = ["DET104"]

        [tool.repro-lint.scopes]
        determinism = [
            "src/repro/sim/*",
            "src/repro/genome/*",
        ]
        async-safety = ["src/repro/service/*"]

        [tool.ruff]
        line-length = 100
    """)

    def test_from_toml_text(self):
        config = LintConfig.from_toml_text(self.TOML)
        assert config.exclude == ["tests/lint/fixtures/*"]
        assert config.disable == ["DET104"]
        assert config.scopes["determinism"] == [
            "src/repro/sim/*", "src/repro/genome/*"]
        assert config.scopes["async-safety"] == ["src/repro/service/*"]
        # unconfigured categories keep their defaults
        assert config.scopes["config-hygiene"] == \
            DEFAULT_SCOPES["config-hygiene"]

    def test_subset_parser_agrees(self):
        """The 3.9 fallback parser must read what tomllib reads."""
        table = _parse_toml_subset(self.TOML)
        assert table["exclude"] == ["tests/lint/fixtures/*"]
        assert table["disable"] == ["DET104"]
        assert table["scopes"]["determinism"] == [
            "src/repro/sim/*", "src/repro/genome/*"]
        assert table["scopes"]["async-safety"] == ["src/repro/service/*"]

    def test_repo_pyproject_loads(self):
        """The checked-in pyproject.toml scoping parses and scopes the
        real tree the way CI relies on."""
        from pathlib import Path
        root = Path(__file__).resolve().parents[2]
        config = LintConfig.from_pyproject(root / "pyproject.toml")
        rules = {cls.name: cls for cls in all_rules().values()}
        assert config.applies(rules["unseeded-rng"],
                              "src/repro/genome/sequence.py")
        assert not config.applies(rules["unseeded-rng"],
                                  "tests/lint/fixtures/det_unseeded_rng.py")
