"""End-to-end CLI tests."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def dataset(tmp_path_factory):
    """A simulated reference + reads pair on disk."""
    prefix = tmp_path_factory.mktemp("cli") / "toy"
    code = main(["simulate", "--length", "20000", "--reads", "30",
                 "--out-prefix", str(prefix)])
    assert code == 0
    return prefix


class TestSimulate:
    def test_files_written(self, dataset):
        assert (dataset.parent / "toy.fa").exists()
        assert (dataset.parent / "toy.fq").exists()

    def test_fasta_parses(self, dataset):
        from repro.genome.io import read_reference
        ref = read_reference(f"{dataset}.fa")
        assert len(ref) == 20_000


class TestAlign:
    def test_align_writes_sam(self, dataset, tmp_path, capsys):
        sam = tmp_path / "out.sam"
        code = main(["align", "--reference", f"{dataset}.fa",
                     "--reads", f"{dataset}.fq", "--out", str(sam)])
        assert code == 0
        captured = capsys.readouterr().out
        assert "mapped" in captured
        content = sam.read_text()
        assert content.startswith("@HD")
        body = [l for l in content.strip().split("\n")
                if not l.startswith("@")]
        assert len(body) == 30

    def test_long_mode_runs(self, tmp_path, capsys):
        prefix = tmp_path / "long"
        main(["simulate", "--length", "30000", "--reads", "5",
              "--read-length", "800", "--error-rate", "0.01",
              "--out-prefix", str(prefix)])
        code = main(["align", "--reference", f"{prefix}.fa",
                     "--reads", f"{prefix}.fq", "--long"])
        assert code == 0
        assert "long-read mode" in capsys.readouterr().out


class TestIndexCommands:
    @pytest.fixture(scope="class")
    def index_file(self, dataset, tmp_path_factory):
        path = tmp_path_factory.mktemp("idx") / "toy.idx"
        code = main(["index", "build", "--reference", f"{dataset}.fa",
                     "--out", str(path)])
        assert code == 0
        return path

    def test_build_reports_hash(self, dataset, tmp_path, capsys):
        out = tmp_path / "fresh.idx"
        code = main(["index", "build", "--reference", f"{dataset}.fa",
                     "--out", str(out)])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "built" in stdout and "content hash:" in stdout
        assert out.exists()

    def test_verify_passes_on_healthy_store(self, index_file, capsys):
        code = main(["index", "verify", str(index_file)])
        assert code == 0
        assert capsys.readouterr().out.startswith("ok:")

    def test_verify_fails_on_truncation(self, index_file, tmp_path,
                                        capsys):
        import shutil
        victim = tmp_path / "torn.idx"
        shutil.copy(index_file, victim)
        with open(victim, "r+b") as handle:
            handle.truncate(victim.stat().st_size // 2)
        code = main(["index", "verify", str(victim)])
        assert code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_inspect_emits_json(self, index_file, capsys):
        import json
        code = main(["index", "inspect", str(index_file)])
        assert code == 0
        desc = json.loads(capsys.readouterr().out)
        assert desc["meta"]["text_length"] == 20_000
        assert any(spec["name"] == "fwd_bwt" for spec in desc["arrays"])

    def test_align_with_index_matches_plain(self, dataset, index_file,
                                            tmp_path, capsys):
        plain = tmp_path / "plain.sam"
        mapped = tmp_path / "mapped.sam"
        assert main(["align", "--reference", f"{dataset}.fa",
                     "--reads", f"{dataset}.fq",
                     "--out", str(plain)]) == 0
        assert main(["align", "--reference", f"{dataset}.fa",
                     "--reads", f"{dataset}.fq", "--index",
                     str(index_file), "--out", str(mapped)]) == 0
        capsys.readouterr()
        assert plain.read_text() == mapped.read_text()

    def test_align_rejects_foreign_index(self, dataset, tmp_path):
        other = tmp_path / "other"
        main(["simulate", "--length", "5000", "--reads", "1",
              "--out-prefix", str(other)])
        foreign = tmp_path / "other.idx"
        assert main(["index", "build", "--reference", f"{other}.fa",
                     "--out", str(foreign)]) == 0
        with pytest.raises(SystemExit, match="different"):
            main(["align", "--reference", f"{dataset}.fa",
                  "--reads", f"{dataset}.fq", "--index", str(foreign)])


class TestAccelerate:
    def test_synthetic(self, capsys):
        code = main(["accelerate", "--dataset", "C.e.", "--reads", "150"])
        assert code == 0
        out = capsys.readouterr().out
        assert "NvWa:" in out and "SUs+EUs:" in out
        assert "scheduling speedup" in out

    def test_from_files(self, dataset, capsys):
        code = main(["accelerate", "--reference", f"{dataset}.fa",
                     "--reads-file", f"{dataset}.fq"])
        assert code == 0
        assert "scheduling speedup" in capsys.readouterr().out


class TestTraceOut:
    @pytest.fixture(autouse=True)
    def _reset_tracer(self):
        yield
        from repro import obs
        obs.configure(enabled=False)

    def test_align_trace_out(self, dataset, tmp_path, capsys):
        from repro.obs import validate_trace_file
        trace_path = tmp_path / "align-trace.json"
        code = main(["align", "--reference", f"{dataset}.fa",
                     "--reads", f"{dataset}.fq",
                     "--trace-out", str(trace_path)])
        assert code == 0
        assert "wrote trace" in capsys.readouterr().out
        trace = validate_trace_file(str(trace_path))
        names = {e["name"] for e in trace["traceEvents"]
                 if e.get("ph") == "X"}
        assert {"align_read", "seeding", "extension"} <= names

    def test_accelerate_trace_out_includes_utilization(
            self, tmp_path, capsys):
        from repro.obs import validate_trace_file
        trace_path = tmp_path / "accel-trace.json"
        code = main(["accelerate", "--dataset", "C.e.", "--reads", "100",
                     "--trace-out", str(trace_path)])
        assert code == 0
        assert "scheduling speedup" in capsys.readouterr().out
        trace = validate_trace_file(str(trace_path))
        events = trace["traceEvents"]
        processes = {e["args"]["name"] for e in events
                     if e.get("name") == "process_name"}
        assert {"NvWa SUs", "NvWa EUs",
                "SUs+EUs SUs", "SUs+EUs EUs"} <= processes
        assert any(e.get("name") == "busy" for e in events)

    def test_accelerate_trace_matches_untraced_numbers(self, capsys):
        """The direct-run trace path must not change the printed
        simulation results."""
        main(["accelerate", "--dataset", "C.e.", "--reads", "100"])
        plain = capsys.readouterr().out

        import tempfile
        with tempfile.TemporaryDirectory() as tmp:
            main(["accelerate", "--dataset", "C.e.", "--reads", "100",
                  "--trace-out", f"{tmp}/t.json"])
        traced = capsys.readouterr().out
        keep = [line for line in plain.splitlines()
                if "cycles" in line or "speedup" in line]
        for line in keep:
            assert line in traced


class TestObsCommand:
    def test_validate_accepts_good_trace(self, tmp_path, capsys):
        import json
        trace = {"traceEvents": [
            {"name": "a", "ph": "X", "ts": 0, "dur": 2,
             "pid": 0, "tid": 0},
        ]}
        path = tmp_path / "t.json"
        path.write_text(json.dumps(trace))
        assert main(["obs", "validate", str(path)]) == 0
        assert "ok:" in capsys.readouterr().out

    def test_validate_rejects_bad_trace(self, tmp_path, capsys):
        import json
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"traceEvents": []}))
        assert main(["obs", "validate", str(path)]) == 1
        assert "FAIL" in capsys.readouterr().out
        path.write_text("not json at all")
        assert main(["obs", "validate", str(path)]) == 1

    def test_export_from_stats_json(self, tmp_path, capsys):
        import json
        stats = {"metrics": {"counters": {"requests_total": 9},
                             "gauges": {},
                             "histograms": {}}}
        path = tmp_path / "stats.json"
        path.write_text(json.dumps(stats))
        assert main(["obs", "export", "--stats-json", str(path)]) == 0
        out = capsys.readouterr().out
        assert "repro_requests_total 9" in out

    def test_export_to_file_with_prefix(self, tmp_path, capsys):
        import json
        stats = {"counters": {"hits": 2}}
        src = tmp_path / "stats.json"
        src.write_text(json.dumps(stats))
        dst = tmp_path / "metrics.prom"
        assert main(["obs", "export", "--stats-json", str(src),
                     "--prefix", "svc_", "--out", str(dst)]) == 0
        assert "svc_hits 2" in dst.read_text()

    def test_export_requires_a_source(self, capsys):
        with pytest.raises(SystemExit):
            main(["obs", "export"])
        assert "--connect or --stats-json" in capsys.readouterr().err


class TestExperiments:
    def test_selected_quick(self, capsys):
        code = main(["experiments", "fig07", "table2", "--quick"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out and "Table II" in out


def _module_env():
    """Subprocess env whose PYTHONPATH resolves repro from anywhere."""
    import os

    import repro
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


class TestModuleEntryPoint:
    """Satellite: ``python -m repro`` works without the console script."""

    def test_python_m_repro_simulate(self, tmp_path):
        import subprocess
        import sys
        result = subprocess.run(
            [sys.executable, "-m", "repro", "simulate", "--length", "5000",
             "--reads", "3", "--out-prefix", str(tmp_path / "m")],
            capture_output=True, text=True, env=_module_env())
        assert result.returncode == 0, result.stderr
        assert (tmp_path / "m.fa").exists()

    def test_python_m_repro_help(self):
        import subprocess
        import sys
        result = subprocess.run([sys.executable, "-m", "repro", "--help"],
                                capture_output=True, text=True,
                                env=_module_env())
        assert result.returncode == 0
        for verb in ("simulate", "align", "serve", "loadgen"):
            assert verb in result.stdout


class TestInputValidation:
    def test_parallelism_below_one_rejected(self, dataset, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["align", "--reference", f"{dataset}.fa",
                  "--reads", f"{dataset}.fq", "--parallelism", "0"])
        assert excinfo.value.code == 2
        assert "--parallelism must be >= 1" in capsys.readouterr().err

    def test_negative_parallelism_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["experiments", "fig07", "--quick",
                  "--parallelism", "-3"])
        assert "--parallelism must be >= 1" in capsys.readouterr().err

    def test_missing_cache_dir_parent_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["accelerate", "--cache-dir",
                  "/nonexistent-root/deeper/cache"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--cache-dir parent directory does not exist" in err

    def test_existing_cache_dir_parent_accepted(self, tmp_path, capsys):
        code = main(["accelerate", "--dataset", "C.e.", "--reads", "100",
                     "--cache-dir", str(tmp_path / "fresh-cache")])
        assert code == 0
        assert "scheduling speedup" in capsys.readouterr().out

    def test_loadgen_requires_a_read_source(self, capsys):
        with pytest.raises(SystemExit):
            main(["loadgen", "--connect", "127.0.0.1:1"])
        assert "--reference or --reads-file" in capsys.readouterr().err

    def test_serve_rejects_bad_knobs(self, dataset, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--reference", f"{dataset}.fa",
                  "--max-batch", "0"])
        assert "--max-batch must be >= 1" in capsys.readouterr().err


class TestServeLoadgenEndToEnd:
    @pytest.mark.integration
    def test_serve_and_loadgen_over_unix_socket(self, dataset, tmp_path,
                                                capsys):
        """The CLI pair end to end: serve on a UNIX socket in a thread,
        then loadgen against it."""
        import threading

        sock = str(tmp_path / "svc.sock")
        server_done = threading.Event()

        def serve_thread():
            import asyncio

            from repro.genome.io import read_reference
            from repro.service.server import (AlignmentServer,
                                              ServerConfig)

            async def body():
                server = AlignmentServer(
                    read_reference(f"{dataset}.fa"),
                    config=ServerConfig(unix_path=sock,
                                        stats_interval_s=0))
                await server.start()
                started.set()
                while not stop_flag:
                    await asyncio.sleep(0.05)
                await server.shutdown(drain=True)

            asyncio.run(body())
            server_done.set()

        started = threading.Event()
        stop_flag = []
        thread = threading.Thread(target=serve_thread, daemon=True)
        thread.start()
        assert started.wait(timeout=30), "server never came up"
        try:
            code = main(["loadgen", "--connect", f"unix:{sock}",
                         "--reference", f"{dataset}.fa",
                         "--requests", "40", "--concurrency", "16",
                         "--wait-ready", "10", "--max-p99-ms", "30000"])
        finally:
            stop_flag.append(True)
            server_done.wait(timeout=30)
        assert code == 0
        out = capsys.readouterr().out
        assert "dropped 0" in out
        assert "errors 0" in out
