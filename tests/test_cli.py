"""End-to-end CLI tests."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def dataset(tmp_path_factory):
    """A simulated reference + reads pair on disk."""
    prefix = tmp_path_factory.mktemp("cli") / "toy"
    code = main(["simulate", "--length", "20000", "--reads", "30",
                 "--out-prefix", str(prefix)])
    assert code == 0
    return prefix


class TestSimulate:
    def test_files_written(self, dataset):
        assert (dataset.parent / "toy.fa").exists()
        assert (dataset.parent / "toy.fq").exists()

    def test_fasta_parses(self, dataset):
        from repro.genome.io import read_reference
        ref = read_reference(f"{dataset}.fa")
        assert len(ref) == 20_000


class TestAlign:
    def test_align_writes_sam(self, dataset, tmp_path, capsys):
        sam = tmp_path / "out.sam"
        code = main(["align", "--reference", f"{dataset}.fa",
                     "--reads", f"{dataset}.fq", "--out", str(sam)])
        assert code == 0
        captured = capsys.readouterr().out
        assert "mapped" in captured
        content = sam.read_text()
        assert content.startswith("@HD")
        body = [l for l in content.strip().split("\n")
                if not l.startswith("@")]
        assert len(body) == 30

    def test_long_mode_runs(self, tmp_path, capsys):
        prefix = tmp_path / "long"
        main(["simulate", "--length", "30000", "--reads", "5",
              "--read-length", "800", "--error-rate", "0.01",
              "--out-prefix", str(prefix)])
        code = main(["align", "--reference", f"{prefix}.fa",
                     "--reads", f"{prefix}.fq", "--long"])
        assert code == 0
        assert "long-read mode" in capsys.readouterr().out


class TestAccelerate:
    def test_synthetic(self, capsys):
        code = main(["accelerate", "--dataset", "C.e.", "--reads", "150"])
        assert code == 0
        out = capsys.readouterr().out
        assert "NvWa:" in out and "SUs+EUs:" in out
        assert "scheduling speedup" in out

    def test_from_files(self, dataset, capsys):
        code = main(["accelerate", "--reference", f"{dataset}.fa",
                     "--reads-file", f"{dataset}.fq"])
        assert code == 0
        assert "scheduling speedup" in capsys.readouterr().out


class TestExperiments:
    def test_selected_quick(self, capsys):
        code = main(["experiments", "fig07", "table2", "--quick"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out and "Table II" in out
