"""Prometheus text exposition of metrics snapshots."""

from repro.obs.prom import metric_name, prometheus_text
from repro.service.metrics import MetricsRegistry


class TestMetricName:
    def test_dots_and_dashes_sanitized(self):
        assert metric_name("latency_s.p50") == "repro_latency_s_p50"
        assert metric_name("queue-depth") == "repro_queue_depth"

    def test_custom_prefix(self):
        assert metric_name("x", prefix="svc_") == "svc_x"

    def test_leading_digit_guarded(self):
        assert metric_name("9lives", prefix="") == "_9lives"


class TestPrometheusText:
    def test_counters_and_gauges(self):
        text = prometheus_text({"counters": {"requests_total": 5},
                                "gauges": {"queue_depth": 2}})
        assert "# TYPE repro_requests_total counter" in text
        assert "repro_requests_total 5" in text
        assert "# TYPE repro_queue_depth gauge" in text
        assert "repro_queue_depth 2" in text
        assert text.endswith("\n")

    def test_histogram_as_summary(self):
        snapshot = {"histograms": {"latency_s": {
            "count": 4, "sum": 2.0, "mean": 0.5, "max": 1.0,
            "p50": 0.4, "p95": 0.9, "p99": 0.99}}}
        text = prometheus_text(snapshot)
        assert "# TYPE repro_latency_s summary" in text
        assert 'repro_latency_s{quantile="0.5"} 0.4' in text
        assert 'repro_latency_s{quantile="0.95"} 0.9' in text
        assert 'repro_latency_s{quantile="0.99"} 0.99' in text
        assert "repro_latency_s_sum 2.0" in text
        assert "repro_latency_s_count 4" in text
        assert "repro_latency_s_max 1.0" in text

    def test_sum_reconstructed_from_mean_for_old_snapshots(self):
        snapshot = {"histograms": {"h": {"count": 4, "mean": 0.5,
                                         "p50": 0.5}}}
        text = prometheus_text(snapshot)
        assert "repro_h_sum 2.0" in text

    def test_empty_snapshot(self):
        assert prometheus_text({}) == ""

    def test_tolerates_stats_payload_extras(self):
        text = prometheus_text({"counters": {"a": 1},
                                "uptime_s": 12.5,
                                "batcher": {"submitted": 3}})
        assert "repro_a 1" in text
        assert "uptime" not in text

    def test_registry_round_trip(self):
        registry = MetricsRegistry()
        registry.inc("requests_total", 3)
        registry.set_gauge("in_flight", 1)
        for value in (0.1, 0.2, 0.3, 0.4):
            registry.observe("latency_s", value)
        text = registry.prometheus_text()
        assert "repro_requests_total 3" in text
        assert "repro_in_flight 1" in text
        assert "repro_latency_s_count 4" in text
        assert "repro_latency_s_sum 1.0" in text

    def test_registry_custom_prefix(self):
        registry = MetricsRegistry()
        registry.inc("x")
        assert "svc_x 1" in registry.prometheus_text(prefix="svc_")

    def test_each_series_parses(self):
        """Every sample line must be `name{labels} value` shaped."""
        registry = MetricsRegistry()
        registry.inc("requests_total")
        registry.observe("latency_s", 0.5)
        for line in registry.prometheus_text().strip().splitlines():
            if line.startswith("#"):
                parts = line.split()
                assert parts[1] == "TYPE"
                assert parts[3] in ("counter", "gauge", "summary")
                continue
            name, value = line.rsplit(" ", 1)
            float(value)
            assert name[0].isalpha() or name[0] == "_"
