"""Chrome trace export, validation, and the simulator bridge."""

import json

import pytest

from repro.obs import (
    TraceValidationError,
    chrome_trace,
    span_index,
    trace_problems,
    utilization_events,
    validate_trace_file,
    write_chrome_trace,
)
from repro.obs.tracer import Tracer
from repro.sim.stats import UtilizationTrace


def _tracer_with_spans():
    tracer = Tracer()
    with tracer.span("outer", "t"):
        with tracer.span("inner", "t"):
            pass
    return tracer


class TestChromeTrace:
    def test_structure_and_metadata_first(self):
        trace = chrome_trace(_tracer_with_spans(), process_name="unit")
        events = trace["traceEvents"]
        assert events[0]["ph"] == "M"
        assert events[0]["args"]["name"] == "unit"
        assert trace["displayTimeUnit"] == "ms"
        assert trace["otherData"]["producer"] == "repro.obs"
        assert trace["otherData"]["dropped_events"] == 0
        spans = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in spans} == {"outer", "inner"}

    def test_events_sorted_by_ts_within_pid(self):
        tracer = Tracer()
        # Spans close inner-first, so raw record order is ts-descending.
        with tracer.span("a", "t"):
            with tracer.span("b", "t"):
                pass
        events = [e for e in chrome_trace(tracer)["traceEvents"]
                  if e["ph"] != "M"]
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)
        assert trace_problems(chrome_trace(tracer)) == []

    def test_extra_events_merge(self):
        extra = [{"name": "busy", "ph": "X", "ts": 1.0, "dur": 2.0,
                  "pid": 7, "tid": 0, "args": {}}]
        trace = chrome_trace(_tracer_with_spans(), extra_events=extra)
        assert any(e.get("pid") == 7 for e in trace["traceEvents"])
        assert trace_problems(trace) == []

    def test_write_and_validate_roundtrip(self, tmp_path):
        path = tmp_path / "trace.json"
        written = write_chrome_trace(str(path), _tracer_with_spans())
        loaded = validate_trace_file(str(path))
        assert loaded == json.loads(json.dumps(written))

    def test_span_index(self):
        tracer = _tracer_with_spans()
        trace = chrome_trace(tracer)
        index = span_index(trace)
        assert len(index) == 2
        inner = next(e for e in trace["traceEvents"]
                     if e.get("name") == "inner")
        assert index[inner["args"]["parent_id"]]["name"] == "outer"


class TestValidation:
    def test_empty_trace_is_invalid(self):
        assert trace_problems({"traceEvents": []})
        assert trace_problems({}) == \
            ["top-level object has no traceEvents list"]

    def test_metadata_only_trace_is_invalid(self):
        meta = {"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
                "ts": 0, "args": {"name": "x"}}
        assert trace_problems({"traceEvents": [meta]})

    def test_array_form_accepted(self):
        events = [{"name": "a", "ph": "X", "ts": 0, "dur": 1,
                   "pid": 0, "tid": 0}]
        assert trace_problems(events) == []

    def test_backwards_ts_within_tid_flagged(self):
        events = [
            {"name": "a", "ph": "X", "ts": 10, "dur": 1, "pid": 0, "tid": 0},
            {"name": "b", "ph": "X", "ts": 5, "dur": 1, "pid": 0, "tid": 0},
        ]
        problems = trace_problems(events)
        assert any("goes backwards" in p for p in problems)

    def test_backwards_ts_on_other_tid_ok(self):
        events = [
            {"name": "a", "ph": "X", "ts": 10, "dur": 1, "pid": 0, "tid": 0},
            {"name": "b", "ph": "X", "ts": 5, "dur": 1, "pid": 0, "tid": 1},
        ]
        assert trace_problems(events) == []

    def test_bad_phase_missing_dur_negative_ts(self):
        events = [
            {"name": "a", "ph": "Z", "ts": 0},
            {"name": "b", "ph": "X", "ts": 0},
            {"name": "c", "ph": "X", "ts": -1, "dur": 1},
            {"ph": "X", "ts": 0, "dur": 1},
        ]
        problems = trace_problems(events)
        assert len(problems) >= 4

    def test_validate_file_raises_on_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json")
        with pytest.raises(TraceValidationError):
            validate_trace_file(str(path))
        path.write_text(json.dumps({"traceEvents": []}))
        with pytest.raises(TraceValidationError):
            validate_trace_file(str(path))


class TestUtilizationBridge:
    def test_busy_intervals_become_complete_events(self):
        util = UtilizationTrace(2, name="SUs")
        util.begin(0, 0)
        util.begin(1, 10)
        util.end(1, 30)
        util.end(0, 100)
        events = utilization_events(util, pid=5, us_per_cycle=0.5)
        meta = [e for e in events if e["ph"] == "M"]
        busy = [e for e in events if e["ph"] == "X"]
        assert meta[0]["args"]["name"] == "sim:SUs"
        assert len(busy) == 2
        assert all(e["pid"] == 5 for e in events)
        first = min(busy, key=lambda e: e["ts"])
        assert first["ts"] == 0.0
        assert first["dur"] == pytest.approx(50.0)
        assert first["args"]["end_cycle"] == 100

    def test_rows_never_overlap(self):
        util = UtilizationTrace(2, name="EUs")
        # Overlapping intervals recorded out of end-cycle order.
        util.begin(0, 0)
        util.begin(1, 5)
        util.end(1, 20)
        util.end(0, 50)
        events = [e for e in utilization_events(util) if e["ph"] == "X"]
        rows = {}
        for event in events:
            rows.setdefault(event["tid"], []).append(
                (event["ts"], event["ts"] + event["dur"]))
        for spans in rows.values():
            spans.sort()
            for (s1, e1), (s2, _) in zip(spans, spans[1:]):
                assert s2 >= e1

    def test_validates_inside_a_chrome_trace(self):
        util = UtilizationTrace(1, name="SUs")
        util.begin(0, 3)
        util.end(0, 9)
        trace = chrome_trace(Tracer(),
                             extra_events=utilization_events(util, pid=2))
        assert trace_problems(trace) == []

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            utilization_events(UtilizationTrace(1), us_per_cycle=0)
