"""Span tracer: nesting, concurrency-awareness, and disabled overhead."""

import asyncio
import threading

import pytest

from repro import obs
from repro.obs import NULL_SPAN, Tracer


class FakeClock:
    """Deterministic microsecond-resolution clock for tracer tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestSpans:
    def test_span_records_complete_event(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("work", "test", size=3):
            clock.advance(0.001)
        (event,) = tracer.events()
        assert event["name"] == "work"
        assert event["cat"] == "test"
        assert event["ph"] == "X"
        assert event["ts"] == pytest.approx(0.0)
        assert event["dur"] == pytest.approx(1000.0)
        assert event["args"]["size"] == 3
        assert event["args"]["span_id"] > 0

    def test_nested_spans_record_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer", "t") as outer:
            with tracer.span("inner", "t") as inner:
                pass
        by_name = {e["name"]: e for e in tracer.events()}
        assert "parent_id" not in by_name["outer"]["args"]
        assert by_name["inner"]["args"]["parent_id"] == outer.span_id
        assert by_name["inner"]["args"]["span_id"] == inner.span_id

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        with tracer.span("outer", "t") as outer:
            with tracer.span("a", "t"):
                pass
            with tracer.span("b", "t"):
                pass
        by_name = {e["name"]: e for e in tracer.events()}
        assert by_name["a"]["args"]["parent_id"] == outer.span_id
        assert by_name["b"]["args"]["parent_id"] == outer.span_id

    def test_exception_recorded_and_propagated(self):
        tracer = Tracer()
        with pytest.raises(KeyError):
            with tracer.span("boom", "t"):
                raise KeyError("x")
        (event,) = tracer.events()
        assert event["args"]["error"] == "KeyError"

    def test_set_args_and_end_args(self):
        tracer = Tracer()
        with tracer.span("work", "t") as span:
            span.set_args(mapped=7)
        (event,) = tracer.events()
        assert event["args"]["mapped"] == 7

    def test_end_is_idempotent(self):
        tracer = Tracer()
        span = tracer.begin("once", "t")
        span.end()
        span.end()
        assert len(tracer.events()) == 1

    def test_detached_begin_does_not_become_ambient_parent(self):
        tracer = Tracer()
        detached = tracer.begin("request", "t")
        with tracer.span("unrelated", "t"):
            pass
        detached.end()
        by_name = {e["name"]: e for e in tracer.events()}
        assert "parent_id" not in by_name["unrelated"]["args"]

    def test_begin_with_explicit_parent(self):
        tracer = Tracer()
        parent = tracer.begin("request", "t")
        child = tracer.begin("respond", "t", parent_id=parent.span_id)
        child.end()
        parent.end()
        by_name = {e["name"]: e for e in tracer.events()}
        assert by_name["respond"]["args"]["parent_id"] == parent.span_id

    def test_instant_event(self):
        tracer = Tracer()
        with tracer.span("outer", "t") as outer:
            tracer.instant("cache_hit", "t", kind="genome")
        hit = [e for e in tracer.events() if e["name"] == "cache_hit"][0]
        assert hit["ph"] == "i"
        assert hit["args"]["kind"] == "genome"
        assert hit["args"]["parent_id"] == outer.span_id


class TestConcurrency:
    def test_asyncio_tasks_get_independent_parents(self):
        tracer = Tracer()

        async def task(name):
            with tracer.span(name, "t"):
                await asyncio.sleep(0.001)
                with tracer.span(f"{name}.child", "t"):
                    await asyncio.sleep(0.001)

        async def main():
            await asyncio.gather(task("t1"), task("t2"))

        asyncio.run(main())
        by_name = {e["name"]: e for e in tracer.events()}
        for name in ("t1", "t2"):
            assert (by_name[f"{name}.child"]["args"]["parent_id"]
                    == by_name[name]["args"]["span_id"])

    def test_threads_get_independent_parents_and_tids(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def work(name):
            with tracer.span(name, "t"):
                barrier.wait()
                with tracer.span(f"{name}.child", "t"):
                    pass

        threads = [threading.Thread(target=work, args=(f"w{i}",),
                                    name=f"worker-{i}")
                   for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        by_name = {e["name"]: e for e in tracer.events()}
        for name in ("w0", "w1"):
            assert (by_name[f"{name}.child"]["args"]["parent_id"]
                    == by_name[name]["args"]["span_id"])
        assert by_name["w0"]["tid"] != by_name["w1"]["tid"]
        assert set(tracer.thread_names().values()) == \
            {"worker-0", "worker-1"}

    def test_concurrent_recording_drops_nothing(self):
        tracer = Tracer()

        def work():
            for i in range(200):
                with tracer.span("w", "t", i=i):
                    pass

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tracer.events()) == 800
        ids = [e["args"]["span_id"] for e in tracer.events()]
        assert len(set(ids)) == 800


class TestCapacityAndDisabled:
    def test_capacity_bounds_buffer_and_counts_drops(self):
        tracer = Tracer(capacity=3)
        for i in range(5):
            with tracer.span("s", "t", i=i):
                pass
        assert len(tracer.events()) == 3
        assert tracer.dropped == 2
        tracer.clear()
        assert len(tracer.events()) == 0
        assert tracer.dropped == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_disabled_tracer_returns_null_span(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("x", "t") is NULL_SPAN
        assert tracer.begin("x", "t") is NULL_SPAN
        tracer.instant("x", "t")
        assert len(tracer.events()) == 0

    def test_null_span_is_inert(self):
        with NULL_SPAN as span:
            span.set_args(a=1)
            span.end(b=2)
        assert NULL_SPAN.span_id == 0


class TestGlobalTracer:
    @pytest.fixture(autouse=True)
    def _reset_global(self):
        yield
        obs.configure(enabled=False)

    def test_disabled_by_default_helpers_are_noops(self):
        obs.configure(enabled=False)
        assert not obs.tracing_enabled()
        assert obs.span("x", "t") is NULL_SPAN
        assert obs.begin("x", "t") is NULL_SPAN
        obs.instant("x", "t")
        assert len(obs.get_tracer().events()) == 0

    def test_configure_enables_and_resets(self):
        tracer = obs.configure(enabled=True)
        assert obs.get_tracer() is tracer
        with obs.span("x", "t"):
            pass
        assert len(tracer.events()) == 1
        fresh = obs.configure(enabled=True)
        assert len(fresh.events()) == 0

    def test_disabled_overhead_is_one_branch(self):
        """Instrumented hot paths must not allocate when tracing is
        off: the helpers return the same singleton every call."""
        obs.configure(enabled=False)
        spans = {id(obs.span("hot", "t")) for _ in range(100)}
        assert spans == {id(NULL_SPAN)}
