"""simulate_many: parallel config sweeps match the serial loop exactly."""

from dataclasses import replace

import pytest

from repro.core.accelerator import NvWaAccelerator
from repro.core.config import NvWaConfig
from repro.core.workload import synthetic_workload
from repro.experiments.common import (
    SERIAL_EXECUTION,
    ExecutionConfig,
    execution,
    execution_config,
    resolve_execution,
    set_execution_config,
)
from repro.genome.datasets import get_dataset
from repro.runtime.sweep import SweepResult, sim_jobs, simulate_many


@pytest.fixture(scope="module")
def workload():
    return synthetic_workload(get_dataset("H.s."), 250, seed=13)


@pytest.fixture(scope="module")
def configs():
    base = NvWaConfig()
    return [replace(base, hits_buffer_depth=depth)
            for depth in (64, 256, 1024, 4096)]


class TestSimulateMany:
    def test_serial_matches_direct_runs(self, workload, configs):
        results = simulate_many(sim_jobs(configs, workload))
        assert len(results) == len(configs)
        for config, result in zip(configs, results):
            report = NvWaAccelerator(config).run(workload)
            assert result.cycles == report.cycles
            assert result.kreads_per_second == \
                report.throughput.kreads_per_second
            assert result.su_utilization == report.su_utilization
            assert result.eu_utilization == report.eu_utilization
            assert result.eu_pe_efficiency == report.eu_pe_efficiency

    def test_parallel_matches_serial(self, workload, configs):
        serial = simulate_many(sim_jobs(configs, workload), parallelism=1)
        parallel = simulate_many(sim_jobs(configs, workload), parallelism=3)
        assert serial == parallel  # SweepResult is a frozen dataclass

    def test_order_preserved(self, workload, configs):
        results = simulate_many(sim_jobs(configs, workload), parallelism=2)
        direct = [NvWaAccelerator(c).run(workload).cycles for c in configs]
        assert [r.cycles for r in results] == direct

    def test_empty_jobs(self):
        assert simulate_many([]) == []
        assert simulate_many([], parallelism=4) == []

    def test_result_type(self, workload, configs):
        results = simulate_many(sim_jobs(configs[:1], workload))
        assert isinstance(results[0], SweepResult)
        assert results[0].reads == len(workload)


class TestExecutionPolicy:
    def test_default_is_serial(self):
        assert execution_config() == SERIAL_EXECUTION
        assert SERIAL_EXECUTION.parallelism == 1
        assert SERIAL_EXECUTION.cache_dir is None

    def test_context_manager_scopes(self, tmp_path):
        policy = ExecutionConfig(parallelism=2, cache_dir=str(tmp_path))
        with execution(policy) as active:
            assert active is policy
            assert execution_config() is policy
        assert execution_config() == SERIAL_EXECUTION

    def test_set_and_restore(self):
        policy = ExecutionConfig(parallelism=3)
        previous = set_execution_config(policy)
        try:
            assert execution_config() is policy
        finally:
            set_execution_config(previous)
        assert execution_config() == SERIAL_EXECUTION

    def test_none_resets_to_serial(self):
        set_execution_config(ExecutionConfig(parallelism=5))
        set_execution_config(None)
        assert execution_config() == SERIAL_EXECUTION

    def test_resolve_explicit_wins(self):
        explicit = ExecutionConfig(parallelism=7)
        with execution(ExecutionConfig(parallelism=2)):
            assert resolve_execution(explicit) is explicit
            assert resolve_execution(None).parallelism == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ExecutionConfig(parallelism=0)
        with pytest.raises(ValueError):
            ExecutionConfig(shard_size=0)

    def test_cache_accessor(self, tmp_path):
        assert ExecutionConfig().cache() is None
        cache = ExecutionConfig(cache_dir=str(tmp_path)).cache()
        assert cache is not None
        assert cache.cache_dir == str(tmp_path)


class TestExperimentParity:
    """Experiments produce identical rows under any execution policy."""

    def test_fig13_quick_parity(self, tmp_path):
        from repro.experiments import fig13_dse
        serial = fig13_dse.run(reads=120, depths=(64, 1024),
                               interval_counts=(1, 4),
                               switch_thresholds=(0.75,),
                               idle_fractions=(0.15,))
        policy = ExecutionConfig(parallelism=2, cache_dir=str(tmp_path))
        parallel = fig13_dse.run(reads=120, depths=(64, 1024),
                                 interval_counts=(1, 4),
                                 switch_thresholds=(0.75,),
                                 idle_fractions=(0.15,),
                                 exec_config=policy)
        warm = fig13_dse.run(reads=120, depths=(64, 1024),
                             interval_counts=(1, 4),
                             switch_thresholds=(0.75,),
                             idle_fractions=(0.15,),
                             exec_config=policy)
        assert serial.rows == parallel.rows == warm.rows

    def test_fig11_quick_parity(self):
        from repro.experiments import fig11_throughput
        serial = fig11_throughput.run(reads=150)
        parallel = fig11_throughput.run(
            reads=150, exec_config=ExecutionConfig(parallelism=2))
        assert serial.rows == parallel.rows

    def test_runner_flags(self, tmp_path):
        from repro.experiments.runner import main
        csv_dir = tmp_path / "csv"
        code = main(["fig13", "--quick", "--parallelism", "2",
                     "--cache-dir", str(tmp_path / "cache"),
                     "--csv-dir", str(csv_dir)])
        assert code == 0
        assert (csv_dir / "fig13.csv").exists()
        # The ambient policy was restored after the run.
        assert execution_config() == SERIAL_EXECUTION
