"""Batched extension kernels are bit-identical to the serial kernel."""

import random

import pytest

from repro.align.pipeline import SoftwareAligner
from repro.extension.scoring import BWA_MEM_SCORING
from repro.extension.smith_waterman import (
    _codes,
    fill_matrices,
    fill_matrices_batch,
    smith_waterman,
)
from repro.genome.reads import ReadSimulator
from repro.genome.reference import SyntheticReference
from repro.runtime.batch import (
    ExtensionJob,
    extend_jobs,
    smith_waterman_batch,
)


def random_seq(rng, length):
    return "".join(rng.choice("ACGT") for _ in range(length))


class TestBatchKernel:
    def test_matches_serial_on_random_pairs(self):
        rng = random.Random(5)
        pairs = []
        for _ in range(40):
            m = rng.randrange(8, 60)
            n = rng.randrange(8, 80)
            pairs.append((random_seq(rng, m), random_seq(rng, n)))
        batched = smith_waterman_batch(pairs, max_batch=8)
        for (query, target), got in zip(pairs, batched):
            want = smith_waterman(query, target)
            assert got.score == want.score
            assert got.cigar == want.cigar
            assert got.read_start == want.read_start
            assert got.ref_start == want.ref_start
            assert got.cells == want.cells

    def test_same_shape_grouping_matches(self):
        """All same-shaped: exercises the vectorized path end to end."""
        rng = random.Random(6)
        pairs = [(random_seq(rng, 24), random_seq(rng, 32))
                 for _ in range(12)]
        batched = smith_waterman_batch(pairs, max_batch=4)
        serial = [smith_waterman(q, t) for q, t in pairs]
        assert [b.score for b in batched] == [s.score for s in serial]
        assert [b.cigar for b in batched] == [s.cigar for s in serial]

    def test_empty_and_singleton(self):
        assert smith_waterman_batch([]) == []
        only = smith_waterman_batch([("ACGT", "ACGT")])
        assert len(only) == 1
        assert only[0].score == smith_waterman("ACGT", "ACGT").score

    def test_degenerate_sequences(self):
        batched = smith_waterman_batch([("", "ACGT"), ("ACGT", "")])
        for (q, t), got in zip([("", "ACGT"), ("ACGT", "")], batched):
            want = smith_waterman(q, t)
            assert got.score == want.score
            assert got.cigar == want.cigar

    def test_fill_matrices_batch_slices_match(self):
        rng = random.Random(7)
        import numpy as np
        reads = np.stack([_codes(random_seq(rng, 16)) for _ in range(5)])
        refs = np.stack([_codes(random_seq(rng, 20)) for _ in range(5)])
        batch = fill_matrices_batch(reads, refs, BWA_MEM_SCORING)
        assert len(batch) == 5
        for k in range(5):
            single = fill_matrices(reads[k], refs[k], BWA_MEM_SCORING)
            assert (batch[k].h == single.h).all()
            assert (batch[k].e == single.e).all()
            assert (batch[k].f == single.f).all()

    def test_fill_matrices_batch_validation(self):
        import numpy as np
        with pytest.raises(ValueError):
            fill_matrices_batch(np.zeros(4, dtype=np.int64),
                                np.zeros((1, 4), dtype=np.int64),
                                BWA_MEM_SCORING)
        with pytest.raises(ValueError):
            fill_matrices_batch(np.zeros((2, 4), dtype=np.int64),
                                np.zeros((3, 4), dtype=np.int64),
                                BWA_MEM_SCORING)

    def test_extend_jobs_keys(self):
        jobs = [ExtensionJob(read_idx=3, hit_idx=0, query="ACGTACGT",
                             reference="ACGTACGTAA"),
                ExtensionJob(read_idx=3, hit_idx=1, query="ACGTACGT",
                             reference="TTACGTACGT")]
        results = extend_jobs(jobs)
        assert set(results) == {(3, 0), (3, 1)}
        assert results[(3, 0)].score == \
            smith_waterman("ACGTACGT", "ACGTACGTAA").score


class TestBatchedPipeline:
    def test_align_all_batched_equals_serial(self):
        reference = SyntheticReference(length=20_000, chromosomes=1,
                                       seed=31).build()
        reads = ReadSimulator(reference, read_length=101,
                              seed=32).simulate(40)
        aligner = SoftwareAligner(reference)
        serial = aligner.align_all(reads)
        batched = aligner.align_all(reads, batch_extension=True, max_batch=8)
        for a, b in zip(serial, batched):
            assert a.aligned == b.aligned
            if a.aligned:
                assert a.best.score == b.best.score
                assert a.best.cigar == b.best.cigar
                assert a.best.ref_start == b.best.ref_start
                assert a.best.reverse == b.best.reverse
            assert a.work.extension_cells == b.work.extension_cells
            assert a.work.hit_count == b.work.hit_count
