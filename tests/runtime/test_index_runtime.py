"""Index store threaded through cache, sharded runner, and service."""

import os

import pytest

from repro.genome.reads import ReadSimulator
from repro.genome.reference import SyntheticReference
from repro.runtime.artifacts import cached_fm_index, cached_index_store
from repro.runtime.cache import ArtifactCache
from repro.seeding.store import build_index_store


@pytest.fixture(scope="module")
def reference():
    return SyntheticReference(length=8_000, chromosomes=2, seed=13).build()


@pytest.fixture(scope="module")
def ref_params():
    return SyntheticReference(length=8_000, chromosomes=2,
                              seed=13).params()


@pytest.fixture
def cache(tmp_path):
    return ArtifactCache(tmp_path / "artifacts")


class TestCachedIndexStore:
    def test_cold_miss_then_mmap_hit(self, cache, reference, ref_params):
        first = cached_index_store(cache, reference, ref_params,
                                   occ_interval=64)
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1
        second = cached_index_store(cache, reference, ref_params,
                                    occ_interval=64)
        assert cache.stats.hits == 1
        assert second.content_hash == first.content_hash
        # The store file is a cache entry with the .idx suffix.
        assert any(name.endswith(".idx") for name in cache.entries())

    def test_corrupt_store_rebuilds_and_counts(self, cache, reference,
                                               ref_params):
        store = cached_index_store(cache, reference, ref_params,
                                   occ_interval=64)
        with open(store.path, "r+b") as handle:
            handle.truncate(os.path.getsize(store.path) // 2)
        again = cached_index_store(cache, reference, ref_params,
                                   occ_interval=64)
        assert cache.stats.corrupt == 1
        assert cache.stats.misses == 2  # cold build + corrupt rebuild
        assert again.content_hash == store.content_hash

    def test_occ_interval_addresses_a_different_store(self, cache,
                                                      reference,
                                                      ref_params):
        cached_index_store(cache, reference, ref_params, occ_interval=64)
        cached_index_store(cache, reference, ref_params, occ_interval=128)
        assert cache.stats.hits == 0
        idx_entries = [n for n in cache.entries() if n.endswith(".idx")]
        assert len(idx_entries) == 2

    def test_cached_fm_index_routes_through_store(self, cache, reference,
                                                  ref_params):
        warm_twice = [cached_fm_index(cache, reference, ref_params,
                                      occ_interval=64) for _ in range(2)]
        assert cache.stats.hits == 1
        direct = cached_fm_index(None, reference, ref_params,
                                 occ_interval=64)
        text = reference.concatenated()
        probe = text[200:240]
        for index in warm_twice:
            bi_a = index.search(probe)
            bi_b = direct.search(probe)
            assert (bi_a.k, bi_a.l, bi_a.s) == (bi_b.k, bi_b.l, bi_b.s)
            assert index.locate(bi_a) == direct.locate(bi_b)


class TestShardedIndexPath:
    def test_parallel_align_with_index_matches_serial(self, tmp_path,
                                                      reference):
        from repro.align.pipeline import SoftwareAligner
        from repro.align.sam import sam_record
        from repro.runtime.sharded import ShardedRunner

        store = build_index_store(reference, tmp_path / "ref.idx")
        reads = ReadSimulator(reference, read_length=80,
                              seed=2).simulate(24)
        serial = SoftwareAligner(reference).align_all(reads)
        runner = ShardedRunner(parallelism=2, shard_size=8)
        sharded = runner.align(reference, reads, index_path=store.path)
        assert ([sam_record(r, reference) for r in sharded]
                == [sam_record(r, reference) for r in serial])

    def test_serial_path_accepts_index_path(self, tmp_path, reference):
        from repro.align.pipeline import SoftwareAligner
        from repro.align.sam import sam_record
        from repro.runtime.sharded import ShardedRunner

        store = build_index_store(reference, tmp_path / "ref.idx")
        reads = ReadSimulator(reference, read_length=80,
                              seed=2).simulate(6)
        plain = SoftwareAligner(reference).align_all(reads)
        runner = ShardedRunner(parallelism=1)
        mapped = runner.align(reference, reads, index_path=store.path)
        assert ([sam_record(r, reference) for r in mapped]
                == [sam_record(r, reference) for r in plain])


class TestServiceIndexPath:
    def test_engine_factory_attaches_the_store(self, tmp_path, reference):
        from repro.service.protocol import AlignRequest, TYPE_ALIGN
        from repro.service.server import AlignmentServer, ServerConfig

        store = build_index_store(reference, tmp_path / "ref.idx")
        reads = ReadSimulator(reference, read_length=80,
                              seed=5).simulate(4)
        requests = [AlignRequest(request_id=f"r{i}", type=TYPE_ALIGN,
                                 reads=[read])
                    for i, read in enumerate(reads)]
        plain_server = AlignmentServer(reference, config=ServerConfig())
        mmap_server = AlignmentServer(
            reference, config=ServerConfig(index_path=store.path))
        plain_engine = plain_server._engine_factory()
        mmap_engine = mmap_server._engine_factory()
        assert mmap_engine.execute(requests) == \
            plain_engine.execute(requests)
