"""ShardedRunner determinism: results are a function of the shard plan,
never of the worker count.

The headline contract (the acceptance test of the runtime layer): a
1-worker and a 4-worker run produce identical aggregate cycle counts,
identical merged counters/utilizations, and — for the alignment front-end
— identical sorted SAM records.
"""

import io

import pytest

from repro.align.sam import parse_sam, write_sam
from repro.core import baseline
from repro.core.accelerator import NvWaAccelerator
from repro.core.workload import Workload, synthetic_workload
from repro.genome.datasets import get_dataset
from repro.genome.reads import ReadSimulator
from repro.genome.reference import SyntheticReference
from repro.runtime.sharded import (
    DEFAULT_SHARD_SIZE,
    ShardPlan,
    ShardedRunner,
    default_parallelism,
)


@pytest.fixture(scope="module")
def workload():
    return synthetic_workload(get_dataset("H.s."), 600, seed=9)


class TestShardPlan:
    def test_exact_division(self):
        plan = ShardPlan(total=512, shard_size=256)
        assert plan.num_shards == 2
        assert plan.bounds() == [(0, 256), (256, 512)]

    def test_ragged_tail(self):
        plan = ShardPlan(total=600, shard_size=256)
        assert plan.num_shards == 3
        assert plan.bounds() == [(0, 256), (256, 512), (512, 600)]

    def test_empty(self):
        plan = ShardPlan(total=0)
        assert plan.num_shards == 0
        assert plan.bounds() == []

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardPlan(total=-1)
        with pytest.raises(ValueError):
            ShardPlan(total=10, shard_size=0)

    def test_plan_covers_everything_once(self):
        plan = ShardPlan(total=1000, shard_size=77)
        seen = [i for start, end in plan.bounds()
                for i in range(start, end)]
        assert seen == list(range(1000))

    def test_default_shard_size(self):
        assert ShardPlan(total=10).shard_size == DEFAULT_SHARD_SIZE


class TestSimulationDeterminism:
    def test_one_vs_four_workers_identical(self, workload):
        """The PR's acceptance criterion, verbatim."""
        serial = ShardedRunner(parallelism=1, shard_size=128).run(workload)
        parallel = ShardedRunner(parallelism=4, shard_size=128).run(workload)
        assert serial.cycles == parallel.cycles
        assert serial.shard_cycles == parallel.shard_cycles
        assert serial.reads == parallel.reads == len(workload)
        assert serial.hits_processed == parallel.hits_processed
        assert serial.counters.as_dict() == parallel.counters.as_dict()
        assert serial.su_utilization == parallel.su_utilization
        assert serial.eu_utilization == parallel.eu_utilization
        assert serial.eu_pe_efficiency == parallel.eu_pe_efficiency
        assert serial.memory_energy_pj == parallel.memory_energy_pj
        assert serial.memory_bandwidth_utilization == \
            parallel.memory_bandwidth_utilization

    def test_worker_count_sweep(self, workload):
        reference = ShardedRunner(parallelism=1, shard_size=200).run(workload)
        for workers in (2, 3):
            report = ShardedRunner(parallelism=workers,
                                   shard_size=200).run(workload)
            assert report.cycles == reference.cycles
            assert report.shard_cycles == reference.shard_cycles

    def test_single_shard_equals_classic_run(self, workload):
        """shard_size >= len(workload): identical to one Engine run."""
        runner = ShardedRunner(shard_size=len(workload))
        sharded = runner.run(workload)
        classic = NvWaAccelerator(runner.config).run(workload)
        assert sharded.shards == 1
        assert sharded.cycles == classic.cycles
        assert sharded.hits_processed == classic.hits_processed
        assert sharded.su_utilization == classic.su_utilization
        assert sharded.eu_utilization == classic.eu_utilization
        assert sharded.counters.as_dict() == classic.counters.as_dict()

    def test_custom_config_respected(self, workload):
        config = baseline.sus_eus_baseline()
        report = ShardedRunner(config=config, shard_size=300).run(workload)
        assert report.config is config
        baseline_1shard = NvWaAccelerator(config).run(
            Workload(workload.tasks[:300]))
        assert report.shard_cycles[0] == baseline_1shard.cycles

    def test_throughput_property(self, workload):
        report = ShardedRunner(shard_size=128).run(workload)
        assert report.throughput.reads == len(workload)
        assert report.throughput.cycles == report.cycles
        assert report.eu_effective_utilization == pytest.approx(
            report.eu_utilization * report.eu_pe_efficiency)

    def test_shard_size_is_part_of_identity(self, workload):
        """Different plans may produce different totals — that's the
        documented semantics (drain between shards), not a bug."""
        a = ShardedRunner(shard_size=100).run(workload)
        b = ShardedRunner(shard_size=100, parallelism=2).run(workload)
        assert a.cycles == b.cycles  # plan equal -> cycles equal

    def test_parallelism_validation(self):
        with pytest.raises(ValueError):
            ShardedRunner(parallelism=0)
        with pytest.raises(ValueError):
            ShardedRunner(shard_size=-5)

    def test_default_parallelism_positive(self):
        assert default_parallelism() >= 1


class TestAlignmentDeterminism:
    @pytest.fixture(scope="class")
    def substrate(self):
        reference = SyntheticReference(length=30_000, chromosomes=1,
                                       seed=21).build()
        reads = ReadSimulator(reference, read_length=101,
                              seed=22).simulate(90)
        return reference, reads

    @staticmethod
    def sam_text(reference, results):
        buffer = io.StringIO()
        write_sam(results, reference, buffer)
        return buffer.getvalue()

    def test_sam_identical_across_worker_counts(self, substrate):
        reference, reads = substrate
        serial = ShardedRunner(parallelism=1, shard_size=30).align(
            reference, reads)
        parallel = ShardedRunner(parallelism=4, shard_size=30).align(
            reference, reads)
        text_serial = self.sam_text(reference, serial)
        text_parallel = self.sam_text(reference, parallel)
        assert text_serial == text_parallel
        records_serial = sorted(
            (r.qname, r.flag, r.rname, r.pos, r.cigar)
            for r in parse_sam(io.StringIO(text_serial)))
        records_parallel = sorted(
            (r.qname, r.flag, r.rname, r.pos, r.cigar)
            for r in parse_sam(io.StringIO(text_parallel)))
        assert records_serial == records_parallel

    def test_batched_extension_matches_serial(self, substrate):
        reference, reads = substrate
        plain = ShardedRunner(parallelism=1, shard_size=30).align(
            reference, reads)
        batched = ShardedRunner(parallelism=2, shard_size=30).align(
            reference, reads, batch_extension=True, max_batch=16)
        assert self.sam_text(reference, plain) == \
            self.sam_text(reference, batched)

    def test_global_read_indices_preserved(self, substrate):
        reference, reads = substrate
        results = ShardedRunner(parallelism=2, shard_size=25).align(
            reference, reads)
        assert len(results) == len(reads)
        for idx, result in enumerate(results):
            assert result.read is not None
            assert result.read.sequence == reads[idx].sequence


class TestWorkerDeathRecovery:
    """Satellite acceptance: a SIGKILLed worker replays only its lost
    shards and the merged output stays bit-identical."""

    @pytest.fixture(scope="class")
    def substrate(self):
        reference = SyntheticReference(length=20_000, chromosomes=1,
                                       seed=31).build()
        reads = ReadSimulator(reference, read_length=101,
                              seed=32).simulate(40)
        return reference, reads

    def _kill_plan(self, *calls):
        from repro.faults.plan import (SHARD_KILL, SITE_SHARD, FaultPlan,
                                       FaultSpec)
        return FaultPlan(seed=5, specs=(
            FaultSpec(SHARD_KILL, SITE_SHARD, at_calls=tuple(calls)),))

    def test_injected_kill_is_bit_identical(self, substrate):
        reference, reads = substrate
        undisturbed = ShardedRunner(parallelism=2, shard_size=10).align(
            reference, reads)
        injector = self._kill_plan(2).injector()
        survived = ShardedRunner(parallelism=2, shard_size=10,
                                 fault_injector=injector).align(
            reference, reads)
        assert injector.fired_counts() == {"shard_kill": 1}
        assert [r.read.read_id for r in survived] == \
            [r.read.read_id for r in undisturbed]
        buffer_a, buffer_b = io.StringIO(), io.StringIO()
        write_sam(undisturbed, reference, buffer_a)
        write_sam(survived, reference, buffer_b)
        assert buffer_a.getvalue() == buffer_b.getvalue()

    def test_simulation_survives_injected_kill(self, workload):
        from repro.core.config import NvWaConfig
        config = NvWaConfig()
        clean = ShardedRunner(config=config, parallelism=2,
                              shard_size=150).run(workload)
        injector = self._kill_plan(1).injector()
        recovered = ShardedRunner(config=config, parallelism=2,
                                  shard_size=150,
                                  fault_injector=injector).run(workload)
        assert recovered.cycles == clean.cycles
        assert recovered.shard_cycles == clean.shard_cycles
        assert recovered.counters.as_dict() == clean.counters.as_dict()

    def test_retries_exhausted_raises_worker_lost(self):
        from repro.runtime.sharded import (WorkerLostError,
                                           _simulate_shard_guarded,
                                           run_resilient)
        # retries=0 and an armed kill: the worker dies before touching
        # the payload, and no replay round exists to recover it.
        with pytest.raises(WorkerLostError, match="lost their worker"):
            run_resilient(_simulate_shard_guarded, payloads=[None],
                          parallelism=1, retries=0, kill_flags=[True])

    def test_validation(self):
        from repro.runtime.sharded import run_resilient
        with pytest.raises(ValueError, match="retries"):
            run_resilient(lambda p: p, [1], parallelism=1, retries=-1)
        with pytest.raises(ValueError, match="kill_flags"):
            run_resilient(lambda p: p, [1, 2], parallelism=1,
                          kill_flags=[True])
        with pytest.raises(ValueError, match="shard_retries"):
            ShardedRunner(shard_retries=-1)
