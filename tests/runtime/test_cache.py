"""Artifact cache: cold-miss/warm-hit, invalidation, corruption recovery."""

import os
import pickle

import pytest

from repro.genome.reads import ILLUMINA
from repro.genome.reference import SyntheticReference
from repro.runtime.cache import (
    CACHE_SCHEMA_VERSION,
    ArtifactCache,
    canonical_params,
    open_cache,
)
from repro.runtime.artifacts import (
    cached_fm_index,
    cached_pipeline_inputs,
    cached_read_set,
    cached_reference,
    cached_synthetic_workload,
)
from repro.genome.datasets import get_dataset


@pytest.fixture
def cache(tmp_path):
    return ArtifactCache(tmp_path / "artifacts")


class TestCacheMechanics:
    def test_cold_miss_then_warm_hit(self, cache):
        calls = []

        def build():
            calls.append(1)
            return {"answer": 42}

        first, hit1 = cache.get_or_build("thing", {"n": 3}, build)
        second, hit2 = cache.get_or_build("thing", {"n": 3}, build)
        assert (hit1, hit2) == (False, True)
        assert first == second == {"answer": 42}
        assert len(calls) == 1
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1

    def test_param_change_is_a_miss(self, cache):
        cache.get_or_build("thing", {"n": 3}, lambda: "a")
        value, hit = cache.get_or_build("thing", {"n": 4}, lambda: "b")
        assert (value, hit) == ("b", False)
        # Both entries coexist under distinct digests.
        assert len(cache.entries()) == 2

    def test_kind_disambiguates(self, cache):
        cache.get_or_build("alpha", {"n": 3}, lambda: "a")
        value, hit = cache.get_or_build("beta", {"n": 3}, lambda: "b")
        assert (value, hit) == ("b", False)

    def test_key_is_order_insensitive(self, cache):
        assert cache.key("k", {"a": 1, "b": (2, 3)}) == \
            cache.key("k", {"b": [2, 3], "a": 1})

    def test_key_includes_schema_version(self, cache):
        payload_key = cache.key("k", {"a": 1})
        assert CACHE_SCHEMA_VERSION == 1
        assert len(payload_key) == 64  # sha256 hex

    def test_canonical_params_rejects_objects(self):
        with pytest.raises(TypeError):
            canonical_params({"bad": object()})

    def test_corrupt_entry_falls_back_to_rebuild(self, cache):
        cache.get_or_build("thing", {"n": 3}, lambda: "good")
        path = cache.path_for("thing", {"n": 3})
        with open(path, "wb") as handle:
            handle.write(b"\x00not a pickle")
        value, hit = cache.get_or_build("thing", {"n": 3}, lambda: "rebuilt")
        assert (value, hit) == ("rebuilt", False)
        assert cache.stats.corrupt == 1
        # The rebuilt entry replaced the corrupt one and is loadable again.
        assert cache.get_or_build("thing", {"n": 3}, lambda: "x") == \
            ("rebuilt", True)

    def test_truncated_entry_falls_back(self, cache):
        cache.get_or_build("thing", {"n": 3}, lambda: list(range(1000)))
        path = cache.path_for("thing", {"n": 3})
        with open(path, "r+b") as handle:
            handle.truncate(16)
        value, hit = cache.load("thing", {"n": 3})
        assert (value, hit) == (None, False)
        assert cache.stats.corrupt == 1
        assert not os.path.exists(path)

    def test_envelope_mismatch_is_corrupt(self, cache):
        """A digest collision / manual rename cannot serve wrong data."""
        cache.get_or_build("thing", {"n": 3}, lambda: "good")
        src = cache.path_for("thing", {"n": 3})
        dst = cache.path_for("thing", {"n": 4})
        os.replace(src, dst)
        value, hit = cache.load("thing", {"n": 4})
        assert (value, hit) == (None, False)
        assert cache.stats.corrupt == 1

    def test_store_is_atomic_no_tmp_left_behind(self, cache):
        cache.store("thing", {"n": 1}, "x")
        leftovers = [name for name in os.listdir(cache.cache_dir)
                     if name.endswith(".tmp")]
        assert leftovers == []

    def test_store_failure_cleans_tmp(self, cache):
        class Unpicklable:
            def __reduce__(self):
                raise RuntimeError("no pickling")

        with pytest.raises(RuntimeError, match="no pickling"):
            cache.store("thing", {"n": 1}, Unpicklable())
        assert os.listdir(cache.cache_dir) == []

    def test_clear(self, cache):
        cache.store("a", {"n": 1}, 1)
        cache.store("b", {"n": 2}, 2)
        assert cache.clear() == 2
        assert cache.entries() == {}

    def test_open_cache(self, tmp_path):
        assert open_cache(None) is None
        opened = open_cache(tmp_path / "c")
        assert isinstance(opened, ArtifactCache)

    def test_envelope_round_trips_params(self, cache):
        cache.store("thing", {"n": (1, 2)}, "v")
        with open(cache.path_for("thing", {"n": (1, 2)}), "rb") as handle:
            envelope = pickle.load(handle)
        assert envelope["kind"] == "thing"
        assert envelope["params"] == {"n": [1, 2]}
        assert envelope["schema"] == CACHE_SCHEMA_VERSION


class TestDomainMemoizers:
    def test_cached_reference_warm_equals_cold(self, cache):
        cold = cached_reference(cache, length=5_000, chromosomes=1, seed=7)
        warm = cached_reference(cache, length=5_000, chromosomes=1, seed=7)
        direct = SyntheticReference(length=5_000, chromosomes=1,
                                    seed=7).build()
        assert cold.concatenated() == warm.concatenated() \
            == direct.concatenated()
        assert cache.stats.hits == 1

    def test_reference_seed_invalidates(self, cache):
        a = cached_reference(cache, length=5_000, chromosomes=1, seed=7)
        b = cached_reference(cache, length=5_000, chromosomes=1, seed=8)
        assert a.concatenated() != b.concatenated()
        assert cache.stats.hits == 0

    def test_cached_read_set_and_index(self, cache):
        reference, reads, index = cached_pipeline_inputs(
            cache, length=5_000, chromosomes=1, read_count=20,
            genome_seed=3, read_seed=5)
        reference2, reads2, index2 = cached_pipeline_inputs(
            cache, length=5_000, chromosomes=1, read_count=20,
            genome_seed=3, read_seed=5)
        assert [r.sequence for r in reads] == [r.sequence for r in reads2]
        assert reference.concatenated() == reference2.concatenated()
        # Warm pass: every one of the 3 artifacts was a hit.
        assert cache.stats.hits == 3
        # The warm index answers queries identically.
        text = reference.concatenated()
        probe = text[100:140]
        assert sorted(index2.locate(index2.search(probe))) == \
            sorted(index.locate(index.search(probe)))

    def test_index_occ_interval_invalidates(self, cache):
        reference = cached_reference(cache, length=4_000, chromosomes=1,
                                     seed=1)
        params = SyntheticReference(length=4_000, chromosomes=1,
                                    seed=1).params()
        cached_fm_index(cache, reference, params, occ_interval=64)
        hits_before = cache.stats.hits
        cached_fm_index(cache, reference, params, occ_interval=128)
        assert cache.stats.hits == hits_before  # different key -> rebuild

    def test_cached_workload_warm_equals_cold(self, cache):
        profile = get_dataset("H.s.")
        cold = cached_synthetic_workload(cache, profile, 50, seed=11)
        warm = cached_synthetic_workload(cache, profile, 50, seed=11)
        assert cache.stats.hits == 1
        assert [t.read_idx for t in cold.tasks] == \
            [t.read_idx for t in warm.tasks]
        assert cold.hit_lengths() == warm.hit_lengths()

    def test_none_cache_builds_directly(self):
        profile = get_dataset("H.s.")
        workload = cached_synthetic_workload(None, profile, 10, seed=2)
        assert len(workload) == 10
        reads = cached_read_set(
            None, SyntheticReference(length=3_000, chromosomes=1,
                                     seed=0).build(),
            {"seed": 0}, 5, error_model=ILLUMINA)
        assert len(reads) == 5


def _raise_type_error(*args):
    raise TypeError("consumer bug, not data corruption")


class _BombPayload:
    """Pickles fine; reconstruction raises TypeError (a programming
    error in the consumer's type, not a torn file)."""

    def __reduce__(self):
        return (_raise_type_error, ())


class TestCorruptionDiscipline:
    """The blanket-except fix: data corruption is a counted miss plus an
    eviction; programming errors propagate to the caller."""

    def test_empty_file_is_corrupt_miss(self, cache):
        cache.get_or_build("thing", {"n": 3}, lambda: "good")
        path = cache.path_for("thing", {"n": 3})
        with open(path, "wb"):
            pass  # zero bytes: the torn write corrupt_file(0.0) models
        value, hit = cache.load("thing", {"n": 3})
        assert (value, hit) == (None, False)
        assert cache.stats.corrupt == 1
        assert not os.path.exists(path)

    def test_programming_error_propagates(self, cache):
        cache.store("thing", {"n": 3}, _BombPayload())
        with pytest.raises(TypeError, match="consumer bug"):
            cache.load("thing", {"n": 3})
        # Not misclassified as corruption; the entry is left alone.
        assert cache.stats.corrupt == 0
        assert os.path.exists(cache.path_for("thing", {"n": 3}))

    def test_injected_corruption_recovers(self, tmp_path):
        from repro.faults.plan import (CACHE_CORRUPT, SITE_CACHE_LOAD,
                                       FaultPlan, FaultSpec)
        plan = FaultPlan(seed=1, specs=(
            FaultSpec(CACHE_CORRUPT, SITE_CACHE_LOAD, at_calls=(1,)),))
        injector = plan.injector()
        cache = ArtifactCache(tmp_path / "inj", fault_injector=injector)
        builds = []

        def build():
            builds.append(1)
            return {"k": list(range(100))}

        first, hit = cache.get_or_build("thing", {"n": 1}, build)
        assert not hit
        # This load crosses the cache_load site: the injected fault
        # truncates the entry, which must read as a corrupt miss.
        second, hit = cache.get_or_build("thing", {"n": 1}, build)
        assert (second, hit) == (first, False)
        assert cache.stats.corrupt == 1
        assert len(builds) == 2
        # The rebuilt entry is healthy again (site call 2: no fault).
        third, hit = cache.get_or_build("thing", {"n": 1}, build)
        assert (third, hit) == (first, True)

    def test_miss_does_not_cross_injection_site(self, tmp_path):
        """Only loads of *existing* entries cross cache_load — a cold
        miss cannot consume a scheduled corruption event."""
        from repro.faults.plan import (CACHE_CORRUPT, SITE_CACHE_LOAD,
                                       FaultPlan, FaultSpec)
        plan = FaultPlan(seed=1, specs=(
            FaultSpec(CACHE_CORRUPT, SITE_CACHE_LOAD, at_calls=(1,)),))
        injector = plan.injector()
        cache = ArtifactCache(tmp_path / "inj", fault_injector=injector)
        cache.load("thing", {"n": 1})  # cold miss: no entry on disk
        assert injector.calls(SITE_CACHE_LOAD) == 0
        cache.store("thing", {"n": 1}, "v")
        cache.load("thing", {"n": 1})
        assert injector.calls(SITE_CACHE_LOAD) == 1
