"""CircuitBreaker state machine, driven entirely by a fake clock."""

import pytest

from repro.faults.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    STATE_CODES,
    CircuitBreaker,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


@pytest.fixture
def clock():
    return FakeClock()


def make_breaker(clock, **kwargs):
    kwargs.setdefault("failure_threshold", 3)
    kwargs.setdefault("window_s", 10.0)
    kwargs.setdefault("cooldown_s", 5.0)
    return CircuitBreaker(clock=clock, **kwargs)


def trip(breaker, n=3):
    for _ in range(n):
        breaker.record_failure()


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"failure_threshold": 0},
        {"window_s": 0},
        {"cooldown_s": -1},
        {"half_open_probes": 0},
    ])
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            CircuitBreaker(**kwargs)


class TestStateMachine:
    def test_starts_closed_and_allows(self, clock):
        breaker = make_breaker(clock)
        assert breaker.state == CLOSED
        assert breaker.state_code == STATE_CODES[CLOSED] == 0
        assert breaker.allow()

    def test_opens_at_threshold(self, clock):
        breaker = make_breaker(clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_window_expiry_forgets_old_failures(self, clock):
        breaker = make_breaker(clock)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(11.0)  # both fall out of the 10 s window
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_open_after_cooldown_then_closes(self, clock):
        breaker = make_breaker(clock)
        trip(breaker)
        clock.advance(5.0)
        assert breaker.allow()          # the probe
        assert breaker.state == HALF_OPEN
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_half_open_failure_reopens(self, clock):
        breaker = make_breaker(clock)
        trip(breaker)
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        # The cooldown restarted: still shedding just before it ends.
        clock.advance(4.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.allow()

    def test_half_open_probe_quota(self, clock):
        breaker = make_breaker(clock, half_open_probes=1)
        trip(breaker)
        clock.advance(5.0)
        assert breaker.allow()          # probe slot taken
        assert not breaker.allow()      # quota exhausted → shed
        breaker.record_success()
        assert breaker.allow()

    def test_sheds_while_open(self, clock):
        breaker = make_breaker(clock)
        trip(breaker)
        for _ in range(4):
            assert not breaker.allow()
        assert breaker.as_dict()["sheds_total"] == 4


class TestObservability:
    def test_on_transition_sequence(self, clock):
        transitions = []
        breaker = CircuitBreaker(
            failure_threshold=2, window_s=10.0, cooldown_s=1.0,
            clock=clock, on_transition=lambda a, b: transitions.append(
                (a, b)))
        trip(breaker, 2)
        clock.advance(1.0)
        breaker.allow()
        breaker.record_success()
        assert transitions == [
            (CLOSED, OPEN), (OPEN, HALF_OPEN), (HALF_OPEN, CLOSED)]

    def test_as_dict_snapshot(self, clock):
        breaker = make_breaker(clock)
        trip(breaker)
        snap = breaker.as_dict()
        assert snap["state"] == OPEN
        assert snap["opens_total"] == 1
        assert snap["failure_threshold"] == 3
        assert snap["failures_in_window"] == 3

    def test_reclose_clears_window(self, clock):
        breaker = make_breaker(clock, cooldown_s=1.0)
        trip(breaker)
        clock.advance(1.0)
        breaker.allow()
        breaker.record_success()
        # One fresh failure must not instantly re-trip: the window was
        # cleared on close, so the count restarts from zero.
        breaker.record_failure()
        assert breaker.state == CLOSED
