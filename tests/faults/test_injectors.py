"""Boundary shims: FaultyEngine, FlakyEngine, corrupt_file,
IdempotencyCache."""

import pytest

from repro.faults.injectors import (
    FaultyEngine,
    FlakyEngine,
    IdempotencyCache,
    InjectedFault,
    corrupt_file,
)
from repro.faults.plan import (
    LATENCY_SPIKE,
    SITE_ENGINE,
    WORKER_CRASH,
    FaultPlan,
    FaultSpec,
)


class RecordingEngine:
    def __init__(self):
        self.batches = []

    def execute(self, requests):
        self.batches.append(list(requests))
        return [f"result-{r}" for r in requests]


class TestFaultyEngine:
    def test_crash_fires_before_inner_engine(self):
        inner = RecordingEngine()
        plan = FaultPlan(seed=1, specs=(
            FaultSpec(WORKER_CRASH, SITE_ENGINE, at_calls=(1,)),))
        engine = FaultyEngine(inner, plan.injector())
        with pytest.raises(InjectedFault) as excinfo:
            engine.execute(["a"])
        assert excinfo.value.event.kind == WORKER_CRASH
        assert inner.batches == []  # the crash preceded execution
        # The next call is clean and reaches the inner engine.
        assert engine.execute(["b"]) == ["result-b"]
        assert inner.batches == [["b"]]

    def test_latency_spike_sleeps_then_executes(self):
        inner = RecordingEngine()
        slept = []
        plan = FaultPlan(seed=1, specs=(
            FaultSpec(LATENCY_SPIKE, SITE_ENGINE, at_calls=(1,),
                      param=0.07),))
        engine = FaultyEngine(inner, plan.injector(), sleep=slept.append)
        assert engine.execute(["a"]) == ["result-a"]
        assert slept == [0.07]
        assert inner.batches == [["a"]]

    def test_no_fault_no_overhead_path(self):
        inner = RecordingEngine()
        plan = FaultPlan(seed=1, specs=())
        engine = FaultyEngine(inner, plan.injector())
        assert engine.execute(["a"]) == ["result-a"]


class TestFlakyEngine:
    def test_crashes_on_exact_calls(self):
        inner = RecordingEngine()
        flaky = FlakyEngine(inner, crash_on_calls=(1, 3))
        with pytest.raises(RuntimeError, match="injected worker crash"):
            flaky.execute(["a"])
        assert flaky.execute(["b"]) == ["result-b"]
        with pytest.raises(RuntimeError):
            flaky.execute(["c"])
        assert flaky.calls == 3

    def test_exc_factory_customizes_error(self):
        flaky = FlakyEngine(RecordingEngine(), crash_on_calls=(1,),
                            exc_factory=lambda call: OSError(
                                f"infra death on call {call}"))
        with pytest.raises(OSError, match="infra death on call 1"):
            flaky.execute(["a"])

    def test_reexported_from_service_engine(self):
        """The relocation keeps the old import path working."""
        from repro.service.engine import FlakyEngine as Relocated

        assert Relocated is FlakyEngine


class TestCorruptFile:
    def test_truncates_to_fraction(self, tmp_path):
        path = tmp_path / "entry.pkl"
        path.write_bytes(b"x" * 1000)
        kept = corrupt_file(str(path), keep_fraction=0.25)
        assert kept == 250
        assert path.stat().st_size == 250

    def test_zero_empties_the_file(self, tmp_path):
        path = tmp_path / "entry.pkl"
        path.write_bytes(b"x" * 10)
        assert corrupt_file(str(path)) == 0
        assert path.stat().st_size == 0

    @pytest.mark.parametrize("fraction", [-0.1, 1.0, 2.0])
    def test_fraction_validated(self, tmp_path, fraction):
        path = tmp_path / "entry.pkl"
        path.write_bytes(b"x")
        with pytest.raises(ValueError, match="keep_fraction"):
            corrupt_file(str(path), keep_fraction=fraction)


class TestIdempotencyCache:
    def test_get_put_contains(self):
        cache = IdempotencyCache(capacity=4)
        assert cache.get("k") is None
        cache.put("k", {"sam": ["line"]})
        assert cache.get("k") == {"sam": ["line"]}
        assert "k" in cache
        assert "missing" not in cache
        assert len(cache) == 1

    def test_lru_eviction_order(self):
        cache = IdempotencyCache(capacity=2)
        cache.put("a", {"n": 1})
        cache.put("b", {"n": 2})
        cache.get("a")            # refresh a → b is now the LRU entry
        cache.put("c", {"n": 3})
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert len(cache) == 2

    def test_overwrite_same_key_keeps_size(self):
        cache = IdempotencyCache(capacity=2)
        cache.put("a", {"n": 1})
        cache.put("a", {"n": 2})
        assert cache.get("a") == {"n": 2}
        assert len(cache) == 1

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            IdempotencyCache(capacity=0)
