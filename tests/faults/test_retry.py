"""RetryPolicy: deterministic jitter, backoff shape, deadline budget."""

import asyncio

import pytest

from repro.faults.retry import RetryPolicy


class FakeClock:
    """Manual clock + sleep pair so tests never actually wait."""

    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def __call__(self):
        return self.now

    def sleep(self, delay):
        self.sleeps.append(delay)
        self.now += delay

    async def async_sleep(self, delay):
        self.sleep(delay)


class Flaky:
    """Fails ``failures`` times, then returns ``value``."""

    def __init__(self, failures, value="ok", exc=ConnectionError):
        self.failures = failures
        self.value = value
        self.exc = exc
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc(f"failure {self.calls}")
        return self.value


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"base_delay_s": -1},
        {"multiplier": 0.5},
        {"max_delay_s": -1},
        {"deadline_s": -1},
        {"jitter": 1.5},
    ])
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_negative_attempt_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay_for(-1)


class TestSchedule:
    def test_deterministic_per_seed_key_attempt(self):
        policy = RetryPolicy(seed=11)
        twin = RetryPolicy(seed=11)
        assert policy.delays("req-1") == twin.delays("req-1")
        assert policy.delay_for(2, "req-1") == twin.delay_for(2, "req-1")

    def test_key_and_seed_decorrelate(self):
        policy = RetryPolicy(seed=11)
        assert policy.delays("a") != policy.delays("b")
        assert policy.delays("a") != RetryPolicy(seed=12).delays("a")

    def test_jitter_bounds(self):
        policy = RetryPolicy(base_delay_s=0.1, multiplier=2.0,
                             max_delay_s=10.0, jitter=0.5, seed=3)
        for attempt in range(4):
            raw = min(0.1 * (2.0 ** attempt), 10.0)
            for key in ("x", "y", "z"):
                delay = policy.delay_for(attempt, key)
                assert raw * 0.5 <= delay <= raw

    def test_no_jitter_is_exact_exponential(self):
        policy = RetryPolicy(max_attempts=5, base_delay_s=0.1,
                             multiplier=2.0, max_delay_s=0.5, jitter=0.0)
        assert policy.delays() == [0.1, 0.2, 0.4, 0.5]

    def test_max_delay_caps(self):
        policy = RetryPolicy(base_delay_s=1.0, multiplier=10.0,
                             max_delay_s=2.0, jitter=0.0)
        assert policy.delay_for(5) == 2.0


class TestExecute:
    def test_retries_then_succeeds(self):
        clock = FakeClock()
        policy = RetryPolicy(max_attempts=4, jitter=0.0)
        fn = Flaky(failures=2)
        result = policy.execute(fn, clock=clock, sleep=clock.sleep)
        assert result == "ok"
        assert fn.calls == 3
        assert clock.sleeps == [policy.delay_for(0), policy.delay_for(1)]

    def test_exhaustion_reraises_last_error(self):
        clock = FakeClock()
        policy = RetryPolicy(max_attempts=3, jitter=0.0)
        fn = Flaky(failures=99)
        with pytest.raises(ConnectionError, match="failure 3"):
            policy.execute(fn, clock=clock, sleep=clock.sleep)
        assert fn.calls == 3

    def test_non_retryable_propagates_immediately(self):
        clock = FakeClock()
        policy = RetryPolicy(max_attempts=5)
        fn = Flaky(failures=99, exc=KeyError)
        with pytest.raises(KeyError):
            policy.execute(fn, retry_on=(ConnectionError,),
                           clock=clock, sleep=clock.sleep)
        assert fn.calls == 1
        assert clock.sleeps == []

    def test_deadline_never_overrun(self):
        """The policy refuses to start a sleep crossing the budget."""
        clock = FakeClock()
        policy = RetryPolicy(max_attempts=10, base_delay_s=0.4,
                             multiplier=1.0, max_delay_s=0.4,
                             deadline_s=1.0, jitter=0.0)
        fn = Flaky(failures=99)
        with pytest.raises(ConnectionError):
            policy.execute(fn, clock=clock, sleep=clock.sleep)
        # 0.4 + 0.4 taken; a third sleep would end at 1.2 > 1.0.
        assert clock.sleeps == [0.4, 0.4]
        assert clock.now <= 1.0
        assert fn.calls == 3

    def test_zero_deadline_single_attempt(self):
        clock = FakeClock()
        policy = RetryPolicy(max_attempts=5, base_delay_s=0.1,
                             deadline_s=0.0, jitter=0.0)
        fn = Flaky(failures=99)
        with pytest.raises(ConnectionError, match="failure 1"):
            policy.execute(fn, clock=clock, sleep=clock.sleep)
        assert fn.calls == 1

    def test_on_retry_callback(self):
        clock = FakeClock()
        seen = []
        policy = RetryPolicy(max_attempts=3, jitter=0.0)
        fn = Flaky(failures=2)
        policy.execute(fn, clock=clock, sleep=clock.sleep,
                       on_retry=lambda attempt, exc: seen.append(
                           (attempt, type(exc))))
        assert seen == [(0, ConnectionError), (1, ConnectionError)]


class TestExecuteAsync:
    def test_async_retries_then_succeeds(self):
        clock = FakeClock()
        policy = RetryPolicy(max_attempts=4, jitter=0.0)
        flaky = Flaky(failures=2)

        async def fn():
            return flaky()

        async def scenario():
            return await policy.execute_async(
                fn, clock=clock, sleep=clock.async_sleep)

        assert asyncio.run(scenario()) == "ok"
        assert flaky.calls == 3
        assert clock.sleeps == [policy.delay_for(0), policy.delay_for(1)]

    def test_async_deadline_never_overrun(self):
        clock = FakeClock()
        policy = RetryPolicy(max_attempts=10, base_delay_s=0.4,
                             multiplier=1.0, max_delay_s=0.4,
                             deadline_s=1.0, jitter=0.0)
        flaky = Flaky(failures=99)

        async def fn():
            return flaky()

        async def scenario():
            await policy.execute_async(fn, clock=clock,
                                       sleep=clock.async_sleep)

        with pytest.raises(ConnectionError):
            asyncio.run(scenario())
        assert clock.now <= 1.0
        assert flaky.calls == 3

    def test_async_non_retryable_propagates(self):
        policy = RetryPolicy(max_attempts=5)
        flaky = Flaky(failures=99, exc=KeyError)

        async def fn():
            return flaky()

        async def scenario():
            await policy.execute_async(fn, retry_on=(ConnectionError,))

        with pytest.raises(KeyError):
            asyncio.run(scenario())
        assert flaky.calls == 1
