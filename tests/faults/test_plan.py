"""FaultPlan / FaultInjector: validation, determinism, firing rules."""

import threading

import pytest

from repro.faults.plan import (
    CACHE_CORRUPT,
    CONN_DROP,
    FAULT_KINDS,
    LATENCY_SPIKE,
    NAMED_PLANS,
    SHARD_KILL,
    SITE_CACHE_LOAD,
    SITE_CONN_WRITE,
    SITE_ENGINE,
    SITE_SHARD,
    SITES,
    WORKER_CRASH,
    FaultPlan,
    FaultSpec,
    named_plan,
)


class TestSpecValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("meteor_strike", SITE_ENGINE)

    def test_unknown_site(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec(WORKER_CRASH, "the_moon")

    def test_rate_bounds(self):
        with pytest.raises(ValueError, match="rate"):
            FaultSpec(WORKER_CRASH, SITE_ENGINE, rate=1.5)
        with pytest.raises(ValueError, match="rate"):
            FaultSpec(WORKER_CRASH, SITE_ENGINE, rate=-0.1)

    def test_at_calls_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            FaultSpec(WORKER_CRASH, SITE_ENGINE, at_calls=(0,))

    def test_max_fires_non_negative(self):
        with pytest.raises(ValueError, match="max_fires"):
            FaultSpec(WORKER_CRASH, SITE_ENGINE, max_fires=-1)


class TestFiring:
    def test_at_calls_fire_exactly_there(self):
        plan = FaultPlan(seed=3, specs=(
            FaultSpec(WORKER_CRASH, SITE_ENGINE, at_calls=(2, 5)),))
        injector = plan.injector()
        decisions = [injector.check(SITE_ENGINE) for _ in range(6)]
        fired_at = [i + 1 for i, e in enumerate(decisions) if e is not None]
        assert fired_at == [2, 5]
        assert all(e.kind == WORKER_CRASH for e in decisions
                   if e is not None)

    def test_event_carries_param_and_call_index(self):
        plan = FaultPlan(seed=3, specs=(
            FaultSpec(LATENCY_SPIKE, SITE_ENGINE, at_calls=(1,),
                      param=0.25),))
        event = plan.injector().check(SITE_ENGINE)
        assert event.kind == LATENCY_SPIKE
        assert event.site == SITE_ENGINE
        assert event.call_index == 1
        assert event.param == 0.25

    def test_max_fires_caps_rate_spec(self):
        plan = FaultPlan(seed=1, specs=(
            FaultSpec(CONN_DROP, SITE_CONN_WRITE, rate=1.0, max_fires=3),))
        injector = plan.injector()
        events = [injector.check(SITE_CONN_WRITE) for _ in range(10)]
        assert sum(e is not None for e in events) == 3
        assert injector.fired_counts() == {CONN_DROP: 3}

    def test_sites_are_independent_counters(self):
        plan = FaultPlan(seed=1, specs=(
            FaultSpec(WORKER_CRASH, SITE_ENGINE, at_calls=(1,)),
            FaultSpec(SHARD_KILL, SITE_SHARD, at_calls=(1,)),))
        injector = plan.injector()
        assert injector.check(SITE_ENGINE) is not None
        assert injector.calls(SITE_ENGINE) == 1
        assert injector.calls(SITE_SHARD) == 0
        assert injector.check(SITE_SHARD) is not None
        assert injector.calls(SITE_SHARD) == 1

    def test_fired_schedule_records_everything(self):
        plan = FaultPlan(seed=1, specs=(
            FaultSpec(CACHE_CORRUPT, SITE_CACHE_LOAD, at_calls=(1, 3)),))
        injector = plan.injector()
        for _ in range(3):
            injector.check(SITE_CACHE_LOAD)
        assert injector.fired_schedule() == [
            (SITE_CACHE_LOAD, 1, CACHE_CORRUPT),
            (SITE_CACHE_LOAD, 3, CACHE_CORRUPT),
        ]

    def test_one_event_per_call_first_spec_wins(self):
        plan = FaultPlan(seed=1, specs=(
            FaultSpec(WORKER_CRASH, SITE_ENGINE, at_calls=(1,)),
            FaultSpec(LATENCY_SPIKE, SITE_ENGINE, at_calls=(1,)),))
        injector = plan.injector()
        event = injector.check(SITE_ENGINE)
        assert event.kind == WORKER_CRASH
        assert len(injector.fired) == 1

    def test_thread_safety_counts_every_crossing(self):
        plan = FaultPlan(seed=5, specs=(
            FaultSpec(CONN_DROP, SITE_CONN_WRITE, rate=0.5),))
        injector = plan.injector()

        def cross():
            for _ in range(200):
                injector.check(SITE_CONN_WRITE)

        threads = [threading.Thread(target=cross) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert injector.calls(SITE_CONN_WRITE) == 800


class TestDeterminism:
    def test_same_seed_same_preview(self):
        a = FaultPlan(seed=42, specs=(
            FaultSpec(WORKER_CRASH, SITE_ENGINE, rate=0.3),
            FaultSpec(CONN_DROP, SITE_CONN_WRITE, rate=0.2),))
        b = FaultPlan(seed=42, specs=a.specs)
        assert a.preview_all(128) == b.preview_all(128)

    def test_different_seed_different_schedule(self):
        spec = (FaultSpec(WORKER_CRASH, SITE_ENGINE, rate=0.3),)
        a = FaultPlan(seed=1, specs=spec).preview(SITE_ENGINE, 256)
        b = FaultPlan(seed=2, specs=spec).preview(SITE_ENGINE, 256)
        assert a != b

    def test_preview_is_side_effect_free(self):
        plan = named_plan("ci-default", 7)
        before = plan.preview_all(32)
        injector = plan.injector()
        injector.check(SITE_ENGINE)
        assert plan.preview_all(32) == before

    def test_rate_streams_independent_of_other_specs(self):
        """Spec 1's schedule must not shift when spec 0 changes."""
        probe = FaultSpec(CONN_DROP, SITE_ENGINE, rate=0.4)
        quiet = FaultPlan(seed=9, specs=(
            FaultSpec(WORKER_CRASH, SITE_ENGINE, rate=0.0), probe))
        noisy = FaultPlan(seed=9, specs=(
            FaultSpec(WORKER_CRASH, SITE_ENGINE, rate=1.0), probe))

        def spec1_draws(plan):
            injector = plan.injector()
            fired = []
            for call in range(1, 101):
                injector.check(SITE_ENGINE)
                fired.append(any(
                    e.call_index == call and e.kind == CONN_DROP
                    for e in injector.fired))
            return fired

        # Under the noisy plan spec 0 masks spec 1 (first match wins),
        # so compare the underlying stream via a plan where only the
        # probe can win: seed and spec position are what matter.
        solo_a = FaultPlan(seed=9, specs=(
            FaultSpec(WORKER_CRASH, SITE_ENGINE, rate=0.0), probe))
        solo_b = FaultPlan(seed=9, specs=(
            FaultSpec(LATENCY_SPIKE, SITE_ENGINE, rate=0.0), probe))
        assert spec1_draws(solo_a) == spec1_draws(solo_b)
        assert quiet.preview(SITE_ENGINE, 100) is not None
        assert noisy.preview(SITE_ENGINE, 100) is not None


class TestNamedPlans:
    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown fault plan"):
            named_plan("nonesuch", 1)

    def test_registry_names(self):
        assert set(NAMED_PLANS) == {"ci-default", "soak",
                                    "cluster-restart", "none"}

    def test_ci_default_covers_every_kind(self):
        plan = named_plan("ci-default", 7)
        assert plan.kinds() == FAULT_KINDS
        # Every spec uses exact call indices → coverage is guaranteed.
        assert all(spec.at_calls for spec in plan.specs)

    def test_none_plan_never_fires(self):
        plan = named_plan("none", 7)
        preview = plan.preview_all(64)
        assert all(decision is None
                   for site in SITES for decision in preview[site])

    def test_soak_is_bounded(self):
        plan = named_plan("soak", 7)
        assert all(spec.max_fires is not None for spec in plan.specs)
