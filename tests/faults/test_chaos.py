"""The chaos harness end-to-end (the same run CI's chaos-smoke gates on)."""

import pytest

from repro.faults.chaos import run_chaos
from repro.faults.plan import FaultPlan, FaultSpec, SITE_CONN_WRITE, CONN_DROP

pytestmark = [pytest.mark.integration, pytest.mark.slow]


def test_ci_default_plan_passes():
    report = run_chaos(plan_name="ci-default", seed=7, requests=24,
                       parallelism=2)
    failed = [inv for inv in report.invariants if not inv.ok]
    assert report.passed, f"invariants failed: {failed}"
    # Every exact-scheduled kind actually fired — the run was a real
    # chaos run, not a quiet one.
    for kind in ("worker_crash", "latency_spike", "conn_drop",
                 "cache_corrupt", "shard_kill"):
        assert report.fired.get(kind, 0) >= 1, f"{kind} never fired"
    # The service survived with exactly-once semantics.
    assert report.chaos["completed"] == 24
    assert report.chaos["dropped"] == 0
    assert report.chaos["retried"] >= 1  # drops forced client retries
    text = report.format()
    assert "PASS" in text and "FAIL" not in text


def test_custom_plan_override():
    """A caller-built plan runs under its own schedule determinism check."""
    plan = FaultPlan(seed=3, name="custom-drops", specs=(
        FaultSpec(CONN_DROP, SITE_CONN_WRITE, at_calls=(2,), param=0.5),))
    report = run_chaos(requests=8, parallelism=1, plan=plan)
    assert report.plan == "custom-drops"
    assert report.seed == 3
    failed = [inv for inv in report.invariants if not inv.ok]
    assert report.passed, f"invariants failed: {failed}"
    assert report.fired.get("conn_drop", 0) >= 1
