"""SAM output tests."""

import io

import pytest

from repro.align.pipeline import SoftwareAligner
from repro.align.sam import (
    FLAG_REVERSE,
    FLAG_UNMAPPED,
    mapq_estimate,
    sam_header,
    sam_record,
    write_sam,
)
from repro.genome.reads import ErrorModel, Read, ReadSimulator
from repro.genome.reference import SyntheticReference


@pytest.fixture(scope="module")
def reference():
    return SyntheticReference(length=30_000, chromosomes=2, seed=61).build()


@pytest.fixture(scope="module")
def results(reference):
    aligner = SoftwareAligner(reference, occ_interval=64)
    sim = ReadSimulator(reference, read_length=80,
                        error_model=ErrorModel(0, 0, 0), seed=1)
    return aligner.align_all(sim.simulate(12))


class TestHeader:
    def test_sq_lines(self, reference):
        lines = sam_header(reference)
        assert lines[0].startswith("@HD")
        sq = [l for l in lines if l.startswith("@SQ")]
        assert len(sq) == 2
        assert f"LN:{len(reference.chromosomes[0])}" in sq[0]


class TestRecords:
    def test_mapped_record_fields(self, reference, results):
        result = next(r for r in results if r.aligned)
        fields = sam_record(result, reference).split("\t")
        assert fields[0] == result.read.read_id
        assert fields[2] in reference.names
        assert int(fields[3]) >= 1
        assert 0 <= int(fields[4]) <= 60
        assert "M" in fields[5]
        assert len(fields[9]) == len(result.read.sequence)

    def test_reverse_flag_and_revcomp(self, reference, results):
        reverse = next((r for r in results
                        if r.aligned and r.best.reverse), None)
        if reverse is None:
            pytest.skip("no reverse-strand read in this sample")
        fields = sam_record(reverse, reference).split("\t")
        assert int(fields[1]) & FLAG_REVERSE
        from repro.genome.sequence import reverse_complement
        assert fields[9] == reverse_complement(reverse.read.sequence)

    def test_unmapped_record(self, reference):
        from repro.align.pipeline import ReadAlignment
        result = ReadAlignment(read=Read("u", "ACGT" * 10), best=None)
        fields = sam_record(result, reference).split("\t")
        assert int(fields[1]) & FLAG_UNMAPPED
        assert fields[2] == "*"

    def test_position_matches_locate(self, reference, results):
        result = next(r for r in results if r.aligned)
        fields = sam_record(result, reference).split("\t")
        chrom, local = reference.locate(result.best.ref_start)
        assert fields[2] == chrom
        assert int(fields[3]) == local + 1

    def test_soft_clipping_consistency(self, reference, results):
        """CIGAR (with clips) must consume the whole read."""
        from repro.extension.alignment import Cigar
        for result in results:
            if not result.aligned:
                continue
            fields = sam_record(result, reference).split("\t")
            cigar = Cigar.parse(fields[5])
            assert cigar.query_length == len(result.read.sequence)


class TestWriteSam:
    def test_roundtrip_to_buffer(self, reference, results):
        buffer = io.StringIO()
        mapped = write_sam(results, reference, buffer)
        lines = buffer.getvalue().strip().split("\n")
        body = [l for l in lines if not l.startswith("@")]
        assert len(body) == len(results)
        assert mapped == sum(1 for r in results if r.aligned)

    def test_write_to_file(self, reference, results, tmp_path):
        path = tmp_path / "out.sam"
        write_sam(results, reference, path)
        content = path.read_text()
        assert content.startswith("@HD")


class TestParseSam:
    def test_roundtrip(self, reference, results):
        from repro.align.sam import parse_sam
        buffer = io.StringIO()
        write_sam(results, reference, buffer)
        buffer.seek(0)
        records = list(parse_sam(buffer))
        assert len(records) == len(results)
        for record, result in zip(records, results):
            assert record.qname == result.read.read_id
            if result.aligned:
                assert not record.is_unmapped
                chrom, local = reference.locate(result.best.ref_start)
                assert record.rname == chrom
                assert record.pos == local + 1
                assert record.is_reverse == result.best.reverse
            else:
                assert record.is_unmapped

    def test_truncated_line_rejected(self):
        from repro.align.sam import parse_sam
        with pytest.raises(ValueError):
            list(parse_sam(io.StringIO("r1\t0\tchr1\n")))

    def test_header_skipped(self):
        from repro.align.sam import parse_sam
        text = "@HD\tVN:1.6\n@SQ\tSN:c\tLN:4\n"
        assert list(parse_sam(io.StringIO(text))) == []


class TestMapq:
    def test_unique_full_score(self):
        assert mapq_estimate(100, None, 100) == 60

    def test_tie_is_zero(self):
        assert mapq_estimate(80, 80, 100) == 0

    def test_gap_scales(self):
        low = mapq_estimate(80, 78, 100)
        high = mapq_estimate(80, 40, 100)
        assert 0 <= low < high <= 60

    def test_nonpositive_score(self):
        assert mapq_estimate(0, None, 100) == 0

    def test_invalid_read_length(self):
        with pytest.raises(ValueError):
            mapq_estimate(10, None, 0)
