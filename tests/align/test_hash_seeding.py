"""The Darwin-style hash seeding mode of the short-read pipeline."""

import pytest

from repro.align.pipeline import SoftwareAligner
from repro.genome.reads import ErrorModel, ReadSimulator
from repro.genome.reference import SyntheticReference


@pytest.fixture(scope="module")
def reference():
    return SyntheticReference(length=30_000, chromosomes=2, seed=111).build()


@pytest.fixture(scope="module")
def hash_aligner(reference):
    return SoftwareAligner(reference, seeding="hash", hash_k=11)


@pytest.fixture(scope="module")
def fm_aligner(reference):
    return SoftwareAligner(reference, occ_interval=64)


class TestHashSeedingMode:
    def test_recovers_true_positions(self, reference, hash_aligner):
        sim = ReadSimulator(reference, read_length=80,
                            error_model=ErrorModel(0, 0, 0), seed=1)
        reads = sim.simulate(20)
        correct = 0
        for idx, read in enumerate(reads):
            result = hash_aligner.align(read, idx)
            if not result.aligned:
                continue
            truth = reference.offsets[read.chrom] + read.position
            if abs(result.best.ref_start - truth) < 150:
                correct += 1
        assert correct >= 18

    def test_agrees_with_fm_seeding(self, reference, hash_aligner,
                                    fm_aligner):
        """Both seeding algorithms must find the same best locus."""
        sim = ReadSimulator(reference, read_length=80,
                            error_model=ErrorModel(0, 0, 0), seed=2)
        agree = 0
        reads = sim.simulate(15)
        for idx, read in enumerate(reads):
            h = hash_aligner.align(read, idx)
            f = fm_aligner.align(read, idx)
            if h.aligned and f.aligned and \
                    abs(h.best.ref_start - f.best.ref_start) < 50:
                agree += 1
        assert agree >= 13

    def test_accesses_follow_2_plus_p(self, reference, hash_aligner):
        """Seeding accesses are metered through the hash 2+P model."""
        sim = ReadSimulator(reference, read_length=80, seed=3)
        result = hash_aligner.align(sim.simulate(1)[0])
        # at least 2 pointer accesses per k-mer per strand
        k = hash_aligner.hash_index.k
        min_accesses = 2 * 2 * (80 - k + 1)
        assert result.work.seeding_accesses >= min_accesses

    def test_anchor_min_length_is_k(self, hash_aligner, fm_aligner):
        assert hash_aligner.anchor_min_length == 11
        assert fm_aligner.anchor_min_length == 19

    def test_invalid_mode_rejected(self, reference):
        with pytest.raises(ValueError):
            SoftwareAligner(reference, seeding="magic")
