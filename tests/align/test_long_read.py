"""Long-read (seed-and-chain-then-fill) aligner tests."""

import pytest

from repro.align.long_read import LongReadAligner
from repro.genome.reads import LONG_READ, ErrorModel, Read, ReadSimulator
from repro.genome.reference import SyntheticReference


@pytest.fixture(scope="module")
def reference():
    return SyntheticReference(length=80_000, chromosomes=2, seed=51).build()


@pytest.fixture(scope="module")
def aligner(reference):
    return LongReadAligner(reference)


def true_start(reference, read):
    return reference.offsets[read.chrom] + read.position


class TestAccuracy:
    def test_clean_long_reads_map_exactly(self, reference, aligner):
        sim = ReadSimulator(reference, read_length=1000,
                            error_model=ErrorModel(0, 0, 0), seed=1)
        reads = sim.simulate(10)
        for read in reads:
            result = aligner.align(read)
            assert result.aligned, read.read_id
            assert result.best.reverse == read.reverse
            assert abs(result.best.ref_start - true_start(reference, read)) \
                <= aligner.band_slack + 5

    def test_noisy_long_reads_map_near_truth(self, reference, aligner):
        sim = ReadSimulator(reference, read_length=1000,
                            error_model=LONG_READ, seed=2)
        reads = sim.simulate(8)
        mapped = 0
        for read in reads:
            result = aligner.align(read)
            if not result.aligned:
                continue
            mapped += 1
            assert abs(result.best.ref_start - true_start(reference, read)) \
                < 300
        assert mapped >= 6

    def test_junk_read_unmapped(self, aligner):
        import random
        from repro.genome.sequence import random_sequence
        junk = random_sequence(1000, random.Random(99))
        result = aligner.align(Read("junk", junk))
        # a random 1 kb sequence should not chain 3+ co-linear minimizers
        assert not result.aligned or result.best.score < 500


class TestWorkMeasurement:
    def test_work_recorded(self, reference, aligner):
        sim = ReadSimulator(reference, read_length=1000,
                            error_model=LONG_READ, seed=3)
        result = aligner.align(sim.simulate(1)[0])
        assert result.work.anchors > 0
        if result.aligned:
            assert result.work.fill_cells > 0
            assert result.work.chains >= 1

    def test_noisier_reads_produce_fewer_anchors(self, reference, aligner):
        clean_sim = ReadSimulator(reference, read_length=1000,
                                  error_model=ErrorModel(0, 0, 0), seed=4)
        noisy_sim = ReadSimulator(reference, read_length=1000,
                                  error_model=LONG_READ, seed=4)
        clean = sum(aligner.align(r).work.anchors
                    for r in clean_sim.simulate(5))
        noisy = sum(aligner.align(r).work.anchors
                    for r in noisy_sim.simulate(5))
        assert noisy < clean

    def test_align_all(self, reference, aligner):
        sim = ReadSimulator(reference, read_length=1000,
                            error_model=ErrorModel(0, 0, 0), seed=5)
        results = aligner.align_all(sim.simulate(3))
        assert len(results) == 3


class TestValidation:
    def test_invalid_params(self, reference):
        with pytest.raises(ValueError):
            LongReadAligner(reference, min_chain_anchors=0)
        with pytest.raises(ValueError):
            LongReadAligner(reference, band_slack=0)
