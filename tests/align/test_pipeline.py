"""End-to-end aligner tests: accuracy on simulated reads."""

import random

import pytest

from repro.align.pipeline import SoftwareAligner
from repro.genome.reads import ErrorModel, Read, ReadSimulator
from repro.genome.reference import SyntheticReference


@pytest.fixture(scope="module")
def reference():
    return SyntheticReference(length=60_000, chromosomes=2, seed=33).build()


@pytest.fixture(scope="module")
def aligner(reference):
    return SoftwareAligner(reference, occ_interval=64)


def true_linear_start(reference, read):
    return reference.offsets[read.chrom] + read.position


class TestAccuracyErrorFree:
    def test_recovers_true_positions(self, reference, aligner):
        sim = ReadSimulator(reference, read_length=80,
                            error_model=ErrorModel(0, 0, 0), seed=1)
        reads = sim.simulate(30)
        correct = 0
        for idx, read in enumerate(reads):
            result = aligner.align(read, idx)
            assert result.aligned, f"read {idx} unaligned"
            truth = true_linear_start(reference, read)
            start = result.best.ref_start - (
                result.best.read_start if not result.best.reverse
                else len(read.sequence) - result.best.read_end)
            if abs(start - truth) <= 2:
                correct += 1
        assert correct >= 28  # allow repeat-region ambiguity

    def test_perfect_read_scores_full(self, reference, aligner):
        chrom = reference.chromosomes[0]
        read = Read("r", chrom.sequence[1000:1080])
        result = aligner.align(read)
        assert result.best.score == 80
        assert str(result.best.cigar) == "80M"

    def test_strand_detection(self, reference, aligner):
        sim = ReadSimulator(reference, read_length=80,
                            error_model=ErrorModel(0, 0, 0), seed=2)
        reads = sim.simulate(40)
        agree = sum(1 for idx, read in enumerate(reads)
                    if aligner.align(read, idx).best is not None
                    and aligner.align(read, idx).best.reverse == read.reverse)
        assert agree >= 36


class TestAccuracyWithErrors:
    def test_aligns_noisy_reads(self, reference, aligner):
        sim = ReadSimulator(reference, read_length=101, seed=3)
        reads = sim.simulate(25)
        aligned = sum(1 for idx, r in enumerate(reads)
                      if aligner.align(r, idx).aligned)
        assert aligned >= 23

    def test_mismatched_read_still_maps_near_truth(self, reference, aligner):
        sim = ReadSimulator(reference, read_length=101,
                            error_model=ErrorModel(0.01, 0, 0), seed=4)
        for idx, read in enumerate(sim.simulate(10)):
            result = aligner.align(read, idx)
            if not result.aligned:
                continue
            truth = true_linear_start(reference, read)
            assert abs(result.best.ref_start - truth) < 150


class TestPipelineStructure:
    def test_hits_follow_table3_format(self, reference, aligner):
        sim = ReadSimulator(reference, read_length=101, seed=5)
        read = sim.simulate(1)[0]
        result = aligner.align(read, read_idx=7)
        assert result.hits
        for hit in result.hits:
            assert hit.read_idx == 7
            assert 0 <= hit.read_start < hit.read_end <= len(read.sequence)
            assert 0 <= hit.ref_start <= hit.ref_end <= len(reference)
            assert hit.hit_len == hit.read_end - hit.read_start

    def test_hit_indices_sequential(self, reference, aligner):
        sim = ReadSimulator(reference, read_length=101, seed=6)
        result = aligner.align(sim.simulate(1)[0])
        assert [h.hit_idx for h in result.hits] == \
            list(range(len(result.hits)))

    def test_work_is_measured(self, reference, aligner):
        sim = ReadSimulator(reference, read_length=101, seed=7)
        result = aligner.align(sim.simulate(1)[0])
        assert result.work.seeding_accesses > 0
        assert result.work.extension_cells > 0
        assert result.work.hit_count == len(result.hits)

    def test_junk_read_unaligned(self, aligner):
        # A read highly unlikely to have a 19bp exact match anywhere.
        rng = random.Random(99)
        junk = "".join(rng.choice("ACGT") for _ in range(101))
        result = aligner.align(Read("junk", junk))
        # Either no hits at all or low-score alignment; assert no crash and
        # sane structure.
        assert result.work.seeding_accesses > 0

    def test_align_all_indexes_reads(self, reference, aligner):
        sim = ReadSimulator(reference, read_length=101, seed=8)
        results = aligner.align_all(sim.simulate(3))
        for idx, result in enumerate(results):
            for hit in result.hits:
                assert hit.read_idx == idx
