"""Paired alignment tests: proper pairs and mate rescue."""

import pytest

from repro.align.paired import PairedAligner
from repro.genome.pairs import PairedReadSimulator, ReadPair
from repro.genome.reads import ErrorModel, Read
from repro.genome.reference import SyntheticReference


@pytest.fixture(scope="module")
def reference():
    return SyntheticReference(length=60_000, chromosomes=2, seed=92).build()


@pytest.fixture(scope="module")
def paired(reference):
    return PairedAligner(reference, insert_mean=400, insert_sd=50)


class TestProperPairs:
    def test_clean_pairs_are_proper(self, reference, paired):
        sim = PairedReadSimulator(reference, insert_mean=400, insert_sd=50,
                                  error_model=ErrorModel(0, 0, 0), seed=1)
        results = paired.align_pairs(sim.simulate(12))
        proper = sum(1 for r in results if r.proper)
        assert proper >= 10

    def test_insert_sizes_recovered(self, reference, paired):
        sim = PairedReadSimulator(reference, insert_mean=400, insert_sd=50,
                                  error_model=ErrorModel(0, 0, 0), seed=2)
        for result in paired.align_pairs(sim.simulate(8)):
            if not result.proper:
                continue
            assert result.insert_size == pytest.approx(
                result.pair.insert_size, abs=5)

    def test_distant_mates_not_proper(self, reference, paired):
        """Mates simulated from unrelated loci must not pair."""
        chrom = reference.chromosomes[0]
        mate1 = Read("x/1", chrom.sequence[1000:1101])
        from repro.genome.sequence import reverse_complement
        mate2 = Read("x/2",
                     reverse_complement(chrom.sequence[20_000:20_101]))
        pair = ReadPair("x", mate1, mate2)
        result = paired.align_pair(pair)
        assert result.both_mapped
        assert not result.proper

    def test_same_orientation_not_proper(self, reference, paired):
        chrom = reference.chromosomes[0]
        mate1 = Read("y/1", chrom.sequence[1000:1101])
        mate2 = Read("y/2", chrom.sequence[1400:1501])  # both forward
        result = paired.align_pair(ReadPair("y", mate1, mate2))
        assert not result.proper


class TestMateRescue:
    def test_rescue_recovers_noisy_mate(self, reference):
        """A mate too noisy to seed (no 19 bp exact match) is rescued by
        the windowed SW around its anchor."""
        paired = PairedAligner(reference, insert_mean=400, insert_sd=50,
                               rescue_score_fraction=0.2)
        chrom = reference.chromosomes[0]
        start, end = 5000, 5400
        mate1 = Read("r/1", chrom.sequence[start:start + 101])
        from repro.genome.sequence import reverse_complement
        import random
        rng = random.Random(7)
        clean2 = chrom.sequence[end - 101:end]
        noisy2 = "".join(
            base if rng.random() > 0.12
            else rng.choice([b for b in "ACGT" if b != base])
            for base in clean2)
        mate2 = Read("r/2", reverse_complement(noisy2))
        result = paired.align_pair(ReadPair("r", mate1, mate2))
        if result.rescued_mate:
            assert result.rescued_mate == 2
            assert result.result2.aligned
            assert abs(result.result2.best.ref_start
                       - (reference.offsets[chrom.name] + end - 101)) < 60

    def test_rescue_window_geometry(self, paired):
        from repro.extension.alignment import Alignment, Cigar
        anchor = Alignment(score=101, cigar=Cigar.parse("101M"),
                           read_start=0, read_end=101,
                           ref_start=10_000, ref_end=10_101, reverse=False)
        lo, hi = paired.rescue_window(anchor, mate_length=101)
        # window must contain the FR-expected locus: anchor + insert - len
        expected = 10_000 + 400 - 101
        assert lo <= expected <= hi

    def test_no_rescue_when_both_mapped(self, reference, paired):
        sim = PairedReadSimulator(reference,
                                  error_model=ErrorModel(0, 0, 0), seed=3)
        results = paired.align_pairs(sim.simulate(5))
        assert all(r.rescued_mate == 0 for r in results if r.both_mapped)


class TestValidation:
    def test_invalid_params(self, reference):
        with pytest.raises(ValueError):
            PairedAligner(reference, insert_mean=0)
        with pytest.raises(ValueError):
            PairedAligner(reference, rescue_score_fraction=0.0)
