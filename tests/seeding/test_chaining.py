"""Tests for seed filtering and chaining."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.seeding.chaining import (
    Anchor,
    Chain,
    chain_anchors,
    filter_anchors,
    top_chains,
)


def anchor(rs, re, ref, reverse=False):
    return Anchor(read_start=rs, read_end=re, ref_start=ref, reverse=reverse)


class TestAnchor:
    def test_length_and_diagonal(self):
        a = anchor(10, 30, 110)
        assert a.length == 20
        assert a.ref_end == 130
        assert a.diagonal == 100

    def test_empty_span_raises(self):
        with pytest.raises(ValueError):
            anchor(5, 5, 0)


class TestFilter:
    def test_drops_short(self):
        anchors = [anchor(0, 5, 0), anchor(0, 25, 0)]
        assert filter_anchors(anchors, 19) == [anchors[1]]

    def test_zero_threshold_keeps_all(self):
        anchors = [anchor(0, 1, 0)]
        assert filter_anchors(anchors, 0) == anchors

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            filter_anchors([], -1)


class TestChaining:
    def test_colinear_anchors_chain(self):
        """Fig 1: Seed 2 and Seed 3 with close coordinates chain."""
        a = anchor(0, 20, 1000)
        b = anchor(25, 45, 1026)  # diagonal 1001 vs 1000, gap 6
        chains = chain_anchors([a, b])
        assert len(chains) == 1
        assert chains[0].read_start == 0 and chains[0].read_end == 45
        assert chains[0].ref_start == 1000 and chains[0].ref_end == 1046

    def test_distant_anchors_stay_apart(self):
        a = anchor(0, 20, 1000)
        b = anchor(25, 45, 9000)
        assert len(chain_anchors([a, b])) == 2

    def test_different_diagonals_stay_apart(self):
        a = anchor(0, 20, 1000)
        b = anchor(0, 20, 1060)  # same read span, diagonal differs by 60
        assert len(chain_anchors([a, b], max_gap=100,
                                 max_diagonal_diff=25)) == 2

    def test_opposite_strands_never_chain(self):
        a = anchor(0, 20, 1000)
        b = anchor(25, 45, 1026, reverse=True)
        assert len(chain_anchors([a, b])) == 2

    def test_read_order_respected(self):
        # Anchor earlier in the read but later in the reference: inversion,
        # must not chain.
        a = anchor(30, 50, 1000)
        b = anchor(0, 20, 1030)
        chains = chain_anchors([a, b], max_diagonal_diff=50)
        assert len(chains) == 2

    def test_three_way_chain(self):
        anchors = [anchor(0, 15, 500), anchor(20, 35, 521),
                   anchor(40, 60, 541)]
        chains = chain_anchors(anchors)
        assert len(chains) == 1
        assert len(chains[0].anchors) == 3

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            chain_anchors([], max_gap=-1)
        with pytest.raises(ValueError):
            chain_anchors([], max_diagonal_diff=-1)

    def test_empty_input(self):
        assert chain_anchors([]) == []


class TestChainStats:
    def test_length_is_read_span(self):
        chain = Chain((anchor(5, 20, 100), anchor(30, 50, 126)), False)
        assert chain.length == 45
        assert chain.anchor_bases == 35

    def test_top_chains_ranked_by_weight(self):
        light = Chain((anchor(0, 10, 0),), False)
        heavy = Chain((anchor(0, 40, 0),), False)
        assert top_chains([light, heavy], 1) == [heavy]

    def test_top_chains_invalid_limit(self):
        with pytest.raises(ValueError):
            top_chains([], 0)


@given(st.lists(st.tuples(st.integers(0, 80), st.integers(1, 20),
                          st.integers(0, 5000), st.booleans()),
                min_size=0, max_size=25))
@settings(max_examples=50)
def test_property_chaining_partitions_anchors(specs):
    anchors = [anchor(rs, rs + ln, ref, rev)
               for rs, ln, ref, rev in specs]
    chains = chain_anchors(anchors)
    chained = [a for c in chains for a in c.anchors]
    assert sorted(chained, key=id) == sorted(anchors, key=id) or \
        len(chained) == len(anchors)
    # every chain is strand-pure and ordered in both coordinates
    for chain in chains:
        strands = {a.reverse for a in chain.anchors}
        assert len(strands) == 1
        for prev, nxt in zip(chain.anchors, chain.anchors[1:]):
            assert nxt.ref_start >= prev.ref_start
            assert nxt.read_start >= prev.read_start
