"""Tests for suffix array and BWT construction."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.genome.sequence import encode, random_sequence
from repro.seeding.bwt import (
    SENTINEL,
    bwt,
    bwt_from_suffix_array,
    extended_suffix_array,
    inverse_bwt,
    suffix_array,
)

dna = st.text(alphabet="ACGT", min_size=1, max_size=120)


def naive_suffix_array(text: str):
    return sorted(range(len(text)), key=lambda i: text[i:])


class TestSuffixArray:
    def test_known_banana_like(self):
        # "ACGACG": suffixes sorted manually.
        text = "ACGACG"
        assert suffix_array(encode(text)).tolist() == naive_suffix_array(text)

    def test_empty(self):
        assert suffix_array(np.empty(0, dtype=np.uint8)).size == 0

    def test_single(self):
        assert suffix_array(encode("T")).tolist() == [0]

    def test_repetitive(self):
        text = "AAAAAA"
        assert suffix_array(encode(text)).tolist() == [5, 4, 3, 2, 1, 0]

    @given(dna)
    @settings(max_examples=60)
    def test_matches_naive(self, text):
        assert suffix_array(encode(text)).tolist() == naive_suffix_array(text)

    def test_large_random_is_permutation_and_sorted(self):
        text = random_sequence(5000, random.Random(1))
        sa = suffix_array(encode(text))
        assert sorted(sa.tolist()) == list(range(5000))
        for a, b in zip(sa[:200], sa[1:201]):
            assert text[a:] < text[b:]


class TestExtendedSuffixArray:
    def test_sentinel_row_first(self):
        sa = extended_suffix_array(encode("GATTACA"))
        assert sa[0] == 7
        assert sorted(sa.tolist()) == list(range(8))

    @given(dna)
    @settings(max_examples=30)
    def test_consistent_with_plain(self, text):
        plain = suffix_array(encode(text))
        ext = extended_suffix_array(encode(text))
        assert ext[1:].tolist() == plain.tolist()


class TestBWT:
    def test_known_value(self):
        # T = "ACGT": rotations of ACGT$ sorted: $ACGT, ACGT$, CGT$A, GT$AC,
        # T$ACG -> last column T, $, A, C, G  (with $ = SENTINEL).
        codes, _ = bwt(encode("ACGT"))
        assert codes.tolist() == [3, SENTINEL, 0, 1, 2]

    def test_single_sentinel(self):
        codes, _ = bwt(encode(random_sequence(200, random.Random(2))))
        assert int(np.count_nonzero(codes == SENTINEL)) == 1

    def test_length(self):
        codes, sa = bwt(encode("ACGTACGT"))
        assert codes.size == 9 and sa.size == 9

    def test_mismatched_sa_raises(self):
        with pytest.raises(ValueError):
            bwt_from_suffix_array(encode("ACGT"), np.arange(3))

    @given(dna)
    @settings(max_examples=60)
    def test_inverse_roundtrip(self, text):
        codes, _ = bwt(encode(text))
        assert inverse_bwt(codes).tolist() == encode(text).tolist()

    def test_inverse_rejects_multiple_sentinels(self):
        with pytest.raises(ValueError):
            inverse_bwt(np.array([SENTINEL, SENTINEL, 0], dtype=np.uint8))

    def test_inverse_empty(self):
        assert inverse_bwt(np.empty(0, dtype=np.uint8)).size == 0
