"""The zero-copy index store: bit-identity, failure modes, recovery."""

import os

import numpy as np
import pytest

from repro.genome import sequence as seq
from repro.genome.reference import SyntheticReference
from repro.seeding.bidirectional import BidirectionalFMIndex
from repro.seeding.store import (
    FORMAT_VERSION,
    IndexChecksumError,
    IndexFormatError,
    IndexStore,
    IndexStoreError,
    IndexVersionError,
    attach_or_build,
    build_index_store,
    write_index_store,
)


def _reference(seed, length=4_000, chromosomes=2):
    return SyntheticReference(length=length, chromosomes=chromosomes,
                              seed=seed).build()


def _flip_byte(path, offset_from_end=64):
    size = os.path.getsize(path)
    pos = size - offset_from_end
    with open(path, "r+b") as handle:
        handle.seek(pos)
        byte = handle.read(1)
        handle.seek(pos)
        handle.write(bytes([byte[0] ^ 0xFF]))


@pytest.fixture(scope="module")
def built(tmp_path_factory):
    """One store + its in-memory twin, shared across read-only tests."""
    reference = _reference(seed=3)
    path = tmp_path_factory.mktemp("store") / "ref.idx"
    store = build_index_store(reference, path, occ_interval=64)
    memory = BidirectionalFMIndex(seq.encode(reference.concatenated()),
                                  occ_interval=64)
    return reference, str(path), store, memory


class TestBitIdentity:
    """Acceptance criterion: mmap-backed queries == in-memory queries."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_queries_bit_identical_across_seeds(self, tmp_path, seed):
        reference = _reference(seed=seed)
        codes = seq.encode(reference.concatenated())
        memory = BidirectionalFMIndex(codes, occ_interval=64)
        store = build_index_store(reference, tmp_path / f"s{seed}.idx",
                                  occ_interval=64)
        mapped = store.fmindex()
        rng = np.random.default_rng(seed)
        for trial in range(40):
            length = int(rng.integers(8, 40))
            start = int(rng.integers(0, codes.size - length))
            pattern = codes[start:start + length]
            if trial % 5 == 0:  # also probe absent patterns
                pattern = rng.integers(0, 4, size=length).astype(np.uint8)
            a = memory.search(pattern)
            b = mapped.search(pattern)
            assert (a.k, a.l, a.s) == (b.k, b.l, b.s)
            assert memory.locate(a) == mapped.locate(b)

    def test_component_counts_match(self, built):
        _, _, store, memory = built
        mapped = store.fmindex()
        for probe in ("ACGT", "TTTT", "GATTACA"):
            assert mapped.forward.count(probe) == memory.forward.count(probe)

    def test_sa_sampling_round_trips(self, tmp_path):
        reference = _reference(seed=5, length=2_000, chromosomes=1)
        codes = seq.encode(reference.concatenated())
        memory = BidirectionalFMIndex(codes, occ_interval=64, sa_sample=4)
        write_index_store(tmp_path / "s.idx", memory, reference)
        mapped = IndexStore.open(tmp_path / "s.idx").fmindex()
        assert mapped.forward.sa_sample == 4
        assert mapped.forward._sa_mask is not None
        pattern = codes[50:70]
        assert (mapped.locate(mapped.search(pattern))
                == memory.locate(memory.search(pattern)))


class TestZeroCopy:
    def test_arrays_are_memmapped(self, built):
        _, _, store, _ = built
        assert isinstance(store.array("fwd_bwt"), np.memmap)
        assert isinstance(store.reference_codes(), np.memmap)
        # Cached: repeated access returns the same mapping, not a new one.
        assert store.array("fwd_bwt") is store.array("fwd_bwt")

    def test_two_opens_share_the_file(self, built):
        _, path, store, _ = built
        other = IndexStore.open(path)
        assert np.array_equal(other.array("fwd_sa"), store.array("fwd_sa"))
        # Distinct FMIndex objects (private stats), same backing bytes.
        assert other.fmindex() is not store.fmindex()


class TestMetadata:
    def test_reference_round_trips(self, built):
        reference, _, store, _ = built
        rebuilt = store.reference()
        assert rebuilt.concatenated() == reference.concatenated()
        assert ([c.name for c in rebuilt.chromosomes]
                == [c.name for c in reference.chromosomes])

    def test_matches_reference(self, built):
        reference, _, store, _ = built
        assert store.matches_reference(reference)
        assert not store.matches_reference(_reference(seed=99))

    def test_content_hash_is_reproducible(self, built, tmp_path):
        reference, _, store, _ = built
        again = build_index_store(reference, tmp_path / "again.idx",
                                  occ_interval=64)
        assert again.content_hash == store.content_hash

    def test_content_hash_tracks_parameters(self, built, tmp_path):
        reference, _, store, _ = built
        other = build_index_store(reference, tmp_path / "other.idx",
                                  occ_interval=128)
        assert other.content_hash != store.content_hash

    def test_describe_is_json_ready(self, built):
        import json
        _, _, store, _ = built
        desc = json.loads(json.dumps(store.describe()))
        assert desc["format_version"] == FORMAT_VERSION
        assert desc["meta"]["occ_interval"] == 64
        names = {spec["name"] for spec in desc["arrays"]}
        assert {"ref_codes", "fwd_bwt", "fwd_cum", "fwd_occ_ckpt",
                "fwd_sa", "bwd_bwt", "bwd_cum", "bwd_occ_ckpt",
                "bwd_sa"} <= names

    def test_no_tmp_left_behind(self, built):
        _, path, _, _ = built
        leftovers = [name for name in os.listdir(os.path.dirname(path))
                     if name.endswith(".tmp")]
        assert leftovers == []

    def test_write_rejects_mismatched_reference(self, built, tmp_path):
        _, _, _, memory = built
        with pytest.raises(ValueError, match="bases"):
            write_index_store(tmp_path / "bad.idx", memory,
                              _reference(seed=9, length=1_000,
                                         chromosomes=1))


class TestFailureModes:
    """Every corruption is a *typed* error, never a silent misalignment."""

    def _fresh(self, tmp_path):
        reference = _reference(seed=7, length=2_000, chromosomes=1)
        path = str(tmp_path / "victim.idx")
        build_index_store(reference, path, occ_interval=64)
        return reference, path

    def test_truncated_file_raises_format_error(self, tmp_path):
        _, path = self._fresh(tmp_path)
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size // 2)
        with pytest.raises(IndexFormatError, match="torn|truncated|size"):
            IndexStore.open(path)

    def test_truncation_inside_prefix(self, tmp_path):
        _, path = self._fresh(tmp_path)
        with open(path, "r+b") as handle:
            handle.truncate(10)
        with pytest.raises(IndexFormatError):
            IndexStore.open(path)

    def test_bad_magic_raises_format_error(self, tmp_path):
        _, path = self._fresh(tmp_path)
        with open(path, "r+b") as handle:
            handle.write(b"NOTANIDX")
        with pytest.raises(IndexFormatError, match="magic"):
            IndexStore.open(path)

    def test_version_bump_raises_version_error(self, tmp_path):
        _, path = self._fresh(tmp_path)
        with open(path, "r+b") as handle:
            handle.seek(8)
            handle.write((FORMAT_VERSION + 1).to_bytes(4, "little"))
        with pytest.raises(IndexVersionError, match="version"):
            IndexStore.open(path)

    def test_flipped_header_byte_raises_checksum_error(self, tmp_path):
        _, path = self._fresh(tmp_path)
        with open(path, "r+b") as handle:
            handle.seek(60)  # inside the JSON header
            byte = handle.read(1)
            handle.seek(60)
            handle.write(bytes([byte[0] ^ 0x01]))
        with pytest.raises(IndexChecksumError, match="header"):
            IndexStore.open(path)

    def test_flipped_payload_byte_caught_by_verify(self, tmp_path):
        _, path = self._fresh(tmp_path)
        _flip_byte(path)
        # Structural open cannot see a payload flip...
        store = IndexStore.open(path)
        # ...but deep verification must.
        with pytest.raises(IndexChecksumError, match="checksum"):
            store.verify()
        with pytest.raises(IndexChecksumError):
            IndexStore.open(path, verify=True)

    def test_all_errors_share_the_base_class(self):
        for error in (IndexFormatError, IndexVersionError,
                      IndexChecksumError):
            assert issubclass(error, IndexStoreError)


class TestAttachOrBuild:
    def test_cold_build_then_mmap_hit(self, tmp_path):
        reference = _reference(seed=4, length=2_000, chromosomes=1)
        path = tmp_path / "a.idx"
        first, hit, error = attach_or_build(path, reference,
                                            occ_interval=64)
        assert (hit, error) == (False, None)
        second, hit, error = attach_or_build(path, reference,
                                             occ_interval=64)
        assert (hit, error) == (True, None)
        assert second.content_hash == first.content_hash

    @pytest.mark.parametrize("corruption", ["truncate", "flip", "version"])
    def test_corruption_triggers_rebuild(self, tmp_path, corruption):
        reference = _reference(seed=4, length=2_000, chromosomes=1)
        path = str(tmp_path / "b.idx")
        original = build_index_store(reference, path, occ_interval=64)
        expected = original.content_hash
        if corruption == "truncate":
            with open(path, "r+b") as handle:
                handle.truncate(os.path.getsize(path) // 3)
        elif corruption == "flip":
            _flip_byte(path)
        else:
            with open(path, "r+b") as handle:
                handle.seek(8)
                handle.write((FORMAT_VERSION + 7).to_bytes(4, "little"))
        store, hit, error = attach_or_build(path, reference,
                                            occ_interval=64)
        assert not hit
        assert isinstance(error, IndexStoreError)
        assert store.content_hash == expected
        # The rebuilt file is healthy: deep verification passes.
        IndexStore.open(path, verify=True).verify()


class TestFromArrays:
    def test_rejects_inconsistent_lengths(self):
        from repro.seeding.fmindex import FMIndex
        with pytest.raises(ValueError, match="BWT"):
            FMIndex.from_arrays(
                bwt=np.zeros(5, dtype=np.uint8),
                cum=np.zeros(5, dtype=np.int64),
                occ_ckpt=np.zeros((1, 4), dtype=np.int64),
                sa=np.zeros(5, dtype=np.int64),
                sa_mask=None, length=99, occ_interval=64, sa_sample=1)

    def test_export_arrays_keys(self, built):
        _, _, _, memory = built
        exported = memory.forward.export_arrays()
        assert set(exported) == {"bwt", "cum", "occ_ckpt", "sa"}

    def test_from_indexes_rejects_mismatch(self):
        from repro.seeding.fmindex import FMIndex
        fwd = FMIndex("ACGTACGT")
        bwd = FMIndex("ACGTACGTA")
        with pytest.raises(ValueError, match="lengths"):
            BidirectionalFMIndex.from_indexes(fwd, bwd)
