"""Tests for the FM-index against naive string search."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.genome.sequence import random_sequence
from repro.seeding.fmindex import FMIndex


def naive_positions(text: str, pattern: str):
    out = []
    start = 0
    while True:
        idx = text.find(pattern, start)
        if idx < 0:
            return out
        out.append(idx)
        start = idx + 1


@pytest.fixture(scope="module")
def text():
    return random_sequence(3000, random.Random(42))


@pytest.fixture(scope="module")
def index(text):
    return FMIndex(text, occ_interval=32)


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            FMIndex("")

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            FMIndex("ACGT", occ_interval=0)

    def test_rejects_bad_sample(self):
        with pytest.raises(ValueError):
            FMIndex("ACGT", sa_sample=0)

    def test_len(self, index, text):
        assert len(index) == len(text)

    def test_memory_footprint_positive(self, index):
        assert index.memory_footprint_bits() > 0

    def test_sampled_smaller_footprint(self, text):
        full = FMIndex(text, sa_sample=1).memory_footprint_bits()
        sampled = FMIndex(text, sa_sample=8).memory_footprint_bits()
        assert sampled < full


class TestCountAndSearch:
    def test_count_matches_naive(self, index, text):
        rng = random.Random(7)
        for _ in range(40):
            length = rng.randint(1, 12)
            start = rng.randrange(0, len(text) - length)
            pattern = text[start:start + length]
            assert index.count(pattern) == len(naive_positions(text, pattern))

    def test_absent_pattern(self, index, text):
        # 40 random 25-mers are essentially never present by chance alone;
        # verify against naive search either way.
        rng = random.Random(8)
        for _ in range(10):
            pattern = random_sequence(25, rng)
            assert index.count(pattern) == len(naive_positions(text, pattern))

    def test_empty_pattern_matches_everywhere(self, index, text):
        assert index.search("").width == len(text) + 1

    def test_single_bases(self, index, text):
        for base in "ACGT":
            assert index.count(base) == text.count(base)

    def test_occ_row_bounds(self, index):
        with pytest.raises(IndexError):
            index.occ(0, -1)
        with pytest.raises(ValueError):
            index.occ(9, 0)

    def test_occ_all_agrees_with_occ(self, index):
        rng = random.Random(9)
        for _ in range(20):
            row = rng.randint(0, len(index))
            combined = index.occ_all(row)
            for code in range(4):
                assert combined[code] == index.occ(code, row)


class TestLocate:
    def test_positions_match_naive(self, index, text):
        rng = random.Random(11)
        for _ in range(25):
            length = rng.randint(4, 15)
            start = rng.randrange(0, len(text) - length)
            pattern = text[start:start + length]
            got = index.locate(index.search(pattern))
            assert got == naive_positions(text, pattern)

    def test_max_hits_cap(self, index, text):
        interval = index.search("A")
        got = index.locate(interval, max_hits=5)
        assert len(got) == 5

    def test_sampled_sa_equivalent(self, text):
        full = FMIndex(text, sa_sample=1)
        sampled = FMIndex(text, sa_sample=8)
        rng = random.Random(12)
        for _ in range(15):
            length = rng.randint(4, 12)
            start = rng.randrange(0, len(text) - length)
            pattern = text[start:start + length]
            assert full.locate(full.search(pattern)) == \
                sampled.locate(sampled.search(pattern))


class TestLongestSuffixMatch:
    def test_full_match(self, index, text):
        pattern = text[100:140]
        length, interval = index.longest_suffix_match(pattern)
        assert length == 40
        assert not interval.empty

    def test_partial_match(self, index, text):
        # Prepend junk that (with overwhelming probability) breaks the match
        # at some suffix; verify via naive search.
        pattern = "ACGT" * 10 + text[200:220]
        length, _ = index.longest_suffix_match(pattern)
        assert length >= 20
        assert naive_positions(text, pattern[len(pattern) - length:])
        if length < len(pattern):
            longer = pattern[len(pattern) - length - 1:]
            assert not naive_positions(text, longer)

    def test_no_match_possible(self):
        index = FMIndex("AAAA")
        length, interval = index.longest_suffix_match("CCCC")
        assert length == 0
        assert interval.width == 5  # full interval


class TestAccessMetering:
    def test_search_counts_accesses(self, text):
        index = FMIndex(text, occ_interval=32)
        index.stats.reset()
        index.count("ACGTACGT")
        # Two occ per backward-extend step, up to 8 steps.
        assert 2 <= index.stats.occ_accesses <= 16

    def test_locate_counts_sa_accesses(self, text):
        index = FMIndex(text, occ_interval=32)
        index.stats.reset()
        positions = index.locate(index.search(text[50:62]))
        assert index.stats.sa_accesses == len(positions)

    def test_reset(self, index):
        index.count("ACG")
        index.stats.reset()
        assert index.stats.total == 0


@given(st.text(alphabet="ACGT", min_size=2, max_size=60),
       st.text(alphabet="ACGT", min_size=1, max_size=8))
@settings(max_examples=60, deadline=None)
def test_property_count_equals_naive(text, pattern):
    index = FMIndex(text, occ_interval=4)
    assert index.count(pattern) == len(naive_positions(text, pattern))


@given(st.text(alphabet="ACGT", min_size=2, max_size=60),
       st.text(alphabet="ACGT", min_size=1, max_size=6))
@settings(max_examples=40, deadline=None)
def test_property_locate_equals_naive(text, pattern):
    index = FMIndex(text, occ_interval=4)
    assert index.locate(index.search(pattern)) == naive_positions(text, pattern)
