"""Tests for the Darwin-style k-mer hash index."""

import random

import pytest

from repro.genome.sequence import random_sequence
from repro.seeding.hashindex import KmerHashIndex


def naive_positions(text, pattern):
    out, start = [], 0
    while True:
        idx = text.find(pattern, start)
        if idx < 0:
            return out
        out.append(idx)
        start = idx + 1


@pytest.fixture(scope="module")
def text():
    return random_sequence(3000, random.Random(13))


@pytest.fixture(scope="module")
def index(text):
    return KmerHashIndex(text, k=8)


class TestConstruction:
    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            KmerHashIndex("ACGT", k=0)
        with pytest.raises(ValueError):
            KmerHashIndex("ACGT", k=14)

    def test_rejects_short_text(self):
        with pytest.raises(ValueError):
            KmerHashIndex("ACG", k=8)

    def test_footprint_includes_pointer_table(self, index):
        assert index.memory_footprint_bits() >= (4 ** 8 + 1) * 32


class TestLookup:
    def test_matches_naive(self, index, text):
        rng = random.Random(14)
        for _ in range(30):
            start = rng.randrange(0, len(text) - 8)
            kmer = text[start:start + 8]
            assert index.lookup(kmer) == naive_positions(text, kmer)

    def test_absent_kmer(self, index, text):
        # Find a k-mer absent from the text (try random candidates).
        rng = random.Random(15)
        for _ in range(50):
            kmer = random_sequence(8, rng)
            if kmer not in text:
                assert index.lookup(kmer) == []
                return
        pytest.skip("all candidates present (astronomically unlikely)")

    def test_count_matches_lookup(self, index, text):
        kmer = text[100:108]
        assert index.count(kmer) == len(index.lookup(kmer))

    def test_max_hits(self):
        index = KmerHashIndex("AT" * 100, k=2)
        assert len(index.lookup("AT", max_hits=5)) == 5

    def test_wrong_length_kmer_raises(self, index):
        with pytest.raises(ValueError):
            index.lookup("ACG")


class TestAccessModel:
    def test_two_plus_p_accesses(self, index, text):
        """The paper's footnote: 2 pointer accesses + P position accesses."""
        kmer = text[500:508]
        p = len(naive_positions(text, kmer))
        index.stats.reset()
        index.lookup(kmer)
        assert index.stats.pointer_accesses == 2
        assert index.stats.position_accesses == p
        assert index.stats.total == 2 + p

    def test_count_charges_pointers_only(self, index, text):
        index.stats.reset()
        index.count(text[0:8])
        assert index.stats.total == 2


class TestSeedsForRead:
    def test_anchors_are_true_matches(self, index, text):
        read = text[700:760]
        for read_pos, ref_pos in index.seeds_for_read(read):
            assert text[ref_pos:ref_pos + 8] == read[read_pos:read_pos + 8]

    def test_stride(self, index, text):
        read = text[700:760]
        all_pos = {rp for rp, _ in index.seeds_for_read(read, stride=1)}
        strided = {rp for rp, _ in index.seeds_for_read(read, stride=4)}
        assert strided <= all_pos
        assert all(rp % 4 == 0 for rp in strided)
