"""SMEM finding validated against a brute-force oracle."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.genome.sequence import random_sequence
from repro.seeding.bidirectional import BidirectionalFMIndex
from repro.seeding.smem import find_smems, smems_covering


def oracle_smems(text: str, read: str, min_length: int = 1):
    """Brute force: longest match from every start, then drop contained."""
    matches = []
    for start in range(len(read)):
        length = 0
        while start + length < len(read) \
                and read[start:start + length + 1] in text:
            length += 1
        if length >= min_length:
            matches.append((start, start + length))
    out = []
    for m in matches:
        contained = any(o != m and o[0] <= m[0] and o[1] >= m[1]
                        for o in matches)
        if not contained and m not in out:
            out.append(m)
    return sorted(out)


def run_find(text, read, min_length=1):
    index = BidirectionalFMIndex(text, occ_interval=8)
    smems = find_smems(index, read, min_length=min_length)
    return sorted((m.read_start, m.read_end) for m in smems)


class TestAgainstOracle:
    def test_exact_substring_read(self):
        text = random_sequence(500, random.Random(1))
        read = text[100:160]
        assert run_find(text, read) == oracle_smems(text, read)

    def test_read_with_mismatches(self):
        rng = random.Random(2)
        text = random_sequence(500, rng)
        read = list(text[50:150])
        for pos in (20, 55, 80):
            read[pos] = {"A": "C", "C": "G", "G": "T", "T": "A"}[read[pos]]
        read = "".join(read)
        assert run_find(text, read) == oracle_smems(text, read)

    def test_random_read(self):
        rng = random.Random(3)
        text = random_sequence(400, rng)
        read = random_sequence(60, rng)
        assert run_find(text, read) == oracle_smems(text, read)

    def test_repetitive_text(self):
        text = "ACG" * 100 + random_sequence(200, random.Random(4))
        read = "ACG" * 10 + "TTT"
        assert run_find(text, read) == oracle_smems(text, read)

    def test_min_length_filter(self):
        text = random_sequence(500, random.Random(5))
        read = text[10:90]
        filtered = run_find(text, read, min_length=30)
        oracle = [m for m in oracle_smems(text, read) if m[1] - m[0] >= 30]
        assert filtered == oracle

    @pytest.mark.parametrize("seed", range(8))
    def test_many_random_cases(self, seed):
        rng = random.Random(100 + seed)
        text = random_sequence(rng.randint(50, 300), rng)
        read = random_sequence(rng.randint(5, 80), rng)
        assert run_find(text, read) == oracle_smems(text, read)


class TestSmemProperties:
    def test_occurrence_counts_correct(self):
        rng = random.Random(6)
        text = random_sequence(400, rng)
        read = text[30:80]
        index = BidirectionalFMIndex(text, occ_interval=8)
        for smem in find_smems(index, read):
            sub = read[smem.read_start:smem.read_end]
            assert smem.occurrences == _count(text, sub)

    def test_positions_locatable(self):
        rng = random.Random(7)
        text = random_sequence(400, rng)
        read = text[200:260]
        index = BidirectionalFMIndex(text, occ_interval=8)
        for smem in find_smems(index, read):
            sub = read[smem.read_start:smem.read_end]
            for pos in index.locate(smem.interval):
                assert text[pos:pos + smem.length] == sub

    def test_max_occurrences_filter(self):
        text = "AT" * 200
        index = BidirectionalFMIndex(text, occ_interval=8)
        assert find_smems(index, "ATATAT", max_occurrences=2) == []

    def test_pivot_bounds(self):
        index = BidirectionalFMIndex("ACGTACGT", occ_interval=4)
        from repro.genome.sequence import encode
        with pytest.raises(IndexError):
            smems_covering(index, encode("ACG"), 5)

    def test_smems_cover_pivot(self):
        text = random_sequence(300, random.Random(8))
        read = text[40:100]
        index = BidirectionalFMIndex(text, occ_interval=8)
        from repro.genome.sequence import encode
        smems, nxt = smems_covering(index, encode(read), 10)
        for smem in smems:
            assert smem.read_start <= 10 < smem.read_end
        assert nxt > 10


def _count(text, pattern):
    count, start = 0, 0
    while True:
        idx = text.find(pattern, start)
        if idx < 0:
            return count
        count += 1
        start = idx + 1


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_property_matches_oracle(seed):
    rng = random.Random(seed)
    text = random_sequence(rng.randint(20, 150), rng)
    read = random_sequence(rng.randint(3, 50), rng)
    assert run_find(text, read) == oracle_smems(text, read)
