"""Tests for the bidirectional FM-index."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.genome.sequence import encode, random_sequence
from repro.seeding.bidirectional import BidirectionalFMIndex


def naive_positions(text, pattern):
    out, start = [], 0
    while True:
        idx = text.find(pattern, start)
        if idx < 0:
            return out
        out.append(idx)
        start = idx + 1


@pytest.fixture(scope="module")
def text():
    return random_sequence(2000, random.Random(5))


@pytest.fixture(scope="module")
def index(text):
    return BidirectionalFMIndex(text, occ_interval=32)


class TestIntervals:
    def test_full_interval_width(self, index, text):
        assert index.full_interval().s == len(text) + 1

    def test_base_interval_counts(self, index, text):
        for code, base in enumerate("ACGT"):
            assert index.base_interval(code).s == text.count(base)

    def test_search_matches_naive(self, index, text):
        rng = random.Random(6)
        for _ in range(30):
            length = rng.randint(1, 14)
            start = rng.randrange(0, len(text) - length)
            pattern = text[start:start + length]
            assert index.search(pattern).s == len(naive_positions(text, pattern))

    def test_locate_matches_naive(self, index, text):
        rng = random.Random(7)
        for _ in range(20):
            length = rng.randint(4, 14)
            start = rng.randrange(0, len(text) - length)
            pattern = text[start:start + length]
            bi = index.search(pattern)
            assert index.locate(bi) == naive_positions(text, pattern)


class TestExtensionSymmetry:
    def test_forward_equals_backward_build(self, index, text):
        """Building a pattern by forward extension must yield the same
        interval width as the standard backward build."""
        rng = random.Random(8)
        for _ in range(20):
            length = rng.randint(2, 12)
            start = rng.randrange(0, len(text) - length)
            pattern = text[start:start + length]
            backward = index.search(pattern)
            bi = index.full_interval()
            for base in encode(pattern):
                bi = index.extend_forward(bi, int(base))
            assert bi.s == backward.s
            assert bi.k == backward.k

    def test_mixed_direction_extension(self, index, text):
        """Extend outward from a middle anchor in both directions."""
        rng = random.Random(9)
        for _ in range(20):
            start = rng.randrange(10, len(text) - 20)
            left, mid, right = start, start + 5, start + 10
            codes = encode(text[left:right])
            bi = index.full_interval()
            # Build middle base, then alternate left/right extensions.
            bi = index.extend_backward(bi, int(codes[4]))
            for offset in range(1, 5):
                bi = index.extend_backward(bi, int(codes[4 - offset]))
                bi = index.extend_forward(bi, int(codes[4 + offset]))
            expected = index.search(text[left:left + 9])
            assert bi.s == expected.s

    def test_empty_on_absent_pattern(self, index):
        bi = index.search("ACGT" * 8)
        # verify against the naive truth whichever way it falls
        assert (bi.s == 0) == (not naive_positions(
            "".join([]), "x") or True)  # structural smoke; width checked below
        assert bi.s >= 0


class TestAccessAccounting:
    def test_extension_counts_block_fetches(self, text):
        index = BidirectionalFMIndex(text, occ_interval=32)
        index.reset_stats()
        index.search("ACGTAC")
        # each extension = 2 occ_all fetches, ≤6 extensions
        assert 2 <= index.occ_accesses <= 12
        index.reset_stats()
        assert index.occ_accesses == 0


@given(st.text(alphabet="ACGT", min_size=2, max_size=50),
       st.text(alphabet="ACGT", min_size=1, max_size=6))
@settings(max_examples=50, deadline=None)
def test_property_bidirectional_count(text, pattern):
    index = BidirectionalFMIndex(text, occ_interval=4)
    assert index.search(pattern).s == len(naive_positions(text, pattern))


@given(st.text(alphabet="ACGT", min_size=2, max_size=40))
@settings(max_examples=30, deadline=None)
def test_property_forward_build_equals_backward(text):
    index = BidirectionalFMIndex(text, occ_interval=4)
    pattern = text[: min(6, len(text))]
    backward = index.search(pattern)
    bi = index.full_interval()
    for base in encode(pattern):
        bi = index.extend_forward(bi, int(base))
    assert (bi.k, bi.s) == (backward.k, backward.s)
