"""Minimizer sampling and index tests."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.genome.sequence import random_sequence, reverse_complement
from repro.seeding.minimizers import (
    MinimizerIndex,
    hash64,
    minimizers,
)


class TestHash64:
    def test_deterministic(self):
        assert hash64(12345) == hash64(12345)

    def test_distinct_keys_distinct_hashes(self):
        values = {hash64(k) for k in range(1000)}
        assert len(values) == 1000  # invertible => injective

    def test_stays_in_64_bits(self):
        assert hash64((1 << 64) - 1) < (1 << 64)


class TestMinimizers:
    def test_every_window_is_covered(self):
        """Core minimizer property: each w-window of k-mers contains a
        sampled minimizer."""
        text = random_sequence(500, random.Random(1))
        k, w = 11, 8
        sampled = {m.position for m in minimizers(text, k=k, w=w)}
        n_kmers = len(text) - k + 1
        for start in range(n_kmers - w + 1):
            window = set(range(start, start + w))
            assert window & sampled, f"window at {start} uncovered"

    def test_positions_sorted_and_deduped(self):
        text = random_sequence(300, random.Random(2))
        ms = minimizers(text, k=9, w=5)
        keys = [(m.position, m.hash_value) for m in ms]
        assert keys == sorted(set(keys), key=lambda t: keys.index(t))

    def test_density_near_two_over_w_plus_one(self):
        """Expected minimizer density is ~2/(w+1) on random sequence."""
        text = random_sequence(20_000, random.Random(3))
        w = 10
        ms = minimizers(text, k=15, w=w)
        density = len(ms) / (len(text) - 15 + 1)
        assert 0.5 * 2 / (w + 1) < density < 2.0 * 2 / (w + 1)

    def test_strand_symmetry(self):
        """Canonical k-mers: a sequence and its reverse complement sample
        the same multiset of minimizer hashes."""
        text = random_sequence(400, random.Random(4))
        fwd = sorted(m.hash_value for m in minimizers(text, k=11, w=6))
        rev = sorted(m.hash_value
                     for m in minimizers(reverse_complement(text), k=11, w=6))
        assert fwd == rev

    def test_short_sequence(self):
        assert minimizers("ACGT", k=15, w=10) == []

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            minimizers("ACGT", k=0)
        with pytest.raises(ValueError):
            minimizers("ACGT", k=3, w=0)


class TestMinimizerIndex:
    @pytest.fixture(scope="class")
    def text(self):
        return random_sequence(5000, random.Random(5))

    @pytest.fixture(scope="class")
    def index(self, text):
        return MinimizerIndex(text, k=13, w=8)

    def test_anchors_are_true_matches(self, index, text):
        read = text[1000:1400]
        anchors = index.anchors(read)
        assert anchors
        k = index.k
        for hit in anchors:
            if not hit.reverse:
                assert text[hit.ref_pos:hit.ref_pos + k] == \
                    read[hit.query_pos:hit.query_pos + k]

    def test_reverse_strand_read_found(self, index, text):
        read = reverse_complement(text[2000:2400])
        anchors = index.anchors(read)
        reverse_hits = [h for h in anchors if h.reverse]
        assert len(reverse_hits) > 5

    def test_anchor_density(self, index, text):
        """A 400 bp exact read should anchor roughly every w/2 bases."""
        read = text[3000:3400]
        anchors = [h for h in index.anchors(read) if not h.reverse]
        assert len(anchors) > 400 / (index.w + 1)

    def test_repeat_masking(self, text):
        index = MinimizerIndex(text, k=13, w=8, max_occurrences=1)
        # any key occurring more than once is masked
        for entries in index._table.values():
            if len(entries) > 1:
                key = next(k for k, v in index._table.items()
                           if v is entries)
                assert index.lookup(key) == []
                break

    def test_footprint_positive(self, index):
        assert index.memory_footprint_bits() > 0
        assert len(index) > 0

    def test_invalid_max_occurrences(self, text):
        with pytest.raises(ValueError):
            MinimizerIndex(text, max_occurrences=0)


@given(st.integers(0, 3000))
@settings(max_examples=25, deadline=None)
def test_property_window_coverage(seed):
    rng = random.Random(seed)
    text = random_sequence(rng.randint(30, 200), rng)
    k = rng.randint(5, 12)
    w = rng.randint(1, 8)
    if len(text) < k:
        return
    sampled = {m.position for m in minimizers(text, k=k, w=w)}
    n_kmers = len(text) - k + 1
    for start in range(max(0, n_kmers - w + 1)):
        assert set(range(start, start + w)) & sampled
