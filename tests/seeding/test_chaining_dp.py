"""DP chaining tests: against greedy chaining and on adversarial inputs."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.seeding.chaining import Anchor, chain_anchors, chain_anchors_dp


def anchor(rs, length, ref, reverse=False):
    return Anchor(read_start=rs, read_end=rs + length, ref_start=ref,
                  reverse=reverse)


def colinear_chain(start_read, start_ref, count, step=30, length=15):
    return [anchor(start_read + i * step, length, start_ref + i * step)
            for i in range(count)]


class TestBasicBehaviour:
    def test_simple_colinear_chain(self):
        anchors = colinear_chain(0, 1000, 5)
        chains = chain_anchors_dp(anchors)
        assert len(chains[0].anchors) == 5

    def test_strands_never_mix(self):
        anchors = [*colinear_chain(0, 1000, 3),
                   anchor(90, 15, 1090, reverse=True)]
        for chain in chain_anchors_dp(anchors):
            assert len({a.reverse for a in chain.anchors}) == 1

    def test_min_score_filters_noise(self):
        lone = [anchor(0, 2, 5000)]
        assert chain_anchors_dp(lone, min_score=5.0) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            chain_anchors_dp([], max_gap=-1)
        with pytest.raises(ValueError):
            chain_anchors_dp([], lookback=0)

    def test_empty(self):
        assert chain_anchors_dp([]) == []


class TestBeatsGreedyOnNoise:
    def test_spurious_anchor_does_not_fracture_the_chain(self):
        """A repeat-induced off-diagonal anchor interleaved in ref order
        fractures the greedy chain but not the DP chain."""
        true_chain = colinear_chain(0, 1000, 6, step=40)
        decoy = anchor(80, 15, 1_000_000)  # read middle, far locus
        anchors = [*true_chain[:3], decoy, *true_chain[3:]]
        dp_best = max(chain_anchors_dp(anchors),
                      key=lambda c: c.anchor_bases)
        assert len(dp_best.anchors) == 6

    def test_interleaved_decoys_near_diagonal(self):
        """Decoys on a nearby diagonal within the gap horizon can trap the
        greedy scan; the DP picks the straight path."""
        rng = random.Random(1)
        true_chain = colinear_chain(0, 5000, 8, step=35)
        decoys = [anchor(rng.randrange(0, 250), 15,
                         5000 + rng.randrange(0, 300) + 400)
                  for _ in range(5)]
        anchors = true_chain + decoys
        dp_best = max(chain_anchors_dp(anchors),
                      key=lambda c: c.anchor_bases)
        starts = {a.ref_start for a in dp_best.anchors}
        assert starts >= {a.ref_start for a in true_chain[:6]}

    def test_dp_never_worse_than_greedy_on_clean_input(self):
        anchors = colinear_chain(0, 2000, 10)
        greedy_best = max(chain_anchors(anchors),
                          key=lambda c: c.anchor_bases)
        dp_best = max(chain_anchors_dp(anchors),
                      key=lambda c: c.anchor_bases)
        assert dp_best.anchor_bases >= greedy_best.anchor_bases


class TestChainGeometry:
    @given(st.lists(st.tuples(st.integers(0, 500), st.integers(5, 20),
                              st.integers(0, 20_000), st.booleans()),
                    min_size=0, max_size=30))
    @settings(max_examples=40)
    def test_property_chains_are_colinear(self, specs):
        anchors = [anchor(rs, ln, ref, rev) for rs, ln, ref, rev in specs]
        for chain in chain_anchors_dp(anchors, min_score=0.0):
            for prev, nxt in zip(chain.anchors, chain.anchors[1:]):
                assert nxt.read_start >= prev.read_end
                assert nxt.ref_start >= prev.ref_end

    @given(st.lists(st.tuples(st.integers(0, 500), st.integers(5, 20),
                              st.integers(0, 20_000)),
                    min_size=1, max_size=25))
    @settings(max_examples=40)
    def test_property_anchors_used_at_most_once(self, specs):
        anchors = [anchor(rs, ln, ref) for rs, ln, ref in specs]
        chains = chain_anchors_dp(anchors, min_score=0.0)
        seen = [id(a) for c in chains for a in c.anchors]
        assert len(seen) == len(set(seen))
