"""Tests for the synthetic reference generator."""

import pytest

from repro.genome import gc_fraction
from repro.genome.reference import (
    Chromosome,
    ReferenceGenome,
    RepeatFamily,
    SyntheticReference,
)


@pytest.fixture(scope="module")
def small_reference():
    return SyntheticReference(length=60_000, chromosomes=3, seed=11).build()


class TestSyntheticReference:
    def test_deterministic(self):
        a = SyntheticReference(length=10_000, seed=5).build()
        b = SyntheticReference(length=10_000, seed=5).build()
        assert a.concatenated() == b.concatenated()

    def test_seed_changes_genome(self):
        a = SyntheticReference(length=10_000, seed=5).build()
        b = SyntheticReference(length=10_000, seed=6).build()
        assert a.concatenated() != b.concatenated()

    def test_chromosome_count_and_names(self, small_reference):
        assert small_reference.names == ["chr1", "chr2", "chr3"]

    def test_total_length(self, small_reference):
        assert len(small_reference) == 3 * (60_000 // 3)

    def test_gc_content_near_target(self):
        ref = SyntheticReference(length=100_000, gc_content=0.6, seed=2).build()
        assert 0.55 < gc_fraction(ref.concatenated()) < 0.65

    def test_repeats_are_annotated(self, small_reference):
        assert small_reference.repeat_annotations
        for name, start, end in small_reference.repeat_annotations:
            assert name in small_reference.names
            assert 0 <= start < end <= len(small_reference.chromosome(name))

    def test_planted_repeat_sequences_recur(self):
        family = RepeatFamily(consensus="ACGT" * 20, copies=10, divergence=0.0)
        ref = SyntheticReference(length=50_000, chromosomes=1, seed=3,
                                 repeat_families=[family]).build()
        assert ref.concatenated().count("ACGT" * 20) >= 5

    def test_invalid_length_raises(self):
        with pytest.raises(ValueError):
            SyntheticReference(length=0)

    def test_invalid_chromosomes_raises(self):
        with pytest.raises(ValueError):
            SyntheticReference(length=100, chromosomes=0)


class TestReferenceGenome:
    def test_fetch(self, small_reference):
        chrom = small_reference.chromosomes[0]
        assert small_reference.fetch(chrom.name, 10, 20) == chrom.sequence[10:20]

    def test_fetch_out_of_range_raises(self, small_reference):
        with pytest.raises(IndexError):
            small_reference.fetch("chr1", -1, 5)
        with pytest.raises(IndexError):
            small_reference.fetch("chr1", 0, 10**9)

    def test_fetch_linear_crosses_chromosomes(self):
        ref = ReferenceGenome([Chromosome("a", "AAAA"), Chromosome("b", "CCCC")])
        assert ref.fetch_linear(2, 6) == "AACC"

    def test_fetch_linear_bounds(self, small_reference):
        with pytest.raises(IndexError):
            small_reference.fetch_linear(0, len(small_reference) + 1)

    def test_locate_roundtrip(self, small_reference):
        for linear in (0, 100, len(small_reference) - 1):
            name, local = small_reference.locate(linear)
            assert small_reference.offsets[name] + local == linear

    def test_locate_out_of_range(self, small_reference):
        with pytest.raises(IndexError):
            small_reference.locate(len(small_reference))

    def test_unknown_chromosome_raises(self, small_reference):
        with pytest.raises(KeyError):
            small_reference.chromosome("chrZ")

    def test_concatenated_matches_offsets(self, small_reference):
        cat = small_reference.concatenated()
        for chrom in small_reference.chromosomes:
            off = small_reference.offsets[chrom.name]
            assert cat[off:off + len(chrom)] == chrom.sequence
