"""Paired-end simulation tests."""

import statistics

import pytest

from repro.genome.pairs import PairedReadSimulator, ReadPair
from repro.genome.reads import ErrorModel, Read
from repro.genome.reference import SyntheticReference
from repro.genome.sequence import reverse_complement


@pytest.fixture(scope="module")
def reference():
    return SyntheticReference(length=60_000, chromosomes=2, seed=91).build()


class TestReadPair:
    def test_insert_size(self):
        pair = ReadPair("p", Read("p/1", "ACGT"), Read("p/2", "ACGT"),
                        chrom="chr1", fragment_start=100, fragment_end=500)
        assert pair.insert_size == 400

    def test_insert_unknown_for_real_data(self):
        pair = ReadPair("p", Read("p/1", "ACGT"), Read("p/2", "ACGT"))
        assert pair.insert_size is None


class TestPairedSimulator:
    def test_count_and_ids(self, reference):
        pairs = PairedReadSimulator(reference, seed=1).simulate(20)
        assert len(pairs) == 20
        assert pairs[0].mate1.read_id.endswith("/1")
        assert pairs[0].mate2.read_id.endswith("/2")

    def test_fr_orientation_ground_truth(self, reference):
        sim = PairedReadSimulator(reference,
                                  error_model=ErrorModel(0, 0, 0), seed=2)
        for pair in sim.simulate(15):
            chrom = reference.chromosome(pair.chrom)
            frag = chrom.sequence[pair.fragment_start:pair.fragment_end]
            assert pair.mate1.sequence == frag[:101]
            assert pair.mate2.sequence == reverse_complement(frag[-101:])
            assert not pair.mate1.reverse
            assert pair.mate2.reverse

    def test_insert_distribution(self, reference):
        sim = PairedReadSimulator(reference, insert_mean=400, insert_sd=40,
                                  seed=3)
        inserts = [p.insert_size for p in sim.simulate(200)]
        assert 380 < statistics.mean(inserts) < 420
        assert 20 < statistics.stdev(inserts) < 70

    def test_deterministic(self, reference):
        a = PairedReadSimulator(reference, seed=4).simulate(5)
        b = PairedReadSimulator(reference, seed=4).simulate(5)
        assert [p.mate1.sequence for p in a] == \
            [p.mate1.sequence for p in b]

    def test_validation(self, reference):
        with pytest.raises(ValueError):
            PairedReadSimulator(reference, read_length=0)
        with pytest.raises(ValueError):
            PairedReadSimulator(reference, insert_mean=150)  # < 2 reads
        with pytest.raises(ValueError):
            PairedReadSimulator(reference, insert_mean=400, insert_sd=-1)
        with pytest.raises(ValueError):
            PairedReadSimulator(reference, insert_mean=50_000)
