"""Tests for the dataset profile registry."""

import pytest

from repro.genome.datasets import (
    DATASETS,
    NA12878_INTERVAL_MASS,
    DatasetProfile,
    get_dataset,
    long_read_datasets,
    short_read_datasets,
)
from repro.genome.reads import ILLUMINA


class TestRegistry:
    def test_six_short_read_datasets(self):
        assert len(short_read_datasets()) == 6

    def test_three_long_read_datasets(self):
        assert len(long_read_datasets()) == 3

    def test_lookup_known(self):
        assert get_dataset("H.s.").description.startswith("Homo sapiens")

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            get_dataset("X.y.")

    def test_all_masses_sum_to_one(self):
        for profile in DATASETS.values():
            assert abs(sum(profile.interval_mass) - 1.0) < 1e-9

    def test_na12878_demand_mass_consistent_with_paper_config(self):
        """s back-solved from x=(28,20,16,6), p=(16,32,64,128), N=2880."""
        p = (16, 32, 64, 128)
        x = (28, 20, 16, 6)
        s = NA12878_INTERVAL_MASS
        denom = sum(pj * sj for pj, sj in zip(p, s))
        for xi, si in zip(x, s):
            assert xi == pytest.approx(si * 2880 / denom, rel=0.01)

    def test_count_mass_matches_demand_mass(self):
        """The H.s. profile's length-weighted mass is the Eq-5 input."""
        derived = get_dataset("H.s.").demand_mass()
        for got, want in zip(derived, NA12878_INTERVAL_MASS):
            assert got == pytest.approx(want, abs=0.005)

    def test_short_reads_share_similar_distributions(self):
        """Fig 14(b): 2nd-gen datasets have roughly NA12878-like mass."""
        reference = get_dataset("H.s.").interval_mass
        for profile in short_read_datasets():
            for mass, ref in zip(profile.interval_mass, reference):
                assert abs(mass - ref) < 0.08

    def test_long_reads_shift_mass_right(self):
        reference = get_dataset("H.s.").interval_mass
        for profile in long_read_datasets():
            assert profile.interval_mass[3] > reference[3]


class TestDatasetProfile:
    def test_invalid_mass_raises(self):
        with pytest.raises(ValueError):
            DatasetProfile(name="bad", description="", genome_length=1000,
                           gc_content=0.4, read_length=100,
                           error_model=ILLUMINA, long_read=False,
                           interval_mass=(0.5, 0.5, 0.5, 0.5))

    def test_build_reference_respects_length_override(self):
        ref = get_dataset("C.e.").build_reference(seed=1, length=20_000)
        assert len(ref) == 20_000

    def test_simulate_reads(self):
        profile = get_dataset("H.s.")
        ref = profile.build_reference(seed=2, length=30_000)
        reads = profile.simulate_reads(ref, 15, seed=3)
        assert len(reads) == 15
        assert all(abs(len(r) - profile.read_length) < 10 for r in reads)

    def test_sample_hit_lengths_within_intervals(self):
        profile = get_dataset("H.s.")
        lengths = profile.sample_hit_lengths(500, seed=4)
        assert all(1 <= length <= 128 for length in lengths)

    def test_sample_hit_lengths_mass_matches(self):
        profile = get_dataset("H.s.")
        lengths = profile.sample_hit_lengths(20_000, seed=5)
        bounds = (16, 32, 64, 128)
        counts = [0, 0, 0, 0]
        for length in lengths:
            for idx, hi in enumerate(bounds):
                if length <= hi:
                    counts[idx] += 1
                    break
        for count, mass in zip(counts, profile.interval_mass):
            assert abs(count / len(lengths) - mass) < 0.02

    def test_sample_deterministic(self):
        profile = get_dataset("Z.h.")
        assert profile.sample_hit_lengths(50, seed=6) == \
            profile.sample_hit_lengths(50, seed=6)
