"""Unit and property tests for repro.genome.sequence."""

import random

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.genome import sequence as seq

dna = st.text(alphabet="ACGT", min_size=0, max_size=200)


class TestEncodeDecode:
    def test_encode_known_values(self):
        assert seq.encode("ACGT").tolist() == [0, 1, 2, 3]

    def test_encode_lowercase(self):
        assert seq.encode("acgt").tolist() == [0, 1, 2, 3]

    def test_encode_empty(self):
        assert seq.encode("").size == 0

    def test_encode_invalid_raises(self):
        with pytest.raises(seq.SequenceError):
            seq.encode("ACGN")

    def test_decode_known_values(self):
        assert seq.decode(np.array([3, 2, 1, 0], dtype=np.uint8)) == "TGCA"

    def test_decode_invalid_code_raises(self):
        with pytest.raises(seq.SequenceError):
            seq.decode(np.array([4], dtype=np.uint8))

    @given(dna)
    def test_roundtrip(self, s):
        assert seq.decode(seq.encode(s)) == s


class TestReverseComplement:
    def test_known_value(self):
        assert seq.reverse_complement("AACGTT") == "AACGTT"
        assert seq.reverse_complement("ACCT") == "AGGT"

    def test_invalid_raises(self):
        with pytest.raises(seq.SequenceError):
            seq.reverse_complement("AXC")

    @given(dna)
    def test_involution(self, s):
        assert seq.reverse_complement(seq.reverse_complement(s)) == s

    @given(dna)
    def test_code_and_string_paths_agree(self, s):
        via_code = seq.decode(seq.reverse_complement_code(seq.encode(s)))
        assert via_code == seq.reverse_complement(s)


class TestRandomSequence:
    def test_length_and_alphabet(self):
        s = seq.random_sequence(500, random.Random(1))
        assert len(s) == 500
        assert set(s) <= set("ACGT")

    def test_deterministic_with_seed(self):
        a = seq.random_sequence(100, random.Random(7))
        b = seq.random_sequence(100, random.Random(7))
        assert a == b

    def test_gc_content_respected(self):
        s = seq.random_sequence(20_000, random.Random(3), gc_content=0.8)
        assert 0.75 < seq.gc_fraction(s) < 0.85

    def test_gc_zero_means_no_gc(self):
        s = seq.random_sequence(200, random.Random(5), gc_content=0.0)
        assert set(s) <= {"A", "T"}

    def test_invalid_gc_raises(self):
        with pytest.raises(ValueError):
            seq.random_sequence(10, random.Random(0), gc_content=1.5)

    def test_int_seed_accepted_and_reproducible(self):
        assert seq.random_sequence(64, 7) == seq.random_sequence(64, 7)
        assert (seq.random_sequence(64, 7)
                == seq.random_sequence(64, random.Random(7)))

    def test_missing_rng_rejected(self):
        with pytest.raises(TypeError, match="not reproducible"):
            seq.random_sequence(10, None)


class TestMutate:
    def test_zero_rate_is_identity(self):
        s = "ACGTACGTAC"
        assert seq.mutate(s, 0.0, random.Random(1)) == s

    def test_full_rate_changes_every_base(self):
        s = "A" * 50
        mutated = seq.mutate(s, 1.0, random.Random(2))
        assert all(b != "A" for b in mutated)

    def test_preserves_length(self):
        s = seq.random_sequence(300, random.Random(9))
        assert len(seq.mutate(s, 0.3, random.Random(4))) == len(s)

    def test_invalid_rate_raises(self):
        with pytest.raises(ValueError):
            seq.mutate("ACGT", -0.1, random.Random(0))

    def test_missing_rng_rejected(self):
        with pytest.raises(TypeError, match="not reproducible"):
            seq.mutate("ACGT", 0.5, None)


class TestHelpers:
    def test_hamming_distance(self):
        assert seq.hamming_distance("ACGT", "ACCT") == 1
        assert seq.hamming_distance("AAAA", "TTTT") == 4

    def test_hamming_unequal_lengths_raises(self):
        with pytest.raises(ValueError):
            seq.hamming_distance("AC", "A")

    def test_kmers(self):
        assert list(seq.kmers("ACGTA", 3)) == ["ACG", "CGT", "GTA"]

    def test_kmers_k_too_large(self):
        assert list(seq.kmers("ACG", 5)) == []

    def test_kmers_invalid_k(self):
        with pytest.raises(ValueError):
            list(seq.kmers("ACGT", 0))

    def test_is_valid(self):
        assert seq.is_valid("acgtACGT")
        assert not seq.is_valid("ACGN")

    def test_gc_fraction_empty(self):
        assert seq.gc_fraction("") == 0.0

    @given(dna)
    def test_gc_fraction_bounds(self, s):
        assert 0.0 <= seq.gc_fraction(s) <= 1.0
