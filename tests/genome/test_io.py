"""Tests for FASTA/FASTQ IO."""

import io

import pytest

from repro.genome.io import (
    FormatError,
    fasta_string,
    parse_fasta,
    parse_fastq,
    read_reference,
    write_fasta,
    write_fastq,
)
from repro.genome.reads import Read
from repro.genome.reference import Chromosome, ReferenceGenome, SyntheticReference


class TestFasta:
    def test_parse_simple(self):
        text = ">chr1 description\nACGT\nacgt\n>chr2\nTTTT\n"
        records = list(parse_fasta(io.StringIO(text)))
        assert records == [("chr1", "ACGTACGT"), ("chr2", "TTTT")]

    def test_parse_skips_blank_lines(self):
        text = ">a\nAC\n\nGT\n"
        assert list(parse_fasta(io.StringIO(text))) == [("a", "ACGT")]

    def test_data_before_header_raises(self):
        with pytest.raises(FormatError):
            list(parse_fasta(io.StringIO("ACGT\n>a\nAC\n")))

    def test_empty_header_raises(self):
        with pytest.raises(FormatError):
            list(parse_fasta(io.StringIO(">\nACGT\n")))

    def test_roundtrip_via_file(self, tmp_path):
        ref = SyntheticReference(length=5_000, chromosomes=2, seed=1).build()
        path = tmp_path / "ref.fa"
        write_fasta(ref, path)
        loaded = read_reference(path)
        assert loaded.names == ref.names
        assert loaded.concatenated() == ref.concatenated()

    def test_read_reference_empty_raises(self):
        with pytest.raises(FormatError):
            read_reference(io.StringIO(""))

    def test_fasta_string_wraps(self):
        ref = ReferenceGenome([Chromosome("c", "A" * 100)])
        out = fasta_string(ref, width=40)
        lines = out.strip().split("\n")
        assert lines[0] == ">c"
        assert [len(l) for l in lines[1:]] == [40, 40, 20]


class TestFastq:
    def test_roundtrip(self, tmp_path):
        reads = [Read("r1", "ACGT", "IIII"), Read("r2", "GGCC", "!!!!")]
        path = tmp_path / "reads.fq"
        write_fastq(reads, path)
        loaded = list(parse_fastq(path))
        assert [(r.read_id, r.sequence, r.quality) for r in loaded] == \
            [("r1", "ACGT", "IIII"), ("r2", "GGCC", "!!!!")]

    def test_missing_quality_filled_on_write(self):
        buffer = io.StringIO()
        write_fastq([Read("r", "ACG")], buffer)
        assert "III" in buffer.getvalue()

    def test_bad_header_raises(self):
        with pytest.raises(FormatError):
            list(parse_fastq(io.StringIO("rX\nACGT\n+\nIIII\n")))

    def test_bad_separator_raises(self):
        with pytest.raises(FormatError):
            list(parse_fastq(io.StringIO("@r\nACGT\nXXXX\nIIII\n")))

    def test_quality_length_mismatch_raises(self):
        with pytest.raises(FormatError):
            list(parse_fastq(io.StringIO("@r\nACGT\n+\nII\n")))

    def test_empty_id_raises(self):
        with pytest.raises(FormatError):
            list(parse_fastq(io.StringIO("@\nACGT\n+\nIIII\n")))

    def test_lowercase_sequence_uppercased(self):
        reads = list(parse_fastq(io.StringIO("@r\nacgt\n+\nIIII\n")))
        assert reads[0].sequence == "ACGT"
