"""Tests for the read simulator and error models."""

import random

import pytest

from repro.genome.reads import (
    ILLUMINA,
    LONG_READ,
    ErrorModel,
    Read,
    ReadSimulator,
)
from repro.genome.reference import SyntheticReference
from repro.genome.sequence import reverse_complement


@pytest.fixture(scope="module")
def reference():
    return SyntheticReference(length=40_000, chromosomes=2, seed=21).build()


class TestRead:
    def test_len(self):
        assert len(Read("r", "ACGT")) == 4

    def test_quality_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            Read("r", "ACGT", quality="II")

    def test_empty_quality_allowed(self):
        assert Read("r", "ACGT").quality == ""


class TestErrorModel:
    def test_zero_rates_identity(self):
        model = ErrorModel(0.0, 0.0, 0.0)
        s = "ACGTACGTAC"
        assert model.apply(s, random.Random(1)) == s

    def test_substitutions_preserve_length(self):
        model = ErrorModel(substitution_rate=0.5, insertion_rate=0.0,
                           deletion_rate=0.0)
        s = "A" * 200
        out = model.apply(s, random.Random(2))
        assert len(out) == len(s)
        assert out != s

    def test_deletions_shrink(self):
        model = ErrorModel(substitution_rate=0.0, insertion_rate=0.0,
                           deletion_rate=0.3)
        s = "ACGT" * 100
        assert len(model.apply(s, random.Random(3))) < len(s)

    def test_insertions_grow(self):
        model = ErrorModel(substitution_rate=0.0, insertion_rate=0.3,
                           deletion_rate=0.0)
        s = "ACGT" * 100
        assert len(model.apply(s, random.Random(4))) > len(s)

    def test_invalid_rate_raises(self):
        with pytest.raises(ValueError):
            ErrorModel(substitution_rate=1.5)

    def test_presets_ordering(self):
        assert LONG_READ.substitution_rate > ILLUMINA.substitution_rate


class TestReadSimulator:
    def test_count_and_ids(self, reference):
        reads = ReadSimulator(reference, read_length=101, seed=1).simulate(25)
        assert len(reads) == 25
        assert len({r.read_id for r in reads}) == 25

    def test_deterministic(self, reference):
        a = ReadSimulator(reference, read_length=101, seed=9).simulate(10)
        b = ReadSimulator(reference, read_length=101, seed=9).simulate(10)
        assert [r.sequence for r in a] == [r.sequence for r in b]

    def test_quality_matches_length(self, reference):
        for read in ReadSimulator(reference, seed=2).simulate(10):
            assert len(read.quality) == len(read.sequence)

    def test_ground_truth_without_errors(self, reference):
        sim = ReadSimulator(reference, read_length=60,
                            error_model=ErrorModel(0, 0, 0), seed=3)
        for read in sim.simulate(20):
            truth = reference.fetch(read.chrom, read.position,
                                    read.position + 60)
            expected = reverse_complement(truth) if read.reverse else truth
            assert read.sequence == expected

    def test_both_strands_sampled(self, reference):
        reads = ReadSimulator(reference, seed=4).simulate(100)
        strands = {r.reverse for r in reads}
        assert strands == {True, False}

    def test_forward_only(self, reference):
        sim = ReadSimulator(reference, seed=5, both_strands=False)
        assert all(not r.reverse for r in sim.simulate(30))

    def test_read_length_too_long_raises(self, reference):
        with pytest.raises(ValueError):
            ReadSimulator(reference, read_length=10**7)

    def test_invalid_read_length_raises(self, reference):
        with pytest.raises(ValueError):
            ReadSimulator(reference, read_length=0)

    def test_iter_reads_lazy(self, reference):
        iterator = ReadSimulator(reference, seed=6).iter_reads(5)
        first = next(iterator)
        assert first.read_id == "read_0"
        assert sum(1 for _ in iterator) == 4
