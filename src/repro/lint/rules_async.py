"""Async-safety rules (category ``async-safety``).

The serving stack (:mod:`repro.service`) is one event loop; its latency
contract (p99 bounded by kernel time + one max_wait) only holds if
nothing blocks that loop and no task silently disappears. These rules
encode the three classic ways asyncio code rots: blocking calls inside
coroutines, fire-and-forget tasks that get garbage-collected mid-flight,
and locks held across awaits.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Tuple

from repro.lint.core import Rule, rule

#: Calls that park the whole event loop when made from a coroutine.
_BLOCKING_CALLS = frozenset({
    "time.sleep",
    "os.system", "os.wait", "os.waitpid",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "socket.create_connection", "socket.getaddrinfo",
    "socket.gethostbyname", "socket.gethostbyaddr",
    "urllib.request.urlopen",
    "requests.get", "requests.post", "requests.put", "requests.delete",
    "requests.head", "requests.request",
    "open",
    "input",
})

#: Thread-queue constructors whose get/put block, unlike asyncio.Queue's.
_THREAD_QUEUE_TYPES = frozenset({
    "queue.Queue", "queue.LifoQueue", "queue.PriorityQueue",
    "queue.SimpleQueue",
})


@rule
class BlockingCallInAsyncRule(Rule):
    """ASY201: blocking call inside ``async def``.

    A coroutine that calls ``time.sleep``/``subprocess``/sync I/O parks
    the entire event loop: every in-flight request's latency grows by
    the blocked time, and the batcher misses its ``max_wait`` deadline.
    Use the asyncio equivalent or ``loop.run_in_executor``.
    """

    rule_id = "ASY201"
    name = "blocking-call-in-async"
    category = "async-safety"
    rationale = ("one blocked coroutine stalls every request on the "
                 "event loop; the service's p99 contract dies")

    def visit_Module(self, node: ast.Module) -> None:
        # Pre-pass: names bound to thread-queue instances, so that
        # `q.get()` inside a coroutine is recognised as blocking.
        self._thread_queues = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Assign) and isinstance(
                    sub.value, ast.Call):
                target = self.qualified_name(sub.value.func)
                if target in _THREAD_QUEUE_TYPES:
                    for tgt in sub.targets:
                        if isinstance(tgt, ast.Name):
                            self._thread_queues.add(tgt.id)
                        elif isinstance(tgt, ast.Attribute):
                            self._thread_queues.add(tgt.attr)
        self.generic_visit(node)

    def _is_thread_queue_method(self, node: ast.Call) -> bool:
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in (
                "get", "put", "join"):
            return False
        owner = func.value
        name = (owner.attr if isinstance(owner, ast.Attribute)
                else owner.id if isinstance(owner, ast.Name) else None)
        return name in getattr(self, "_thread_queues", ())

    def visit_Call(self, node: ast.Call) -> None:
        if self.in_async_def():
            target = self.qualified_name(node.func)
            if target in _BLOCKING_CALLS:
                hint = ("asyncio.sleep" if target == "time.sleep"
                        else "an async API or loop.run_in_executor")
                self.report(node, f"{target}() blocks the event loop "
                                  f"inside async def; use {hint}")
            elif self._is_thread_queue_method(node):
                self.report(node, "queue.Queue method blocks the event "
                                  "loop inside async def; use "
                                  "asyncio.Queue or run_in_executor")
        self.generic_visit(node)


@rule
class DroppedTaskRule(Rule):
    """ASY202: ``create_task``/``ensure_future`` result discarded.

    asyncio keeps only a weak reference to tasks; a task whose handle is
    dropped can be garbage-collected mid-execution, and its exceptions
    vanish. Keep a reference (the server's ``_response_tasks`` set
    pattern) or await it.
    """

    rule_id = "ASY202"
    name = "dropped-task"
    category = "async-safety"
    rationale = ("asyncio holds tasks weakly: an unreferenced task can "
                 "be GC'd mid-flight and its exceptions are swallowed")

    def _spawns_task(self, node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        target = self.qualified_name(node.func)
        if target in ("asyncio.ensure_future", "asyncio.create_task"):
            return True
        # loop.create_task(...) for any loop-valued name
        return (isinstance(node.func, ast.Attribute)
                and node.func.attr == "create_task")

    def visit_Expr(self, node: ast.Expr) -> None:
        if self._spawns_task(node.value):
            self.report(node, "task handle discarded; asyncio may GC the "
                              "task mid-flight — store a reference and "
                              "discard it in a done callback")
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        # `_ = create_task(...)` is the same bug with extra steps.
        if self._spawns_task(node.value) and all(
                isinstance(t, ast.Name) and t.id == "_"
                for t in node.targets):
            self.report(node, "task handle assigned to _ is still "
                              "unreferenced; keep a real reference")
        self.generic_visit(node)


@rule
class LockAcrossAwaitRule(Rule):
    """ASY203: lock held across an ``await``.

    ``async with lock: ... await ...`` serialises every other waiter
    behind an arbitrarily long suspension — and a *threading* lock held
    across an await can deadlock the loop outright. Narrow the critical
    section, or suppress where cross-await serialisation is the point
    (e.g. per-connection write ordering).
    """

    rule_id = "ASY203"
    name = "lock-across-await"
    category = "async-safety"
    rationale = ("an await inside a critical section holds the lock for "
                 "the full suspension; waiters serialise or deadlock")

    _LOCK_HINTS = ("lock", "mutex", "semaphore", "sem")

    def _lock_name(self, expr: ast.AST) -> Optional[str]:
        if isinstance(expr, ast.Attribute):
            name = expr.attr
        elif isinstance(expr, ast.Name):
            name = expr.id
        elif isinstance(expr, ast.Call):
            return self._lock_name(expr.func)
        else:
            return None
        lowered = name.lower()
        if any(hint in lowered for hint in self._LOCK_HINTS):
            return name
        return None

    def _check_with(self, node, is_async: bool) -> None:
        held: List[Tuple[str, ast.AST]] = []
        for item in node.items:
            name = self._lock_name(item.context_expr)
            if name is not None:
                held.append((name, item.context_expr))
        if not held:
            return
        for stmt in node.body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Await):
                    for name, expr in held:
                        kind = ("lock" if is_async
                                else "non-async lock")
                        self.report(expr,
                                    f"{kind} '{name}' held across await "
                                    f"(line {sub.lineno}); narrow the "
                                    "critical section")
                    return

    def visit_With(self, node: ast.With) -> None:
        if self.in_async_def():
            self._check_with(node, is_async=False)
        self.generic_visit(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._check_with(node, is_async=True)
        self.generic_visit(node)
