"""The ``repro lint`` verb: run the analyzer, print text/JSON/annotations.

Exit codes: 0 clean (or everything baselined), 1 unbaselined findings
or parse errors, 2 usage errors. Stale baseline entries are reported
but do not fail the run — they mean the tree got *better*.

The whole-program flow pass (``repro.lint.flow``) is on by default;
``--no-flow`` restricts the run to per-file rules. ``--jobs N`` fans
the per-file pass out over N worker processes with deterministic,
serial-identical output.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.baseline import Baseline, BaselineMatch
from repro.lint.config import LintConfig
from repro.lint.core import all_rules
from repro.lint.flow import all_flow_rules
from repro.lint.runner import run_analysis

__all__ = ["add_lint_arguments", "run_lint", "main"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyze "
                             "(default: src)")
    parser.add_argument("--format", choices=["text", "json", "github"],
                        default="text", dest="output_format",
                        help="finding output format (github emits "
                             "::error workflow annotations)")
    parser.add_argument("--baseline",
                        help="JSON baseline of accepted findings; only "
                             "findings outside it fail the run")
    parser.add_argument("--write-baseline",
                        help="write the current findings to this path "
                             "(pruning stale fingerprints), print the "
                             "ratchet delta, and exit 0")
    parser.add_argument("--select",
                        help="comma-separated rule ids/names to run "
                             "(default: all)")
    parser.add_argument("--flow", dest="flow", action="store_true",
                        default=True,
                        help="run the whole-program flow rules "
                             "(ASY3xx/RES4xx/PROTO5xx; default on)")
    parser.add_argument("--no-flow", dest="flow", action="store_false",
                        help="per-file rules only")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="analyze files with N worker processes "
                             "(default: 1)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--statistics", action="store_true",
                        help="append a per-rule finding count summary")


def _known_rules() -> dict:
    """id -> class over both registries (per-file + flow)."""
    catalog = dict(all_rules())
    catalog.update(all_flow_rules())
    return catalog


def _list_rules() -> int:
    for rule_id, cls in sorted(_known_rules().items()):
        print(f"{rule_id}  {cls.name:<24} [{cls.category}] "
              f"{cls.rationale}")
    print("LINT001  unused-suppression      [meta] a 'repro-lint: "
          "disable' comment that suppressed nothing")
    return 0


def run_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        return _list_rules()
    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    config = LintConfig.load()
    select = None
    if args.select:
        select = [s.strip() for s in args.select.split(",") if s.strip()]
        known = set()
        for rule_id, cls in _known_rules().items():
            known.update((rule_id, cls.name))
        unknown = [s for s in select if s not in known]
        if unknown:
            print(f"error: unknown rule(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2
    report = run_analysis(args.paths, config, select=select,
                          flow=args.flow, jobs=args.jobs)
    findings = report.sorted_findings()

    if args.write_baseline:
        target = Path(args.write_baseline)
        previous = Baseline()
        if target.is_file():
            try:
                previous = Baseline.load(target)
            except (ValueError, KeyError, OSError):
                pass  # corrupt/unreadable: treat as empty, rewrite fresh
        current = Baseline.from_findings(findings)
        added, removed = current.diff(previous)
        current.save(target)
        print(f"wrote {len(findings)} finding(s) to {target} "
              f"(ratchet delta: +{added} new, -{removed} pruned)")
        return 0

    match = BaselineMatch(new=findings)
    if args.baseline:
        baseline_path = Path(args.baseline)
        if not baseline_path.is_file():
            print(f"error: baseline not found: {baseline_path}",
                  file=sys.stderr)
            return 2
        match = Baseline.load(baseline_path).match(findings)

    if args.output_format == "json":
        _emit_json(args, report, match)
    elif args.output_format == "github":
        _emit_github(args, report, match)
    else:
        _emit_text(args, report, match)
    return 1 if (match.new or report.parse_errors) else 0


def _summary(args: argparse.Namespace, report,
             match: BaselineMatch) -> str:
    return (f"{len(match.new)} finding(s)"
            + (f", {len(match.baselined)} baselined" if args.baseline
               else "")
            + f" across {report.files_checked} file(s)")


def _emit_text(args: argparse.Namespace, report,
               match: BaselineMatch) -> None:
    for finding in match.new:
        print(finding.format())
        if finding.source_line:
            print(f"    {finding.source_line}")
    for error in report.parse_errors:
        print(f"parse error: {error}")
    for entry in match.stale:
        print(f"stale baseline entry: {entry['path']} {entry['rule_id']} "
              f"({entry['source_line']!r}) — no longer found; "
              "regenerate the baseline")
    if args.statistics and match.new:
        counts: dict = {}
        for finding in match.new:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        print()
        for rule_id in sorted(counts):
            print(f"{counts[rule_id]:>5}  {rule_id}")
    print(("FAIL: " if match.new or report.parse_errors else "ok: ")
          + _summary(args, report, match))


def _gh_escape(value: str, property_value: bool = False) -> str:
    """Escape per GitHub's workflow-command rules."""
    out = (value.replace("%", "%25")
                .replace("\r", "%0D")
                .replace("\n", "%0A"))
    if property_value:
        out = out.replace(":", "%3A").replace(",", "%2C")
    return out


def _emit_github(args: argparse.Namespace, report,
                 match: BaselineMatch) -> None:
    """GitHub Actions ``::error`` annotations — findings render inline
    on the PR diff when the job runs with this format."""
    for finding in match.new:
        title = _gh_escape(f"{finding.rule_id} {finding.rule_name}",
                           property_value=True)
        print(f"::error file={_gh_escape(finding.path, True)},"
              f"line={finding.line},col={finding.col + 1},"
              f"title={title}::{_gh_escape(finding.message)}")
    for error in report.parse_errors:
        path = error.split(":", 1)[0]
        print(f"::error file={_gh_escape(path, True)},"
              f"title=parse-error::{_gh_escape(error)}")
    for entry in match.stale:
        print(f"::notice file={_gh_escape(entry['path'], True)},"
              f"title=stale-baseline-entry::"
              f"{_gh_escape(entry['rule_id'])} no longer found; "
              "regenerate the baseline")
    print(("FAIL: " if match.new or report.parse_errors else "ok: ")
          + _summary(args, report, match))


def _emit_json(args: argparse.Namespace, report,
               match: BaselineMatch) -> None:
    payload = {
        "findings": [f.as_dict() for f in match.new],
        "baselined": [f.as_dict() for f in match.baselined],
        "stale_baseline_entries": match.stale,
        "parse_errors": report.parse_errors,
        "files_checked": report.files_checked,
        "flow": args.flow,
        "ok": not (match.new or report.parse_errors),
    }
    print(json.dumps(payload, indent=2))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based determinism & concurrency analyzer")
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
