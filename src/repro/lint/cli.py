"""The ``repro lint`` verb: run the analyzer, print text or JSON.

Exit codes: 0 clean (or everything baselined), 1 unbaselined findings
or parse errors, 2 usage errors. Stale baseline entries are reported
but do not fail the run — they mean the tree got *better*.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.baseline import Baseline, BaselineMatch
from repro.lint.config import LintConfig
from repro.lint.core import Analyzer, all_rules

__all__ = ["add_lint_arguments", "run_lint", "main"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyze "
                             "(default: src)")
    parser.add_argument("--format", choices=["text", "json"],
                        default="text", dest="output_format",
                        help="finding output format")
    parser.add_argument("--baseline",
                        help="JSON baseline of accepted findings; only "
                             "findings outside it fail the run")
    parser.add_argument("--write-baseline",
                        help="write the current findings to this path "
                             "and exit 0")
    parser.add_argument("--select",
                        help="comma-separated rule ids/names to run "
                             "(default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--statistics", action="store_true",
                        help="append a per-rule finding count summary")


def _list_rules() -> int:
    for rule_id, cls in sorted(all_rules().items()):
        print(f"{rule_id}  {cls.name:<24} [{cls.category}] "
              f"{cls.rationale}")
    print("LINT001  unused-suppression      [meta] a 'repro-lint: "
          "disable' comment that suppressed nothing")
    return 0


def run_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        return _list_rules()
    config = LintConfig.load()
    select = None
    if args.select:
        select = [s.strip() for s in args.select.split(",") if s.strip()]
        known = set()
        for rule_id, cls in all_rules().items():
            known.update((rule_id, cls.name))
        unknown = [s for s in select if s not in known]
        if unknown:
            print(f"error: unknown rule(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2
    analyzer = Analyzer(config, select=select)
    report = analyzer.check_paths(args.paths)
    findings = report.sorted_findings()

    if args.write_baseline:
        Baseline.from_findings(findings).save(Path(args.write_baseline))
        print(f"wrote {len(findings)} finding(s) to "
              f"{args.write_baseline}")
        return 0

    match = BaselineMatch(new=findings)
    if args.baseline:
        baseline_path = Path(args.baseline)
        if not baseline_path.is_file():
            print(f"error: baseline not found: {baseline_path}",
                  file=sys.stderr)
            return 2
        match = Baseline.load(baseline_path).match(findings)

    if args.output_format == "json":
        _emit_json(args, report, match)
    else:
        _emit_text(args, report, match)
    return 1 if (match.new or report.parse_errors) else 0


def _emit_text(args: argparse.Namespace, report,
               match: BaselineMatch) -> None:
    for finding in match.new:
        print(finding.format())
        if finding.source_line:
            print(f"    {finding.source_line}")
    for error in report.parse_errors:
        print(f"parse error: {error}")
    for entry in match.stale:
        print(f"stale baseline entry: {entry['path']} {entry['rule_id']} "
              f"({entry['source_line']!r}) — no longer found; "
              "regenerate the baseline")
    if args.statistics and match.new:
        counts: dict = {}
        for finding in match.new:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        print()
        for rule_id in sorted(counts):
            print(f"{counts[rule_id]:>5}  {rule_id}")
    summary = (f"{len(match.new)} finding(s)"
               + (f", {len(match.baselined)} baselined" if args.baseline
                  else "")
               + f" across {report.files_checked} file(s)")
    print(("FAIL: " if match.new or report.parse_errors else "ok: ")
          + summary)


def _emit_json(args: argparse.Namespace, report,
               match: BaselineMatch) -> None:
    payload = {
        "findings": [f.as_dict() for f in match.new],
        "baselined": [f.as_dict() for f in match.baselined],
        "stale_baseline_entries": match.stale,
        "parse_errors": report.parse_errors,
        "files_checked": report.files_checked,
        "ok": not (match.new or report.parse_errors),
    }
    print(json.dumps(payload, indent=2))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based determinism & concurrency analyzer")
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
