"""Wire-schema drift rules (PROTO5xx, category ``wire-protocol``).

The NDJSON protocol has no schema file — its shape is whatever the
producer sites build and the consumer sites ``.get()``. That worked
while one module owned both ends; with client/server/gateway/engine all
touching messages, fields drift: written-but-never-read (dead payload
bytes on every response), read-but-never-written (a consumer waiting
for a field nobody sends), or written with different types at different
sites.

These rules extract the field sets statically:

- *wire values* are seeded at ``json.loads(...)`` results and at calls
  to configured bridge functions (``[tool.repro-lint.flow]
  wire-bridges`` — for dataflow the resolver cannot follow, e.g. a
  response delivered through ``Future.set_result``), then propagated
  through assignments, returns, and resolved call arguments to a small
  fixpoint; ``wire-consumers`` marks functions whose *parameters* are
  wire values when the call site itself is unresolvable (a lambda sort
  key, a callback);
- *writes* are keys of dict literals that flow into ``json.dumps``,
  subscript/``setdefault`` stores on wire values, keyword arguments of
  ``**kwargs``-splatting encoder functions (detected structurally: the
  function updates a dumped dict with its own ``**kwargs``), and dict
  literals inside configured ``wire-producers`` (payload factories
  whose results reach the encoder through dynamic ``**payload`` calls);
- *reads* are ``x["k"]`` / ``x.get("k")`` / ``x.pop("k")`` /
  ``"k" in x`` with a constant key on a wire value.

Scoping is strict: only modules inside the ``wire-protocol`` category's
paths contribute sites, so a random ``json.loads`` in a script can't
pollute the schema.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.flow import (
    FlowRule,
    FunctionInfo,
    ProjectModel,
    dotted_name,
    flow_rule,
    own_nodes,
)

_JSON_LOADS = frozenset({"json.loads", "json.load"})
_JSON_DUMPS = frozenset({"json.dumps", "json.dump"})
_WIRE_READ_METHODS = frozenset({"get", "pop"})


def _const_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _name_assign(node: ast.AST) -> Optional[Tuple[str, ast.AST]]:
    """(name, value) for ``x = expr`` or ``x: T = expr``."""
    if (isinstance(node, ast.Assign) and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)):
        return node.targets[0].id, node.value
    if (isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and node.value is not None):
        return node.target.id, node.value
    return None


def _value_type(node: ast.AST) -> Optional[str]:
    """Coarse JSON type of a written value, when statically evident."""
    if isinstance(node, ast.Constant):
        value = node.value
        if isinstance(value, bool):
            return "bool"
        if isinstance(value, str):
            return "str"
        if isinstance(value, int):
            return "int"
        if isinstance(value, float):
            return "float"
        if value is None:
            return "null"
    if isinstance(node, ast.JoinedStr):
        return "str"
    if isinstance(node, ast.Dict):
        return "object"
    if isinstance(node, (ast.List, ast.Tuple, ast.ListComp)):
        return "array"
    if isinstance(node, ast.Call):
        ctor = node.func.id if isinstance(node.func, ast.Name) else None
        if ctor in ("str", "repr"):
            return "str"
        if ctor == "int":
            return "int"
        if ctor == "float":
            return "float"
        if ctor == "bool":
            return "bool"
        if ctor in ("list", "sorted"):
            return "array"
        if ctor == "dict":
            return "object"
    return None


@dataclass
class _Site:
    """One field access site."""

    fieldname: str
    path: str
    node: ast.AST
    vtype: Optional[str] = None

    @property
    def lineno(self) -> int:
        return getattr(self.node, "lineno", 1)


@dataclass
class _FnFacts:
    """Structural facts about one in-scope function."""

    fn: FunctionInfo
    dumped_names: Set[str] = field(default_factory=set)
    kwarg_name: Optional[str] = None
    is_kw_encoder: bool = False


class WireSchema:
    """Statically extracted field reads/writes across the scoped modules.

    Exposed (importable from this module) so tooling/tests can inspect
    the schema the rules judged.
    """

    def __init__(self, model: ProjectModel, config,
                 category: str = "wire-protocol"):
        self.model = model
        self.config = config
        flow_cfg = getattr(config, "flow", {}) or {}
        self.bridges: Set[str] = set(flow_cfg.get("wire-bridges", []))
        self.producers: Set[str] = set(flow_cfg.get("wire-producers", []))
        self.consumers: Set[str] = set(flow_cfg.get("wire-consumers", []))
        self.writes: Dict[str, List[_Site]] = {}
        self.reads: Dict[str, List[_Site]] = {}
        self._fns: List[_FnFacts] = [
            _FnFacts(fn) for fn in model.sorted_functions()
            if config.category_applies(category, fn.path)]
        self._wire_funcs: Set[str] = set(self.bridges)
        self._wire_params: Set[Tuple[str, str]] = set()
        for qual in self.consumers:
            consumer = model.functions.get(qual)
            if consumer is None:
                continue
            for arg in consumer.node.args.args:
                if arg.arg not in ("self", "cls"):
                    self._wire_params.add((qual, arg.arg))
        self._collect_structural()
        self._fixpoint()
        self._collect_accesses()

    # -- helpers --------------------------------------------------------- #

    def _aliases(self, fn: FunctionInfo) -> Dict[str, str]:
        return self.model.modules[fn.module].aliases

    def _resolved(self, fn: FunctionInfo,
                  call: ast.Call) -> Optional[str]:
        for site in fn.calls:
            if site.node is call:
                return site.callee
        return None

    # -- pass A: dumped locals + kw-encoder detection -------------------- #

    def _collect_structural(self) -> None:
        for facts in self._fns:
            fn = facts.fn
            aliases = self._aliases(fn)
            args = fn.node.args
            if args.kwarg is not None:
                facts.kwarg_name = args.kwarg.arg
            for node in own_nodes(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                if dotted_name(node.func, aliases) in _JSON_DUMPS:
                    for arg in node.args[:1]:
                        if isinstance(arg, ast.Name):
                            facts.dumped_names.add(arg.id)
            if facts.kwarg_name:
                for node in own_nodes(fn.node):
                    if (isinstance(node, ast.Call)
                            and isinstance(node.func, ast.Attribute)
                            and node.func.attr == "update"
                            and isinstance(node.func.value, ast.Name)
                            and node.func.value.id in facts.dumped_names
                            and node.args
                            and isinstance(node.args[0], ast.Name)
                            and node.args[0].id == facts.kwarg_name):
                        facts.is_kw_encoder = True

    # -- pass B: wire-value fixpoint ------------------------------------- #

    def _fixpoint(self) -> None:
        for _ in range(6):
            before = (len(self._wire_funcs), len(self._wire_params))
            for facts in self._fns:
                self._propagate(facts)
            if (len(self._wire_funcs), len(self._wire_params)) == before:
                break

    def _wire_locals(self, facts: _FnFacts) -> Set[str]:
        fn = facts.fn
        locals_: Set[str] = {
            param for (qual, param) in self._wire_params
            if qual == fn.qualname}
        for _ in range(3):
            grew = False
            for node in own_nodes(fn.node):
                bind = _name_assign(node)
                if bind is None:
                    continue
                name, value = bind
                if name not in locals_ and self._is_wire_expr(
                        facts, value, locals_):
                    locals_.add(name)
                    grew = True
            if not grew:
                break
        return locals_

    def _is_wire_expr(self, facts: _FnFacts, expr: ast.AST,
                      locals_: Set[str]) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in locals_
        if isinstance(expr, ast.Await):
            return self._is_wire_expr(facts, expr.value, locals_)
        if isinstance(expr, ast.IfExp):
            return (self._is_wire_expr(facts, expr.body, locals_)
                    or self._is_wire_expr(facts, expr.orelse, locals_))
        if isinstance(expr, ast.BoolOp):
            return any(self._is_wire_expr(facts, v, locals_)
                       for v in expr.values)
        if isinstance(expr, ast.Call):
            aliases = self._aliases(facts.fn)
            if dotted_name(expr.func, aliases) in _JSON_LOADS:
                return True
            callee = self._resolved(facts.fn, expr)
            if callee is not None and callee in self._wire_funcs:
                return True
            if isinstance(expr.func, ast.Attribute):
                # method result on a wire value (obj.setdefault, …)
                if self._is_wire_expr(facts, expr.func.value, locals_):
                    return True
                # duck-typed dispatch: any project method of this name
                # that returns wire (`client.align(...)` — known limit:
                # picks up unrelated same-named methods)
                for qual in self.model.methods_by_name.get(
                        expr.func.attr, []):
                    if qual in self._wire_funcs:
                        return True
        return False

    def _propagate(self, facts: _FnFacts) -> None:
        fn = facts.fn
        locals_ = self._wire_locals(facts)
        for node in own_nodes(fn.node):
            if (isinstance(node, ast.Return) and node.value is not None
                    and self._is_wire_expr(facts, node.value, locals_)):
                self._wire_funcs.add(fn.qualname)
        for site in fn.calls:
            callee = self.model.functions.get(site.callee)
            if callee is None:
                continue
            params = [a.arg for a in callee.node.args.args]
            if params and params[0] in ("self", "cls"):
                params = params[1:]
            for idx, arg in enumerate(site.node.args):
                if idx < len(params) and self._is_wire_expr(
                        facts, arg, locals_):
                    self._wire_params.add((site.callee, params[idx]))
            for kw in site.node.keywords:
                if kw.arg in params and self._is_wire_expr(
                        facts, kw.value, locals_):
                    self._wire_params.add((site.callee, kw.arg))

    # -- pass C: field accesses ------------------------------------------ #

    def _record(self, bucket: Dict[str, List[_Site]],
                site: _Site) -> None:
        bucket.setdefault(site.fieldname, []).append(site)

    def _dict_literal_writes(self, path: str, literal: ast.Dict) -> None:
        for key, value in zip(literal.keys, literal.values):
            name = _const_str(key) if key is not None else None
            if name is not None:
                self._record(self.writes, _Site(
                    fieldname=name, path=path, node=key,
                    vtype=_value_type(value)))

    def _collect_accesses(self) -> None:
        kw_encoders = {facts.fn.qualname for facts in self._fns
                       if facts.is_kw_encoder}
        for facts in self._fns:
            fn = facts.fn
            path = fn.path
            aliases = self._aliases(fn)
            locals_ = self._wire_locals(facts)
            produce_all = fn.qualname in self.producers
            for node in own_nodes(fn.node):
                bind = _name_assign(node)
                # writes: dict literals bound for json.dumps (covers
                # both `obj = {...}` and `obj: Dict[...] = {...}`)
                if (bind is not None and bind[0] in facts.dumped_names
                        and isinstance(bind[1], ast.Dict)):
                    self._dict_literal_writes(path, bind[1])
                elif (isinstance(node, ast.Call)
                      and dotted_name(node.func, aliases) in _JSON_DUMPS
                      and node.args
                      and isinstance(node.args[0], ast.Dict)):
                    self._dict_literal_writes(path, node.args[0])
                elif (produce_all and isinstance(node, ast.Dict)):
                    self._dict_literal_writes(path, node)
                # writes: subscript stores on dumped/wire values
                elif (isinstance(node, ast.Assign)
                      and len(node.targets) == 1
                      and isinstance(node.targets[0], ast.Subscript)):
                    target = node.targets[0]
                    key = _const_str(target.slice)
                    owner = target.value
                    if key is not None and (
                            (isinstance(owner, ast.Name)
                             and owner.id in facts.dumped_names)
                            or self._is_wire_expr(facts, owner, locals_)):
                        self._record(self.writes, _Site(
                            fieldname=key, path=path, node=target,
                            vtype=_value_type(node.value)))
                elif isinstance(node, ast.Call):
                    self._collect_call_accesses(
                        facts, node, kw_encoders, locals_)
                # reads: subscripts / membership on wire values
                elif (isinstance(node, ast.Subscript)
                      and isinstance(node.ctx, ast.Load)):
                    key = _const_str(node.slice)
                    if key is not None and self._is_wire_expr(
                            facts, node.value, locals_):
                        self._record(self.reads, _Site(
                            fieldname=key, path=path, node=node))
                elif isinstance(node, ast.Compare):
                    if (len(node.ops) == 1
                            and isinstance(node.ops[0],
                                           (ast.In, ast.NotIn))
                            and self._is_wire_expr(
                                facts, node.comparators[0], locals_)):
                        key = _const_str(node.left)
                        if key is not None:
                            self._record(self.reads, _Site(
                                fieldname=key, path=path, node=node))

    def _collect_call_accesses(self, facts: _FnFacts, node: ast.Call,
                               kw_encoders: Set[str],
                               locals_: Set[str]) -> None:
        fn = facts.fn
        path = fn.path

        callee = self._resolved(fn, node)
        if callee is not None and callee in kw_encoders:
            for kw in node.keywords:
                if kw.arg is not None:
                    self._record(self.writes, _Site(
                        fieldname=kw.arg, path=path, node=node,
                        vtype=_value_type(kw.value)))
        if not isinstance(node.func, ast.Attribute):
            return
        owner = node.func.value
        owner_is_wire = (
            self._is_wire_expr(facts, owner, locals_)
            or (isinstance(owner, ast.Name)
                and owner.id in facts.dumped_names))
        if not owner_is_wire or not node.args:
            return
        key = _const_str(node.args[0])
        if key is None:
            return
        if node.func.attr == "setdefault":
            default = node.args[1] if len(node.args) > 1 else None
            self._record(self.writes, _Site(
                fieldname=key, path=path, node=node,
                vtype=_value_type(default) if default is not None
                else None))
        elif node.func.attr in _WIRE_READ_METHODS:
            self._record(self.reads, _Site(
                fieldname=key, path=path, node=node))

    # -- queries --------------------------------------------------------- #

    @staticmethod
    def _first(sites: List[_Site]) -> _Site:
        return min(sites, key=lambda s: (s.path, s.lineno))


class _ProtoRule(FlowRule):
    """Shared schema construction (one per rule instance; the model walk
    is cheap next to parsing)."""

    def _schema(self) -> WireSchema:
        return WireSchema(self.model, self.config, category=self.category)


@flow_rule
class FieldWrittenNeverReadRule(_ProtoRule):
    """PROTO501: a producer emits a field no in-scope consumer reads.

    Either dead payload weight on every message, or the *consumer* got
    deleted/renamed and nobody noticed — both worth a look. External
    consumers (tests, third-party clients) justify an inline
    suppression naming them.
    """

    rule_id = "PROTO501"
    name = "field-written-never-read"
    category = "wire-protocol"
    rationale = ("a field only producers know about is either dead "
                 "bytes or a silently-broken consumer")

    def run(self) -> None:
        schema = self._schema()
        for fieldname in sorted(schema.writes):
            if fieldname in schema.reads:
                continue
            site = schema._first(schema.writes[fieldname])
            self.report(
                site.path, site.node,
                f"wire field '{fieldname}' is written here but never "
                "read by any in-scope consumer; drop it or name its "
                "external consumer in a suppression")


@flow_rule
class FieldReadNeverWrittenRule(_ProtoRule):
    """PROTO502: a consumer reads a field no in-scope producer writes.

    The read's default kicks in on every message — which looks exactly
    like "works, but wrong", the worst failure mode a protocol has.
    """

    rule_id = "PROTO502"
    name = "field-read-never-written"
    category = "wire-protocol"
    rationale = ("a read whose field nobody sends silently degrades to "
                 "its default on every single message")

    def run(self) -> None:
        schema = self._schema()
        for fieldname in sorted(schema.reads):
            if fieldname in schema.writes:
                continue
            site = schema._first(schema.reads[fieldname])
            self.report(
                site.path, site.node,
                f"wire field '{fieldname}' is read here but never "
                "written by any in-scope producer; the default value "
                "is served on every message")


@flow_rule
class FieldTypeDriftRule(_ProtoRule):
    """PROTO503: one field, different static types at different writers.

    ``"attempts": 3`` here and ``"attempts": "3"`` there means every
    consumer needs type-sniffing — or has a latent bug.
    """

    rule_id = "PROTO503"
    name = "field-type-drift"
    category = "wire-protocol"
    rationale = ("a field typed differently per producer forces every "
                 "consumer into type-sniffing, and one of them will "
                 "forget")

    def run(self) -> None:
        schema = self._schema()
        for fieldname in sorted(schema.writes):
            by_type: Dict[str, _Site] = {}
            for site in sorted(schema.writes[fieldname],
                               key=lambda s: (s.path, s.lineno)):
                if site.vtype is not None and site.vtype not in by_type:
                    by_type[site.vtype] = site
            if len(by_type) < 2:
                continue
            ordered = sorted(by_type.items(),
                             key=lambda kv: (kv[1].path, kv[1].lineno))
            (first_type, first_site) = ordered[0]
            for (vtype, site) in ordered[1:]:
                self.report(
                    site.path, site.node,
                    f"wire field '{fieldname}' is written as {vtype} "
                    f"here but as {first_type} at "
                    f"{first_site.path}:{first_site.lineno}; pick one "
                    "type")
