"""Transitive blocking rules (ASY3xx, category ``async-safety``).

ASY201 only sees ``time.sleep`` *directly inside* an ``async def``; the
real serving stack hides blocking behind helpers — an ``async def`` in
the gateway calls a sync utility which calls a sync wrapper which calls
``subprocess.run``. These rules walk the call graph from every async
function through *sync* callees only (an async callee gets its own
finding if it blocks, so the caller isn't blamed twice) and report the
call site where the sync descent begins — the line the author can
actually fix, by moving the call behind ``run_in_executor`` or an async
API.

Functions handed to ``loop.run_in_executor(pool, fn)`` are naturally
exempt: passing ``fn`` as an argument creates no call edge.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.lint.flow import FlowRule, FunctionInfo, flow_rule

#: (qualname chain, op description, op path, op line)
_Chain = Tuple[List[str], str, str, int]


class _TransitiveRule(FlowRule):
    """Shared traversal: find a sync-only path from an async function's
    call sites to a terminal op of ``kind`` ("block" or "io")."""

    kind = ""

    def __init__(self, model, config):
        super().__init__(model, config)
        self._memo: Dict[str, Optional[_Chain]] = {}

    def _chain_from(self, qualname: str) -> Optional[_Chain]:
        if qualname in self._memo:
            return self._memo[qualname]
        self._memo[qualname] = None  # cycle guard
        fn = self.model.functions[qualname]
        for node, op, kind in fn.blocking_ops:
            if kind == self.kind:
                chain = ([qualname], op, fn.path, node.lineno)
                self._memo[qualname] = chain
                return chain
        for call in fn.calls:
            callee = self.model.functions.get(call.callee)
            if callee is None or callee.is_async:
                continue
            sub = self._chain_from(call.callee)
            if sub is not None:
                chain = ([qualname] + sub[0], sub[1], sub[2], sub[3])
                self._memo[qualname] = chain
                return chain
        return self._memo[qualname]

    def _describe(self, fn: FunctionInfo, chain: _Chain) -> str:
        names, op, op_path, op_line = chain
        hops = " -> ".join([fn.name] + [n.rsplit(".", 1)[-1]
                                        for n in names])
        return (f"{hops} -> {op}() ({op_path}:{op_line})")

    def run(self) -> None:
        for fn in self.model.sorted_functions():
            if not fn.is_async or not self.applies(fn.path):
                continue
            seen_callees = set()
            for call in fn.calls:
                callee = self.model.functions.get(call.callee)
                if (callee is None or callee.is_async
                        or call.callee in seen_callees):
                    continue
                chain = self._chain_from(call.callee)
                if chain is None:
                    continue
                seen_callees.add(call.callee)
                self.report(fn.path, call.node,
                            self._message(fn, chain))

    def _message(self, fn: FunctionInfo, chain: _Chain) -> str:
        raise NotImplementedError


@flow_rule
class TransitiveBlockingRule(_TransitiveRule):
    """ASY301: ``async def`` reaches a blocking call through sync helpers.

    One blocked coroutine parks the entire event loop; indirection
    through a helper does not make ``time.sleep`` non-blocking, it just
    hides it from per-file analysis.
    """

    rule_id = "ASY301"
    name = "transitive-blocking"
    category = "async-safety"
    rationale = ("an async def reaching time.sleep/subprocess/sync "
                 "sockets through any chain of sync helpers still parks "
                 "the whole event loop")
    kind = "block"

    def _message(self, fn, chain):
        return (f"async def {fn.name}() reaches blocking call via "
                f"{self._describe(fn, chain)}; run the sync chain in "
                "an executor or use an async API")


@flow_rule
class TransitiveSyncIORule(_TransitiveRule):
    """ASY302: ``async def`` reaches sync file I/O through sync helpers.

    File reads are usually fast enough to hide — until the disk is cold,
    NFS hiccups, or the file is a 3 GB index. The latency contract can't
    depend on the page cache being warm.
    """

    rule_id = "ASY302"
    name = "transitive-sync-io"
    category = "async-safety"
    rationale = ("file I/O reached from a coroutine through sync helpers "
                 "blocks the loop for as long as the disk feels like")
    kind = "io"

    def _message(self, fn, chain):
        return (f"async def {fn.name}() reaches sync file I/O via "
                f"{self._describe(fn, chain)}; wrap the I/O in "
                "run_in_executor")
