"""``[tool.repro-lint]`` configuration: per-path rule-category scoping.

The analyzer scopes each rule *category* to the directories where its
invariant actually holds — determinism rules over the simulator stack,
async-safety rules over the serving stack, config-hygiene rules over the
hardware/power models. Scopes live in ``pyproject.toml``::

    [tool.repro-lint]
    exclude = ["src/repro/lint/fixtures/*"]

    [tool.repro-lint.scopes]
    determinism = ["src/repro/sim/*", "src/repro/genome/*"]
    async-safety = ["src/repro/service/*"]
    config-hygiene = ["src/repro/hw/*"]

Patterns are :mod:`fnmatch` globs matched against project-root-relative
posix paths (``*`` crosses ``/``, so ``src/repro/sim/*`` covers nested
modules). Categories absent from the file fall back to the built-in
defaults below, so the analyzer is useful with zero configuration.

Python 3.9 has no :mod:`tomllib`; rather than grow a dependency, a
minimal TOML-subset reader below handles the sections this tool owns
(string keys, strings, and string arrays — including multiline arrays).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Dict, List, Optional, Sequence

try:  # Python 3.11+
    import tomllib as _toml
except ImportError:  # pragma: no cover - depends on interpreter version
    _toml = None

__all__ = ["LintConfig", "DEFAULT_SCOPES", "find_project_root"]

#: Built-in category scoping, mirroring the invariants' home directories.
DEFAULT_SCOPES: Dict[str, List[str]] = {
    "determinism": [
        "src/repro/sim/*",
        "src/repro/extension/*",
        "src/repro/seeding/*",
        "src/repro/genome/*",
        "src/repro/runtime/*",
        "src/repro/experiments/*",
    ],
    "async-safety": [
        "src/repro/service/*",
    ],
    "config-hygiene": [
        "src/repro/hw/*",
        "src/repro/power/*",
        "src/repro/baselines/*",
    ],
    # Flow-rule categories (see repro.lint.flow). Resource-lifecycle
    # covers every layer that owns OS handles; wire-protocol is pinned
    # to exactly the modules that produce or consume NDJSON messages so
    # an unrelated json.loads can't pollute the extracted schema.
    "resource-lifecycle": [
        "src/repro/service/*",
        "src/repro/cluster/*",
        "src/repro/seeding/*",
        "src/repro/runtime/*",
    ],
    "wire-protocol": [
        "src/repro/service/protocol.py",
        "src/repro/service/client.py",
        "src/repro/service/server.py",
        "src/repro/service/engine.py",
        "src/repro/service/loadgen.py",
        "src/repro/cluster/gateway.py",
        "src/repro/cluster/merge.py",
    ],
}

_SECTION = "tool.repro-lint"


@dataclass
class LintConfig:
    """Resolved scoping + excludes for one analyzer run."""

    scopes: Dict[str, List[str]] = field(
        default_factory=lambda: {k: list(v)
                                 for k, v in DEFAULT_SCOPES.items()})
    exclude: List[str] = field(default_factory=list)
    disable: List[str] = field(default_factory=list)
    #: ``[tool.repro-lint.flow]`` — extra knowledge for the flow layer
    #: (``wire-bridges``: functions whose results are wire objects even
    #: though the dataflow crosses a future/queue; ``wire-producers``:
    #: payload factories whose dict literals are wire writes).
    flow: Dict[str, List[str]] = field(default_factory=dict)
    project_root: Optional[Path] = None

    # -- construction ---------------------------------------------------- #

    @classmethod
    def load(cls, start: Optional[Path] = None) -> "LintConfig":
        """Config from the nearest ``pyproject.toml`` at/above ``start``
        (default: cwd); built-in defaults when none is found."""
        root = find_project_root(start or Path.cwd())
        if root is None:
            return cls()
        return cls.from_pyproject(root / "pyproject.toml")

    @classmethod
    def from_pyproject(cls, pyproject: Path) -> "LintConfig":
        try:
            text = pyproject.read_text(encoding="utf-8")
        except OSError:
            return cls(project_root=pyproject.parent)
        return cls.from_toml_text(text, project_root=pyproject.parent)

    @classmethod
    def from_toml_text(cls, text: str,
                       project_root: Optional[Path] = None) -> "LintConfig":
        table = _load_repro_lint_table(text)
        config = cls(project_root=project_root)
        scopes = table.get("scopes")
        if isinstance(scopes, dict):
            for category, patterns in scopes.items():
                if isinstance(patterns, list):
                    config.scopes[category] = [str(p) for p in patterns]
        exclude = table.get("exclude")
        if isinstance(exclude, list):
            config.exclude = [str(p) for p in exclude]
        disable = table.get("disable")
        if isinstance(disable, list):
            config.disable = [str(r) for r in disable]
        flow = table.get("flow")
        if isinstance(flow, dict):
            config.flow = {key: [str(v) for v in values]
                           for key, values in flow.items()
                           if isinstance(values, list)}
        return config

    @classmethod
    def everywhere(cls, categories: Sequence[str] = (),
                   project_root: Optional[Path] = None) -> "LintConfig":
        """A config scoping every category (or the given ones) to all
        paths — what the self-test fixtures run under."""
        names = list(categories) or list(DEFAULT_SCOPES)
        return cls(scopes={name: ["*"] for name in names},
                   project_root=project_root)

    # -- queries --------------------------------------------------------- #

    def project_relative(self, path: Path) -> str:
        """Posix path relative to the project root (falls back to the
        path as given when outside the project)."""
        resolved = path.resolve()
        if self.project_root is not None:
            try:
                return resolved.relative_to(
                    self.project_root.resolve()).as_posix()
            except ValueError:
                pass
        return path.as_posix()

    def applies(self, rule_cls, path: str) -> bool:
        """True when ``rule_cls`` should run on the file at ``path``."""
        if rule_cls.rule_id in self.disable or rule_cls.name in self.disable:
            return False
        return self.category_applies(rule_cls.category, path)

    def category_applies(self, category: str, path: str) -> bool:
        """True when rules of ``category`` are scoped to ``path``."""
        if self.is_excluded(path):
            return False
        patterns = self.scopes.get(category, [])
        return any(_match(path, pattern) for pattern in patterns)

    def is_excluded(self, path: str) -> bool:
        return any(_match(path, pattern) for pattern in self.exclude)


def _match(path: str, pattern: str) -> bool:
    if fnmatchcase(path, pattern):
        return True
    # A bare directory pattern covers everything beneath it.
    return fnmatchcase(path, pattern.rstrip("/") + "/*")


def find_project_root(start: Path) -> Optional[Path]:
    """Nearest ancestor (inclusive) containing a ``pyproject.toml``."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for candidate in [current, *current.parents]:
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return None


# ---------------------------------------------------------------------- #
# TOML loading (tomllib when available, subset reader otherwise)
# ---------------------------------------------------------------------- #

def _load_repro_lint_table(text: str) -> Dict[str, object]:
    if _toml is not None:
        try:
            data = _toml.loads(text)
        except _toml.TOMLDecodeError:
            return {}
        table = data.get("tool", {}).get("repro-lint", {})
        return table if isinstance(table, dict) else {}
    return _parse_toml_subset(text)


_HEADER_RE = re.compile(r"^\s*\[(?P<name>[^\]]+)\]\s*$")
_KEY_RE = re.compile(r'^\s*(?:"(?P<quoted>[^"]+)"|(?P<bare>[A-Za-z0-9_-]+))'
                     r"\s*=\s*(?P<value>.*)$")
_STRING_RE = re.compile(r'"((?:[^"\\]|\\.)*)"')


def _parse_toml_subset(text: str) -> Dict[str, object]:
    """Extract the ``[tool.repro-lint*]`` tables from TOML text.

    Understands only what this tool's own config uses — table headers,
    ``key = "string"`` and ``key = [array of strings]`` (multiline
    allowed). Everything outside the repro-lint tables is skipped, so
    the rest of pyproject.toml may use arbitrary TOML.
    """
    table: Dict[str, object] = {}
    current: Optional[Dict[str, object]] = None
    lines = iter(text.splitlines())
    for line in lines:
        header = _HEADER_RE.match(line)
        if header:
            name = header.group("name").strip()
            if name == _SECTION:
                current = table
            elif name.startswith(_SECTION + "."):
                sub = name[len(_SECTION) + 1:]
                parent: Dict[str, object] = table
                for part in sub.split(".")[:-1]:
                    parent = parent.setdefault(part, {})  # type: ignore[assignment]
                child: Dict[str, object] = {}
                parent[sub.split(".")[-1]] = child
                current = child
            else:
                current = None
            continue
        if current is None:
            continue
        key_match = _KEY_RE.match(line)
        if not key_match:
            continue
        key = key_match.group("quoted") or key_match.group("bare")
        value = key_match.group("value").strip()
        if value.startswith("["):
            while "]" not in value:
                try:
                    value += " " + next(lines).strip()
                except StopIteration:
                    break
            current[key] = _STRING_RE.findall(value)
        elif value.startswith('"'):
            strings = _STRING_RE.findall(value)
            current[key] = strings[0] if strings else ""
        elif value in ("true", "false"):
            current[key] = value == "true"
    return table
