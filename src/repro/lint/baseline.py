"""Finding baselines: ratchet new findings to zero without a flag day.

A baseline is a checked-in JSON multiset of finding *fingerprints*
(path, rule id, normalized source line — deliberately no line numbers,
so unrelated edits don't invalidate it). CI runs ``repro lint
--baseline lint-baseline.json src/`` and fails only on findings not in
the baseline; ``--write-baseline`` regenerates it when a deliberate
exception is accepted. An empty baseline means the tree is clean.

Baselined-but-gone findings are also surfaced (as ``stale`` entries in
the match result) so the baseline shrinks over time instead of
accreting dead weight.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple

from repro.lint.core import Finding

__all__ = ["Baseline", "BaselineMatch"]

_FORMAT_VERSION = 1


@dataclass
class BaselineMatch:
    """Partition of a run's findings against a baseline."""

    new: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    stale: List[Dict[str, str]] = field(default_factory=list)


@dataclass
class Baseline:
    """A multiset of accepted finding fingerprints."""

    counts: Dict[Tuple[str, str, str], int] = field(default_factory=dict)

    @classmethod
    def from_findings(cls, findings: List[Finding]) -> "Baseline":
        counts: Dict[Tuple[str, str, str], int] = {}
        for finding in findings:
            key = finding.fingerprint()
            counts[key] = counts.get(key, 0) + 1
        return cls(counts=counts)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text(encoding="utf-8"))
        counts: Dict[Tuple[str, str, str], int] = {}
        for entry in data.get("findings", []):
            key = (entry["path"], entry["rule_id"], entry["source_line"])
            counts[key] = counts.get(key, 0) + int(entry.get("count", 1))
        return cls(counts=counts)

    def save(self, path: Path) -> None:
        entries = [
            {"path": p, "rule_id": r, "source_line": s, "count": c}
            for (p, r, s), c in sorted(self.counts.items())
        ]
        payload = {"version": _FORMAT_VERSION, "findings": entries}
        path.write_text(json.dumps(payload, indent=2) + "\n",
                        encoding="utf-8")

    def diff(self, previous: "Baseline") -> Tuple[int, int]:
        """Ratchet delta against an older baseline: (added, removed)
        fingerprint counts — ``removed`` is what ``--write-baseline``
        prunes (fingerprints for code that no longer exists)."""
        added = sum(max(0, count - previous.counts.get(key, 0))
                    for key, count in self.counts.items())
        removed = sum(max(0, count - self.counts.get(key, 0))
                      for key, count in previous.counts.items())
        return added, removed

    def match(self, findings: List[Finding]) -> BaselineMatch:
        """Split findings into new vs baselined; report stale entries."""
        remaining = dict(self.counts)
        result = BaselineMatch()
        for finding in findings:
            key = finding.fingerprint()
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                result.baselined.append(finding)
            else:
                result.new.append(finding)
        for (path, rule_id, source_line), count in sorted(remaining.items()):
            if count > 0:
                result.stale.append({"path": path, "rule_id": rule_id,
                                     "source_line": source_line,
                                     "count": str(count)})
        return result
