"""The analyzer engine: findings, the rule registry, suppressions.

``repro.lint`` is a project-specific static analyzer (distinct from the
paper-results package :mod:`repro.analysis`): it walks Python ASTs with
one :class:`Rule` visitor per check and reports :class:`Finding` records.
The reproduction's two load-bearing invariants — bit-identical results
across reruns/worker counts/batch sizes, and a non-blocking, leak-free
asyncio serving path — are exactly the invariants small code patterns
silently break; the rules in :mod:`repro.lint.rules_determinism`,
:mod:`repro.lint.rules_async` and :mod:`repro.lint.rules_units` encode
those patterns so they fail at lint time instead of in a flaky test.

Architecture:

- a rule is an :class:`ast.NodeVisitor` subclass registered with the
  :func:`rule` decorator; one fresh instance visits each module;
- every rule belongs to a *category* (``determinism``, ``async-safety``,
  ``config-hygiene``) and only runs on files its category is scoped to
  (see :mod:`repro.lint.config` for ``[tool.repro-lint]`` scoping);
- ``# repro-lint: disable=<RULE>[,<RULE>...]`` on a line suppresses findings
  reported for that line (by id or name); suppressions that suppress
  nothing are themselves reported as ``LINT001 unused-suppression``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type

__all__ = [
    "Finding",
    "Rule",
    "rule",
    "all_rules",
    "rules_by_category",
    "known_rule_ids",
    "Analyzer",
    "AnalysisReport",
    "ModuleSource",
    "finalize_report",
    "UNUSED_SUPPRESSION_ID",
]

#: Reserved id for the meta-rule reporting suppressions that matched nothing.
UNUSED_SUPPRESSION_ID = "LINT001"

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s-]+)")


@dataclass(frozen=True)
class Finding:
    """One reported defect at a source location."""

    rule_id: str
    rule_name: str
    path: str
    line: int
    col: int
    message: str
    source_line: str = ""

    def format(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule_id} [{self.rule_name}] {self.message}")

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule_id": self.rule_id,
            "rule_name": self.rule_name,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "source_line": self.source_line,
        }

    def fingerprint(self) -> Tuple[str, str, str]:
        """Line-number-independent identity used by the baseline store.

        Keyed on (path, rule, normalized source line) so findings survive
        unrelated edits that shift line numbers.
        """
        return (self.path, self.rule_id, " ".join(self.source_line.split()))


@dataclass
class ModuleSource:
    """A parsed module plus everything rules need to report on it."""

    path: str            # project-root-relative posix path (display + scoping)
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    @classmethod
    def parse(cls, path: str, source: str) -> "ModuleSource":
        tree = ast.parse(source, filename=path)
        return cls(path=path, source=source, tree=tree,
                   lines=source.splitlines())

    def line_at(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


class Rule(ast.NodeVisitor):
    """Base class for one check. Subclass, set the class attributes,
    implement ``visit_*`` methods, and call :meth:`report` on hits.

    A fresh instance visits each module, so per-file state lives on
    ``self``. :attr:`aliases` maps local names to the dotted module paths
    they were imported from (``np`` -> ``numpy``, ``Random`` ->
    ``random.Random``), collected in a pre-pass so every rule can resolve
    qualified call names with :meth:`qualified_name`.
    """

    rule_id: str = ""
    name: str = ""
    category: str = ""
    rationale: str = ""

    def __init__(self, module: ModuleSource,
                 aliases: Optional[Dict[str, str]] = None):
        self.module = module
        self.aliases = aliases or {}
        self.findings: List[Finding] = []
        self._async_depth = 0

    # -- reporting ------------------------------------------------------- #

    def report(self, node: ast.AST, message: str) -> None:
        lineno = getattr(node, "lineno", 1)
        self.findings.append(Finding(
            rule_id=self.rule_id,
            rule_name=self.name,
            path=self.module.path,
            line=lineno,
            col=getattr(node, "col_offset", 0),
            message=message,
            source_line=self.module.line_at(lineno)))

    # -- shared helpers -------------------------------------------------- #

    def qualified_name(self, node: ast.AST) -> Optional[str]:
        """Resolve a call target to a dotted path, following import
        aliases: ``rnd.Random`` -> ``random.Random`` when ``import random
        as rnd``; ``default_rng`` -> ``numpy.random.default_rng`` when
        ``from numpy.random import default_rng``. Returns None for
        dynamic expressions (``x().y``, subscripts, ...)."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))

    def in_async_def(self) -> bool:
        return self._async_depth > 0

    # -- async scope tracking (shared by every rule) --------------------- #

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._async_depth += 1
        self.generic_visit(node)
        self._async_depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # A nested sync def shields its body from the enclosing async scope.
        saved, self._async_depth = self._async_depth, 0
        self.generic_visit(node)
        self._async_depth = saved


_REGISTRY: Dict[str, Type[Rule]] = {}


def rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator registering a :class:`Rule` subclass."""
    if not cls.rule_id or not cls.name or not cls.category:
        raise ValueError(
            f"{cls.__name__} must define rule_id, name and category")
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    if cls.rule_id == UNUSED_SUPPRESSION_ID:
        raise ValueError(f"{UNUSED_SUPPRESSION_ID} is reserved")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> Dict[str, Type[Rule]]:
    """Every registered rule, id -> class (imports the rule modules)."""
    _load_builtin_rules()
    return dict(_REGISTRY)


def rules_by_category() -> Dict[str, List[Type[Rule]]]:
    out: Dict[str, List[Type[Rule]]] = {}
    for cls in all_rules().values():
        out.setdefault(cls.category, []).append(cls)
    return out


def _load_builtin_rules() -> None:
    # Import for the registration side effect; idempotent.
    from repro.lint import rules_async, rules_determinism, rules_units  # noqa: F401


def known_rule_ids() -> Set[str]:
    """Every id and name a suppression may legitimately reference:
    per-file rules, whole-program flow rules, and the meta-rule."""
    registry = all_rules()
    known = ({rid for rid in registry}
             | {cls.name for cls in registry.values()}
             | {UNUSED_SUPPRESSION_ID, "unused-suppression"})
    from repro.lint.flow import all_flow_rules  # deferred: flow imports core
    flow_registry = all_flow_rules()
    known |= set(flow_registry)
    known |= {cls.name for cls in flow_registry.values()}
    return known


# ---------------------------------------------------------------------- #
# Import alias collection
# ---------------------------------------------------------------------- #

def collect_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the dotted paths they alias via imports."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                aliases[item.asname or item.name.split(".")[0]] = (
                    item.name if item.asname else item.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for item in node.names:
                if item.name == "*":
                    continue
                aliases[item.asname or item.name] = (
                    f"{node.module}.{item.name}")
    return aliases


# ---------------------------------------------------------------------- #
# Suppressions
# ---------------------------------------------------------------------- #

@dataclass
class Suppression:
    """One ``# repro-lint: disable=...`` comment."""

    line: int
    rules: Tuple[str, ...]   # ids or names, as written
    used: bool = False

    def matches(self, finding: Finding) -> bool:
        for entry in self.rules:
            if entry in (finding.rule_id, finding.rule_name, "all"):
                return True
        return False


def parse_suppressions(source: str) -> List[Suppression]:
    out: List[Suppression] = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        # Everything after `--` is a human-readable justification
        # (required style for suppressions of flow findings).
        rule_list = match.group(1).split("--", 1)[0]
        rules = tuple(entry.strip() for entry in rule_list.split(",")
                      if entry.strip())
        if rules:
            out.append(Suppression(line=lineno, rules=rules))
    return out


# ---------------------------------------------------------------------- #
# The analyzer
# ---------------------------------------------------------------------- #

@dataclass
class AnalysisReport:
    """Everything one run produced.

    In *deferred* mode (``check_source(..., finalize=False)``) the
    findings are raw — not yet suppression-filtered — and the per-file
    suppressions plus the ids of the rules that ran live in
    :attr:`pending_suppressions` / :attr:`local_rule_ids` until
    :func:`finalize_report` is called. The multi-file runner uses this
    so one ``disable=`` comment works for per-file *and* flow findings.
    """

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: List[str] = field(default_factory=list)
    pending_suppressions: Dict[str, List["Suppression"]] = field(
        default_factory=dict)
    local_rule_ids: Dict[str, Set[str]] = field(default_factory=dict)

    def sorted_findings(self) -> List[Finding]:
        return sorted(self.findings,
                      key=lambda f: (f.path, f.line, f.col, f.rule_id))


def finalize_report(report: AnalysisReport) -> None:
    """Apply pending suppressions to a report's findings and emit
    ``LINT001`` for suppressions that matched nothing.

    Works on whatever findings the report holds — per-file, flow, or
    both — so a ``disable=`` comment suppresses a flow finding exactly
    like a per-file one. Clears the pending state when done.
    """
    by_path_line: Dict[Tuple[str, int], List[Suppression]] = {}
    for path, sups in report.pending_suppressions.items():
        for sup in sups:
            by_path_line.setdefault((path, sup.line), []).append(sup)
    kept: List[Finding] = []
    for finding in report.findings:
        suppressed = False
        for sup in by_path_line.get((finding.path, finding.line), ()):
            if sup.matches(finding):
                sup.used = True
                suppressed = True
        if not suppressed:
            kept.append(finding)
    known_anywhere = known_rule_ids()
    for path in sorted(report.pending_suppressions):
        local = report.local_rule_ids.get(path, set())
        for sup in report.pending_suppressions[path]:
            if sup.used:
                continue
            # A suppression is unused when an entry names a rule that ran
            # on this file and found nothing — or names no rule at all (a
            # typo). Valid rules merely not scoped to this file stay
            # silent: they never had the chance to fire.
            if any(entry in local or entry == "all"
                   or entry not in known_anywhere
                   for entry in sup.rules):
                names = ",".join(sup.rules)
                kept.append(Finding(
                    rule_id=UNUSED_SUPPRESSION_ID,
                    rule_name="unused-suppression",
                    path=path, line=sup.line, col=0,
                    message=(f"suppression 'disable={names}' matched no "
                             "finding on this line; remove it"),
                    source_line=""))
    report.findings = kept
    report.pending_suppressions = {}
    report.local_rule_ids = {}


class Analyzer:
    """Run scoped rules over files or source strings.

    Args:
        config: a :class:`repro.lint.config.LintConfig`; its per-category
            path scopes decide which rules see which files.
        select: optional iterable of rule ids/names to restrict the run.
    """

    def __init__(self, config, select: Optional[Iterable[str]] = None):
        self.config = config
        registry = all_rules()
        wanted = None if select is None else {s for s in select}
        self._rules: List[Type[Rule]] = []
        for cls in registry.values():
            if wanted is not None and not (
                    {cls.rule_id, cls.name} & wanted):
                continue
            self._rules.append(cls)
        self._rules.sort(key=lambda cls: cls.rule_id)

    def rules_for_path(self, path: str) -> List[Type[Rule]]:
        return [cls for cls in self._rules
                if self.config.applies(cls, path)]

    def check_source(self, path: str, source: str,
                     report: Optional[AnalysisReport] = None,
                     finalize: bool = True) -> AnalysisReport:
        """Analyze one module given as text (path is display/scoping only).

        With ``finalize=False`` the raw findings are appended unfiltered
        and the suppressions recorded for a later :func:`finalize_report`
        — the multi-file runner does this so flow findings participate
        in the same suppression pass.
        """
        report = report if report is not None else AnalysisReport()
        rules = self.rules_for_path(path)
        suppressions = parse_suppressions(source)
        if not rules and not suppressions:
            return report
        try:
            module = ModuleSource.parse(path, source)
        except SyntaxError as exc:
            report.parse_errors.append(f"{path}: {exc}")
            return report
        report.files_checked += 1
        aliases = collect_aliases(module.tree)
        raw: List[Finding] = []
        for cls in rules:
            visitor = cls(module, aliases)
            visitor.visit(module.tree)
            raw.extend(visitor.findings)
        local = {cls.rule_id for cls in rules} | {cls.name for cls in rules}
        report.findings.extend(raw)
        report.pending_suppressions[path] = suppressions
        report.local_rule_ids[path] = local
        if finalize:
            finalize_report(report)
        return report


    def check_paths(self, paths: Sequence[str]) -> AnalysisReport:
        """Analyze every ``.py`` file under the given files/directories."""
        report = AnalysisReport()
        for file_path in iter_python_files(paths):
            rel = self.config.project_relative(file_path)
            try:
                source = file_path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError) as exc:
                report.parse_errors.append(f"{rel}: {exc}")
                continue
            self.check_source(rel, source, report)
        report.findings = report.sorted_findings()
        return report


def iter_python_files(paths: Sequence[str]) -> Iterable[Path]:
    """Yield .py files under ``paths`` in a deterministic order, skipping
    caches and hidden directories."""
    seen: Set[Path] = set()
    for entry in paths:
        root = Path(entry)
        if root.is_file():
            candidates = [root]
        else:
            candidates = sorted(root.rglob("*.py"))
        for candidate in candidates:
            if any(part == "__pycache__" or part.startswith(".")
                   for part in candidate.parts):
                continue
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            yield candidate
