"""Multi-file analysis driver: parallel per-file pass + flow pass.

``repro lint`` funnels through :func:`run_analysis`:

1. the per-file rules run over every file — serially, or with
   ``jobs > 1`` on a multiprocessing pool (each worker builds one
   :class:`Analyzer` in its initializer and streams back picklable
   findings/suppressions; results are merged in file order, so the
   output is byte-identical to a serial run);
2. with ``flow=True`` the whole-program pass parses every analyzed
   module into a :class:`~repro.lint.flow.ProjectModel` in the parent
   process (rule time is dominated by graph traversal, not parsing, so
   this stays serial) and appends the flow findings;
3. one :func:`~repro.lint.core.finalize_report` applies inline
   suppressions to the combined findings — a ``disable=PROTO501``
   comment works exactly like a per-file one — and flags unused
   suppressions.
"""

from __future__ import annotations

import multiprocessing
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.core import (
    Analyzer,
    AnalysisReport,
    Finding,
    ModuleSource,
    Suppression,
    finalize_report,
    iter_python_files,
)
from repro.lint.flow import all_flow_rules, run_flow_rules

__all__ = ["run_analysis"]

#: (rel path, raw findings, suppressions, local rule ids, parse error,
#:  counted as checked)
_ScanResult = Tuple[str, List[Finding], List[Suppression], Set[str],
                    Optional[str], bool]

_WORKER_ANALYZER: Optional[Analyzer] = None


def _init_worker(config, select: Optional[List[str]]) -> None:
    global _WORKER_ANALYZER
    _WORKER_ANALYZER = Analyzer(config, select=select)


def _scan_with(analyzer: Analyzer, rel: str,
               file_path: Path) -> _ScanResult:
    try:
        source = file_path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return (rel, [], [], set(), f"{rel}: {exc}", False)
    report = AnalysisReport()
    analyzer.check_source(rel, source, report, finalize=False)
    error = report.parse_errors[0] if report.parse_errors else None
    return (rel, report.findings,
            report.pending_suppressions.get(rel, []),
            report.local_rule_ids.get(rel, set()),
            error, report.files_checked > 0)


def _scan_in_worker(item: Tuple[str, str]) -> _ScanResult:
    rel, path_str = item
    assert _WORKER_ANALYZER is not None
    return _scan_with(_WORKER_ANALYZER, rel, Path(path_str))


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def run_analysis(paths: Sequence[str], config,
                 select: Optional[List[str]] = None,
                 flow: bool = True,
                 jobs: int = 1) -> AnalysisReport:
    """Analyze files/directories with per-file and (optionally) flow
    rules; returns a finalized, sorted :class:`AnalysisReport`."""
    analyzer = Analyzer(config, select=select)
    entries = [(config.project_relative(fp), fp)
               for fp in iter_python_files(paths)]
    report = AnalysisReport()
    results: Iterable[_ScanResult]
    if jobs > 1 and len(entries) > 1:
        ctx = _pool_context()
        with ctx.Pool(processes=min(jobs, len(entries)),
                      initializer=_init_worker,
                      initargs=(config, select)) as pool:
            results = pool.map(
                _scan_in_worker,
                [(rel, str(fp)) for rel, fp in entries],
                chunksize=max(1, len(entries) // (jobs * 4)))
    else:
        results = [_scan_with(analyzer, rel, fp) for rel, fp in entries]

    sources: List[ModuleSource] = []
    flow_paths: List[str] = []
    for (rel, findings, suppressions, local_ids, error, checked) in results:
        report.findings.extend(findings)
        if suppressions:
            report.pending_suppressions[rel] = suppressions
        report.local_rule_ids[rel] = local_ids
        if error is not None:
            report.parse_errors.append(error)
        elif flow:
            flow_paths.append(rel)
        if checked:
            report.files_checked += 1

    if flow:
        flow_classes = _selected_flow_classes(config, select)
        if flow_classes:
            sources = _parse_for_flow(config, entries,
                                      set(report.parse_errors))
            report.findings.extend(
                run_flow_rules(sources, config, select=select))
            for ms in sources:
                ids = report.local_rule_ids.setdefault(ms.path, set())
                for cls in flow_classes:
                    if config.category_applies(cls.category, ms.path):
                        ids.update((cls.rule_id, cls.name))

    finalize_report(report)
    report.findings = report.sorted_findings()
    return report


def _selected_flow_classes(config, select: Optional[List[str]]):
    wanted = None if select is None else set(select)
    out = []
    for rule_id, cls in sorted(all_flow_rules().items()):
        if wanted is not None and not ({cls.rule_id, cls.name} & wanted):
            continue
        if cls.rule_id in config.disable or cls.name in config.disable:
            continue
        out.append(cls)
    return out


def _parse_for_flow(config, entries: Sequence[Tuple[str, Path]],
                    errored: Set[str]) -> List[ModuleSource]:
    """Parse every analyzable module for the project model.

    Files the per-file pass could not read/parse are skipped (already
    reported); excluded files never join the model, so fixture corpora
    can't leak edges into it.
    """
    sources = []
    for rel, file_path in entries:
        if any(error.startswith(f"{rel}: ") for error in errored):
            continue
        if config.is_excluded(rel):
            continue
        try:
            text = file_path.read_text(encoding="utf-8")
            sources.append(ModuleSource.parse(rel, text))
        except (OSError, UnicodeDecodeError, SyntaxError):
            continue
    return sources
