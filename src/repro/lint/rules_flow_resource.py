"""Resource lifecycle rules (RES4xx, category ``resource-lifecycle``).

The supervisor/store/gateway layers juggle OS-level handles — sockets,
mmaps, ``Popen`` children, tempfiles. A handle acquired into a local
that is neither closed nor handed to another owner leaks a file
descriptor per call; a handle whose ``close()`` sits on the happy path
only leaks exactly when things already went wrong. These rules flag
both patterns per function.

Ownership *transfer* ends a function's responsibility and is detected
conservatively — returning the handle, yielding it, storing it on an
attribute or into a container, or passing it to another call all count
(the callee or owner is now responsible). ``with`` acquisition is
always safe.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.flow import (
    FlowRule,
    FunctionInfo,
    dotted_name,
    flow_rule,
    own_nodes,
)

#: Acquisition call -> human label for messages.
_ACQUIRERS: Dict[str, str] = {
    "open": "file handle",
    "io.open": "file handle",
    "os.fdopen": "file handle",
    "gzip.open": "file handle",
    "bz2.open": "file handle",
    "lzma.open": "file handle",
    "socket.socket": "socket",
    "socket.create_connection": "socket",
    "mmap.mmap": "mmap",
    "subprocess.Popen": "process handle",
    "tempfile.NamedTemporaryFile": "tempfile",
    "tempfile.TemporaryFile": "tempfile",
}

#: Method names that release the underlying OS resource.
_RELEASERS = frozenset({
    "close", "terminate", "kill", "wait", "release", "shutdown",
    "detach", "__exit__",
})


def _acquisition_label(call: ast.Call, aliases: Dict[str, str]
                       ) -> Optional[Tuple[str, str]]:
    """(dotted ctor, label) when ``call`` acquires an OS resource."""
    dotted = dotted_name(call.func, aliases)
    if dotted in _ACQUIRERS:
        return dotted, _ACQUIRERS[dotted]
    if (isinstance(call.func, ast.Attribute)
            and call.func.attr == "makefile"):
        return "makefile", "socket file"
    return None


def _name_loads(node: ast.AST, name: str) -> bool:
    return any(isinstance(sub, ast.Name) and sub.id == name
               for sub in ast.walk(node))


def _finally_nodes(fn_node: ast.AST) -> Set[int]:
    """ids of every node lexically inside some ``finally:`` suite."""
    out: Set[int] = set()

    def visit(node: ast.AST, in_finally: bool) -> None:
        if in_finally:
            out.add(id(node))
        if isinstance(node, ast.Try):
            for child in (node.body + node.handlers + node.orelse):
                visit(child, in_finally)
            for child in node.finalbody:
                visit(child, True)
            return
        for child in ast.iter_child_nodes(node):
            visit(child, in_finally)

    visit(fn_node, False)
    return out


class _Tracked:
    """One resource-producing assignment and what the function did
    with it afterwards."""

    def __init__(self, assign: ast.Assign, name: str,
                 ctor: str, label: str):
        self.assign = assign
        self.name = name
        self.ctor = ctor
        self.label = label
        self.transferred = False
        self.close_calls: List[ast.Call] = []
        self.entered_with = False


def _iter_tracked(fn: FunctionInfo,
                  aliases: Dict[str, str]) -> Iterator[_Tracked]:
    for node in own_nodes(fn.node):
        if not (isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)):
            continue
        acquired = _acquisition_label(node.value, aliases)
        if acquired is None:
            continue
        yield _Tracked(node, node.targets[0].id, *acquired)


def _classify_usage(fn: FunctionInfo, tracked: _Tracked) -> None:
    """Fill ``transferred`` / ``close_calls`` by walking the whole
    function body (including nested defs: a closure that closes the
    handle counts)."""
    name = tracked.name
    for node in ast.walk(fn.node):
        if node is tracked.assign:
            continue
        if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            if node.value is not None and _name_loads(node.value, name):
                tracked.transferred = True
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            value = node.value
            if (value is not None and _name_loads(value, name)
                    and any(not isinstance(t, ast.Name) for t in targets)):
                # stored on an attribute / into a subscript / unpacked —
                # some longer-lived owner holds it now
                tracked.transferred = True
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                expr = item.context_expr
                if isinstance(expr, ast.Name) and expr.id == name:
                    tracked.entered_with = True
                elif (isinstance(expr, ast.Call)
                      and expr.args
                      and isinstance(expr.args[0], ast.Name)
                      and expr.args[0].id == name):
                    # contextlib.closing(h) / ExitStack-style wrappers
                    tracked.entered_with = True
        elif isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == name):
                if func.attr in _RELEASERS:
                    tracked.close_calls.append(node)
                continue  # other methods on the handle are plain use
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if _name_loads(arg, name):
                    # passed to another call: ownership conservatively
                    # assumed transferred (Popen(stdout=log), callbacks…)
                    tracked.transferred = True
        elif isinstance(node, (ast.List, ast.Tuple, ast.Set, ast.Dict)):
            for elt in ast.iter_child_nodes(node):
                if isinstance(elt, ast.Name) and elt.id == name:
                    tracked.transferred = True


@flow_rule
class UnclosedResourceRule(FlowRule):
    """RES401: handle acquired into a local and simply dropped.

    No ``close()``, no ``with``, no return/yield/store/pass-along — the
    descriptor dies whenever the GC feels like it, which under load
    means "after the fd table fills up".
    """

    rule_id = "RES401"
    name = "unclosed-resource"
    category = "resource-lifecycle"
    rationale = ("a handle that is neither closed nor given to another "
                 "owner leaks one fd per call; under production load "
                 "that is an outage with a delay fuse")

    def run(self) -> None:
        for fn in self.model.sorted_functions():
            if not self.applies(fn.path):
                continue
            aliases = self.model.modules[fn.module].aliases
            for tracked in _iter_tracked(fn, aliases):
                _classify_usage(fn, tracked)
                if (tracked.transferred or tracked.entered_with
                        or tracked.close_calls):
                    continue
                self.report(
                    fn.path, tracked.assign,
                    f"{tracked.label} from {tracked.ctor}() is never "
                    f"closed and never leaves {fn.name}(); use a with "
                    "block or close it in finally")


@flow_rule
class ExceptionPathLeakRule(FlowRule):
    """RES402: ``close()`` exists but an exception can skip it.

    The handle is closed on the happy path, but at least one call
    between acquisition and close can raise, and no ``finally``/``with``
    guards the close — so the leak happens exactly on the failure paths
    the resilience layer is built to survive.
    """

    rule_id = "RES402"
    name = "exception-path-leak"
    category = "resource-lifecycle"
    rationale = ("a close() not reached on exception edges leaks "
                 "precisely when the system is already degraded")

    def run(self) -> None:
        for fn in self.model.sorted_functions():
            if not self.applies(fn.path):
                continue
            aliases = self.model.modules[fn.module].aliases
            in_finally = None
            for tracked in _iter_tracked(fn, aliases):
                _classify_usage(fn, tracked)
                if (tracked.transferred or tracked.entered_with
                        or not tracked.close_calls):
                    continue
                if in_finally is None:
                    in_finally = _finally_nodes(fn.node)
                if any(id(call) in in_finally
                       for call in tracked.close_calls):
                    continue
                first_close = min(c.lineno for c in tracked.close_calls)
                if not self._risky_between(fn, tracked,
                                           first_close):
                    continue
                self.report(
                    fn.path, tracked.assign,
                    f"{tracked.label} from {tracked.ctor}() is closed at "
                    f"line {first_close}, but an exception in between "
                    "skips the close; move it into finally or use with")

    @staticmethod
    def _risky_between(fn: FunctionInfo, tracked: _Tracked,
                       first_close: int) -> bool:
        start = tracked.assign.lineno
        for node in own_nodes(fn.node):
            if not isinstance(node, (ast.Call, ast.Raise, ast.Await)):
                continue
            lineno = getattr(node, "lineno", 0)
            if not (start < lineno < first_close):
                continue
            if node in tracked.close_calls:
                continue
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == tracked.name
                    and node.func.attr in _RELEASERS):
                continue
            return True
        return False
