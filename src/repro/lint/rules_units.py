"""Config/unit-hygiene rules (category ``config-hygiene``).

The hardware, power and baseline models are calibrated against published
numbers (Table I/II). Those calibration points must live in *named*
constants or config objects — a bare ``1e12 / freq`` or ``* 1024`` deep
inside an expression is a unit conversion nobody can audit, and the
design-space sweeps silently mis-scale when two copies of the same
magic number drift apart.
"""

from __future__ import annotations

import ast

from repro.lint.core import Rule, rule

#: Structurally obvious values that do not hide a unit or calibration
#: point: identities, signs, halving/doubling, and percentage bounds.
_ALLOWED_VALUES = frozenset({0, 1, 2, -1, 0.0, 1.0, 2.0, -1.0, 0.5})

_ARITH_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv,
              ast.Mod, ast.Pow)


@rule
class MagicNumberRule(Rule):
    """CFG301: numeric literal inline in model arithmetic.

    Cycle counts, byte widths, energy/area figures and unit conversions
    must flow through named module constants or config/dataclass fields.
    Named values are auditable against the paper's tables and change in
    one place; inline literals fork silently.

    Deliberately *not* flagged: module-level constant definitions,
    class-level (dataclass field) defaults, default parameter values,
    plain ``name = <literal>`` bindings, comparisons, and subscripts —
    those are exactly the blessed homes for numbers.
    """

    rule_id = "CFG301"
    name = "magic-number"
    category = "config-hygiene"
    rationale = ("unnamed unit constants can't be audited against the "
                 "paper's tables and drift apart when duplicated")

    def __init__(self, module, aliases=None):
        super().__init__(module, aliases)
        self._func_depth = 0

    # Only arithmetic inside function bodies is suspect; module and
    # class bodies are where constants are *supposed* to be defined.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def _visit_function(self, node) -> None:
        self._func_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        self._func_depth -= 1

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if self._func_depth > 0 and isinstance(node.op, _ARITH_OPS):
            for operand in (node.left, node.right):
                if isinstance(operand, ast.Constant) \
                        and type(operand.value) in (int, float) \
                        and operand.value not in _ALLOWED_VALUES:
                    self.report(operand,
                                f"magic number {operand.value!r} inline "
                                "in model arithmetic; hoist it into a "
                                "named constant or config field")
        self.generic_visit(node)
