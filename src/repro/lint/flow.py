"""Whole-program analysis: symbol table, call graph, flow rules.

The per-file rules in :mod:`repro.lint.rules_async` only see one module
at a time, so an ``async def`` that awaits into a helper which *then*
calls ``time.sleep`` three frames down is invisible to them. This module
adds the project-wide layer those checks need:

- :class:`ProjectModel` parses every analyzed module into a symbol table
  of module-qualified functions/methods (async-ness recorded) and
  resolves intra-project call edges through import aliases, ``self.``
  dispatch, relative imports, and nested defs;
- :class:`FlowRule` is the base class for *inter-procedural* rules,
  registered with :func:`flow_rule` into a registry parallel to the
  per-file ``@rule`` one (``repro lint`` runs both);
- the rule packs live in :mod:`repro.lint.rules_flow_async` (ASY3xx
  transitive blocking), :mod:`repro.lint.rules_flow_resource` (RES4xx
  resource lifecycle) and :mod:`repro.lint.rules_flow_proto` (PROTO5xx
  wire-schema drift).

Known limits (documented in docs/LINT.md): calls through dynamic
dispatch (``handler = pick(); handler()``), ``getattr``, base-class
method resolution, and values smuggled through futures/queues are not
tracked — the call graph only contains edges the resolver is confident
about, so the packs under-approximate rather than spray false
positives. Where a real dataflow crosses such a gap (e.g. a client
response delivered via ``Future.set_result``), ``[tool.repro-lint.flow]``
in pyproject.toml can declare bridge functions explicitly.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type

from repro.lint.core import (
    UNUSED_SUPPRESSION_ID,
    Finding,
    ModuleSource,
    collect_aliases,
)

__all__ = [
    "FlowRule",
    "flow_rule",
    "all_flow_rules",
    "ProjectModel",
    "ModuleInfo",
    "FunctionInfo",
    "CallSite",
    "run_flow_rules",
    "module_name_for_path",
    "dotted_name",
]


# ---------------------------------------------------------------------- #
# Name resolution helpers
# ---------------------------------------------------------------------- #

def module_name_for_path(path: str) -> str:
    """Dotted module name for a project-relative posix path.

    ``src/repro/service/server.py`` -> ``repro.service.server``;
    ``pkg/__init__.py`` -> ``pkg``. A leading ``src/`` component is
    stripped so names match import statements under a src layout.
    """
    parts = path.split("/")
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(part for part in parts if part) or "__main__"


def dotted_name(node: ast.AST,
                aliases: Dict[str, str]) -> Optional[str]:
    """Resolve an attribute chain to a dotted path through import
    aliases (module-level twin of :meth:`Rule.qualified_name`)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(aliases.get(node.id, node.id))
    return ".".join(reversed(parts))


def own_nodes(fn_node: ast.AST) -> Iterable[ast.AST]:
    """Nodes executed *by this function's own frame*: the body minus
    nested function/class/lambda subtrees (those run in other frames,
    and nested defs are indexed as functions of their own)."""
    stack: List[ast.AST] = list(getattr(fn_node, "body", []))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


# ---------------------------------------------------------------------- #
# The project model
# ---------------------------------------------------------------------- #

@dataclass
class CallSite:
    """One resolved intra-project call edge."""

    callee: str          # qualname of the resolved target
    node: ast.Call


@dataclass
class FunctionInfo:
    """One function or method in the symbol table."""

    qualname: str        # "repro.service.server.AlignmentServer._worker"
    module: str          # dotted module name
    path: str            # project-relative posix path
    name: str            # bare name
    cls: Optional[str]   # enclosing class qualifier ("Outer.Inner") or None
    node: ast.AST        # the FunctionDef / AsyncFunctionDef
    is_async: bool
    calls: List[CallSite] = field(default_factory=list)
    # (call node, dotted op, kind) — kind is "block" or "io"; filled by
    # the model so both ASY3xx rules share one scan.
    blocking_ops: List[Tuple[ast.Call, str, str]] = field(
        default_factory=list)


@dataclass
class ModuleInfo:
    """One parsed module plus resolution context."""

    name: str
    source: ModuleSource
    aliases: Dict[str, str] = field(default_factory=dict)
    thread_queue_names: Set[str] = field(default_factory=set)
    socket_names: Set[str] = field(default_factory=set)

    @property
    def path(self) -> str:
        return self.source.path


#: Direct-call blocking ops (the ASY201 set minus plain file I/O, which
#: ASY302 reports separately so the fix hint can differ).
_TRANSITIVE_BLOCKING = frozenset({
    "time.sleep",
    "os.system", "os.wait", "os.waitpid",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "socket.create_connection", "socket.getaddrinfo",
    "socket.gethostbyname", "socket.gethostbyaddr",
    "urllib.request.urlopen",
    "requests.get", "requests.post", "requests.put", "requests.delete",
    "requests.head", "requests.request",
    "input",
})

#: Sync file I/O entry points (ASY302's terminal ops).
_TRANSITIVE_IO = frozenset({
    "open", "io.open", "os.fdopen", "gzip.open", "bz2.open", "lzma.open",
})

#: ``pathlib.Path`` convenience I/O; matched by method name on any
#: receiver (a Path-typed receiver cannot be proven statically).
_IO_PATH_METHODS = frozenset({
    "read_text", "write_text", "read_bytes", "write_bytes",
})

_THREAD_QUEUE_TYPES = frozenset({
    "queue.Queue", "queue.LifoQueue", "queue.PriorityQueue",
    "queue.SimpleQueue",
})
_QUEUE_BLOCKING_METHODS = frozenset({"get", "put", "join"})

_SOCKET_TYPES = frozenset({"socket.socket", "socket.create_connection"})
_SOCKET_BLOCKING_METHODS = frozenset({
    "connect", "accept", "recv", "recv_into", "send", "sendall",
    "makefile",
})


def _receiver_name(expr: ast.AST) -> Optional[str]:
    """Bare name of a method call receiver: ``q`` or ``self._q`` -> the
    last attribute component."""
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return None


class ProjectModel:
    """Symbol table + call graph over every analyzed module.

    Built once per ``repro lint`` run and shared by all flow rules, so
    each rule is a traversal, not a re-parse.
    """

    def __init__(self, sources: Sequence[ModuleSource]):
        self.modules: Dict[str, ModuleInfo] = {}
        self.by_path: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.methods_by_name: Dict[str, List[str]] = {}
        for ms in sorted(sources, key=lambda m: m.path):
            self._index_module(ms)
        for fn in self.functions.values():
            self._resolve_calls(fn)
            self._scan_blocking(fn)

    # -- construction ---------------------------------------------------- #

    def _index_module(self, ms: ModuleSource) -> None:
        name = module_name_for_path(ms.path)
        is_package = ms.path.endswith("/__init__.py") or \
            ms.path == "__init__.py"
        info = ModuleInfo(name=name, source=ms,
                          aliases=self._module_aliases(ms, name, is_package))
        self.modules[name] = info
        self.by_path[ms.path] = info
        self._collect_typed_names(info)
        self._index_functions(info, ms.tree.body, prefix=name, cls=None)

    @staticmethod
    def _module_aliases(ms: ModuleSource, modname: str,
                        is_package: bool) -> Dict[str, str]:
        aliases = collect_aliases(ms.tree)
        # collect_aliases skips relative imports; resolve them against
        # the module's own package so `from .ring import HashRing` in
        # repro/cluster/gateway.py maps to repro.cluster.ring.HashRing.
        anchor = modname.split(".") if is_package \
            else modname.split(".")[:-1]
        for node in ast.walk(ms.tree):
            if not (isinstance(node, ast.ImportFrom) and node.level):
                continue
            base = anchor[:len(anchor) - (node.level - 1)]
            if node.level - 1 > len(anchor):
                continue
            prefix_parts = base + (node.module.split(".")
                                   if node.module else [])
            prefix = ".".join(prefix_parts)
            for item in node.names:
                if item.name == "*" or not prefix:
                    continue
                aliases[item.asname or item.name] = f"{prefix}.{item.name}"
        return aliases

    def _collect_typed_names(self, info: ModuleInfo) -> None:
        """Names bound (anywhere in the module, including ``self.x``)
        to thread-queue or raw-socket instances, so method calls on them
        can be classified as blocking."""
        for node in ast.walk(info.source.tree):
            if not (isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Call)):
                continue
            target_type = dotted_name(node.value.func, info.aliases)
            if target_type in _THREAD_QUEUE_TYPES:
                bucket = info.thread_queue_names
            elif target_type in _SOCKET_TYPES:
                bucket = info.socket_names
            else:
                continue
            for tgt in node.targets:
                bound = _receiver_name(tgt)
                if bound:
                    bucket.add(bound)

    def _index_functions(self, info: ModuleInfo, body: Sequence[ast.AST],
                         prefix: str, cls: Optional[str]) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}.{node.name}"
                fn = FunctionInfo(
                    qualname=qualname, module=info.name, path=info.path,
                    name=node.name, cls=cls, node=node,
                    is_async=isinstance(node, ast.AsyncFunctionDef))
                self.functions[qualname] = fn
                if cls is not None:
                    self.methods_by_name.setdefault(
                        node.name, []).append(qualname)
                self._index_functions(info, node.body,
                                      prefix=f"{qualname}.<locals>",
                                      cls=None)
            elif isinstance(node, ast.ClassDef):
                sub_cls = f"{cls}.{node.name}" if cls else node.name
                self._index_functions(info, node.body,
                                      prefix=f"{prefix}.{node.name}",
                                      cls=sub_cls)

    # -- call resolution ------------------------------------------------- #

    def _resolve_calls(self, fn: FunctionInfo) -> None:
        info = self.modules[fn.module]
        for node in own_nodes(fn.node):
            if not isinstance(node, ast.Call):
                continue
            callee = self._resolve_call(fn, info, node)
            if callee is not None:
                fn.calls.append(CallSite(callee=callee, node=node))
        fn.calls.sort(key=lambda cs: (cs.node.lineno, cs.node.col_offset))

    def _resolve_call(self, fn: FunctionInfo, info: ModuleInfo,
                      call: ast.Call) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_name(fn, info, func.id)
        if isinstance(func, ast.Attribute):
            # self.m() / cls.m() within the defining class.
            if (isinstance(func.value, ast.Name)
                    and func.value.id in ("self", "cls")
                    and fn.cls is not None):
                cand = f"{fn.module}.{fn.cls}.{func.attr}"
                return cand if cand in self.functions else None
            dotted = dotted_name(func, info.aliases)
            if dotted is None:
                return None
            if dotted in self.functions:
                return dotted
            # Module-local Class.method or Class() spelled unqualified.
            cand = f"{fn.module}.{dotted}"
            if cand in self.functions:
                return cand
            ctor = f"{dotted}.__init__"
            if ctor in self.functions:
                return ctor
            return None
        return None

    def _resolve_name(self, fn: FunctionInfo, info: ModuleInfo,
                      name: str) -> Optional[str]:
        # Nested def of this function, or of an enclosing one.
        owner = fn.qualname
        while True:
            cand = f"{owner}.<locals>.{name}"
            if cand in self.functions:
                return cand
            if ".<locals>." not in owner:
                break
            owner = owner.rsplit(".<locals>.", 1)[0]
        cand = f"{fn.module}.{name}"
        if cand in self.functions:
            return cand
        ctor = f"{fn.module}.{name}.__init__"
        if ctor in self.functions:
            return ctor
        target = info.aliases.get(name)
        if target is not None:
            if target in self.functions:
                return target
            ctor = f"{target}.__init__"
            if ctor in self.functions:
                return ctor
        return None

    # -- blocking-op scan ------------------------------------------------ #

    def _scan_blocking(self, fn: FunctionInfo) -> None:
        info = self.modules[fn.module]
        queue_names = set(info.thread_queue_names)
        socket_names = set(info.socket_names)
        for node in own_nodes(fn.node):
            if (isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Call)):
                target_type = dotted_name(node.value.func, info.aliases)
                if target_type in _THREAD_QUEUE_TYPES:
                    queue_names.update(
                        n for n in map(_receiver_name, node.targets) if n)
                elif target_type in _SOCKET_TYPES:
                    socket_names.update(
                        n for n in map(_receiver_name, node.targets) if n)
        ops = []
        for node in own_nodes(fn.node):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func, info.aliases)
            if dotted in _TRANSITIVE_BLOCKING:
                ops.append((node, dotted, "block"))
            elif dotted in _TRANSITIVE_IO:
                ops.append((node, dotted, "io"))
            elif isinstance(node.func, ast.Attribute):
                attr = node.func.attr
                recv = _receiver_name(node.func.value)
                if (attr in _QUEUE_BLOCKING_METHODS
                        and recv in queue_names):
                    ops.append((node, f"{recv}.{attr}", "block"))
                elif (attr in _SOCKET_BLOCKING_METHODS
                        and recv in socket_names):
                    ops.append((node, f"{recv}.{attr}", "block"))
                elif attr in _IO_PATH_METHODS:
                    ops.append((node, f"Path.{attr}", "io"))
        ops.sort(key=lambda op: (op[0].lineno, op[0].col_offset))
        fn.blocking_ops = ops

    # -- queries --------------------------------------------------------- #

    def line_at(self, path: str, lineno: int) -> str:
        info = self.by_path.get(path)
        return info.source.line_at(lineno) if info else ""

    def sorted_functions(self) -> List[FunctionInfo]:
        return [self.functions[q] for q in sorted(self.functions)]


# ---------------------------------------------------------------------- #
# Flow rule base + registry
# ---------------------------------------------------------------------- #

class FlowRule:
    """Base class for one whole-program check.

    Subclass, set the class attributes, implement :meth:`run`, and call
    :meth:`report` on hits. One fresh instance runs per analysis, with
    the shared :class:`ProjectModel` and the resolved
    :class:`~repro.lint.config.LintConfig` (category scoping applies to
    the *reported* path: a rule may traverse out-of-scope helpers but
    only files inside its category's scope receive findings).
    """

    rule_id: str = ""
    name: str = ""
    category: str = ""
    rationale: str = ""

    def __init__(self, model: ProjectModel, config):
        self.model = model
        self.config = config
        self.findings: List[Finding] = []

    def run(self) -> None:
        raise NotImplementedError

    def applies(self, path: str) -> bool:
        return self.config.category_applies(self.category, path)

    def report(self, path: str, node: ast.AST, message: str) -> None:
        lineno = getattr(node, "lineno", 1)
        self.findings.append(Finding(
            rule_id=self.rule_id,
            rule_name=self.name,
            path=path,
            line=lineno,
            col=getattr(node, "col_offset", 0),
            message=message,
            source_line=self.model.line_at(path, lineno)))


_FLOW_REGISTRY: Dict[str, Type[FlowRule]] = {}


def flow_rule(cls: Type[FlowRule]) -> Type[FlowRule]:
    """Class decorator registering a :class:`FlowRule` subclass."""
    if not cls.rule_id or not cls.name or not cls.category:
        raise ValueError(
            f"{cls.__name__} must define rule_id, name and category")
    if cls.rule_id in _FLOW_REGISTRY:
        raise ValueError(f"duplicate flow rule id {cls.rule_id}")
    if cls.rule_id == UNUSED_SUPPRESSION_ID:
        raise ValueError(f"{UNUSED_SUPPRESSION_ID} is reserved")
    _FLOW_REGISTRY[cls.rule_id] = cls
    return cls


def all_flow_rules() -> Dict[str, Type[FlowRule]]:
    """Every registered flow rule, id -> class (imports the packs)."""
    _load_builtin_flow_rules()
    return dict(_FLOW_REGISTRY)


def _load_builtin_flow_rules() -> None:
    # Import for the registration side effect; idempotent.
    from repro.lint import (  # noqa: F401
        rules_flow_async,
        rules_flow_proto,
        rules_flow_resource,
    )


def run_flow_rules(sources: Sequence[ModuleSource], config,
                   select=None) -> List[Finding]:
    """Build the project model and run every (selected) flow rule.

    Returns raw findings — suppression filtering happens in the caller
    so inline ``# repro-lint: disable=`` comments work identically for
    per-file and flow rules.
    """
    registry = all_flow_rules()
    wanted = None if select is None else set(select)
    classes = []
    for rule_id in sorted(registry):
        cls = registry[rule_id]
        if wanted is not None and not ({cls.rule_id, cls.name} & wanted):
            continue
        if cls.rule_id in config.disable or cls.name in config.disable:
            continue
        classes.append(cls)
    if not classes:
        return []
    model = ProjectModel(sources)
    findings: List[Finding] = []
    for cls in classes:
        instance = cls(model, config)
        instance.run()
        findings.extend(instance.findings)
    return findings
