"""Determinism rules (category ``determinism``).

The reproduction's north-star property is that cycle-level results are
bit-identical across reruns, worker counts and batch sizes. Every rule
here targets a concrete way Python code silently loses that property:
entropy drawn from unseeded RNGs or the wall clock, and orderings that
depend on the per-process hash seed instead of the data.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.lint.core import Rule, rule

#: Module-level functions on ``random`` that draw from the shared,
#: process-global (and by default time-seeded) RNG.
_GLOBAL_RANDOM_FNS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "betavariate",
    "expovariate", "triangular", "vonmisesvariate", "paretovariate",
    "weibullvariate", "lognormvariate", "getrandbits", "randbytes",
    "binomialvariate",
})

#: numpy.random module-level draws backed by the hidden global RandomState.
_GLOBAL_NP_RANDOM_FNS = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "uniform", "normal",
    "standard_normal", "poisson", "binomial", "exponential", "seed",
    "bytes", "random_integers",
})

#: Wall-clock / host-entropy sources. ``time.monotonic`` and
#: ``time.perf_counter`` are deliberately absent: they are measurement
#: clocks, fine for reporting, and never feed simulated state here.
_WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.localtime", "time.gmtime",
    "time.ctime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "os.urandom", "os.getrandom",
    "uuid.uuid1", "uuid.uuid4",
    "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
    "secrets.randbelow", "secrets.choice", "secrets.randbits",
})

#: Calls whose result order is safe to consume from a set (order-free
#: reductions), so iteration through them is not flagged.
_ORDER_FREE_CONSUMERS = frozenset({
    "sorted", "len", "sum", "min", "max", "any", "all", "set",
    "frozenset",
})


@rule
class UnseededRngRule(Rule):
    """DET101: RNG constructed without an explicit seed.

    ``random.Random()`` and ``numpy.random.default_rng()`` seed from OS
    entropy, so two runs of the same experiment diverge. This is exactly
    the historical ``rng = rng or random.Random()`` bug in
    ``genome/sequence.py``: callers that forgot to pass an RNG got
    irreproducible reads instead of an error.
    """

    rule_id = "DET101"
    name = "unseeded-rng"
    category = "determinism"
    rationale = ("unseeded RNGs draw OS entropy; reruns diverge and the "
                 "bit-identical-results invariant breaks")

    _CONSTRUCTORS = frozenset({
        "random.Random", "random.SystemRandom",
        "numpy.random.default_rng", "numpy.random.Generator",
        "numpy.random.RandomState", "numpy.random.SeedSequence",
    })

    def visit_Call(self, node: ast.Call) -> None:
        target = self.qualified_name(node.func)
        if target in self._CONSTRUCTORS and not node.args and not node.keywords:
            self.report(node, f"{target}() without an explicit seed; pass "
                              "a seed or thread an rng from the caller")
        self.generic_visit(node)


@rule
class GlobalRandomRule(Rule):
    """DET102: draw from the process-global RNG (``random.random()`` et
    al., ``np.random.*``). The global RNG is shared mutable state seeded
    from the clock: results depend on import order, worker count, and
    everything else that touched it."""

    rule_id = "DET102"
    name = "global-random"
    category = "determinism"
    rationale = ("module-level random.* / np.random.* share one hidden, "
                 "time-seeded RNG; any other caller perturbs the stream")

    def visit_Call(self, node: ast.Call) -> None:
        target = self.qualified_name(node.func)
        if target is not None:
            parts = target.split(".")
            if len(parts) == 2 and parts[0] == "random" \
                    and parts[1] in _GLOBAL_RANDOM_FNS:
                self.report(node, f"{target}() draws from the global RNG; "
                                  "use an explicit random.Random(seed)")
            elif len(parts) == 3 and parts[0] == "numpy" \
                    and parts[1] == "random" \
                    and parts[2] in _GLOBAL_NP_RANDOM_FNS:
                self.report(node, f"{target}() uses numpy's global "
                                  "RandomState; use default_rng(seed)")
        self.generic_visit(node)


@rule
class WallClockRule(Rule):
    """DET103: wall-clock or host-entropy call in deterministic code.

    ``time.time()``, ``datetime.now()``, ``os.urandom()``, ``uuid4()``
    make output depend on when/where the run happened. The simulator's
    only clock is its integer cycle counter; measurement clocks
    (``time.monotonic``/``perf_counter``) are allowed since they never
    feed simulated state.
    """

    rule_id = "DET103"
    name = "wall-clock"
    category = "determinism"
    rationale = ("wall-clock/entropy reads make results depend on when "
                 "and where the run happened, not just the seed")

    def visit_Call(self, node: ast.Call) -> None:
        target = self.qualified_name(node.func)
        if target in _WALL_CLOCK_CALLS:
            self.report(node, f"{target}() in deterministic code; derive "
                              "values from the seed or cycle counter")
        self.generic_visit(node)


@rule
class SetIterationRule(Rule):
    """DET104: iteration over a set in hash order.

    Set iteration order depends on ``PYTHONHASHSEED`` (for str keys) and
    insertion history. Feeding it into scheduler decisions, output
    files, or any order-sensitive consumer makes runs differ even with
    identical seeds. Wrap in ``sorted(...)`` to pin the order.
    """

    rule_id = "DET104"
    name = "set-iteration"
    category = "determinism"
    rationale = ("set order follows the per-process hash seed; anything "
                 "order-sensitive downstream loses reproducibility")

    _SEQUENCE_CONSUMERS = frozenset({"list", "tuple", "enumerate", "iter",
                                     "zip", "map", "filter", "reversed"})

    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            target = self.qualified_name(node.func)
            if target in ("set", "frozenset"):
                return True
            # set-algebra methods returning new sets
            if isinstance(node.func, ast.Attribute) and node.func.attr in (
                    "union", "intersection", "difference",
                    "symmetric_difference"):
                return self._is_set_expr(node.func.value)
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)):
            return (self._is_set_expr(node.left)
                    or self._is_set_expr(node.right))
        return False

    def _check_iter(self, iter_node: ast.AST) -> None:
        if self._is_set_expr(iter_node):
            self.report(iter_node, "iterating a set in hash order; wrap "
                                   "in sorted(...) to pin a deterministic "
                                   "order")

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        # list(set(...)), tuple(x & y), "".join(set(...)): sequencing a
        # set snapshots its hash order.
        target = self.qualified_name(node.func)
        if target in self._SEQUENCE_CONSUMERS:
            for arg in node.args:
                if self._is_set_expr(arg):
                    self.report(arg, f"{target}() over a set captures "
                                     "hash order; sort first")
        elif isinstance(node.func, ast.Attribute) \
                and node.func.attr == "join":
            for arg in node.args:
                if self._is_set_expr(arg):
                    self.report(arg, "join() over a set captures hash "
                                     "order; sort first")
        self.generic_visit(node)


@rule
class HashOrderSortKeyRule(Rule):
    """DET105: sort key built from ``id()`` or ``hash()``.

    ``id()`` is an address — it changes across processes and runs — and
    ``hash()`` of str follows the per-process hash seed. A sort keyed on
    either is a different permutation every run, which then feeds
    whatever consumed the sorted output.
    """

    rule_id = "DET105"
    name = "hash-order-sort-key"
    category = "determinism"
    rationale = ("id()/hash() vary per process; sorting by them yields a "
                 "different permutation every run")

    _SORTERS = frozenset({"sorted", "min", "max",
                          "heapq.nsmallest", "heapq.nlargest"})

    def _key_uses_hash_order(self, key: ast.AST) -> Optional[str]:
        if isinstance(key, ast.Name) and key.id in ("id", "hash"):
            return key.id
        for sub in ast.walk(key):
            if isinstance(sub, ast.Call):
                target = self.qualified_name(sub.func)
                if target in ("id", "hash"):
                    return target
        return None

    def visit_Call(self, node: ast.Call) -> None:
        target = self.qualified_name(node.func)
        is_sorter = target in self._SORTERS or (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "sort")
        if is_sorter:
            for kw in node.keywords:
                if kw.arg == "key":
                    culprit = self._key_uses_hash_order(kw.value)
                    if culprit is not None:
                        self.report(kw.value,
                                    f"sort key uses {culprit}(), which "
                                    "varies across runs; key on stable "
                                    "fields instead")
        self.generic_visit(node)
