"""``repro.lint`` — AST-based determinism & concurrency analyzer.

Not to be confused with :mod:`repro.analysis` (the paper-results
package): ``repro.analysis`` evaluates *alignment outputs*, ``repro.lint``
statically analyzes *this codebase* for patterns that break its two
load-bearing invariants — bit-identical results across reruns/workers/
batch sizes, and a non-blocking, leak-free asyncio serving path.

Entry points:

- CLI: ``repro lint [paths] [--format json] [--baseline FILE]``
- API: :class:`~repro.lint.core.Analyzer` +
  :class:`~repro.lint.config.LintConfig`

Rule catalog: see ``docs/LINT.md`` or ``repro lint --list-rules``.
Suppress a finding inline with ``# repro-lint: disable=<RULE>`` (by id or
name); suppressions that suppress nothing are themselves findings.
"""

from repro.lint.baseline import Baseline, BaselineMatch
from repro.lint.config import DEFAULT_SCOPES, LintConfig
from repro.lint.core import (
    Analyzer,
    AnalysisReport,
    Finding,
    Rule,
    all_rules,
    rule,
    rules_by_category,
)

__all__ = [
    "Analyzer",
    "AnalysisReport",
    "Baseline",
    "BaselineMatch",
    "DEFAULT_SCOPES",
    "Finding",
    "LintConfig",
    "Rule",
    "all_rules",
    "rule",
    "rules_by_category",
]
