"""``repro.lint`` — AST-based determinism & concurrency analyzer.

Not to be confused with :mod:`repro.analysis` (the paper-results
package): ``repro.analysis`` evaluates *alignment outputs*, ``repro.lint``
statically analyzes *this codebase* for patterns that break its two
load-bearing invariants — bit-identical results across reruns/workers/
batch sizes, and a non-blocking, leak-free asyncio serving path.

Two rule layers share one CLI, one suppression syntax, and one
baseline ratchet:

- per-file rules (:class:`Rule` + :func:`rule`): one AST visitor per
  module — DET1xx determinism, ASY2xx direct asyncio-safety, CFG3xx
  config hygiene;
- whole-program *flow* rules (:class:`~repro.lint.flow.FlowRule` +
  :func:`~repro.lint.flow.flow_rule`): built on a project-wide symbol
  table and call graph (:class:`~repro.lint.flow.ProjectModel`) —
  ASY3xx transitive blocking, RES4xx resource lifecycle, PROTO5xx
  wire-schema drift.

Entry points:

- CLI: ``repro lint [paths] [--no-flow] [--jobs N] [--format
  text|json|github] [--baseline FILE]``
- API: :func:`~repro.lint.runner.run_analysis` (both layers), or
  :class:`~repro.lint.core.Analyzer` +
  :class:`~repro.lint.config.LintConfig` (per-file only)

Rule catalog: see ``docs/LINT.md`` or ``repro lint --list-rules``.
Suppress a finding inline with ``# repro-lint: disable=<RULE>`` (by id or
name); suppressions that suppress nothing are themselves findings.
"""

from repro.lint.baseline import Baseline, BaselineMatch
from repro.lint.config import DEFAULT_SCOPES, LintConfig
from repro.lint.core import (
    Analyzer,
    AnalysisReport,
    Finding,
    Rule,
    all_rules,
    rule,
    rules_by_category,
)
from repro.lint.flow import (
    FlowRule,
    ProjectModel,
    all_flow_rules,
    flow_rule,
)
from repro.lint.runner import run_analysis

__all__ = [
    "Analyzer",
    "AnalysisReport",
    "Baseline",
    "BaselineMatch",
    "DEFAULT_SCOPES",
    "Finding",
    "FlowRule",
    "LintConfig",
    "ProjectModel",
    "Rule",
    "all_flow_rules",
    "all_rules",
    "flow_rule",
    "rule",
    "rules_by_category",
    "run_analysis",
]
