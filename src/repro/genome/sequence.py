"""DNA sequence primitives.

The whole stack works on 2-bit-encodable DNA over the alphabet ``ACGT``.
Sequences are represented either as Python strings (for readability at API
boundaries) or as ``numpy`` ``uint8`` code arrays (for the index structures
and dynamic-programming kernels). This module owns the conversions and the
basic sequence operations every other package builds on.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence, Union

import numpy as np

#: Canonical DNA alphabet in code order. Code ``i`` is ``ALPHABET[i]``.
ALPHABET = "ACGT"

#: Number of symbols in the DNA alphabet.
ALPHABET_SIZE = 4

#: Sentinel code used by the BWT machinery; strictly smaller than every base.
SENTINEL_CODE = -1

_BASE_TO_CODE = {base: code for code, base in enumerate(ALPHABET)}
_COMPLEMENT = {"A": "T", "C": "G", "G": "C", "T": "A", "N": "N"}

_ENCODE_LUT = np.full(256, 255, dtype=np.uint8)
for _base, _code in _BASE_TO_CODE.items():
    _ENCODE_LUT[ord(_base)] = _code
    _ENCODE_LUT[ord(_base.lower())] = _code

_DECODE_LUT = np.frombuffer(ALPHABET.encode("ascii"), dtype=np.uint8)


class SequenceError(ValueError):
    """Raised when a string is not a valid DNA sequence."""


def _resolve_rng(rng: Union[random.Random, int]) -> random.Random:
    """Accept a ``random.Random`` or an int seed; reject anything else.

    The stochastic helpers deliberately have no unseeded fallback: an
    RNG the caller did not choose is an RNG nobody can replay.
    """
    if isinstance(rng, random.Random):
        return rng
    if isinstance(rng, int) and not isinstance(rng, bool):
        return random.Random(rng)
    raise TypeError(
        f"rng must be a random.Random or an int seed, got {rng!r}; "
        "unseeded generation is not reproducible")


def encode(sequence: str) -> np.ndarray:
    """Encode a DNA string into a ``uint8`` code array (A=0, C=1, G=2, T=3).

    Raises :class:`SequenceError` on characters outside ``ACGTacgt``.
    """
    raw = np.frombuffer(sequence.encode("ascii"), dtype=np.uint8)
    codes = _ENCODE_LUT[raw]
    if codes.size and codes.max(initial=0) == 255:
        bad = sequence[int(np.argmax(codes == 255))]
        raise SequenceError(f"invalid DNA character {bad!r}")
    return codes


def decode(codes: Union[np.ndarray, Sequence[int]]) -> str:
    """Decode a code array back into a DNA string."""
    arr = np.asarray(codes, dtype=np.uint8)
    if arr.size and int(arr.max()) >= ALPHABET_SIZE:
        raise SequenceError(f"invalid DNA code {int(arr.max())}")
    return _DECODE_LUT[arr].tobytes().decode("ascii")


def complement_code(codes: np.ndarray) -> np.ndarray:
    """Complement of a code array (A<->T, C<->G), i.e. ``3 - code``."""
    return (3 - np.asarray(codes, dtype=np.uint8)).astype(np.uint8)


def reverse_complement(sequence: str) -> str:
    """Reverse complement of a DNA string."""
    try:
        return "".join(_COMPLEMENT[base] for base in reversed(sequence.upper()))
    except KeyError as exc:
        raise SequenceError(f"invalid DNA character {exc.args[0]!r}") from exc


def reverse_complement_code(codes: np.ndarray) -> np.ndarray:
    """Reverse complement of a code array."""
    return complement_code(codes)[::-1].copy()


def is_valid(sequence: str) -> bool:
    """True if ``sequence`` contains only ``ACGT`` (case-insensitive)."""
    return all(base in _BASE_TO_CODE for base in sequence.upper())


def random_sequence(length: int, rng: Union[random.Random, int],
                    gc_content: float = 0.5) -> str:
    """Generate a random DNA string with the requested GC content.

    ``rng`` is required — either a ``random.Random`` instance or an int
    seed — so every generated sequence is reproducible by construction.
    (Historically this defaulted to an *unseeded* ``random.Random()``,
    which silently made reads irreproducible; ``repro lint`` rule DET101
    now guards against reintroducing that.)

    ``gc_content`` is the probability mass assigned to G+C (split evenly);
    A and T share the remainder evenly.
    """
    if not 0.0 <= gc_content <= 1.0:
        raise ValueError(f"gc_content must be in [0, 1], got {gc_content}")
    rng = _resolve_rng(rng)
    weights = [(1 - gc_content) / 2, gc_content / 2,
               gc_content / 2, (1 - gc_content) / 2]
    return "".join(rng.choices(ALPHABET, weights=weights, k=length))


def mutate(sequence: str, rate: float, rng: Union[random.Random, int]) -> str:
    """Return a copy of ``sequence`` with each base substituted with
    probability ``rate`` (substitutions only; used to build repeat families).

    ``rng`` is required (instance or int seed); see :func:`random_sequence`.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"rate must be in [0, 1], got {rate}")
    rng = _resolve_rng(rng)
    out = []
    for base in sequence.upper():
        if rng.random() < rate:
            choices = [b for b in ALPHABET if b != base]
            out.append(rng.choice(choices))
        else:
            out.append(base)
    return "".join(out)


def hamming_distance(a: str, b: str) -> int:
    """Number of mismatching positions between equal-length strings."""
    if len(a) != len(b):
        raise ValueError("hamming_distance requires equal-length sequences")
    return sum(1 for x, y in zip(a, b) if x != y)


def kmers(sequence: str, k: int) -> Iterable[str]:
    """Yield every k-mer of ``sequence`` left to right."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    for i in range(len(sequence) - k + 1):
        yield sequence[i:i + k]


def gc_fraction(sequence: str) -> float:
    """Fraction of G/C bases; 0.0 for the empty sequence."""
    if not sequence:
        return 0.0
    upper = sequence.upper()
    return (upper.count("G") + upper.count("C")) / len(upper)
