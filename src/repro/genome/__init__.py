"""Genome substrate: sequences, references, reads, IO, dataset profiles."""

from repro.genome.sequence import (
    ALPHABET,
    ALPHABET_SIZE,
    SequenceError,
    decode,
    encode,
    gc_fraction,
    hamming_distance,
    is_valid,
    kmers,
    mutate,
    random_sequence,
    reverse_complement,
    reverse_complement_code,
)
from repro.genome.reference import (
    Chromosome,
    ReferenceGenome,
    RepeatFamily,
    SyntheticReference,
)
from repro.genome.reads import (
    ILLUMINA,
    LONG_READ,
    ErrorModel,
    Read,
    ReadSimulator,
)
from repro.genome.pairs import PairedReadSimulator, ReadPair
from repro.genome.datasets import (
    DATASETS,
    NA12878_INTERVAL_MASS,
    DatasetProfile,
    get_dataset,
    long_read_datasets,
    short_read_datasets,
)

__all__ = [
    "ALPHABET", "ALPHABET_SIZE", "SequenceError", "decode", "encode",
    "gc_fraction", "hamming_distance", "is_valid", "kmers", "mutate",
    "random_sequence", "reverse_complement", "reverse_complement_code",
    "Chromosome", "ReferenceGenome", "RepeatFamily", "SyntheticReference",
    "ILLUMINA", "LONG_READ", "ErrorModel", "Read", "ReadSimulator",
    "PairedReadSimulator", "ReadPair",
    "DATASETS", "NA12878_INTERVAL_MASS", "DatasetProfile", "get_dataset",
    "long_read_datasets", "short_read_datasets",
]
