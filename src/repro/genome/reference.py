"""Synthetic reference genomes.

The paper evaluates on GRCh38 (3.1 Gbp). A pure-Python reproduction cannot
index gigabase genomes in reasonable time, and scheduler dynamics do not
depend on absolute genome size — they depend on the *statistics* the seeding
phase sees: repeat content (which controls hit multiplicity and seeding
work), GC composition, and chromosome structure. ``SyntheticReference``
generates genomes with controllable versions of exactly those statistics.

A genome is built as random background sequence into which mutated copies of
a small library of "repeat family" elements are planted. Repeats are what
make real seeding interesting: a read sampled from a repeat region produces
many candidate hits, stressing the Coordinator, while unique regions produce
one or two hits.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.genome import sequence as seq


@dataclass(frozen=True)
class RepeatFamily:
    """A repeat element planted throughout the genome.

    Attributes:
        consensus: the family's consensus sequence.
        copies: how many (mutated) copies are planted.
        divergence: per-base substitution rate applied to each copy.
    """

    consensus: str
    copies: int
    divergence: float


@dataclass(frozen=True)
class Chromosome:
    """One named contiguous sequence of the reference."""

    name: str
    sequence: str

    def __len__(self) -> int:
        return len(self.sequence)


@dataclass
class ReferenceGenome:
    """A multi-chromosome reference genome.

    ``offsets`` maps each chromosome to its start in the concatenated
    coordinate space, mirroring how linear aligners address GRCh38.
    """

    chromosomes: List[Chromosome]
    repeat_annotations: List[Tuple[str, int, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.offsets: Dict[str, int] = {}
        offset = 0
        for chrom in self.chromosomes:
            self.offsets[chrom.name] = offset
            offset += len(chrom)
        self._total_length = offset

    def __len__(self) -> int:
        return self._total_length

    @property
    def names(self) -> List[str]:
        return [chrom.name for chrom in self.chromosomes]

    def concatenated(self) -> str:
        """The genome as one linear string (index coordinate space)."""
        return "".join(chrom.sequence for chrom in self.chromosomes)

    def fetch(self, name: str, start: int, end: int) -> str:
        """Substring ``[start, end)`` of chromosome ``name``."""
        chrom = self.chromosome(name)
        if not 0 <= start <= end <= len(chrom):
            raise IndexError(
                f"range [{start}, {end}) outside chromosome {name!r} "
                f"of length {len(chrom)}")
        return chrom.sequence[start:end]

    def fetch_linear(self, start: int, end: int) -> str:
        """Substring ``[start, end)`` in concatenated coordinates."""
        if not 0 <= start <= end <= len(self):
            raise IndexError(
                f"range [{start}, {end}) outside genome of length {len(self)}")
        pieces = []
        for chrom in self.chromosomes:
            base = self.offsets[chrom.name]
            lo = max(start, base)
            hi = min(end, base + len(chrom))
            if lo < hi:
                pieces.append(chrom.sequence[lo - base:hi - base])
        return "".join(pieces)

    def chromosome(self, name: str) -> Chromosome:
        for chrom in self.chromosomes:
            if chrom.name == name:
                return chrom
        raise KeyError(f"no chromosome named {name!r}")

    def locate(self, linear_pos: int) -> Tuple[str, int]:
        """Map a concatenated coordinate to ``(chromosome, local_pos)``."""
        if not 0 <= linear_pos < len(self):
            raise IndexError(f"position {linear_pos} outside genome")
        for chrom in self.chromosomes:
            base = self.offsets[chrom.name]
            if base <= linear_pos < base + len(chrom):
                return chrom.name, linear_pos - base
        raise IndexError(f"position {linear_pos} outside genome")  # pragma: no cover


def default_repeat_families(rng: random.Random,
                            genome_length: int) -> List[RepeatFamily]:
    """A small library of repeat families scaled to the genome length.

    Mimics (in miniature) the mix found in mammalian genomes: a few highly
    abundant short elements (Alu-like), some mid-length elements (LINE-like)
    and rare long segmental duplications.
    """
    density = max(1, genome_length // 20_000)
    return [
        RepeatFamily(seq.random_sequence(150, rng), copies=8 * density,
                     divergence=0.08),
        RepeatFamily(seq.random_sequence(400, rng), copies=2 * density,
                     divergence=0.12),
        RepeatFamily(seq.random_sequence(1200, rng), copies=max(1, density // 2),
                     divergence=0.03),
    ]


class SyntheticReference:
    """Builder for synthetic reference genomes (GRCh38 substitute).

    Example:
        >>> ref = SyntheticReference(length=100_000, seed=7).build()
        >>> len(ref) >= 100_000
        True
    """

    def __init__(self, length: int = 1_000_000, chromosomes: int = 2,
                 gc_content: float = 0.41, seed: int = 0,
                 repeat_families: Optional[List[RepeatFamily]] = None):
        if length <= 0:
            raise ValueError(f"length must be positive, got {length}")
        if chromosomes <= 0:
            raise ValueError(f"chromosomes must be positive, got {chromosomes}")
        self.length = length
        self.n_chromosomes = chromosomes
        self.gc_content = gc_content
        self.seed = seed
        self.repeat_families = repeat_families

    def params(self) -> dict:
        """Canonical generator parameters.

        Everything :meth:`build` depends on, in JSON-stable form — the
        cache key contract used by
        :func:`repro.runtime.artifacts.cached_reference`.  Custom repeat
        families are flattened into ``(consensus, copies, divergence)``
        triples; ``None`` means the scaled default library.
        """
        families = None
        if self.repeat_families is not None:
            families = [[f.consensus, f.copies, f.divergence]
                        for f in self.repeat_families]
        return {"length": self.length,
                "chromosomes": self.n_chromosomes,
                "gc_content": self.gc_content,
                "seed": self.seed,
                "repeat_families": families}

    def build(self) -> ReferenceGenome:
        """Generate the genome deterministically from the seed."""
        rng = random.Random(self.seed)
        families = (self.repeat_families
                    if self.repeat_families is not None
                    else default_repeat_families(rng, self.length))

        per_chrom = self.length // self.n_chromosomes
        chroms = []
        annotations: List[Tuple[str, int, int]] = []
        for idx in range(self.n_chromosomes):
            name = f"chr{idx + 1}"
            body = list(seq.random_sequence(per_chrom, rng, self.gc_content))
            for family in families:
                copies = max(1, family.copies // self.n_chromosomes)
                for _ in range(copies):
                    copy = seq.mutate(family.consensus, family.divergence, rng)
                    if len(copy) >= per_chrom:
                        continue
                    pos = rng.randrange(0, per_chrom - len(copy))
                    body[pos:pos + len(copy)] = list(copy)
                    annotations.append((name, pos, pos + len(copy)))
            chroms.append(Chromosome(name, "".join(body)))
        return ReferenceGenome(chroms, annotations)
