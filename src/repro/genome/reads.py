"""Read simulation (DWGSIM substitute).

The paper samples 200 k real NA12878 reads and, for the sensitivity study
(Fig 14), generates reads with DWGSIM over six NCBI genomes. We reproduce
the relevant statistics with a sampler that draws reads uniformly from a
reference, optionally reverse-complements them, and applies an Illumina-like
error model (substitutions dominating, rare short indels) plus a Phred
quality string. The per-read diversity the schedulers exploit comes from
where the read lands (repeat vs unique region) and which errors it carries.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.genome import sequence as seq
from repro.genome.reference import ReferenceGenome


@dataclass(frozen=True)
class Read:
    """A sequencing read with its (simulation-known) ground truth.

    Attributes:
        read_id: stable identifier, unique within a dataset.
        sequence: the base string as sequenced (errors applied).
        quality: Phred+33 quality string, same length as ``sequence``.
        chrom / position: true origin on the reference (forward strand
            coordinates of the leftmost base), or ``None`` for real data.
        reverse: True if the read was sampled from the reverse strand.
    """

    read_id: str
    sequence: str
    quality: str = ""
    chrom: Optional[str] = None
    position: Optional[int] = None
    reverse: bool = False

    def __post_init__(self) -> None:
        if self.quality and len(self.quality) != len(self.sequence):
            raise ValueError("quality string length must match sequence length")

    def __len__(self) -> int:
        return len(self.sequence)


@dataclass(frozen=True)
class ErrorModel:
    """Illumina-like sequencing error model.

    Attributes:
        substitution_rate: per-base substitution probability.
        insertion_rate / deletion_rate: per-base indel probabilities.
        max_indel_length: indels are 1..max_indel_length bases, geometric.
    """

    substitution_rate: float = 0.001
    insertion_rate: float = 0.0001
    deletion_rate: float = 0.0001
    max_indel_length: int = 3

    def __post_init__(self) -> None:
        for name in ("substitution_rate", "insertion_rate", "deletion_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")

    def apply(self, sequence: str, rng: random.Random) -> str:
        """Return ``sequence`` with errors applied (length may change)."""
        out: List[str] = []
        i = 0
        while i < len(sequence):
            roll = rng.random()
            if roll < self.deletion_rate:
                length = self._indel_length(rng)
                i += length  # skip deleted bases
                continue
            if roll < self.deletion_rate + self.insertion_rate:
                length = self._indel_length(rng)
                out.append(seq.random_sequence(length, rng))
            base = sequence[i]
            if rng.random() < self.substitution_rate:
                base = rng.choice([b for b in seq.ALPHABET if b != base])
            out.append(base)
            i += 1
        return "".join(out)

    def _indel_length(self, rng: random.Random) -> int:
        length = 1
        while length < self.max_indel_length and rng.random() < 0.3:
            length += 1
        return length

    def params(self) -> dict:
        """Canonical parameters (cache key material for simulated reads)."""
        return {"substitution_rate": self.substitution_rate,
                "insertion_rate": self.insertion_rate,
                "deletion_rate": self.deletion_rate,
                "max_indel_length": self.max_indel_length}


#: Error model matching 2nd-generation (Illumina) characteristics.
ILLUMINA = ErrorModel(substitution_rate=0.001, insertion_rate=0.0001,
                      deletion_rate=0.0001)

#: Noisier model approximating 3rd-generation (long-read) characteristics.
LONG_READ = ErrorModel(substitution_rate=0.02, insertion_rate=0.005,
                       deletion_rate=0.005, max_indel_length=5)


@dataclass
class ReadSimulator:
    """Samples reads from a reference genome with a given error model.

    Example:
        >>> from repro.genome.reference import SyntheticReference
        >>> ref = SyntheticReference(length=50_000, seed=1).build()
        >>> reads = ReadSimulator(ref, read_length=101, seed=1).simulate(10)
        >>> len(reads) == 10 and all(len(r) > 0 for r in reads)
        True
    """

    reference: ReferenceGenome
    read_length: int = 101
    error_model: ErrorModel = field(default_factory=lambda: ILLUMINA)
    seed: int = 0
    both_strands: bool = True
    quality_base: int = 35

    def __post_init__(self) -> None:
        if self.read_length <= 0:
            raise ValueError(f"read_length must be positive, got {self.read_length}")
        max_chrom = max(len(c) for c in self.reference.chromosomes)
        if self.read_length > max_chrom:
            raise ValueError(
                f"read_length {self.read_length} exceeds longest chromosome "
                f"({max_chrom})")

    def params(self) -> dict:
        """Canonical sampler parameters, excluding the reference itself.

        Combined with the reference's own parameters this fully determines
        the simulated read set — the cache key contract used by
        :func:`repro.runtime.artifacts.cached_read_set`.
        """
        return {"read_length": self.read_length,
                "error_model": self.error_model.params(),
                "seed": self.seed,
                "both_strands": self.both_strands,
                "quality_base": self.quality_base}

    def simulate(self, count: int) -> List[Read]:
        """Generate ``count`` reads deterministically from the seed."""
        return list(self.iter_reads(count))

    def iter_reads(self, count: int) -> Iterator[Read]:
        """Lazily generate ``count`` reads."""
        rng = random.Random(self.seed)
        eligible = [c for c in self.reference.chromosomes
                    if len(c) >= self.read_length]
        weights = [len(c) for c in eligible]
        for idx in range(count):
            chrom = rng.choices(eligible, weights=weights, k=1)[0]
            pos = rng.randrange(0, len(chrom) - self.read_length + 1)
            fragment = chrom.sequence[pos:pos + self.read_length]
            reverse = self.both_strands and rng.random() < 0.5
            if reverse:
                fragment = seq.reverse_complement(fragment)
            observed = self.error_model.apply(fragment, rng)
            if not observed:
                observed = fragment  # pathological all-deleted draw
            quality = self._quality_string(len(observed), rng)
            yield Read(read_id=f"read_{idx}", sequence=observed,
                       quality=quality, chrom=chrom.name, position=pos,
                       reverse=reverse)

    def _quality_string(self, length: int, rng: random.Random) -> str:
        """Phred+33 qualities with a mild 3'-end droop, like Illumina."""
        chars = []
        for i in range(length):
            droop = int(4 * i / max(1, length - 1))
            q = max(2, self.quality_base - droop + rng.randint(-2, 2))
            chars.append(chr(33 + min(q, 41)))
        return "".join(chars)
