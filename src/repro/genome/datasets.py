"""Named dataset profiles (NA12878 + the six DWGSIM genomes of Fig 14).

The paper configures NvWa from the NA12878 hit-length distribution and then
shows (Fig 14) that other second-generation datasets have similar interval
mass, which is why a fixed configuration generalises. We encode each dataset
as a :class:`DatasetProfile`: the statistics needed to (a) synthesise a
reference + reads with the right character and (b) produce the dataset's
hit-length distribution over the four EU intervals.

Two related hit-length statistics appear. The **PE-demand mass** (hit count
weighted by hit length) is the s of Equation (4)/(5): solving Equation (5)
backwards from the published x = (28, 20, 16, 6) over p = (16, 32, 64, 128)
with N = 2880 yields s ∝ (0.400, 0.286, 0.229, 0.086) — the unique demand
distribution consistent with the design point, and the one that gives every
EU class equal per-unit load under Formula 3 (hence the 85 % utilization of
Fig 12(c)). The **count mass** — what a sampler draws hit lengths from — is
s_i / p_i renormalised: ≈ (0.655, 0.234, 0.094, 0.018) for NA12878, the
"short but most numerous hits" of Fig 12(e). Profiles carry the count mass;
:meth:`DatasetProfile.demand_mass` derives the Equation-5 input.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.genome.reads import ILLUMINA, LONG_READ, ErrorModel, Read, ReadSimulator
from repro.genome.reference import ReferenceGenome, SyntheticReference


@dataclass(frozen=True)
class DatasetProfile:
    """Statistics describing a benchmark dataset.

    Attributes:
        name: short key ("H.s.", "C.h.", ...).
        description: species / provenance note.
        genome_length: synthetic-reference length used at simulation scale.
        gc_content: genome GC fraction.
        read_length: read length in bp.
        error_model: sequencing error model.
        long_read: True for 3rd-generation datasets (Fig 14 right half).
        interval_mass: *count* mass of hit lengths in the four EU
            intervals (≤16, 17–32, 33–64, 65–128). Sums to 1.
        mean_hits_per_read: average number of seed hits surviving
            filter+chain per read (drives Coordinator load).
    """

    name: str
    description: str
    genome_length: int
    gc_content: float
    read_length: int
    error_model: ErrorModel
    long_read: bool
    interval_mass: Tuple[float, float, float, float]
    mean_hits_per_read: float = 4.0

    def __post_init__(self) -> None:
        total = sum(self.interval_mass)
        if abs(total - 1.0) > 1e-6:
            raise ValueError(
                f"interval_mass must sum to 1, got {total} for {self.name}")

    def build_reference(self, seed: int = 0,
                        length: Optional[int] = None) -> ReferenceGenome:
        """Synthesise this dataset's reference genome."""
        return SyntheticReference(
            length=length or self.genome_length,
            chromosomes=2,
            gc_content=self.gc_content,
            seed=seed,
        ).build()

    def simulate_reads(self, reference: ReferenceGenome, count: int,
                       seed: int = 0) -> List[Read]:
        """Simulate ``count`` reads from ``reference`` with this profile."""
        simulator = ReadSimulator(
            reference,
            read_length=min(self.read_length, min(len(c) for c in
                                                  reference.chromosomes)),
            error_model=self.error_model,
            seed=seed,
        )
        return simulator.simulate(count)

    def demand_mass(self, intervals: Tuple[int, ...] = (16, 32, 64, 128),
                    ) -> Tuple[float, ...]:
        """PE-demand (length-weighted) mass — the s of Equation (4)/(5).

        Each interval's count mass is weighted by its representative
        length, taken as the interval's upper bound (the PE class serving
        it), then renormalised.
        """
        weighted = [m * p for m, p in zip(self.interval_mass, intervals)]
        total = sum(weighted)
        return tuple(w / total for w in weighted)

    def sample_hit_lengths(self, count: int, seed: int = 0,
                           intervals: Tuple[int, ...] = (16, 32, 64, 128),
                           ) -> List[int]:
        """Draw hit lengths following this dataset's interval mass.

        Within each interval, lengths are uniform — the coarse statistic
        (interval mass) is what the hybrid-unit maths consumes.
        """
        rng = random.Random(seed)
        bounds = [(1, intervals[0])]
        for lo, hi in zip(intervals, intervals[1:]):
            bounds.append((lo + 1, hi))
        lengths = []
        for _ in range(count):
            idx = rng.choices(range(len(self.interval_mass)),
                              weights=self.interval_mass, k=1)[0]
            lo, hi = bounds[min(idx, len(bounds) - 1)]
            lengths.append(rng.randint(lo, hi))
        return lengths


#: NA12878 PE-demand interval mass implied by the paper's EU mix (Eq. 5).
NA12878_INTERVAL_MASS = (0.400, 0.2857, 0.2286, 0.0857)

#: The corresponding hit-count mass (demand_i / p_i, renormalised).
NA12878_COUNT_MASS = (0.6551, 0.2340, 0.0936, 0.0173)


def _mass(a: float, b: float, c: float, d: float) -> Tuple[float, float, float, float]:
    total = a + b + c + d
    return (a / total, b / total, c / total, d / total)


#: Registry of the paper's evaluation datasets (Fig 14 naming).
#: ``interval_mass`` values are hit-count masses; the 2nd-generation
#: profiles vary mildly around the NA12878 statistics (Fig 14(b): "the
#: different datasets have a roughly similar distribution").
DATASETS: Dict[str, DatasetProfile] = {
    "H.s.": DatasetProfile(
        name="H.s.", description="Homo sapiens (NA12878-like)",
        genome_length=400_000, gc_content=0.41, read_length=101,
        error_model=ILLUMINA, long_read=False,
        interval_mass=_mass(*NA12878_COUNT_MASS),
        mean_hits_per_read=7.0),
    "C.h.": DatasetProfile(
        name="C.h.", description="Clitarchus hookeri (stick insect)",
        genome_length=300_000, gc_content=0.36, read_length=101,
        error_model=ILLUMINA, long_read=False,
        interval_mass=_mass(0.68, 0.22, 0.082, 0.018),
        mean_hits_per_read=6.6),
    "Z.h.": DatasetProfile(
        name="Z.h.", description="Zapus hudsonius (jumping mouse)",
        genome_length=300_000, gc_content=0.40, read_length=101,
        error_model=ILLUMINA, long_read=False,
        interval_mass=_mass(0.63, 0.25, 0.10, 0.020),
        mean_hits_per_read=6.9),
    "C.d.": DatasetProfile(
        name="C.d.", description="Camelus dromedarius (dromedary)",
        genome_length=300_000, gc_content=0.42, read_length=101,
        error_model=ILLUMINA, long_read=False,
        interval_mass=_mass(0.66, 0.23, 0.092, 0.018),
        mean_hits_per_read=6.8),
    "V.e.": DatasetProfile(
        name="V.e.", description="Venustaconcha ellipsiformis (mussel)",
        genome_length=250_000, gc_content=0.35, read_length=101,
        error_model=ILLUMINA, long_read=False,
        interval_mass=_mass(0.61, 0.26, 0.11, 0.020),
        mean_hits_per_read=7.2),
    "C.e.": DatasetProfile(
        name="C.e.", description="Caenorhabditis elegans (nematode)",
        genome_length=250_000, gc_content=0.35, read_length=101,
        error_model=ILLUMINA, long_read=False,
        interval_mass=_mass(0.67, 0.23, 0.085, 0.015),
        mean_hits_per_read=6.4),
    # Long-read variants (Fig 14a right): different hit-length statistics —
    # GACT-style tiling produces longer extension tasks, shifting mass right.
    "H.s.-long": DatasetProfile(
        name="H.s.-long", description="Homo sapiens, 3rd-gen long reads",
        genome_length=400_000, gc_content=0.41, read_length=1000,
        error_model=LONG_READ, long_read=True,
        interval_mass=_mass(0.34, 0.30, 0.24, 0.12),
        mean_hits_per_read=8.4),
    "Z.h.-long": DatasetProfile(
        name="Z.h.-long", description="Zapus hudsonius, 3rd-gen long reads",
        genome_length=300_000, gc_content=0.40, read_length=1000,
        error_model=LONG_READ, long_read=True,
        interval_mass=_mass(0.33, 0.31, 0.25, 0.11),
        mean_hits_per_read=8.7),
    "C.e.-long": DatasetProfile(
        name="C.e.-long", description="C. elegans, 3rd-gen long reads",
        genome_length=250_000, gc_content=0.35, read_length=1000,
        error_model=LONG_READ, long_read=True,
        interval_mass=_mass(0.36, 0.29, 0.23, 0.12),
        mean_hits_per_read=8.2),
}


def get_dataset(name: str) -> DatasetProfile:
    """Look up a dataset profile by its Fig 14 short name."""
    try:
        return DATASETS[name]
    except KeyError:
        known = ", ".join(sorted(DATASETS))
        raise KeyError(f"unknown dataset {name!r}; known: {known}") from None


def short_read_datasets() -> List[DatasetProfile]:
    """The six 2nd-generation datasets of Fig 14(a) left / Fig 14(b)."""
    return [p for p in DATASETS.values() if not p.long_read]


def long_read_datasets() -> List[DatasetProfile]:
    """The 3rd-generation datasets of Fig 14(a) right."""
    return [p for p in DATASETS.values() if p.long_read]
