"""FASTA / FASTQ parsing and writing.

Minimal, strict implementations of the two formats the alignment stack
consumes. Parsers accept file paths or open text handles and yield records
lazily so multi-megabase references stream without copies.
"""

from __future__ import annotations

import io
import os
from typing import Iterable, Iterator, List, TextIO, Tuple, Union

from repro.genome.reads import Read
from repro.genome.reference import Chromosome, ReferenceGenome

PathOrHandle = Union[str, os.PathLike, TextIO]


class FormatError(ValueError):
    """Raised on malformed FASTA/FASTQ input."""


def _open(source: PathOrHandle):
    """Return ``(handle, should_close)`` for a path or open handle."""
    if isinstance(source, (str, os.PathLike)):
        return open(source, "r", encoding="ascii"), True
    return source, False


def parse_fasta(source: PathOrHandle) -> Iterator[Tuple[str, str]]:
    """Yield ``(name, sequence)`` pairs from a FASTA file.

    The name is the header up to the first whitespace. Sequence lines are
    concatenated and upper-cased.
    """
    handle, should_close = _open(source)
    try:
        name = None
        chunks: List[str] = []
        for lineno, line in enumerate(handle, 1):
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith(">"):
                if name is not None:
                    yield name, "".join(chunks).upper()
                name = line[1:].split()[0] if len(line) > 1 else ""
                if not name:
                    raise FormatError(f"empty FASTA header at line {lineno}")
                chunks = []
            else:
                if name is None:
                    raise FormatError(
                        f"sequence data before any header at line {lineno}")
                chunks.append(line)
        if name is not None:
            yield name, "".join(chunks).upper()
    finally:
        if should_close:
            handle.close()


def read_reference(source: PathOrHandle) -> ReferenceGenome:
    """Load a FASTA file as a :class:`ReferenceGenome`."""
    chroms = [Chromosome(name, body) for name, body in parse_fasta(source)]
    if not chroms:
        raise FormatError("FASTA file contains no sequences")
    return ReferenceGenome(chroms)


def write_fasta(reference: ReferenceGenome, target: PathOrHandle,
                width: int = 70) -> None:
    """Write a reference genome as FASTA with ``width``-column wrapping."""
    handle, should_close = _open_for_write(target)
    try:
        for chrom in reference.chromosomes:
            handle.write(f">{chrom.name}\n")
            for i in range(0, len(chrom.sequence), width):
                handle.write(chrom.sequence[i:i + width] + "\n")
    finally:
        if should_close:
            handle.close()


def parse_fastq(source: PathOrHandle) -> Iterator[Read]:
    """Yield :class:`Read` records from a FASTQ file."""
    handle, should_close = _open(source)
    try:
        while True:
            header = handle.readline()
            if not header:
                return
            header = header.rstrip("\n")
            if not header:
                continue
            if not header.startswith("@"):
                raise FormatError(f"expected '@' header, got {header!r}")
            sequence = handle.readline().rstrip("\n")
            plus = handle.readline().rstrip("\n")
            quality = handle.readline().rstrip("\n")
            if not plus.startswith("+"):
                raise FormatError(f"expected '+' separator, got {plus!r}")
            if len(quality) != len(sequence):
                raise FormatError(
                    f"quality length {len(quality)} != sequence length "
                    f"{len(sequence)} for {header!r}")
            read_id = header[1:].split()[0] if len(header) > 1 else ""
            if not read_id:
                raise FormatError("empty FASTQ read id")
            yield Read(read_id=read_id, sequence=sequence.upper(),
                       quality=quality)
    finally:
        if should_close:
            handle.close()


def write_fastq(reads: Iterable[Read], target: PathOrHandle) -> None:
    """Write reads as FASTQ; missing qualities become constant 'I' (Q40)."""
    handle, should_close = _open_for_write(target)
    try:
        for read in reads:
            quality = read.quality or "I" * len(read.sequence)
            handle.write(f"@{read.read_id}\n{read.sequence}\n+\n{quality}\n")
    finally:
        if should_close:
            handle.close()


def _open_for_write(target: PathOrHandle):
    if isinstance(target, (str, os.PathLike)):
        return open(target, "w", encoding="ascii"), True
    return target, False


def fasta_string(reference: ReferenceGenome, width: int = 70) -> str:
    """Render a reference genome to a FASTA string (convenience for tests)."""
    buffer = io.StringIO()
    write_fasta(reference, buffer, width=width)
    return buffer.getvalue()
