"""Paired-end read simulation.

Illumina sequencing reads both ends of a DNA fragment: mate 1 from the
forward strand at the fragment's start, mate 2 reverse-complemented from
the fragment's end (FR orientation). The insert size (fragment length)
follows a roughly normal distribution. NA12878's ERR194147 — the paper's
dataset — is exactly such a library; the paper uses it single-ended, and
this module supplies the paired variant a production aligner must handle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.genome import sequence as seq
from repro.genome.reads import ILLUMINA, ErrorModel, Read
from repro.genome.reference import ReferenceGenome


@dataclass(frozen=True)
class ReadPair:
    """Two mates sequenced from one fragment.

    Ground truth (for simulated data): ``chrom``, ``fragment_start`` and
    ``fragment_end`` locate the whole fragment; each mate's own ``Read``
    carries its per-mate origin.
    """

    pair_id: str
    mate1: Read
    mate2: Read
    chrom: Optional[str] = None
    fragment_start: Optional[int] = None
    fragment_end: Optional[int] = None

    @property
    def insert_size(self) -> Optional[int]:
        if self.fragment_start is None or self.fragment_end is None:
            return None
        return self.fragment_end - self.fragment_start


@dataclass
class PairedReadSimulator:
    """Samples FR-oriented read pairs with normal insert sizes.

    Args:
        reference: genome to sample fragments from.
        read_length: length of each mate.
        insert_mean / insert_sd: fragment-length distribution (typical
            Illumina libraries: 300-500 ± 50).
    """

    reference: ReferenceGenome
    read_length: int = 101
    insert_mean: float = 400.0
    insert_sd: float = 50.0
    error_model: ErrorModel = field(default_factory=lambda: ILLUMINA)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.read_length <= 0:
            raise ValueError("read_length must be positive")
        if self.insert_mean < 2 * self.read_length:
            raise ValueError(
                f"insert_mean {self.insert_mean} shorter than two reads "
                f"({2 * self.read_length}) — mates would overlap fully")
        if self.insert_sd < 0:
            raise ValueError("insert_sd must be >= 0")
        max_chrom = max(len(c) for c in self.reference.chromosomes)
        if self.insert_mean + 4 * self.insert_sd > max_chrom:
            raise ValueError(
                "insert distribution does not fit the longest chromosome")

    def simulate(self, count: int) -> List[ReadPair]:
        return list(self.iter_pairs(count))

    def iter_pairs(self, count: int) -> Iterator[ReadPair]:
        rng = random.Random(self.seed)
        eligible = [c for c in self.reference.chromosomes
                    if len(c) > self.insert_mean + 4 * self.insert_sd]
        if not eligible:
            raise ValueError("no chromosome long enough for the library")
        weights = [len(c) for c in eligible]
        for idx in range(count):
            chrom = rng.choices(eligible, weights=weights, k=1)[0]
            insert = max(2 * self.read_length,
                         int(round(rng.gauss(self.insert_mean,
                                             self.insert_sd))))
            insert = min(insert, len(chrom))
            start = rng.randrange(0, len(chrom) - insert + 1)
            end = start + insert
            fragment1 = chrom.sequence[start:start + self.read_length]
            fragment2 = seq.reverse_complement(
                chrom.sequence[end - self.read_length:end])
            seq1 = self.error_model.apply(fragment1, rng) or fragment1
            seq2 = self.error_model.apply(fragment2, rng) or fragment2
            yield ReadPair(
                pair_id=f"pair_{idx}",
                mate1=Read(read_id=f"pair_{idx}/1", sequence=seq1,
                           chrom=chrom.name, position=start, reverse=False),
                mate2=Read(read_id=f"pair_{idx}/2", sequence=seq2,
                           chrom=chrom.name,
                           position=end - self.read_length, reverse=True),
                chrom=chrom.name, fragment_start=start, fragment_end=end)
