"""``python -m repro`` — module entry point for the CLI.

Makes every subcommand (``simulate``, ``align``, ``accelerate``,
``experiments``, ``report-card``, ``serve``, ``loadgen``) reachable
without installing the console script; equivalent to
``python -m repro.cli``.
"""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
