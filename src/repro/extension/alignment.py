"""Alignment result types: CIGAR strings and alignment records.

These are the ``alignment_result`` payloads of the paper's unified interface
(Table III: EU output = ``[sus_output, alignment_result]``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, List, Tuple

#: CIGAR operations: M consumes both sequences, I consumes only the query
#: (read), D consumes only the reference, S soft-clips query bases.
CIGAR_OPS = "MIDS"

_CIGAR_RE = re.compile(r"(\d+)([MIDS])")


@dataclass(frozen=True)
class Cigar:
    """A run-length encoded alignment path."""

    ops: Tuple[Tuple[int, str], ...]

    def __post_init__(self) -> None:
        for length, op in self.ops:
            if length <= 0:
                raise ValueError(f"CIGAR run length must be positive: {length}{op}")
            if op not in CIGAR_OPS:
                raise ValueError(f"unknown CIGAR op {op!r}")

    @classmethod
    def from_ops(cls, raw: Iterable[str]) -> "Cigar":
        """Build from a per-base op sequence, merging adjacent runs."""
        runs: List[Tuple[int, str]] = []
        for op in raw:
            if runs and runs[-1][1] == op:
                runs[-1] = (runs[-1][0] + 1, op)
            else:
                runs.append((1, op))
        return cls(tuple(runs))

    @classmethod
    def parse(cls, text: str) -> "Cigar":
        """Parse a SAM-style CIGAR string like ``"45M2I54M"``."""
        if not text:
            return cls(())
        matched = _CIGAR_RE.findall(text)
        if "".join(f"{n}{op}" for n, op in matched) != text:
            raise ValueError(f"malformed CIGAR string {text!r}")
        return cls(tuple((int(n), op) for n, op in matched))

    def __str__(self) -> str:
        return "".join(f"{length}{op}" for length, op in self.ops)

    @property
    def query_length(self) -> int:
        """Read bases consumed (M + I + S)."""
        return sum(length for length, op in self.ops if op in "MIS")

    @property
    def reference_length(self) -> int:
        """Reference bases consumed (M + D)."""
        return sum(length for length, op in self.ops if op in "MD")

    @property
    def aligned_length(self) -> int:
        """M bases only."""
        return sum(length for length, op in self.ops if op == "M")

    @property
    def edit_ops(self) -> int:
        """Inserted + deleted bases (gap size total)."""
        return sum(length for length, op in self.ops if op in "ID")


@dataclass(frozen=True)
class Alignment:
    """A scored alignment of a read region to a reference region.

    Attributes:
        score: alignment score under the scoring scheme used.
        cigar: the alignment path.
        read_start / read_end: half-open aligned span on the read.
        ref_start / ref_end: half-open aligned span on the reference
            (linear coordinates).
        reverse: True when the read aligned as its reverse complement.
        cells: DP cells computed to produce this alignment — the
            compute-work statistic the EU cycle model consumes.
    """

    score: int
    cigar: Cigar
    read_start: int
    read_end: int
    ref_start: int
    ref_end: int
    reverse: bool = False
    cells: int = 0

    def __post_init__(self) -> None:
        if self.read_end < self.read_start:
            raise ValueError("read_end before read_start")
        if self.ref_end < self.ref_start:
            raise ValueError("ref_end before ref_start")

    @property
    def read_span(self) -> int:
        return self.read_end - self.read_start

    @property
    def ref_span(self) -> int:
        return self.ref_end - self.ref_start

    def validate_against(self, read_len: int) -> None:
        """Consistency check: CIGAR spans must match coordinate spans."""
        if self.cigar.ops:
            if self.cigar.query_length != self.read_span:
                raise ValueError(
                    f"CIGAR consumes {self.cigar.query_length} read bases "
                    f"but span is {self.read_span}")
            if self.cigar.reference_length != self.ref_span:
                raise ValueError(
                    f"CIGAR consumes {self.cigar.reference_length} ref bases "
                    f"but span is {self.ref_span}")
        if self.read_end > read_len:
            raise ValueError(
                f"read_end {self.read_end} beyond read length {read_len}")


def identity(alignment: Alignment) -> float:
    """Fraction of aligned (M) columns among all alignment columns."""
    total = sum(length for length, _ in alignment.cigar.ops)
    if total == 0:
        return 0.0
    return alignment.cigar.aligned_length / total
