"""GACT: tiled alignment with constant memory (Darwin's algorithm).

Sec. II-C: "Darwin and Darwin-WGA propose GACT based on the Smith-Waterman
algorithm, which can use constant hardware resources to perform an
arbitrary length matching." The trick: align a fixed-size tile, keep only
the *first* part of its traceback (the committed prefix), restart the next
tile from where the committed prefix ended, and repeat. Hardware never
stores more than one tile's DP matrix — which is how NvWa's EUs handle
long reads (Sec. V-F: "by using the iterative scheme of GACT").

This is the functional counterpart of
:func:`repro.extension.systolic.gact_tiled_latency`; tests verify it
approaches the optimal global alignment score while touching only
O(tile²) cells at a time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.genome import sequence as seq
from repro.extension.alignment import Alignment, Cigar
from repro.extension.needleman_wunsch import (
    fill_matrices_global,
    traceback_global,
)
from repro.extension.scoring import BWA_MEM_SCORING, ScoringScheme


@dataclass(frozen=True)
class GACTResult:
    """A GACT alignment plus its tiling statistics."""

    alignment: Alignment
    tiles: int
    max_tile_cells: int


def _codes(value) -> np.ndarray:
    if isinstance(value, np.ndarray):
        return np.asarray(value, dtype=np.uint8)
    return seq.encode(value)


def _commit_ops(cigar: Cigar, query_budget: int, ref_budget: int,
                last_tile: bool) -> Tuple[List[Tuple[int, str]], int, int]:
    """Take ops from the front of a tile's path until either sequence's
    committed budget is exhausted; returns (ops, q_consumed, r_consumed).

    On the last tile everything commits. The budgets keep an overlap
    region uncommitted so the next tile can revise it — GACT's accuracy
    mechanism.
    """
    ops: List[Tuple[int, str]] = []
    q_used = r_used = 0
    for length, op in cigar.ops:
        if last_tile:
            ops.append((length, op))
            continue
        take = length
        if op in "MI":
            take = min(take, query_budget - q_used)
        if op in "MD":
            take = min(take, ref_budget - r_used)
        if take <= 0:
            break
        ops.append((take, op))
        if op in "MI":
            q_used += take
        if op in "MD":
            r_used += take
        if take < length:
            break
    if last_tile:
        q_used = sum(l for l, op in ops if op in "MI")
        r_used = sum(l for l, op in ops if op in "MD")
    return ops, q_used, r_used


def gact_align(query, reference, tile_size: int = 128, overlap: int = 32,
               scoring: ScoringScheme = BWA_MEM_SCORING) -> GACTResult:
    """Global alignment of arbitrarily long sequences, one tile at a time.

    Args:
        tile_size: DP tile edge (Darwin uses 256-384; hardware SRAM size).
        overlap: uncommitted tail per tile — larger overlap = closer to
            the optimal path at more compute.
    """
    if tile_size <= 1:
        raise ValueError(f"tile_size must be > 1, got {tile_size}")
    if not 0 <= overlap < tile_size:
        raise ValueError(
            f"overlap must be in [0, tile_size), got {overlap}")
    query_codes = _codes(query)
    ref_codes = _codes(reference)
    m, n = query_codes.size, ref_codes.size
    if m == 0 or n == 0:
        from repro.extension.needleman_wunsch import needleman_wunsch
        return GACTResult(alignment=needleman_wunsch(query, reference,
                                                     scoring=scoring),
                          tiles=1 if (m or n) else 0, max_tile_cells=0)

    q_pos = r_pos = 0
    committed: List[Tuple[int, str]] = []
    tiles = 0
    max_cells = 0
    commit_budget = tile_size - overlap
    while q_pos < m or r_pos < n:
        q_tile = min(tile_size, m - q_pos)
        r_tile = min(tile_size, n - r_pos)
        tiles += 1
        last_tile = (q_pos + q_tile >= m) and (r_pos + r_tile >= n)
        tile_q = query_codes[q_pos:q_pos + q_tile]
        tile_r = ref_codes[r_pos:r_pos + r_tile]
        if tile_q.size == 0:
            committed.append((n - r_pos, "D"))
            r_pos = n
            break
        if tile_r.size == 0:
            committed.append((m - q_pos, "I"))
            q_pos = m
            break
        matrices = fill_matrices_global(tile_q, tile_r, scoring)
        max_cells = max(max_cells, matrices.cells)
        cigar = traceback_global(matrices, tile_q, tile_r, scoring)
        ops, q_used, r_used = _commit_ops(cigar, commit_budget,
                                          commit_budget, last_tile)
        if q_used == 0 and r_used == 0:
            # Degenerate tile (pure-gap head longer than the budget):
            # commit one op to guarantee progress.
            length, op = cigar.ops[0]
            ops = [(1, op)]
            q_used = 1 if op in "MI" else 0
            r_used = 1 if op in "MD" else 0
        committed.extend(ops)
        q_pos += q_used
        r_pos += r_used
        if last_tile:
            q_pos = m
            r_pos = n
            break

    merged: List[Tuple[int, str]] = []
    for length, op in committed:
        if merged and merged[-1][1] == op:
            merged[-1] = (merged[-1][0] + length, op)
        else:
            merged.append((length, op))
    cigar = Cigar(tuple(merged))
    score = _score_cigar(cigar, query_codes, ref_codes, scoring)
    alignment = Alignment(score=score, cigar=cigar, read_start=0,
                          read_end=m, ref_start=0, ref_end=n,
                          cells=max_cells)
    return GACTResult(alignment=alignment, tiles=tiles,
                      max_tile_cells=max_cells)


def _score_cigar(cigar: Cigar, query_codes: np.ndarray,
                 ref_codes: np.ndarray, scoring: ScoringScheme) -> int:
    """Score a committed path (the stitched path's true global score)."""
    i = j = 0
    score = 0
    for length, op in cigar.ops:
        if op == "M":
            for _ in range(length):
                score += scoring.substitution(int(query_codes[i]),
                                              int(ref_codes[j]))
                i += 1
                j += 1
        elif op == "I":
            score += scoring.gap_cost(length)
            i += length
        elif op == "D":
            score += scoring.gap_cost(length)
            j += length
    if i != query_codes.size or j != ref_codes.size:
        raise AssertionError(
            f"GACT path consumed ({i}, {j}) of "
            f"({query_codes.size}, {ref_codes.size})")
    return score
