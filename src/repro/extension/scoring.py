"""Alignment scoring schemes.

Sec. II-B: "A typical scoring scheme has three parts: substitution matrix,
open gap penalty, and extension gap penalty." NvWa keeps its EUs faithful to
BWA-MEM's scheme ("the scoring scheme, the affine gap penalty, and the
trace-back support"), so the defaults here are BWA-MEM 0.7.17's.

A gap of length ``g`` costs ``gap_open + g * gap_extend`` (both stored as
negative numbers), the affine convention BWA-MEM uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.genome import sequence as seq


@dataclass(frozen=True)
class ScoringScheme:
    """Affine-gap DNA scoring scheme.

    Attributes:
        match: score for identical bases (positive).
        mismatch: score for differing bases (negative).
        gap_open: one-time penalty for opening a gap (negative).
        gap_extend: per-base gap penalty (negative).
    """

    match: int = 1
    mismatch: int = -4
    gap_open: int = -6
    gap_extend: int = -1

    def __post_init__(self) -> None:
        if self.match <= 0:
            raise ValueError(f"match score must be positive, got {self.match}")
        if self.mismatch >= 0:
            raise ValueError(
                f"mismatch score must be negative, got {self.mismatch}")
        if self.gap_open > 0 or self.gap_extend >= 0:
            raise ValueError(
                "gap penalties must be non-positive (open) / negative (extend), "
                f"got open={self.gap_open}, extend={self.gap_extend}")

    def substitution(self, a: int, b: int) -> int:
        """Score of aligning base codes ``a`` and ``b``."""
        return self.match if a == b else self.mismatch

    def substitution_matrix(self) -> np.ndarray:
        """4x4 substitution matrix over base codes."""
        matrix = np.full((seq.ALPHABET_SIZE, seq.ALPHABET_SIZE),
                         self.mismatch, dtype=np.int64)
        np.fill_diagonal(matrix, self.match)
        return matrix

    def gap_cost(self, length: int) -> int:
        """Total (negative) score contribution of a gap of ``length`` bases."""
        if length < 0:
            raise ValueError(f"gap length must be >= 0, got {length}")
        if length == 0:
            return 0
        return self.gap_open + length * self.gap_extend


#: BWA-MEM 0.7.17 defaults (-A 1 -B 4 -O 6 -E 1).
BWA_MEM_SCORING = ScoringScheme(match=1, mismatch=-4, gap_open=-6,
                                gap_extend=-1)

#: The scheme Darwin's GACT evaluation uses.
DARWIN_SCORING = ScoringScheme(match=2, mismatch=-3, gap_open=-5,
                               gap_extend=-2)
