"""Affine-gap Smith-Waterman local alignment (Gotoh), with traceback.

This is the paper's Step-❸ algorithm ("compute-intensive approximate
matching") and the functional model behind the systolic-array EUs. Matrix
fill is vectorised row-by-row with the lazy-F formulation (the horizontal
gap chain is resolved with a prefix-max, which is exact for affine gaps
because opening a second gap can never beat extending the first); a scalar
reference implementation is kept alongside for property testing.

Cell counts are exposed because the EU cycle model charges Formula 3 latency
for exactly the cells this code fills — functional and timing layers share
one definition of "work".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.genome import sequence as seq
from repro.extension.alignment import Alignment, Cigar
from repro.extension.scoring import BWA_MEM_SCORING, ScoringScheme

#: Effectively minus infinity for int64 DP without overflow on adds.
NEG = np.int64(-(10 ** 12))


@dataclass
class DPMatrices:
    """Filled DP state: H (best), E (gap-in-ref / insertion), F (deletion)."""

    h: np.ndarray
    e: np.ndarray
    f: np.ndarray

    @property
    def cells(self) -> int:
        rows, cols = self.h.shape
        return (rows - 1) * (cols - 1)


def fill_matrices(read_codes: np.ndarray, ref_codes: np.ndarray,
                  scoring: ScoringScheme) -> DPMatrices:
    """Vectorised affine-gap local-alignment matrix fill.

    Rows index the read (query), columns the reference. ``E`` tracks gaps
    that consume read bases (CIGAR I), ``F`` gaps that consume reference
    bases (CIGAR D).
    """
    m, n = read_codes.size, ref_codes.size
    sub = scoring.substitution_matrix()
    open_ext = scoring.gap_open + scoring.gap_extend
    ext = scoring.gap_extend

    h = np.zeros((m + 1, n + 1), dtype=np.int64)
    e = np.full((m + 1, n + 1), NEG, dtype=np.int64)
    f = np.full((m + 1, n + 1), NEG, dtype=np.int64)

    cols = np.arange(1, n + 1, dtype=np.int64)
    for i in range(1, m + 1):
        sub_row = sub[read_codes[i - 1], ref_codes]
        e[i, 1:] = np.maximum(e[i - 1, 1:] + ext, h[i - 1, 1:] + open_ext)
        h_no_f = np.maximum(h[i - 1, :-1] + sub_row, e[i, 1:])
        np.maximum(h_no_f, 0, out=h_no_f)
        # Lazy F: F[j] = max_{k<j} H[k] + open + (j-k)·ext, via prefix max of
        # H[k] + open - k·ext evaluated over this row's H-without-F values.
        shifted = np.empty(n, dtype=np.int64)
        shifted[0] = NEG
        if n > 1:
            transformed = h_no_f[:-1] + scoring.gap_open - ext * cols[:-1]
            shifted[1:] = np.maximum.accumulate(transformed)
        f[i, 1:] = shifted + ext * cols
        # Column 0 can also open a deletion chain (H[i,0] == 0 everywhere).
        f[i, 1:] = np.maximum(f[i, 1:],
                              scoring.gap_open + ext * cols)
        h[i, 1:] = np.maximum(h_no_f, f[i, 1:])
    return DPMatrices(h, e, f)


@dataclass
class BatchDPMatrices:
    """DP state for a batch of same-shaped alignments, stacked on axis 0."""

    h: np.ndarray
    e: np.ndarray
    f: np.ndarray

    def __len__(self) -> int:
        return self.h.shape[0]

    def __getitem__(self, idx: int) -> DPMatrices:
        return DPMatrices(self.h[idx], self.e[idx], self.f[idx])


def fill_matrices_batch(read_codes: np.ndarray, ref_codes: np.ndarray,
                        scoring: ScoringScheme) -> BatchDPMatrices:
    """Vectorised fill of ``k`` same-shaped alignments in one pass.

    ``read_codes`` is ``(k, m)`` and ``ref_codes`` ``(k, n)``; the row
    recurrence of :func:`fill_matrices` runs once with every elementwise
    operation broadcast over the batch axis, so the Python-level loop cost
    is amortised across the whole batch.  Each slice ``[j]`` is
    bit-identical to ``fill_matrices(read_codes[j], ref_codes[j],
    scoring)`` — the batch front-end (:mod:`repro.runtime.batch`) relies on
    this to keep batched extension exact.
    """
    if read_codes.ndim != 2 or ref_codes.ndim != 2:
        raise ValueError("batch fill expects 2-D (batch, length) arrays")
    if read_codes.shape[0] != ref_codes.shape[0]:
        raise ValueError("batch sizes differ between read and reference")
    k, m = read_codes.shape
    n = ref_codes.shape[1]
    sub = scoring.substitution_matrix()
    open_ext = scoring.gap_open + scoring.gap_extend
    ext = scoring.gap_extend

    h = np.zeros((k, m + 1, n + 1), dtype=np.int64)
    e = np.full((k, m + 1, n + 1), NEG, dtype=np.int64)
    f = np.full((k, m + 1, n + 1), NEG, dtype=np.int64)

    cols = np.arange(1, n + 1, dtype=np.int64)
    for i in range(1, m + 1):
        sub_row = sub[read_codes[:, i - 1][:, None], ref_codes]
        e[:, i, 1:] = np.maximum(e[:, i - 1, 1:] + ext,
                                 h[:, i - 1, 1:] + open_ext)
        h_no_f = np.maximum(h[:, i - 1, :-1] + sub_row, e[:, i, 1:])
        np.maximum(h_no_f, 0, out=h_no_f)
        shifted = np.empty((k, n), dtype=np.int64)
        shifted[:, 0] = NEG
        if n > 1:
            transformed = (h_no_f[:, :-1] + scoring.gap_open
                           - ext * cols[:-1])
            shifted[:, 1:] = np.maximum.accumulate(transformed, axis=1)
        f[:, i, 1:] = shifted + ext * cols
        f[:, i, 1:] = np.maximum(f[:, i, 1:],
                                 scoring.gap_open + ext * cols)
        h[:, i, 1:] = np.maximum(h_no_f, f[:, i, 1:])
    return BatchDPMatrices(h, e, f)


def fill_matrices_scalar(read_codes: np.ndarray, ref_codes: np.ndarray,
                         scoring: ScoringScheme) -> DPMatrices:
    """Straightforward O(mn) scalar fill — the oracle for the fast path."""
    m, n = read_codes.size, ref_codes.size
    open_ext = scoring.gap_open + scoring.gap_extend
    ext = scoring.gap_extend

    h = np.zeros((m + 1, n + 1), dtype=np.int64)
    e = np.full((m + 1, n + 1), NEG, dtype=np.int64)
    f = np.full((m + 1, n + 1), NEG, dtype=np.int64)
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            e[i, j] = max(e[i - 1, j] + ext, h[i - 1, j] + open_ext)
            f[i, j] = max(f[i, j - 1] + ext, h[i, j - 1] + open_ext)
            diag = h[i - 1, j - 1] + scoring.substitution(
                int(read_codes[i - 1]), int(ref_codes[j - 1]))
            h[i, j] = max(0, diag, e[i, j], f[i, j])
    return DPMatrices(h, e, f)


def traceback(matrices: DPMatrices, read_codes: np.ndarray,
              ref_codes: np.ndarray, scoring: ScoringScheme,
              end: Tuple[int, int]) -> Tuple[Cigar, int, int]:
    """Walk back from ``end`` until H hits 0; returns (cigar, i0, j0).

    ``i0``/``j0`` are the matrix coordinates where the local alignment
    starts (read/ref start offsets).
    """
    h, e, f = matrices.h, matrices.e, matrices.f
    ext = scoring.gap_extend
    open_ext = scoring.gap_open + scoring.gap_extend
    i, j = end
    ops = []
    state = "H"
    while True:
        if state == "H":
            if h[i, j] == 0:
                break
            diag = h[i - 1, j - 1] + scoring.substitution(
                int(read_codes[i - 1]), int(ref_codes[j - 1])) \
                if i > 0 and j > 0 else NEG
            if i > 0 and j > 0 and h[i, j] == diag:
                ops.append("M")
                i -= 1
                j -= 1
            elif h[i, j] == e[i, j]:
                state = "E"
            elif h[i, j] == f[i, j]:
                state = "F"
            else:  # pragma: no cover - matrices inconsistent
                raise AssertionError("traceback found no predecessor")
        elif state == "E":
            ops.append("I")
            came_from_h = h[i - 1, j] + open_ext == e[i, j]
            i -= 1
            if came_from_h:
                state = "H"
            # else stay in E (gap extension)
        else:  # state == "F"
            ops.append("D")
            came_from_h = h[i, j - 1] + open_ext == f[i, j]
            j -= 1
            if came_from_h:
                state = "H"
    return Cigar.from_ops(reversed(ops)), i, j


def smith_waterman(read, reference, scoring: ScoringScheme = BWA_MEM_SCORING,
                   use_scalar: bool = False) -> Alignment:
    """Best local alignment of ``read`` against ``reference``.

    Args:
        read / reference: DNA strings or uint8 code arrays.
        scoring: affine-gap scheme (BWA-MEM defaults).
        use_scalar: run the scalar oracle fill (for testing).
    """
    read_codes = _codes(read)
    ref_codes = _codes(reference)
    if read_codes.size == 0 or ref_codes.size == 0:
        return Alignment(score=0, cigar=Cigar(()), read_start=0, read_end=0,
                         ref_start=0, ref_end=0, cells=0)
    fill = fill_matrices_scalar if use_scalar else fill_matrices
    matrices = fill(read_codes, ref_codes, scoring)
    return alignment_from_matrices(matrices, read_codes, ref_codes, scoring)


def alignment_from_matrices(matrices: DPMatrices, read_codes: np.ndarray,
                            ref_codes: np.ndarray,
                            scoring: ScoringScheme) -> Alignment:
    """Best local alignment extracted from filled DP matrices.

    The shared tail of :func:`smith_waterman` and the batched front-end —
    one definition of argmax/traceback keeps the two paths bit-identical.
    """
    flat = int(np.argmax(matrices.h))
    end = np.unravel_index(flat, matrices.h.shape)
    score = int(matrices.h[end])
    if score <= 0:
        return Alignment(score=0, cigar=Cigar(()), read_start=0, read_end=0,
                         ref_start=0, ref_end=0, cells=matrices.cells)
    cigar, i0, j0 = traceback(matrices, read_codes, ref_codes, scoring,
                              (int(end[0]), int(end[1])))
    return Alignment(score=score, cigar=cigar,
                     read_start=i0, read_end=int(end[0]),
                     ref_start=j0, ref_end=int(end[1]),
                     cells=matrices.cells)


def score_only(read, reference,
               scoring: ScoringScheme = BWA_MEM_SCORING) -> int:
    """Best local score without traceback (cheaper inner loop)."""
    read_codes = _codes(read)
    ref_codes = _codes(reference)
    if read_codes.size == 0 or ref_codes.size == 0:
        return 0
    matrices = fill_matrices(read_codes, ref_codes, scoring)
    return int(matrices.h.max())


def _codes(value) -> np.ndarray:
    if isinstance(value, np.ndarray):
        return np.asarray(value, dtype=np.uint8)
    return seq.encode(value)
