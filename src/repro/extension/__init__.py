"""Seed-extension substrate: DP aligners and the systolic cycle model."""

from repro.extension.scoring import (
    BWA_MEM_SCORING,
    DARWIN_SCORING,
    ScoringScheme,
)
from repro.extension.alignment import Alignment, Cigar, identity
from repro.extension.smith_waterman import (
    BatchDPMatrices,
    alignment_from_matrices,
    fill_matrices,
    fill_matrices_batch,
    fill_matrices_scalar,
    score_only,
    smith_waterman,
)
from repro.extension.needleman_wunsch import needleman_wunsch
from repro.extension.gact import GACTResult, gact_align
from repro.extension.banded import BandedResult, banded_global
from repro.extension.bitap import (
    best_semi_global_distance,
    bitap_exact_positions,
    bitap_search,
    edit_distance,
    genasm_latency,
    myers_distances,
)
from repro.extension.systolic import (
    BlockSchedule,
    SystolicArray,
    block_schedule,
    gact_tiled_latency,
    matrix_fill_latency,
    optimal_pe_count,
    traceback_latency,
)

__all__ = [
    "BWA_MEM_SCORING", "DARWIN_SCORING", "ScoringScheme",
    "Alignment", "Cigar", "identity",
    "BatchDPMatrices", "alignment_from_matrices", "fill_matrices",
    "fill_matrices_batch", "fill_matrices_scalar", "score_only",
    "smith_waterman",
    "needleman_wunsch",
    "GACTResult", "gact_align",
    "BandedResult", "banded_global",
    "best_semi_global_distance", "bitap_exact_positions", "bitap_search",
    "edit_distance", "genasm_latency", "myers_distances",
    "BlockSchedule", "SystolicArray", "block_schedule", "gact_tiled_latency",
    "matrix_fill_latency", "optimal_pe_count", "traceback_latency",
]
