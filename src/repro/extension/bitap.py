"""Bit-parallel approximate string matching (the GenASM/GenAx datapath).

Sec. II-B: "Several other algorithms, such as Bitap [GenASM] and Automata
[GenAx], can also be used to perform this phase", and Sec. IV-C discusses
how the Hybrid Units Strategy applies to those designs too. This module
implements both families from scratch:

- :func:`bitap_search` — Wu-Manber Bitap with up to ``k`` errors (the
  algorithm GenASM's hardware parallelises);
- :func:`myers_distances` — Myers' 1999 bit-vector algorithm computing,
  for every text position, the best edit distance of the pattern against a
  substring ending there (semi-global matching). Python's arbitrary-width
  integers serve as the bit vectors, so patterns longer than a machine
  word need no blocking.
- :func:`genasm_latency` — a GenASM-style cycle model (per-text-character
  vector updates over ``ceil(m/W)`` words), the alternative EU timing the
  paper's discussion contemplates.

Everything is oracle-tested against a plain DP edit-distance implementation.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import numpy as np

from repro.genome import sequence as seq


def _codes(value) -> np.ndarray:
    if isinstance(value, np.ndarray):
        return np.asarray(value, dtype=np.uint8)
    return seq.encode(value)


def edit_distance(a, b) -> int:
    """Plain Levenshtein distance (vectorised DP rows) — the oracle."""
    a_codes = _codes(a)
    b_codes = _codes(b)
    if a_codes.size == 0:
        return int(b_codes.size)
    if b_codes.size == 0:
        return int(a_codes.size)
    prev = np.arange(b_codes.size + 1, dtype=np.int64)
    for i, ca in enumerate(a_codes, start=1):
        curr = np.empty_like(prev)
        curr[0] = i
        sub = prev[:-1] + (b_codes != ca)
        # delete from a (vertical) and substitution are vectorisable;
        # the horizontal chain needs a cumulative pass.
        curr[1:] = np.minimum(prev[1:] + 1, sub)
        for j in range(1, curr.size):
            if curr[j - 1] + 1 < curr[j]:
                curr[j] = curr[j - 1] + 1
        prev = curr
    return int(prev[-1])


def _pattern_masks(pattern_codes: np.ndarray) -> Dict[int, int]:
    """Per-symbol occurrence bitmasks (bit i set where pattern[i] == c)."""
    masks = {c: 0 for c in range(seq.ALPHABET_SIZE)}
    for i, code in enumerate(pattern_codes):
        masks[int(code)] |= 1 << i
    return masks


def myers_distances(pattern, text) -> List[int]:
    """Semi-global edit distances via Myers' bit-vector algorithm.

    Returns ``d`` with ``d[j]`` = the minimum edit distance between the
    pattern and any substring of ``text`` ending at position ``j``
    (inclusive). ``min(d)`` is the best approximate-match score anywhere.
    """
    pattern_codes = _codes(pattern)
    text_codes = _codes(text)
    m = int(pattern_codes.size)
    if m == 0:
        return [0] * int(text_codes.size)
    masks = _pattern_masks(pattern_codes)
    all_ones = (1 << m) - 1
    high_bit = 1 << (m - 1)

    pv = all_ones
    mv = 0
    score = m
    out: List[int] = []
    for code in text_codes:
        eq = masks[int(code)]
        xv = eq | mv
        xh = (((eq & pv) + pv) ^ pv) | eq
        ph = mv | (~(xh | pv) & all_ones)
        mh = pv & xh
        if ph & high_bit:
            score += 1
        elif mh & high_bit:
            score -= 1
        ph = (ph << 1) & all_ones
        mh = (mh << 1) & all_ones
        pv = (mh | (~(xv | ph) & all_ones))
        mv = ph & xv
        out.append(score)
    return out


def best_semi_global_distance(pattern, text) -> int:
    """Best edit distance of the pattern anywhere in the text."""
    pattern_codes = _codes(pattern)
    distances = myers_distances(pattern, text)
    if not distances:
        return int(pattern_codes.size)
    return min(int(pattern_codes.size), min(distances))


def bitap_search(pattern, text, max_errors: int = 0) -> List[Tuple[int, int]]:
    """Wu-Manber Bitap: approximate occurrences with <= ``max_errors``.

    Returns ``(end_position, errors)`` pairs, one per text position where
    the pattern matches ending there, with the smallest error level that
    matches. ``end_position`` is inclusive.
    """
    if max_errors < 0:
        raise ValueError(f"max_errors must be >= 0, got {max_errors}")
    pattern_codes = _codes(pattern)
    text_codes = _codes(text)
    m = int(pattern_codes.size)
    if m == 0:
        raise ValueError("pattern must be non-empty")
    masks = _pattern_masks(pattern_codes)
    all_ones = (1 << m) - 1
    high_bit = 1 << (m - 1)

    # r[k] = state bitmask with <= k errors; bit i set means a prefix of
    # length i+1 currently matches.
    levels = [0] * (max_errors + 1)
    out: List[Tuple[int, int]] = []
    for j, code in enumerate(text_codes):
        eq = masks[int(code)]
        prev_exact = levels[0]
        levels[0] = ((prev_exact << 1) | 1) & eq & all_ones
        carry_prev = prev_exact
        for k in range(1, max_errors + 1):
            prev_k = levels[k]
            substitution = (carry_prev << 1) | 1
            insertion = carry_prev
            deletion = levels[k - 1] << 1 | 1
            match = ((prev_k << 1) | 1) & eq
            levels[k] = (match | substitution | insertion | deletion) \
                & all_ones
            carry_prev = prev_k
        for k in range(max_errors + 1):
            if levels[k] & high_bit:
                out.append((j, k))
                break
    return out


def bitap_exact_positions(pattern, text) -> List[int]:
    """Exact Bitap (shift-and): start positions of exact occurrences."""
    pattern_codes = _codes(pattern)
    hits = bitap_search(pattern, text, max_errors=0)
    m = int(pattern_codes.size)
    return [end - m + 1 for end, _ in hits]


def genasm_latency(pattern_len: int, text_len: int,
                   word_bits: int = 64, unroll: int = 1) -> int:
    """GenASM-style cycle model for a bit-parallel extension unit.

    The datapath updates ``ceil(m / word_bits)`` vector words per text
    character; ``unroll`` parallel word-lanes process them concurrently.
    Contrast with the systolic Formula 3: latency is linear in the text
    length and near-insensitive to the pattern length until it crosses a
    word boundary — which is why fixed-width designs like GenASM waste no
    PEs on short hits but iterate on long ones (Sec. IV-C discussion).
    """
    if pattern_len <= 0 or text_len <= 0:
        raise ValueError("lengths must be positive")
    if word_bits <= 0 or unroll <= 0:
        raise ValueError("word_bits and unroll must be positive")
    words = math.ceil(pattern_len / word_bits)
    return text_len * math.ceil(words / unroll)
