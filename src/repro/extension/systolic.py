"""Systolic-array cycle model for seed-extension units.

Implements the latency model the whole Extension Scheduler design rests on
— the paper's Formula 3:

    L = (R + P - 1) * ceil(Q / P)

where ``R`` is the reference length, ``Q`` the query length and ``P`` the
number of processing elements. The query is split into ``ceil(Q/P)`` blocks
of ``P`` rows; each block streams the reference through the PE chain in
``R + P - 1`` cycles (R inputs plus P-1 pipeline drain). Fig 7's worked
example (Q = R = 9, P = 3 → 33 cycles) falls out of the same block
schedule reproduced by :func:`block_schedule`.

Also provided: the GACT-style tiled latency used for long reads (Sec. V-F:
"Our design can still be applied to the long reads datasets by using the
iterative scheme of GACT"), and the traceback latency, constant in P
(footnote 4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple


def matrix_fill_latency(ref_length: int, query_length: int,
                        pe_count: int) -> int:
    """Formula 3: systolic matrix-fill latency in cycles."""
    if ref_length < 0 or query_length < 0:
        raise ValueError("sequence lengths must be non-negative")
    if pe_count <= 0:
        raise ValueError(f"pe_count must be positive, got {pe_count}")
    if ref_length == 0 or query_length == 0:
        return 0
    blocks = math.ceil(query_length / pe_count)
    return (ref_length + pe_count - 1) * blocks


def traceback_latency(ref_length: int, query_length: int) -> int:
    """Trace-back walk length; independent of the PE count (footnote 4)."""
    if ref_length < 0 or query_length < 0:
        raise ValueError("sequence lengths must be non-negative")
    return ref_length + query_length


@dataclass(frozen=True)
class BlockSchedule:
    """One query block's occupancy window on the array (for Fig 7)."""

    block_index: int
    start_cycle: int
    end_cycle: int
    rows: int

    @property
    def cycles(self) -> int:
        return self.end_cycle - self.start_cycle


def block_schedule(ref_length: int, query_length: int,
                   pe_count: int) -> List[BlockSchedule]:
    """Per-block execution windows reproducing Fig 7(c).

    Blocks run strictly one after another; block ``b`` occupies cycles
    ``[b * (R + P - 1), (b + 1) * (R + P - 1))``. The last block may hold
    fewer than ``P`` query rows.
    """
    if ref_length <= 0 or query_length <= 0:
        return []
    if pe_count <= 0:
        raise ValueError(f"pe_count must be positive, got {pe_count}")
    span = ref_length + pe_count - 1
    blocks = math.ceil(query_length / pe_count)
    out = []
    for b in range(blocks):
        rows = min(pe_count, query_length - b * pe_count)
        out.append(BlockSchedule(block_index=b, start_cycle=b * span,
                                 end_cycle=(b + 1) * span, rows=rows))
    return out


def optimal_pe_count(query_length: int,
                     choices: Tuple[int, ...] = (16, 32, 64, 128)) -> int:
    """The PE class with the lowest Formula 3 latency for this hit length.

    Paper observation (1) under Fig 8: "When the hit length and the number
    of PEs are close to each other, the computation has the shortest
    latency." Reference length is taken ≈ query length, the typical
    extension geometry. Ties resolve to the smaller (cheaper) class.
    """
    if query_length <= 0:
        raise ValueError(f"query_length must be positive, got {query_length}")
    if not choices:
        raise ValueError("choices must be non-empty")
    best = None
    for pe in sorted(choices):
        latency = matrix_fill_latency(query_length, query_length, pe)
        if best is None or latency < best[0]:
            best = (latency, pe)
    return best[1]


def gact_tiled_latency(ref_length: int, query_length: int, pe_count: int,
                       tile_size: int = 256, overlap: int = 32) -> int:
    """Latency of GACT-style tiled extension for long sequences.

    Darwin's GACT aligns arbitrarily long sequences with constant hardware
    by stepping a ``tile_size`` window along both sequences, re-aligning
    each tile and advancing ``tile_size - overlap``. Total latency is the
    sum of the per-tile Formula 3 fills.
    """
    if tile_size <= 0:
        raise ValueError(f"tile_size must be positive, got {tile_size}")
    if not 0 <= overlap < tile_size:
        raise ValueError(
            f"overlap must be in [0, tile_size), got {overlap}")
    if ref_length <= 0 or query_length <= 0:
        return 0
    step = tile_size - overlap
    total = 0
    q_pos = r_pos = 0
    while q_pos < query_length or r_pos < ref_length:
        q_tile = min(tile_size, query_length - q_pos)
        r_tile = min(tile_size, ref_length - r_pos)
        if q_tile <= 0 and r_tile <= 0:  # pragma: no cover
            break
        total += matrix_fill_latency(max(r_tile, 0) or 0,
                                     max(q_tile, 0) or 0, pe_count)
        if q_tile <= 0 or r_tile <= 0:
            break
        q_pos += step
        r_pos += step
    return total


@dataclass(frozen=True)
class SystolicArray:
    """A fixed-size systolic seed-extension array (one EU's datapath).

    Args:
        pe_count: number of processing elements.
    """

    pe_count: int

    def __post_init__(self) -> None:
        if self.pe_count <= 0:
            raise ValueError(f"pe_count must be positive, got {self.pe_count}")

    def latency(self, ref_length: int, query_length: int,
                include_traceback: bool = True) -> int:
        """End-to-end cycles to align one hit on this array."""
        fill = matrix_fill_latency(ref_length, query_length, self.pe_count)
        if not include_traceback or fill == 0:
            return fill
        return fill + traceback_latency(ref_length, query_length)

    def utilization(self, ref_length: int, query_length: int) -> float:
        """Fraction of PE-cycles doing useful work during the fill.

        Useful work = Q * R cells; capacity = P * L cycles. Short hits on a
        large array waste PEs (observation (2) under Fig 8).
        """
        fill = matrix_fill_latency(ref_length, query_length, self.pe_count)
        if fill == 0:
            return 0.0
        return (ref_length * query_length) / (self.pe_count * fill)
