"""Banded affine Smith-Waterman (SeedEx-style).

Sec. IV-C discusses SeedEx: "there still has a trade-off between the
execution band size and performance for the banded Smith-Waterman
algorithm" — a narrow band is fast but may miss the optimal path
(speculation-and-test). This module implements the banded global aligner
and reports whether the optimal in-band path touched the band edge, the
signal SeedEx's verifier uses to decide a respeculation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.genome import sequence as seq
from repro.extension.alignment import Alignment, Cigar
from repro.extension.scoring import BWA_MEM_SCORING, ScoringScheme

_NEG = -(10 ** 12)


@dataclass(frozen=True)
class BandedResult:
    """A banded alignment plus the band-adequacy signal.

    ``touched_band_edge`` True means the traced path ran along the band
    boundary, i.e. a wider band might score higher (SeedEx's "test" step).
    """

    alignment: Alignment
    band_width: int
    touched_band_edge: bool


def banded_global(read, reference, band_width: int = 16,
                  scoring: ScoringScheme = BWA_MEM_SCORING,
                  use_scalar: bool = False) -> BandedResult:
    """Global affine alignment restricted to ``|j - i| <= band_width``.

    Cells outside the band are -inf; with ``band_width >= max(m, n)`` the
    result equals unbanded Needleman-Wunsch. The default fill vectorises
    each band row (lazy-F prefix max); ``use_scalar`` selects the plain
    double loop, kept as the property-testing oracle.
    """
    if band_width <= 0:
        raise ValueError(f"band_width must be positive, got {band_width}")
    read_codes = _codes(read)
    ref_codes = _codes(reference)
    m, n = read_codes.size, ref_codes.size
    if abs(m - n) > band_width:
        raise ValueError(
            f"length difference {abs(m - n)} exceeds band width {band_width}; "
            "the global path cannot stay in band")

    fill = _fill_scalar if use_scalar else _fill_vectorised
    h, e, f, cells = fill(read_codes, ref_codes, band_width, scoring)

    if h[m, n] <= _NEG // 2:
        raise ValueError("no in-band global path exists")

    cigar, touched = _traceback(h, e, f, read_codes, ref_codes, scoring,
                                band_width)
    alignment = Alignment(score=int(h[m, n]), cigar=cigar,
                          read_start=0, read_end=m, ref_start=0, ref_end=n,
                          cells=cells)
    return BandedResult(alignment=alignment, band_width=band_width,
                        touched_band_edge=touched)


def _init_matrices(m, n, band_width, scoring):
    ext = scoring.gap_extend
    h = np.full((m + 1, n + 1), _NEG, dtype=np.int64)
    e = np.full((m + 1, n + 1), _NEG, dtype=np.int64)
    f = np.full((m + 1, n + 1), _NEG, dtype=np.int64)
    h[0, 0] = 0
    for j in range(1, min(n, band_width) + 1):
        h[0, j] = f[0, j] = scoring.gap_open + ext * j
    for i in range(1, min(m, band_width) + 1):
        h[i, 0] = e[i, 0] = scoring.gap_open + ext * i
    return h, e, f


def _fill_scalar(read_codes, ref_codes, band_width, scoring):
    """Reference implementation: plain in-band double loop."""
    m, n = read_codes.size, ref_codes.size
    open_ext = scoring.gap_open + scoring.gap_extend
    ext = scoring.gap_extend
    h, e, f = _init_matrices(m, n, band_width, scoring)
    cells = 0
    for i in range(1, m + 1):
        lo = max(1, i - band_width)
        hi = min(n, i + band_width)
        for j in range(lo, hi + 1):
            e[i, j] = max(e[i - 1, j] + ext, h[i - 1, j] + open_ext)
            f[i, j] = max(f[i, j - 1] + ext, h[i, j - 1] + open_ext)
            diag = h[i - 1, j - 1] + scoring.substitution(
                int(read_codes[i - 1]), int(ref_codes[j - 1]))
            h[i, j] = max(diag, e[i, j], f[i, j])
            cells += 1
    return h, e, f, cells


def _fill_vectorised(read_codes, ref_codes, band_width, scoring):
    """Row-vectorised band fill (lazy-F prefix max within the band)."""
    m, n = read_codes.size, ref_codes.size
    open_ext = scoring.gap_open + scoring.gap_extend
    ext = scoring.gap_extend
    sub = scoring.substitution_matrix()
    h, e, f = _init_matrices(m, n, band_width, scoring)
    cells = 0
    for i in range(1, m + 1):
        lo = max(1, i - band_width)
        hi = min(n, i + band_width)
        if lo > hi:
            continue
        cols = np.arange(lo, hi + 1, dtype=np.int64)
        cells += cols.size
        e[i, lo:hi + 1] = np.maximum(e[i - 1, lo:hi + 1] + ext,
                                     h[i - 1, lo:hi + 1] + open_ext)
        sub_row = sub[read_codes[i - 1], ref_codes[lo - 1:hi]]
        h_no_f = np.maximum(h[i - 1, lo - 1:hi] + sub_row,
                            e[i, lo:hi + 1])
        # Lazy F over the in-band prefix; the seed element carries the
        # k = lo-1 cell (the column-0 rim when lo == 1, else out-of-band).
        transformed = np.empty(cols.size, dtype=np.int64)
        transformed[0] = h[i, lo - 1] + scoring.gap_open - ext * (lo - 1)
        if cols.size > 1:
            transformed[1:] = h_no_f[:-1] + scoring.gap_open \
                - ext * cols[:-1]
        running = np.maximum.accumulate(transformed)
        f[i, lo:hi + 1] = running + ext * cols
        h[i, lo:hi + 1] = np.maximum(h_no_f, f[i, lo:hi + 1])
    return h, e, f, cells


def _traceback(h, e, f, read_codes, ref_codes, scoring, band_width):
    ext = scoring.gap_extend
    open_ext = scoring.gap_open + scoring.gap_extend
    i, j = read_codes.size, ref_codes.size
    ops = []
    state = "H"
    touched = False
    while i > 0 or j > 0:
        if abs(j - i) == band_width:
            touched = True
        if state == "H":
            if i == 0:
                state = "F"
            elif j == 0:
                state = "E"
            else:
                diag = h[i - 1, j - 1] + scoring.substitution(
                    int(read_codes[i - 1]), int(ref_codes[j - 1]))
                if h[i, j] == diag:
                    ops.append("M")
                    i -= 1
                    j -= 1
                elif h[i, j] == e[i, j]:
                    state = "E"
                elif h[i, j] == f[i, j]:
                    state = "F"
                else:  # pragma: no cover
                    raise AssertionError("banded traceback stuck")
        elif state == "E":
            ops.append("I")
            from_h = h[i - 1, j] + open_ext == e[i, j]
            i -= 1
            if from_h or i == 0:
                state = "H"
        else:
            ops.append("D")
            from_h = h[i, j - 1] + open_ext == f[i, j]
            j -= 1
            if from_h or j == 0:
                state = "H"
    return Cigar.from_ops(reversed(ops)), touched


def _codes(value) -> np.ndarray:
    if isinstance(value, np.ndarray):
        return np.asarray(value, dtype=np.uint8)
    return seq.encode(value)
