"""Affine-gap Needleman-Wunsch global alignment.

The global counterpart of the local aligner, used by the GACT-style tiling
path for long reads (Darwin extends tile by tile with global alignment
inside each tile) and as a reference point in tests.
"""

from __future__ import annotations

import numpy as np

from repro.genome import sequence as seq
from repro.extension.alignment import Alignment, Cigar
from repro.extension.scoring import BWA_MEM_SCORING, ScoringScheme
from repro.extension.smith_waterman import NEG, DPMatrices


def fill_matrices_global(read_codes: np.ndarray, ref_codes: np.ndarray,
                         scoring: ScoringScheme) -> DPMatrices:
    """Vectorised affine global fill (no zero floor, gap-initialised rims)."""
    m, n = read_codes.size, ref_codes.size
    sub = scoring.substitution_matrix()
    open_ext = scoring.gap_open + scoring.gap_extend
    ext = scoring.gap_extend

    h = np.full((m + 1, n + 1), NEG, dtype=np.int64)
    e = np.full((m + 1, n + 1), NEG, dtype=np.int64)
    f = np.full((m + 1, n + 1), NEG, dtype=np.int64)
    h[0, 0] = 0
    if n:
        rim = scoring.gap_open + ext * np.arange(1, n + 1, dtype=np.int64)
        h[0, 1:] = rim
        f[0, 1:] = rim
    col_rim = scoring.gap_open + ext * np.arange(1, m + 1, dtype=np.int64)
    h[1:, 0] = col_rim
    e[1:, 0] = col_rim

    cols = np.arange(1, n + 1, dtype=np.int64)
    for i in range(1, m + 1):
        sub_row = sub[read_codes[i - 1], ref_codes]
        e[i, 1:] = np.maximum(e[i - 1, 1:] + ext, h[i - 1, 1:] + open_ext)
        h_no_f = np.maximum(h[i - 1, :-1] + sub_row, e[i, 1:])
        # Prefix-max F including the k = 0 rim cell.
        prefix = np.empty(n, dtype=np.int64)
        prefix[0] = h[i, 0] + scoring.gap_open
        if n > 1:
            prefix[1:] = h_no_f[:-1] + scoring.gap_open - ext * cols[:-1]
        running = np.maximum.accumulate(prefix)
        f[i, 1:] = running + ext * cols
        h[i, 1:] = np.maximum(h_no_f, f[i, 1:])
    return DPMatrices(h, e, f)


def traceback_global(matrices: DPMatrices, read_codes: np.ndarray,
                     ref_codes: np.ndarray,
                     scoring: ScoringScheme) -> Cigar:
    """Walk from (m, n) to (0, 0)."""
    h, e, f = matrices.h, matrices.e, matrices.f
    ext = scoring.gap_extend
    open_ext = scoring.gap_open + scoring.gap_extend
    i, j = read_codes.size, ref_codes.size
    ops = []
    state = "H"
    while i > 0 or j > 0:
        if state == "H":
            if i == 0:
                state = "F"
            elif j == 0:
                state = "E"
            else:
                diag = h[i - 1, j - 1] + scoring.substitution(
                    int(read_codes[i - 1]), int(ref_codes[j - 1]))
                if h[i, j] == diag:
                    ops.append("M")
                    i -= 1
                    j -= 1
                elif h[i, j] == e[i, j]:
                    state = "E"
                elif h[i, j] == f[i, j]:
                    state = "F"
                else:  # pragma: no cover
                    raise AssertionError("global traceback stuck")
        elif state == "E":
            ops.append("I")
            from_h = h[i - 1, j] + open_ext == e[i, j]
            i -= 1
            if from_h or i == 0:
                state = "H"
        else:
            ops.append("D")
            from_h = h[i, j - 1] + open_ext == f[i, j]
            j -= 1
            if from_h or j == 0:
                state = "H"
    return Cigar.from_ops(reversed(ops))


def needleman_wunsch(read, reference,
                     scoring: ScoringScheme = BWA_MEM_SCORING) -> Alignment:
    """Optimal global alignment of the full read against the full reference."""
    read_codes = _codes(read)
    ref_codes = _codes(reference)
    if read_codes.size == 0 and ref_codes.size == 0:
        return Alignment(score=0, cigar=Cigar(()), read_start=0, read_end=0,
                         ref_start=0, ref_end=0)
    if read_codes.size == 0:
        cigar = Cigar(((ref_codes.size, "D"),))
        return Alignment(score=scoring.gap_cost(ref_codes.size), cigar=cigar,
                         read_start=0, read_end=0, ref_start=0,
                         ref_end=ref_codes.size)
    if ref_codes.size == 0:
        cigar = Cigar(((read_codes.size, "I"),))
        return Alignment(score=scoring.gap_cost(read_codes.size), cigar=cigar,
                         read_start=0, read_end=read_codes.size, ref_start=0,
                         ref_end=0)
    matrices = fill_matrices_global(read_codes, ref_codes, scoring)
    cigar = traceback_global(matrices, read_codes, ref_codes, scoring)
    return Alignment(score=int(matrices.h[-1, -1]), cigar=cigar,
                     read_start=0, read_end=read_codes.size,
                     ref_start=0, ref_end=ref_codes.size,
                     cells=matrices.cells)


def _codes(value) -> np.ndarray:
    if isinstance(value, np.ndarray):
        return np.asarray(value, dtype=np.uint8)
    return seq.encode(value)
