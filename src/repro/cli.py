"""Command-line interface.

Subcommands (``python -m repro`` works identically)::

    python -m repro simulate  --length 100000 --reads 500 --out-prefix x
    python -m repro index build   --reference x.fa --out x.idx
    python -m repro index inspect x.idx
    python -m repro index verify  x.idx
    python -m repro align     --reference x.fa --reads x.fq --out x.sam
    python -m repro align     --reference x.fa --reads x.fq --index x.idx
    python -m repro align     --reference x.fa --reads x.fq --long
    python -m repro accelerate --dataset H.s. --reads 2000
    python -m repro accelerate --reference x.fa --reads-file x.fq
    python -m repro experiments fig11 fig13 --quick
    python -m repro experiments --parallelism 4 --cache-dir .cache/
    python -m repro serve     --reference x.fa --port 7878
    python -m repro cluster   --reference x.fa --replicas 3 --port 7900
    python -m repro loadgen   --connect 127.0.0.1:7878 --reference x.fa
    python -m repro chaos     --fault-plan ci-default --seed 7
    python -m repro obs export --connect 127.0.0.1:7878
    python -m repro obs validate trace.json
    python -m repro lint      src/ --baseline lint-baseline.json

``--parallelism N`` fans work out over N worker processes and
``--cache-dir DIR`` memoizes deterministic inputs on disk; results are
bit-identical to the serial, uncached run for every worker count.
``serve`` runs the online alignment service (dynamic batching, admission
control, live metrics) and ``loadgen`` benchmarks it.  ``chaos`` runs
serve + loadgen + the sharded runtime under a seeded fault plan and
gates on the resilience invariants (see docs/RESILIENCE.md); ``serve
--fault-plan`` arms the same injection on a long-lived server.
``cluster`` fronts a spawned backend fleet with the gateway and — by
default — arms the self-healing control plane: a supervisor monitor
loop restarts dead backends with exponential backoff (crash-loopers are
permanently ejected) and the gateway readmits them live; per-shard
admission queues shed expired waits as typed ``queue_timeout`` errors
(``loadgen --budget-ms`` exercises them from the client side).

``index build`` serializes the FM-index + reference into the versioned,
checksummed store of :mod:`repro.seeding.store`; ``align --index`` and
``serve --index`` then memory-map it zero-copy (one physical copy shared
by every worker process/thread) instead of rebuilding it, with
bit-identical output.  ``index verify`` re-hashes every array payload
and exits nonzero on corruption.

``--trace-out FILE`` on ``align``/``accelerate``/``serve``/``loadgen``
enables the :mod:`repro.obs` tracer and writes a Chrome ``trace_event``
JSON on exit (load it in Perfetto or chrome://tracing); ``obs export``
renders a metrics snapshot in Prometheus text format and ``obs
validate`` sanity-checks a trace file.
"""

from __future__ import annotations

import argparse
import os
from typing import List, Optional


def _start_tracing(args: argparse.Namespace) -> Optional[str]:
    """Enable the global tracer when ``--trace-out`` was given."""
    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        from repro import obs
        obs.configure(enabled=True)
    return trace_out


def _write_trace(trace_out: Optional[str], extra_events=None) -> None:
    """Export the global tracer's events as a Chrome trace file."""
    if not trace_out:
        return
    from repro import obs
    obs.write_chrome_trace(trace_out, obs.get_tracer(),
                           extra_events=extra_events)
    print(f"wrote trace {trace_out} (load in Perfetto or "
          f"chrome://tracing)")


def _execution_config(args: argparse.Namespace):
    """An ExecutionConfig from --parallelism/--cache-dir, or ``None``."""
    parallelism = getattr(args, "parallelism", None) or 1
    cache_dir = getattr(args, "cache_dir", None)
    if parallelism == 1 and cache_dir is None:
        return None
    from repro.experiments.common import ExecutionConfig
    return ExecutionConfig(parallelism=parallelism, cache_dir=cache_dir)


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.genome.io import write_fasta, write_fastq
    from repro.genome.reads import ErrorModel, ReadSimulator
    from repro.genome.reference import SyntheticReference

    reference = SyntheticReference(length=args.length,
                                  chromosomes=args.chromosomes,
                                  seed=args.seed).build()
    error = ErrorModel(substitution_rate=args.error_rate,
                       insertion_rate=args.error_rate / 10,
                       deletion_rate=args.error_rate / 10)
    reads = ReadSimulator(reference, read_length=args.read_length,
                          error_model=error, seed=args.seed).simulate(
                              args.reads)
    fasta = f"{args.out_prefix}.fa"
    fastq = f"{args.out_prefix}.fq"
    write_fasta(reference, fasta)
    write_fastq(reads, fastq)
    print(f"wrote {fasta} ({len(reference):,} bp) and {fastq} "
          f"({len(reads)} reads)")
    return 0


def _cmd_index_build(args: argparse.Namespace) -> int:
    from repro.genome.io import read_reference
    from repro.seeding.store import build_index_store

    trace_out = _start_tracing(args)
    reference = read_reference(args.reference)
    store = build_index_store(reference, args.out,
                              occ_interval=args.occ_interval,
                              sa_sample=args.sa_sample,
                              source=os.path.basename(args.reference))
    size = os.path.getsize(args.out)
    print(f"built {args.out} ({size:,} bytes over {len(reference):,} bp, "
          f"occ_interval={args.occ_interval}, sa_sample={args.sa_sample})")
    print(f"content hash: {store.content_hash}")
    _write_trace(trace_out)
    return 0


def _cmd_index_inspect(args: argparse.Namespace) -> int:
    import json

    from repro.seeding.store import IndexStore, IndexStoreError

    try:
        store = IndexStore.open(args.path)
    except IndexStoreError as exc:
        print(f"FAIL: {type(exc).__name__}: {exc}")
        return 1
    print(json.dumps(store.describe(), indent=2, sort_keys=True))
    return 0


def _cmd_index_verify(args: argparse.Namespace) -> int:
    from repro.seeding.store import IndexStore, IndexStoreError

    try:
        store = IndexStore.open(args.path, verify=True)
    except IndexStoreError as exc:
        print(f"FAIL: {type(exc).__name__}: {exc}")
        return 1
    print(f"ok: {args.path} (format v{store.format_version}, "
          f"{store.meta['text_length']:,} bp, "
          f"content {store.content_hash[:16]})")
    return 0


def _open_index_for(reference, index_path: str):
    """Open an index store and insist it was built for ``reference``."""
    from repro.seeding.store import IndexStore

    store = IndexStore.open(index_path)
    if not store.matches_reference(reference):
        raise SystemExit(
            f"FAIL: index {index_path} was built for a different "
            f"reference (rebuild with: repro index build)")
    return store


def _cmd_align(args: argparse.Namespace) -> int:
    from repro.analysis.accuracy import evaluate
    from repro.genome.io import parse_fastq, read_reference

    trace_out = _start_tracing(args)
    reference = read_reference(args.reference)
    reads = list(parse_fastq(args.reads))
    if args.long:
        from repro.align.long_read import LongReadAligner
        aligner = LongReadAligner(reference)
        results = aligner.align_all(reads)
        mapped = sum(1 for r in results if r.aligned)
        print(f"long-read mode: mapped {mapped}/{len(reads)} reads")
        if args.out:
            print("note: SAM output currently covers the short-read "
                  "pipeline; long-read results printed only")
        return 0

    from repro.align.sam import write_sam

    if args.index:
        _open_index_for(reference, args.index)  # fail fast on mismatch
    if args.parallelism > 1:
        from repro.runtime.sharded import ShardedRunner
        runner = ShardedRunner(parallelism=args.parallelism,
                               shard_size=args.shard_size)
        results = runner.align(reference, reads,
                               batch_extension=args.batch_extension,
                               index_path=args.index)
    else:
        from repro.align.pipeline import SoftwareAligner
        if args.index:
            index = _open_index_for(reference, args.index).fmindex()
            aligner = SoftwareAligner(reference, index=index)
        else:
            aligner = SoftwareAligner(reference)
        results = aligner.align_all(reads,
                                    batch_extension=args.batch_extension)
    report = evaluate(results, reference)
    print(f"mapped {report.mapped}/{report.total} reads "
          f"({report.mapped_fraction:.1%})")
    if args.out:
        write_sam(results, reference, args.out)
        print(f"wrote {args.out}")
    _write_trace(trace_out)
    return 0


def _cmd_accelerate(args: argparse.Namespace) -> int:
    from repro.core import baseline
    from repro.runtime.sweep import simulate_many

    exec_config = _execution_config(args)
    parallelism = exec_config.parallelism if exec_config else 1
    cache = exec_config.cache() if exec_config else None

    if args.reference and args.reads_file:
        from repro.align.pipeline import SoftwareAligner
        from repro.core import workload_from_pipeline
        from repro.genome.io import parse_fastq, read_reference
        reference = read_reference(args.reference)
        reads = list(parse_fastq(args.reads_file))
        results = SoftwareAligner(reference).align_all(reads)
        workload = workload_from_pipeline(results)
        source = f"{len(reads)} reads from {args.reads_file}"
    else:
        from repro.genome.datasets import get_dataset
        from repro.runtime.artifacts import cached_synthetic_workload
        profile = get_dataset(args.dataset)
        workload = cached_synthetic_workload(cache, profile, args.reads,
                                             seed=args.seed)
        source = f"{args.reads} synthetic {profile.name} reads"

    jobs = [("NvWa", baseline.nvwa()),
            ("SUs+EUs", baseline.sus_eus_baseline())]
    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        # Run the simulations directly (bit-identical to the serial
        # sweep path) so the full reports — and their utilization
        # traces — are still in hand for the export.
        from repro import obs
        from repro.core.accelerator import NvWaAccelerator
        from repro.runtime.sweep import summarize
        obs.configure(enabled=True)
        extra_events = []
        results = []
        for idx, (label, config) in enumerate(jobs):
            with obs.span("simulate", "sim", config=label):
                report = NvWaAccelerator(config).run(workload)
            results.append(summarize(report))
            base_pid = 10 * (idx + 1)
            extra_events += obs.utilization_events(
                report.su_trace, pid=base_pid,
                process_name=f"{label} SUs")
            extra_events += obs.utilization_events(
                report.eu_trace, pid=base_pid + 1,
                process_name=f"{label} EUs")
        nvwa, base = results
    else:
        nvwa, base = simulate_many(
            [(config, workload, None) for _, config in jobs],
            parallelism=parallelism)
    print(f"workload: {source}, {workload.total_hits} hits")
    print(f"NvWa:    {nvwa.cycles:>10,} cycles  "
          f"{nvwa.kreads_per_second:>12,.0f} Kreads/s  "
          f"SU {nvwa.su_utilization:.0%}  EU {nvwa.eu_utilization:.0%}")
    print(f"SUs+EUs: {base.cycles:>10,} cycles  "
          f"{base.kreads_per_second:>12,.0f} Kreads/s  "
          f"SU {base.su_utilization:.0%}  EU {base.eu_utilization:.0%}")
    print(f"scheduling speedup: {base.cycles / nvwa.cycles:.2f}x")
    if trace_out:
        _write_trace(trace_out, extra_events=extra_events)
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.runner import run_experiments
    for result in run_experiments(args.names, quick=args.quick,
                                  csv_dir=args.csv_dir,
                                  exec_config=_execution_config(args)):
        print(result.format())
        print()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import logging
    import signal

    from repro.genome.io import read_reference
    from repro.service.server import AlignmentServer, ServerConfig

    logging.basicConfig(
        level=logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s")
    trace_out = _start_tracing(args)
    reference = read_reference(args.reference)
    if args.index:
        _open_index_for(reference, args.index)  # fail fast on mismatch
        print(f"index store: {args.index} (mmap-attached per worker)",
              flush=True)
    config = ServerConfig(
        host=args.host, port=args.port, unix_path=args.unix_socket,
        max_batch=args.max_batch, max_wait_ms=args.max_wait_ms,
        queue_depth=args.queue_depth, workers=args.workers,
        request_timeout_s=args.request_timeout_ms / 1000.0,
        batch_extension=not args.no_batch_extension,
        stats_interval_s=args.stats_interval,
        breaker_threshold=args.breaker_threshold,
        breaker_window_s=args.breaker_window,
        breaker_cooldown_s=args.breaker_cooldown,
        index_path=args.index)
    fault_injector = None
    if args.fault_plan:
        from repro.faults.plan import named_plan
        fault_injector = named_plan(args.fault_plan,
                                    args.fault_seed).injector()
        print(f"fault injection armed: plan={args.fault_plan} "
              f"seed={args.fault_seed}", flush=True)

    async def serve() -> None:
        server = AlignmentServer(reference, config=config,
                                 fault_injector=fault_injector)
        await server.start()
        print(f"serving on {server.endpoint}", flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_event_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except NotImplementedError:  # non-UNIX event loops
                signal.signal(sig, lambda *_: stop.set())
        serve_task = asyncio.ensure_future(server.serve_forever())
        await stop.wait()
        print("shutting down: draining queued requests...", flush=True)
        serve_task.cancel()
        await server.shutdown(drain=True)

    asyncio.run(serve())
    _write_trace(trace_out)
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    import asyncio
    import logging
    import signal
    import tempfile

    from repro.cluster import ClusterGateway, ClusterSupervisor, \
        GatewayConfig

    logging.basicConfig(
        level=logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s")
    from repro.cluster import RestartPolicy

    trace_out = _start_tracing(args)
    workdir = args.workdir or tempfile.mkdtemp(prefix="repro-cluster-")
    supervisor = ClusterSupervisor(
        reference_path=args.reference, workdir=workdir,
        shards=args.shards, replicas=args.replicas,
        index_path=args.index, workers=args.workers,
        max_batch=args.max_batch, max_wait_ms=args.max_wait_ms,
        restart_policy=RestartPolicy(
            backoff_base_s=args.restart_backoff,
            crash_loop_threshold=args.crash_loop_threshold,
            crash_loop_window_s=args.crash_loop_window))
    config = GatewayConfig(
        host=args.host, port=args.port, unix_path=args.unix_socket,
        hedge_delay_ms=args.hedge_delay_ms,
        health_interval_s=args.health_interval,
        request_timeout_s=args.request_timeout_ms / 1000.0,
        shard_concurrency=args.shard_concurrency,
        queue_depth=args.queue_depth,
        default_budget_ms=args.default_budget_ms)

    async def serve() -> None:
        gateway = ClusterGateway(topology, config=config)
        await gateway.start()
        supervisor.write_state(gateway_endpoint=gateway.endpoint)
        if not args.no_auto_restart:
            supervisor.start_monitor(
                interval_s=args.monitor_interval,
                on_event=gateway.supervisor_listener())
            print(f"self-healing armed: monitor every "
                  f"{args.monitor_interval}s, backoff from "
                  f"{args.restart_backoff}s, crash-loop eject after "
                  f"{args.crash_loop_threshold} deaths/"
                  f"{args.crash_loop_window}s", flush=True)
        print(f"cluster state: {supervisor.state_path}", flush=True)
        print(f"serving on {gateway.endpoint}", flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_event_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except NotImplementedError:  # non-UNIX event loops
                signal.signal(sig, lambda *_: stop.set())
        serve_task = asyncio.ensure_future(gateway.serve_forever())
        await stop.wait()
        print("shutting down: draining gateway...", flush=True)
        supervisor.stop_monitor()
        serve_task.cancel()
        await gateway.shutdown()

    try:
        topology = supervisor.start()
        print(f"spawned {len(topology.backends)} backends "
              f"({topology.shards} shard(s) x {topology.replicas} "
              f"replica(s)) in {workdir}", flush=True)
        asyncio.run(serve())
    finally:
        supervisor.stop(graceful=True)
    _write_trace(trace_out)
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.service import loadgen

    trace_out = _start_tracing(args)
    if args.reads_file:
        from repro.genome.io import parse_fastq
        reads = list(parse_fastq(args.reads_file))[:args.requests]
        specs = loadgen.workload_from_reads(reads)
    else:
        from repro.genome.io import read_reference
        reference = read_reference(args.reference)
        specs = loadgen.build_workload(
            reference, args.requests, read_length=args.read_length,
            seed=args.seed, pair_fraction=args.pair_fraction)
    retry = None
    if args.retries > 0:
        from repro.faults.retry import RetryPolicy
        retry = RetryPolicy(max_attempts=args.retries + 1,
                            seed=args.seed)
    config = loadgen.LoadgenConfig(
        concurrency=args.concurrency, mode=args.mode, rate=args.rate,
        wait_ready_s=args.wait_ready, retry=retry,
        budget_ms=args.budget_ms)
    report = loadgen.run(args.connect, specs, config=config)
    print(report.format())
    failures = []
    if report.dropped:
        failures.append(f"{report.dropped} requests got no response")
    if report.error_count and not args.allow_errors:
        failures.append(f"{report.error_count} requests errored")
    if args.max_p99_ms is not None and report.p99_ms > args.max_p99_ms:
        failures.append(f"p99 {report.p99_ms:.1f} ms exceeds "
                        f"--max-p99-ms {args.max_p99_ms}")
    for failure in failures:
        print(f"FAIL: {failure}")
    _write_trace(trace_out)
    return 1 if failures else 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults.chaos import run_chaos

    trace_out = _start_tracing(args)
    report = run_chaos(plan_name=args.fault_plan, seed=args.seed,
                       requests=args.requests,
                       pair_fraction=args.pair_fraction,
                       parallelism=args.parallelism,
                       cluster_backends=args.cluster_backends)
    print(report.format())
    _write_trace(trace_out)
    return 0 if report.passed else 1


def _cmd_obs_export(args: argparse.Namespace) -> int:
    """Metrics snapshot → Prometheus text exposition."""
    import json

    from repro.obs import prometheus_text

    if args.connect:
        from repro.service.client import ServiceClient, parse_endpoint
        host, port, unix_path = parse_endpoint(args.connect)
        client = ServiceClient(host=host, port=port, unix_path=unix_path)
        try:
            stats = client.stats()
        finally:
            client.close()
    else:
        with open(args.stats_json, "r", encoding="utf-8") as handle:
            stats = json.load(handle)
    snapshot = stats.get("metrics", stats)
    kwargs = {} if args.prefix is None else {"prefix": args.prefix}
    text = prometheus_text(snapshot, **kwargs)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.out}")
    else:
        print(text, end="")
    return 0


def _cmd_obs_validate(args: argparse.Namespace) -> int:
    """Check a Chrome trace file; nonzero exit on problems."""
    import json

    from repro.obs import trace_problems

    with open(args.trace, "r", encoding="utf-8") as handle:
        try:
            trace = json.load(handle)
        except json.JSONDecodeError as exc:
            print(f"FAIL: {args.trace} is not valid JSON: {exc}")
            return 1
    problems = trace_problems(trace)
    events = trace.get("traceEvents", [])
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}")
        return 1
    spans = sum(1 for e in events if e.get("ph") == "X")
    print(f"ok: {len(events)} events ({spans} spans) in {args.trace}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import run_lint
    return run_lint(args)


def _cmd_report_card(args: argparse.Namespace) -> int:
    from repro.experiments.report_card import format_card, run
    criteria = run(quick=args.quick)
    print(format_card(criteria))
    return 0 if all(c.passed for c in criteria) else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NvWa (HPCA 2023) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("simulate", help="generate a reference + reads")
    p.add_argument("--length", type=int, default=100_000)
    p.add_argument("--chromosomes", type=int, default=2)
    p.add_argument("--reads", type=int, default=500)
    p.add_argument("--read-length", type=int, default=101)
    p.add_argument("--error-rate", type=float, default=0.001)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out-prefix", required=True)
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("index",
                       help="build / inspect / verify the on-disk "
                            "memory-mapped FM-index store")
    index_sub = p.add_subparsers(dest="index_command", required=True)
    p = index_sub.add_parser(
        "build", help="serialize the FM-index of a FASTA reference")
    p.add_argument("--reference", required=True, help="FASTA to index")
    p.add_argument("--out", required=True, help="index store path (.idx)")
    p.add_argument("--occ-interval", type=int, default=128,
                   help="Occ checkpoint spacing (paper: 128)")
    p.add_argument("--sa-sample", type=int, default=1,
                   help="keep every Nth suffix-array entry (1 = full SA)")
    p.add_argument("--trace-out", metavar="FILE",
                   help="write a Chrome trace of the build")
    p.set_defaults(func=_cmd_index_build)
    p = index_sub.add_parser(
        "inspect", help="print a store's header and array table as JSON")
    p.add_argument("path", help="index store path")
    p.set_defaults(func=_cmd_index_inspect)
    p = index_sub.add_parser(
        "verify", help="re-hash every array payload; nonzero on corruption")
    p.add_argument("path", help="index store path")
    p.set_defaults(func=_cmd_index_verify)

    p = sub.add_parser("align", help="align FASTQ reads to a FASTA reference")
    p.add_argument("--reference", required=True)
    p.add_argument("--reads", required=True)
    p.add_argument("--out", help="SAM output path")
    p.add_argument("--index",
                   help="prebuilt index store (repro index build); "
                        "memory-mapped instead of rebuilding the FM-index")
    p.add_argument("--long", action="store_true",
                   help="use the long-read (chain-then-fill) pipeline")
    p.add_argument("--parallelism", type=int, default=1,
                   help="align shards in N worker processes")
    p.add_argument("--shard-size", type=int, default=256,
                   help="reads per shard for parallel alignment")
    p.add_argument("--batch-extension", action="store_true",
                   help="vectorize same-shaped extension jobs")
    p.add_argument("--trace-out", metavar="FILE",
                   help="write a Chrome trace of the pipeline stages")
    p.set_defaults(func=_cmd_align)

    p = sub.add_parser("accelerate",
                       help="simulate NvWa vs the SUs+EUs baseline")
    p.add_argument("--dataset", default="H.s.")
    p.add_argument("--reads", type=int, default=2000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--reference", help="FASTA (with --reads-file)")
    p.add_argument("--reads-file", help="FASTQ (with --reference)")
    p.add_argument("--parallelism", type=int, default=1,
                   help="simulate configurations in N worker processes")
    p.add_argument("--cache-dir",
                   help="artifact cache for synthetic workloads")
    p.add_argument("--trace-out", metavar="FILE",
                   help="write a Chrome trace incl. SU/EU busy intervals")
    p.set_defaults(func=_cmd_accelerate)

    p = sub.add_parser("experiments", help="regenerate paper exhibits")
    p.add_argument("names", nargs="*",
                   help="exhibit keys (fig11, table2, ...); empty = all")
    p.add_argument("--quick", action="store_true")
    p.add_argument("--csv-dir", help="also write CSVs here")
    p.add_argument("--parallelism", type=int, default=1,
                   help="fan independent simulations over N workers")
    p.add_argument("--cache-dir",
                   help="memoize genomes/indexes/read sets/workloads here")
    p.set_defaults(func=_cmd_experiments)

    p = sub.add_parser("serve",
                       help="run the online alignment service")
    p.add_argument("--reference", required=True, help="FASTA to serve")
    p.add_argument("--index",
                   help="prebuilt index store (repro index build); each "
                        "worker memory-maps it instead of rebuilding")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7878,
                   help="TCP port (0 = ephemeral)")
    p.add_argument("--unix-socket",
                   help="serve on a UNIX socket instead of TCP")
    p.add_argument("--max-batch", type=int, default=64,
                   help="dispatch a batch as soon as it reaches this size")
    p.add_argument("--max-wait-ms", type=float, default=2.0,
                   help="longest a lone request waits for batchmates")
    p.add_argument("--queue-depth", type=int, default=1024,
                   help="admission bound; beyond it requests are rejected")
    p.add_argument("--workers", type=int, default=2,
                   help="engine worker threads (one aligner each)")
    p.add_argument("--request-timeout-ms", type=float, default=30_000.0,
                   help="per-request deadline (0 disables)")
    p.add_argument("--no-batch-extension", action="store_true",
                   help="disable the vectorized extension kernels")
    p.add_argument("--stats-interval", type=float, default=10.0,
                   help="seconds between stats log lines (0 disables)")
    p.add_argument("--breaker-threshold", type=int, default=8,
                   help="worker crashes in the window before the circuit "
                        "breaker sheds new work with 'busy'")
    p.add_argument("--breaker-window", type=float, default=10.0,
                   help="sliding failure window seconds")
    p.add_argument("--breaker-cooldown", type=float, default=2.0,
                   help="seconds in degraded mode before a half-open probe")
    p.add_argument("--fault-plan", choices=["ci-default", "soak", "none"],
                   help="arm seeded fault injection with this named plan")
    p.add_argument("--fault-seed", type=int, default=7,
                   help="seed for --fault-plan schedules")
    p.add_argument("--trace-out", metavar="FILE",
                   help="write a Chrome trace of request/batch/kernel "
                        "spans at shutdown")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("cluster",
                       help="run a gateway + backend fleet (scatter/"
                            "gather, hedging, health-checked membership)")
    p.add_argument("--reference", required=True, help="FASTA to serve")
    p.add_argument("--index",
                   help="prebuilt full-reference index store; backends "
                        "mmap-attach it (replicated mode only)")
    p.add_argument("--shards", type=int, default=1,
                   help="partition the reference over N shard groups "
                        "(scatter/gather when > 1)")
    p.add_argument("--replicas", type=int, default=3,
                   help="backends per shard group")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7900,
                   help="gateway TCP port (0 = ephemeral)")
    p.add_argument("--unix-socket",
                   help="gateway UNIX socket instead of TCP")
    p.add_argument("--workers", type=int, default=2,
                   help="engine worker threads per backend")
    p.add_argument("--max-batch", type=int, default=64,
                   help="per-backend batch size bound")
    p.add_argument("--max-wait-ms", type=float, default=2.0,
                   help="per-backend batch formation wait")
    p.add_argument("--hedge-delay-ms", type=float, default=50.0,
                   help="launch a hedged replica request after this "
                        "long without a response (0 disables)")
    p.add_argument("--health-interval", type=float, default=0.5,
                   help="seconds between backend health pings "
                        "(0 disables eject/readmit)")
    p.add_argument("--request-timeout-ms", type=float, default=30_000.0,
                   help="gateway per-request deadline (0 disables)")
    p.add_argument("--shard-concurrency", type=int, default=64,
                   help="concurrent requests admitted per shard before "
                        "the admission queue engages")
    p.add_argument("--queue-depth", type=int, default=256,
                   help="waiting slots per shard admission queue "
                        "(0 = shed immediately at capacity)")
    p.add_argument("--default-budget-ms", type=float, default=0.0,
                   help="deadline budget applied to requests that do "
                        "not carry budget_ms (0 = none)")
    p.add_argument("--no-auto-restart", action="store_true",
                   help="disable the self-healing monitor loop "
                        "(dead backends stay dead)")
    p.add_argument("--monitor-interval", type=float, default=0.5,
                   help="seconds between supervisor liveness sweeps")
    p.add_argument("--restart-backoff", type=float, default=0.25,
                   help="base restart backoff seconds (doubles per "
                        "rapid death, capped)")
    p.add_argument("--crash-loop-threshold", type=int, default=5,
                   help="deaths inside the crash-loop window before a "
                        "backend is permanently ejected")
    p.add_argument("--crash-loop-window", type=float, default=30.0,
                   help="crash-loop detection window seconds")
    p.add_argument("--workdir",
                   help="scratch dir for shard FASTAs/indexes/logs/"
                        "cluster.json (default: a fresh temp dir)")
    p.add_argument("--trace-out", metavar="FILE",
                   help="write a Chrome trace of route/hedge/gather "
                        "spans at shutdown")
    p.set_defaults(func=_cmd_cluster)

    p = sub.add_parser("loadgen",
                       help="benchmark a running alignment service")
    p.add_argument("--connect", required=True,
                   help="host:port or unix:/path of the server")
    p.add_argument("--reference",
                   help="FASTA to sample request reads from")
    p.add_argument("--reads-file",
                   help="FASTQ of requests (instead of sampling)")
    p.add_argument("--requests", type=int, default=200)
    p.add_argument("--concurrency", type=int, default=64,
                   help="closed-loop in-flight request bound")
    p.add_argument("--mode", choices=["closed", "open"], default="closed")
    p.add_argument("--rate", type=float, default=200.0,
                   help="open-loop arrivals per second")
    p.add_argument("--pair-fraction", type=float, default=0.0,
                   help="fraction of requests that are read pairs")
    p.add_argument("--read-length", type=int, default=101)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--wait-ready", type=float, default=0.0,
                   help="retry the initial connect for this many seconds")
    p.add_argument("--retries", type=int, default=0,
                   help="per-request retries (reconnect on drops, back "
                        "off on busy/overloaded, idempotency-key dedup)")
    p.add_argument("--budget-ms", type=float, default=None,
                   help="per-request deadline budget carried on the "
                        "wire; gateways shed expired queue waits with "
                        "'queue_timeout' instead of 'busy'")
    p.add_argument("--max-p99-ms", type=float,
                   help="exit nonzero if p99 latency exceeds this")
    p.add_argument("--allow-errors", action="store_true",
                   help="do not fail the run on rejected/errored requests")
    p.add_argument("--trace-out", metavar="FILE",
                   help="write a Chrome trace of client request spans")
    p.set_defaults(func=_cmd_loadgen)

    p = sub.add_parser("chaos",
                       help="run the seeded fault-injection acceptance "
                            "harness and gate on its invariants")
    p.add_argument("--fault-plan", default="ci-default",
                   choices=["ci-default", "soak", "cluster-restart",
                            "none"],
                   help="named fault plan to inject")
    p.add_argument("--seed", type=int, default=7,
                   help="fault schedule + retry jitter seed")
    p.add_argument("--requests", type=int, default=24,
                   help="loadgen requests per service phase")
    p.add_argument("--pair-fraction", type=float, default=0.25,
                   help="fraction of requests that are mate pairs")
    p.add_argument("--parallelism", type=int, default=2,
                   help="worker processes for the sharded phase")
    p.add_argument("--cluster-backends", type=int, default=3,
                   help="replicated gateway backends for the backend-"
                        "kill phase (0 skips the cluster phase)")
    p.add_argument("--trace-out", metavar="FILE",
                   help="write a Chrome trace of the whole chaos run")
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser("obs", help="tracing / metrics export utilities")
    obs_sub = p.add_subparsers(dest="obs_command", required=True)
    p = obs_sub.add_parser(
        "export", help="render a metrics snapshot as Prometheus text")
    p.add_argument("--connect",
                   help="host:port or unix:/path of a live server")
    p.add_argument("--stats-json",
                   help="saved stats JSON instead of a live server")
    p.add_argument("--prefix", default=None,
                   help="metric name prefix (default repro_)")
    p.add_argument("--out", help="write here instead of stdout")
    p.set_defaults(func=_cmd_obs_export)
    p = obs_sub.add_parser(
        "validate", help="check a Chrome trace file for well-formedness")
    p.add_argument("trace", help="trace JSON path")
    p.set_defaults(func=_cmd_obs_validate)

    p = sub.add_parser("lint",
                       help="run the determinism/concurrency analyzer")
    from repro.lint.cli import add_lint_arguments
    add_lint_arguments(p)
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser("report-card",
                       help="check every reproduction criterion")
    p.add_argument("--quick", action="store_true")
    p.set_defaults(func=_cmd_report_card)
    return parser


def _validate(parser: argparse.ArgumentParser,
              args: argparse.Namespace) -> None:
    """Reject bad knob values with a clear message, not a traceback."""
    if getattr(args, "parallelism", 1) < 1:
        parser.error(f"--parallelism must be >= 1, got {args.parallelism}")
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir is not None:
        parent = os.path.dirname(os.path.abspath(cache_dir)) or os.sep
        if not os.path.isdir(parent):
            parser.error(
                f"--cache-dir parent directory does not exist: {parent}")
    if getattr(args, "command", None) == "loadgen":
        if args.requests < 1:
            parser.error(f"--requests must be >= 1, got {args.requests}")
        if args.concurrency < 1:
            parser.error(
                f"--concurrency must be >= 1, got {args.concurrency}")
        if not args.reads_file and not args.reference:
            parser.error("loadgen needs --reference or --reads-file")
        if args.retries < 0:
            parser.error(f"--retries must be >= 0, got {args.retries}")
        if args.budget_ms is not None and args.budget_ms <= 0:
            parser.error(
                f"--budget-ms must be positive, got {args.budget_ms}")
    if getattr(args, "command", None) == "chaos":
        if args.requests < 1:
            parser.error(f"--requests must be >= 1, got {args.requests}")
        if not 0.0 <= args.pair_fraction <= 1.0:
            parser.error(f"--pair-fraction must be in [0, 1], "
                         f"got {args.pair_fraction}")
        if args.cluster_backends < 0:
            parser.error(f"--cluster-backends must be >= 0, "
                         f"got {args.cluster_backends}")
    if getattr(args, "command", None) == "cluster":
        for name in ("shards", "replicas", "workers", "max_batch",
                     "shard_concurrency", "crash_loop_threshold"):
            value = getattr(args, name)
            if value < 1:
                flag = "--" + name.replace("_", "-")
                parser.error(f"{flag} must be >= 1, got {value}")
        if args.queue_depth < 0:
            parser.error(
                f"--queue-depth must be >= 0, got {args.queue_depth}")
        if args.default_budget_ms < 0:
            parser.error(f"--default-budget-ms must be >= 0, "
                         f"got {args.default_budget_ms}")
        if args.restart_backoff <= 0 or args.crash_loop_window <= 0:
            parser.error("--restart-backoff and --crash-loop-window "
                         "must be positive")
        if args.monitor_interval <= 0:
            parser.error(f"--monitor-interval must be positive, "
                         f"got {args.monitor_interval}")
        if args.index and args.shards > 1:
            parser.error("--index applies to replicated mode only; "
                         "sharded mode builds per-shard stores itself")
    if (getattr(args, "command", None) == "obs"
            and getattr(args, "obs_command", None) == "export"):
        if not args.connect and not args.stats_json:
            parser.error("obs export needs --connect or --stats-json")
        if args.connect and args.stats_json:
            parser.error("obs export takes --connect or --stats-json, "
                         "not both")
    if (getattr(args, "command", None) == "index"
            and getattr(args, "index_command", None) == "build"):
        if args.occ_interval < 1:
            parser.error(
                f"--occ-interval must be >= 1, got {args.occ_interval}")
        if args.sa_sample < 1:
            parser.error(f"--sa-sample must be >= 1, got {args.sa_sample}")
    if getattr(args, "command", None) == "serve":
        for name in ("max_batch", "queue_depth", "workers"):
            value = getattr(args, name)
            if value < 1:
                flag = "--" + name.replace("_", "-")
                parser.error(f"{flag} must be >= 1, got {value}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    _validate(parser, args)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
