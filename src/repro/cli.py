"""Command-line interface.

Subcommands::

    python -m repro.cli simulate  --length 100000 --reads 500 --out-prefix x
    python -m repro.cli align     --reference x.fa --reads x.fq --out x.sam
    python -m repro.cli align     --reference x.fa --reads x.fq --long
    python -m repro.cli accelerate --dataset H.s. --reads 2000
    python -m repro.cli accelerate --reference x.fa --reads-file x.fq
    python -m repro.cli experiments fig11 fig13 --quick
    python -m repro.cli experiments --parallelism 4 --cache-dir .cache/

``--parallelism N`` fans work out over N worker processes and
``--cache-dir DIR`` memoizes deterministic inputs on disk; results are
bit-identical to the serial, uncached run for every worker count.
"""

from __future__ import annotations

import argparse
from typing import List, Optional


def _execution_config(args: argparse.Namespace):
    """An ExecutionConfig from --parallelism/--cache-dir, or ``None``."""
    parallelism = getattr(args, "parallelism", None) or 1
    cache_dir = getattr(args, "cache_dir", None)
    if parallelism == 1 and cache_dir is None:
        return None
    from repro.experiments.common import ExecutionConfig
    return ExecutionConfig(parallelism=parallelism, cache_dir=cache_dir)


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.genome.io import write_fasta, write_fastq
    from repro.genome.reads import ErrorModel, ReadSimulator
    from repro.genome.reference import SyntheticReference

    reference = SyntheticReference(length=args.length,
                                  chromosomes=args.chromosomes,
                                  seed=args.seed).build()
    error = ErrorModel(substitution_rate=args.error_rate,
                       insertion_rate=args.error_rate / 10,
                       deletion_rate=args.error_rate / 10)
    reads = ReadSimulator(reference, read_length=args.read_length,
                          error_model=error, seed=args.seed).simulate(
                              args.reads)
    fasta = f"{args.out_prefix}.fa"
    fastq = f"{args.out_prefix}.fq"
    write_fasta(reference, fasta)
    write_fastq(reads, fastq)
    print(f"wrote {fasta} ({len(reference):,} bp) and {fastq} "
          f"({len(reads)} reads)")
    return 0


def _cmd_align(args: argparse.Namespace) -> int:
    from repro.analysis.accuracy import evaluate
    from repro.genome.io import parse_fastq, read_reference

    reference = read_reference(args.reference)
    reads = list(parse_fastq(args.reads))
    if args.long:
        from repro.align.long_read import LongReadAligner
        aligner = LongReadAligner(reference)
        results = aligner.align_all(reads)
        mapped = sum(1 for r in results if r.aligned)
        print(f"long-read mode: mapped {mapped}/{len(reads)} reads")
        if args.out:
            print("note: SAM output currently covers the short-read "
                  "pipeline; long-read results printed only")
        return 0

    from repro.align.sam import write_sam

    if args.parallelism > 1:
        from repro.runtime.sharded import ShardedRunner
        runner = ShardedRunner(parallelism=args.parallelism,
                               shard_size=args.shard_size)
        results = runner.align(reference, reads,
                               batch_extension=args.batch_extension)
    else:
        from repro.align.pipeline import SoftwareAligner
        aligner = SoftwareAligner(reference)
        results = aligner.align_all(reads,
                                    batch_extension=args.batch_extension)
    report = evaluate(results, reference)
    print(f"mapped {report.mapped}/{report.total} reads "
          f"({report.mapped_fraction:.1%})")
    if args.out:
        write_sam(results, reference, args.out)
        print(f"wrote {args.out}")
    return 0


def _cmd_accelerate(args: argparse.Namespace) -> int:
    from repro.core import baseline
    from repro.runtime.sweep import simulate_many

    exec_config = _execution_config(args)
    parallelism = exec_config.parallelism if exec_config else 1
    cache = exec_config.cache() if exec_config else None

    if args.reference and args.reads_file:
        from repro.align.pipeline import SoftwareAligner
        from repro.core import workload_from_pipeline
        from repro.genome.io import parse_fastq, read_reference
        reference = read_reference(args.reference)
        reads = list(parse_fastq(args.reads_file))
        results = SoftwareAligner(reference).align_all(reads)
        workload = workload_from_pipeline(results)
        source = f"{len(reads)} reads from {args.reads_file}"
    else:
        from repro.genome.datasets import get_dataset
        from repro.runtime.artifacts import cached_synthetic_workload
        profile = get_dataset(args.dataset)
        workload = cached_synthetic_workload(cache, profile, args.reads,
                                             seed=args.seed)
        source = f"{args.reads} synthetic {profile.name} reads"

    jobs = [(baseline.nvwa(), workload, None),
            (baseline.sus_eus_baseline(), workload, None)]
    nvwa, base = simulate_many(jobs, parallelism=parallelism)
    print(f"workload: {source}, {workload.total_hits} hits")
    print(f"NvWa:    {nvwa.cycles:>10,} cycles  "
          f"{nvwa.kreads_per_second:>12,.0f} Kreads/s  "
          f"SU {nvwa.su_utilization:.0%}  EU {nvwa.eu_utilization:.0%}")
    print(f"SUs+EUs: {base.cycles:>10,} cycles  "
          f"{base.kreads_per_second:>12,.0f} Kreads/s  "
          f"SU {base.su_utilization:.0%}  EU {base.eu_utilization:.0%}")
    print(f"scheduling speedup: {base.cycles / nvwa.cycles:.2f}x")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.runner import run_experiments
    for result in run_experiments(args.names, quick=args.quick,
                                  csv_dir=args.csv_dir,
                                  exec_config=_execution_config(args)):
        print(result.format())
        print()
    return 0


def _cmd_report_card(args: argparse.Namespace) -> int:
    from repro.experiments.report_card import format_card, run
    criteria = run(quick=args.quick)
    print(format_card(criteria))
    return 0 if all(c.passed for c in criteria) else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NvWa (HPCA 2023) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("simulate", help="generate a reference + reads")
    p.add_argument("--length", type=int, default=100_000)
    p.add_argument("--chromosomes", type=int, default=2)
    p.add_argument("--reads", type=int, default=500)
    p.add_argument("--read-length", type=int, default=101)
    p.add_argument("--error-rate", type=float, default=0.001)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out-prefix", required=True)
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("align", help="align FASTQ reads to a FASTA reference")
    p.add_argument("--reference", required=True)
    p.add_argument("--reads", required=True)
    p.add_argument("--out", help="SAM output path")
    p.add_argument("--long", action="store_true",
                   help="use the long-read (chain-then-fill) pipeline")
    p.add_argument("--parallelism", type=int, default=1,
                   help="align shards in N worker processes")
    p.add_argument("--shard-size", type=int, default=256,
                   help="reads per shard for parallel alignment")
    p.add_argument("--batch-extension", action="store_true",
                   help="vectorize same-shaped extension jobs")
    p.set_defaults(func=_cmd_align)

    p = sub.add_parser("accelerate",
                       help="simulate NvWa vs the SUs+EUs baseline")
    p.add_argument("--dataset", default="H.s.")
    p.add_argument("--reads", type=int, default=2000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--reference", help="FASTA (with --reads-file)")
    p.add_argument("--reads-file", help="FASTQ (with --reference)")
    p.add_argument("--parallelism", type=int, default=1,
                   help="simulate configurations in N worker processes")
    p.add_argument("--cache-dir",
                   help="artifact cache for synthetic workloads")
    p.set_defaults(func=_cmd_accelerate)

    p = sub.add_parser("experiments", help="regenerate paper exhibits")
    p.add_argument("names", nargs="*",
                   help="exhibit keys (fig11, table2, ...); empty = all")
    p.add_argument("--quick", action="store_true")
    p.add_argument("--csv-dir", help="also write CSVs here")
    p.add_argument("--parallelism", type=int, default=1,
                   help="fan independent simulations over N workers")
    p.add_argument("--cache-dir",
                   help="memoize genomes/indexes/read sets/workloads here")
    p.set_defaults(func=_cmd_experiments)

    p = sub.add_parser("report-card",
                       help="check every reproduction criterion")
    p.add_argument("--quick", action="store_true")
    p.set_defaults(func=_cmd_report_card)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "parallelism", 1) < 1:
        parser.error(f"--parallelism must be >= 1, got {args.parallelism}")
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
