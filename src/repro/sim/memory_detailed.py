"""Request-level DRAM scheduling (the detailed half of the Ramulator
substitute).

:mod:`repro.sim.memory` charges summary burst latencies — fast, and what
the accelerator model consumes. This module provides the request-level
view underneath it: per-bank queues, FR-FCFS arbitration (row hits first,
then oldest), a shared data bus, and per-request completion times. Tests
cross-validate the summary model's assumptions (row-hit fractions,
bank-level parallelism) against this detailed one.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.sim.memory import HBM_1_0, MemorySpec


@dataclass(frozen=True)
class Request:
    """One memory request."""

    request_id: int
    address: int
    size_bytes: int
    issue_time: int

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError("address must be >= 0")
        if self.size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        if self.issue_time < 0:
            raise ValueError("issue_time must be >= 0")


@dataclass(frozen=True)
class Completion:
    """A serviced request."""

    request: Request
    start_time: int
    finish_time: int
    row_hit: bool

    @property
    def latency(self) -> int:
        return self.finish_time - self.request.issue_time


class DetailedMemory:
    """FR-FCFS request scheduler over banked DRAM.

    Semantics: each bank services one request at a time; among a bank's
    queued requests, row hits are preferred (FR), ties broken by age
    (FCFS). Completions additionally serialise on a shared data bus with
    ``bytes / bandwidth`` occupancy.
    """

    def __init__(self, spec: MemorySpec = HBM_1_0):
        self.spec = spec
        self._counter = itertools.count()
        self._pending: List[Request] = []

    def submit(self, address: int, size_bytes: int = 64,
               issue_time: int = 0) -> Request:
        """Queue a request; call :meth:`drain` to service everything."""
        request = Request(request_id=next(self._counter), address=address,
                          size_bytes=size_bytes, issue_time=issue_time)
        self._pending.append(request)
        return request

    def drain(self) -> List[Completion]:
        """Service all submitted requests; returns completions in finish
        order and clears the queue."""
        requests = sorted(self._pending,
                          key=lambda r: (r.issue_time, r.request_id))
        self._pending = []

        bank_queue: Dict[int, List[Request]] = {}
        for request in requests:
            bank_queue.setdefault(self._bank(request.address),
                                  []).append(request)

        open_rows: Dict[int, Optional[int]] = {}
        bank_free: Dict[int, int] = {}
        bus_free = 0
        completions: List[Completion] = []
        # event loop: repeatedly pick, per bank, the FR-FCFS winner among
        # arrived requests; process banks in time order.
        heap: List[Tuple[int, int]] = []  # (ready_time, bank)
        for bank, queue in bank_queue.items():
            heap.append((queue[0].issue_time, bank))
        heapq.heapify(heap)

        while heap:
            ready, bank = heapq.heappop(heap)
            queue = bank_queue[bank]
            if not queue:
                continue
            now = max(ready, bank_free.get(bank, 0))
            arrived = [r for r in queue if r.issue_time <= now] or [queue[0]]
            open_row = open_rows.get(bank)
            hits = [r for r in arrived
                    if self._row(r.address) == open_row]
            winner = min(hits or arrived,
                         key=lambda r: (r.issue_time, r.request_id))
            queue.remove(winner)
            row = self._row(winner.address)
            row_hit = row == open_row
            start = max(now, winner.issue_time)
            service = (self.spec.row_hit_latency if row_hit
                       else self.spec.row_miss_latency)
            transfer = -(-winner.size_bytes
                         // self.spec.bandwidth_bytes_per_cycle)
            data_ready = start + service
            bus_start = max(data_ready, bus_free)
            finish = bus_start + transfer
            bus_free = finish
            open_rows[bank] = row
            bank_free[bank] = data_ready
            completions.append(Completion(request=winner, start_time=start,
                                          finish_time=finish,
                                          row_hit=row_hit))
            if queue:
                heapq.heappush(heap, (max(queue[0].issue_time,
                                          bank_free[bank]), bank))
        completions.sort(key=lambda c: c.finish_time)
        return completions

    def _row(self, address: int) -> int:
        return address // self.spec.row_bytes

    def _bank(self, address: int) -> int:
        return self._row(address) % self.spec.banks


def observed_row_hit_fraction(completions: List[Completion]) -> float:
    """Row-hit rate of a drained request stream."""
    if not completions:
        return 0.0
    return sum(1 for c in completions if c.row_hit) / len(completions)


def observed_parallelism(completions: List[Completion]) -> float:
    """Effective memory-level parallelism: Σ service / makespan.

    The quantity the summary model's ``parallelism`` knob approximates.
    """
    if not completions:
        return 0.0
    total_service = sum(c.finish_time - c.start_time for c in completions)
    start = min(c.start_time for c in completions)
    end = max(c.finish_time for c in completions)
    if end == start:
        return float(len(completions))
    return total_service / (end - start)
