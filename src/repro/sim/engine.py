"""Cycle-driven, event-based simulation kernel.

The paper: "We build a cycle-accurate and execution-driven simulator using
Python to model the microarchitectural behaviors and measure execution time
in the number of cycles." This kernel is that simulator's core: a
deterministic discrete-event engine whose time unit is one clock cycle at
the accelerator frequency (1 GHz in the paper's configuration).

Events scheduled for the same cycle run in insertion order, which gives the
same determinism as a synchronous hardware schedule: producers scheduled
before consumers observe a consistent cycle boundary.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional


class SimulationError(RuntimeError):
    """Raised on invalid scheduling or a runaway simulation."""


class Engine:
    """Discrete-event simulation engine with integer cycle time."""

    def __init__(self) -> None:
        self.now: int = 0
        self._queue = []
        self._counter = itertools.count()
        self._events_processed = 0

    def schedule(self, delay: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` cycles from now (delay >= 0)."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past ({delay})")
        heapq.heappush(self._queue,
                       (self.now + delay, next(self._counter), callback))

    def schedule_at(self, time: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute cycle ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time}, current time is {self.now}")
        heapq.heappush(self._queue, (time, next(self._counter), callback))

    @property
    def pending(self) -> int:
        """Number of events waiting in the queue."""
        return len(self._queue)

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def run(self, max_cycles: Optional[int] = None,
            max_events: int = 50_000_000) -> int:
        """Process events until the queue drains; returns the final cycle.

        Args:
            max_cycles: stop (without error) once time exceeds this.
            max_events: hard safety limit against livelocked models.
        """
        while self._queue:
            time, _, callback = self._queue[0]
            if max_cycles is not None and time > max_cycles:
                break
            heapq.heappop(self._queue)
            self.now = time
            self._events_processed += 1
            if self._events_processed > max_events:
                raise SimulationError(
                    f"exceeded {max_events} events — model livelock?")
            callback()
        return self.now

    def step(self) -> bool:
        """Process a single event; returns False when the queue is empty."""
        if not self._queue:
            return False
        time, _, callback = heapq.heappop(self._queue)
        self.now = time
        self._events_processed += 1
        callback()
        return True
