"""Cycle-level simulation substrate: engine, memory models, SPM, stats."""

from repro.sim.engine import Engine, SimulationError
from repro.sim.memory import DDR4, HBM_1_0, MemoryModel, MemorySpec, MemoryStats
from repro.sim.spm import Scratchpad, SPMStats
from repro.sim.memory_detailed import (
    Completion,
    DetailedMemory,
    Request,
    observed_parallelism,
    observed_row_hit_fraction,
)
from repro.sim.trace import ExecutionTrace, TraceEvent
from repro.sim.stats import (
    BusyInterval,
    CounterSet,
    ThroughputResult,
    UtilizationTrace,
)

__all__ = [
    "Engine", "SimulationError",
    "DDR4", "HBM_1_0", "MemoryModel", "MemorySpec", "MemoryStats",
    "Scratchpad", "SPMStats",
    "Completion", "DetailedMemory", "Request", "observed_parallelism",
    "observed_row_hit_fraction",
    "ExecutionTrace", "TraceEvent",
    "BusyInterval", "CounterSet", "ThroughputResult", "UtilizationTrace",
]
