"""On-chip scratchpad memory with prefetch support (the Read SPM).

Sec. IV-A: "the Read SPM is used to prefetch the reads that are to be
processed, hiding the access latency of DRAM." The model tracks occupancy
and hit/miss outcomes: a prefetched read costs one cycle to hand to an SU;
a missed read costs a DRAM round trip. The Seeding Scheduler keeps the SPM
topped up ahead of the allocator, which is what makes its loading time
"only one cycle" in Fig 12(a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set


@dataclass
class SPMStats:
    hits: int = 0
    misses: int = 0
    prefetches: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class Scratchpad:
    """A capacity-limited staging buffer for read descriptors.

    Args:
        capacity: number of reads the SPM can hold (paper: 512 KB of SPM;
            at ~128 B per encoded 101 bp read descriptor that is ~4096
            entries — callers pass the entry count).
        read_latency: cycles to hand a resident read to an SU.
        miss_penalty: cycles when the read must come from DRAM instead.
    """

    def __init__(self, capacity: int = 4096, read_latency: int = 1,
                 miss_penalty: int = 45):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if read_latency <= 0 or miss_penalty <= 0:
            raise ValueError("latencies must be positive")
        self.capacity = capacity
        self.read_latency = read_latency
        self.miss_penalty = miss_penalty
        self.stats = SPMStats()
        self._resident: Set[int] = set()

    @property
    def occupancy(self) -> int:
        return len(self._resident)

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self._resident)

    def prefetch(self, read_idx: int) -> bool:
        """Stage a read; returns False when the SPM is full."""
        if read_idx in self._resident:
            return True
        if len(self._resident) >= self.capacity:
            return False
        self._resident.add(read_idx)
        self.stats.prefetches += 1
        return True

    def fetch(self, read_idx: int) -> int:
        """Hand a read to an SU; returns the latency paid.

        A resident read leaves the SPM (its slot frees for the prefetcher)
        at ``read_latency``; a miss pays the DRAM ``miss_penalty``.
        """
        if read_idx in self._resident:
            self._resident.discard(read_idx)
            self.stats.hits += 1
            return self.read_latency
        self.stats.misses += 1
        return self.miss_penalty

    def evict(self, read_idx: int) -> None:
        """Drop a staged read (e.g. on pipeline flush)."""
        if read_idx in self._resident:
            self._resident.discard(read_idx)
            self.stats.evictions += 1

    def contains(self, read_idx: int) -> bool:
        return read_idx in self._resident
