"""Off-chip memory models (Ramulator substitute).

The paper integrates its Python simulator with Ramulator via SWIG to model
memory behaviour, and attaches NvWa to 256 GB/s HBM 1.0 (Table I) with an
energy cost of 7 pJ/bit (Sec. V-B). What the accelerator model actually
needs from the memory system is (a) the latency of an access as a function
of row-buffer locality, (b) a bandwidth ceiling, and (c) energy accounting
— all of which this bank-aware model provides deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class MemorySpec:
    """Timing/geometry parameters of an off-chip memory.

    Latencies are in accelerator cycles (1 GHz ⇒ 1 cycle = 1 ns).
    """

    name: str
    row_hit_latency: int
    row_miss_latency: int
    bandwidth_bytes_per_cycle: int
    banks: int
    row_bytes: int
    energy_pj_per_bit: float

    def __post_init__(self) -> None:
        if self.row_hit_latency <= 0 or self.row_miss_latency <= 0:
            raise ValueError("latencies must be positive")
        if self.row_miss_latency < self.row_hit_latency:
            raise ValueError("row miss cannot be faster than row hit")
        if self.bandwidth_bytes_per_cycle <= 0:
            raise ValueError("bandwidth must be positive")
        if self.banks <= 0 or self.row_bytes <= 0:
            raise ValueError("banks and row_bytes must be positive")


#: HBM 1.0 @ 256 GB/s (Table I), 7 pJ/bit (Sec. V-B).
HBM_1_0 = MemorySpec(name="HBM-1.0", row_hit_latency=18, row_miss_latency=45,
                     bandwidth_bytes_per_cycle=256, banks=32,
                     row_bytes=2048, energy_pj_per_bit=7.0)

#: DDR4-2133 @ 136.5 GB/s dual socket (the CPU baseline's memory, Table I).
DDR4 = MemorySpec(name="DDR4", row_hit_latency=22, row_miss_latency=58,
                  bandwidth_bytes_per_cycle=136, banks=16,
                  row_bytes=8192, energy_pj_per_bit=20.0)


@dataclass
class MemoryStats:
    """Aggregate traffic/energy accounting."""

    accesses: int = 0
    row_hits: int = 0
    row_misses: int = 0
    bytes_transferred: int = 0
    energy_pj: float = 0.0

    @property
    def row_hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.row_hits / self.accesses


class MemoryModel:
    """Bank-aware open-page memory with deterministic latencies.

    ``access`` returns the latency of one request and updates traffic and
    energy counters; it does not block — callers schedule completions on
    the engine themselves, which keeps unit models event-driven.
    """

    def __init__(self, spec: MemorySpec = HBM_1_0):
        self.spec = spec
        self.stats = MemoryStats()
        self._open_rows: Dict[int, int] = {}

    def access(self, address: int, size_bytes: int = 64) -> int:
        """Latency in cycles of a request at ``address``."""
        if address < 0:
            raise ValueError(f"address must be >= 0, got {address}")
        if size_bytes <= 0:
            raise ValueError(f"size_bytes must be positive, got {size_bytes}")
        row = address // self.spec.row_bytes
        bank = row % self.spec.banks
        hit = self._open_rows.get(bank) == row
        self._open_rows[bank] = row

        self.stats.accesses += 1
        self.stats.bytes_transferred += size_bytes
        self.stats.energy_pj += size_bytes * 8 * self.spec.energy_pj_per_bit
        if hit:
            self.stats.row_hits += 1
            latency = self.spec.row_hit_latency
        else:
            self.stats.row_misses += 1
            latency = self.spec.row_miss_latency
        transfer = -(-size_bytes // self.spec.bandwidth_bytes_per_cycle)
        return latency + max(0, transfer - 1)

    def burst_latency(self, total_bytes: int, accesses: int,
                      parallelism: int = 4, row_hit_fraction: float = 0.5) -> int:
        """Aggregate latency of a batch of ``accesses`` requests.

        Models memory-level parallelism: ``parallelism`` requests overlap,
        so the batch takes ``ceil(accesses / parallelism)`` serialised
        rounds of the blended access latency, floored by the bandwidth
        ceiling for ``total_bytes``. This is the summary form the SU cycle
        model charges for a read's worth of index traffic.
        """
        if accesses < 0 or total_bytes < 0:
            raise ValueError("accesses and total_bytes must be >= 0")
        if parallelism <= 0:
            raise ValueError(f"parallelism must be positive, got {parallelism}")
        if not 0.0 <= row_hit_fraction <= 1.0:
            raise ValueError("row_hit_fraction must be in [0, 1]")
        if accesses == 0:
            return 0
        blended = (row_hit_fraction * self.spec.row_hit_latency
                   + (1 - row_hit_fraction) * self.spec.row_miss_latency)
        rounds = -(-accesses // parallelism)
        latency_bound = int(round(rounds * blended))
        bandwidth_bound = -(-total_bytes // self.spec.bandwidth_bytes_per_cycle)
        self.stats.accesses += accesses
        self.stats.bytes_transferred += total_bytes
        self.stats.energy_pj += total_bytes * 8 * self.spec.energy_pj_per_bit
        return max(latency_bound, bandwidth_bound, 1)

    def reset(self) -> None:
        self.stats = MemoryStats()
        self._open_rows.clear()
