"""Utilization traces and counters for the cycle simulator.

Fig 12 plots per-cycle resource utilization of SUs and EUs; this module
records busy intervals per unit and converts them into average utilization
and binned time series without per-cycle simulation overhead.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np


@dataclass
class BusyInterval:
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"interval end {self.end} before start {self.start}")


class UtilizationTrace:
    """Busy-interval recorder for a pool of identical units."""

    def __init__(self, unit_count: int, name: str = "units"):
        if unit_count <= 0:
            raise ValueError(f"unit_count must be positive, got {unit_count}")
        self.unit_count = unit_count
        self.name = name
        self._intervals: List[Tuple[int, int]] = []
        self._open: Dict[int, int] = {}

    def begin(self, unit: int, cycle: int) -> None:
        """Mark ``unit`` busy from ``cycle``."""
        if not 0 <= unit < self.unit_count:
            raise IndexError(f"unit {unit} outside pool of {self.unit_count}")
        if unit in self._open:
            raise ValueError(f"unit {unit} already busy")
        self._open[unit] = cycle

    def end(self, unit: int, cycle: int) -> None:
        """Mark ``unit`` idle from ``cycle``."""
        if unit not in self._open:
            raise ValueError(f"unit {unit} was not busy")
        start = self._open.pop(unit)
        if cycle < start:
            raise ValueError(f"end {cycle} before start {start}")
        if cycle > start:
            self._intervals.append((start, cycle))

    def close_all(self, cycle: int) -> None:
        """Close any still-open intervals at simulation end."""
        for unit in list(self._open):
            self.end(unit, cycle)

    def intervals(self) -> List[Tuple[int, int]]:
        """Closed ``(start, end)`` busy intervals, in ``end()``-call order.

        Note the ordering: intervals are appended when a unit goes idle,
        so with several units in flight the list is *not* sorted by end
        cycle (the trap the old ``series()`` fell into).
        """
        return list(self._intervals)

    @property
    def busy_cycles(self) -> int:
        return sum(end - start for start, end in self._intervals)

    def average_utilization(self, total_cycles: int,
                            start: int = 0) -> float:
        """Mean fraction of busy units over ``[start, total_cycles)``."""
        if total_cycles <= start:
            return 0.0
        window = total_cycles - start
        busy = sum(max(0, min(e, total_cycles) - max(s, start))
                   for s, e in self._intervals)
        return busy / (window * self.unit_count)

    def series(self, total_cycles: int, bins: int = 100) -> np.ndarray:
        """Binned utilization time series in [0, 1] (Fig 12's curves)."""
        if bins <= 0:
            raise ValueError(f"bins must be positive, got {bins}")
        if total_cycles <= 0:
            return np.zeros(bins)
        edges = np.linspace(0, total_cycles, bins + 1)
        busy = np.zeros(bins)
        # _intervals is ordered by end()-call time, not by end cycle, so
        # an interval past total_cycles says nothing about later entries:
        # clip every interval to the window instead of stopping early.
        for s, e in self._intervals:
            lo = np.searchsorted(edges, s, side="right") - 1
            hi = np.searchsorted(edges, e, side="left")
            for b in range(max(lo, 0), min(hi, bins)):
                overlap = min(e, edges[b + 1]) - max(s, edges[b])
                if overlap > 0:
                    busy[b] += overlap
        widths = np.diff(edges)
        return busy / (widths * self.unit_count)


@dataclass
class CounterSet:
    """Named integer counters (allocations, stalls, buffer switches, ...)."""

    counts: Counter = field(default_factory=Counter)

    def add(self, name: str, value: int = 1) -> None:
        self.counts[name] += value

    def get(self, name: str) -> int:
        return self.counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self.counts)


@dataclass
class ThroughputResult:
    """Summary of one accelerator simulation run."""

    reads: int
    cycles: int
    frequency_hz: float = 1e9

    @property
    def seconds(self) -> float:
        return self.cycles / self.frequency_hz

    @property
    def reads_per_second(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.reads / self.seconds

    @property
    def kreads_per_second(self) -> float:
        return self.reads_per_second / 1e3
