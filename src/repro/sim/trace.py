"""Execution trace recording for debugging and visualisation.

Optional helper: record timestamped events during a simulation run and
render them as a text timeline. Useful when studying why a configuration
blocks or starves (the Fig 3 behaviours).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    cycle: int
    source: str
    kind: str
    detail: Dict[str, Any] = field(default_factory=dict)


class ExecutionTrace:
    """Append-only event log with simple filtering and rendering."""

    def __init__(self, capacity: Optional[int] = 100_000):
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive or None")
        self.capacity = capacity
        self._events: List[TraceEvent] = []
        self.dropped = 0

    def record(self, cycle: int, source: str, kind: str, **detail) -> None:
        """Append an event; beyond capacity events are counted, not kept."""
        if cycle < 0:
            raise ValueError("cycle must be >= 0")
        if self.capacity is not None and len(self._events) >= self.capacity:
            self.dropped += 1
            return
        self._events.append(TraceEvent(cycle=cycle, source=source,
                                       kind=kind, detail=dict(detail)))

    def __len__(self) -> int:
        return len(self._events)

    def events(self, source: Optional[str] = None,
               kind: Optional[str] = None) -> List[TraceEvent]:
        """Events filtered by source and/or kind, in record order."""
        out = self._events
        if source is not None:
            out = [e for e in out if e.source == source]
        if kind is not None:
            out = [e for e in out if e.kind == kind]
        return list(out)

    def span(self) -> Optional[range]:
        """Cycle range covered by the trace."""
        if not self._events:
            return None
        cycles = [e.cycle for e in self._events]
        return range(min(cycles), max(cycles) + 1)

    def render(self, limit: int = 50) -> str:
        """Text timeline of the first ``limit`` events."""
        lines = []
        for event in self._events[:limit]:
            detail = " ".join(f"{k}={v}" for k, v in event.detail.items())
            lines.append(f"[{event.cycle:>8}] {event.source:<12} "
                         f"{event.kind:<16} {detail}")
        if len(self._events) > limit:
            lines.append(f"... ({len(self._events) - limit} more events)")
        if self.dropped:
            lines.append(f"... ({self.dropped} events dropped at capacity)")
        return "\n".join(lines)
