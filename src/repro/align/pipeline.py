"""End-to-end software read aligner (the functional ground truth).

This is the BWA-MEM-shaped pipeline of the paper's Fig 1: Find Seeds →
Filter and Chain → Seeds Extension → Get Result, built on the repro
substrates (bidirectional FM-index SMEMs, greedy chaining, affine-gap
Smith-Waterman). NvWa's computing units "are faithful to the standard read
alignment software, which allows us to have no loss of accuracy" — in this
reproduction that statement is checkable: the accelerator simulation
executes *this* pipeline's work items, so its outputs are identical by
construction, and tests verify this aligner recovers the simulated reads'
true origins.

It also produces the per-read phase work measurements (seeding memory
accesses, extension DP cells) that drive Fig 2's breakdown and the cycle
simulator's timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro import obs
from repro.genome import sequence as seq
from repro.genome.reads import Read
from repro.genome.reference import ReferenceGenome
from repro.seeding.bidirectional import BidirectionalFMIndex
from repro.seeding.chaining import Anchor, chain_anchors, filter_anchors, top_chains
from repro.seeding.smem import find_smems
from repro.extension.alignment import Alignment
from repro.extension.scoring import BWA_MEM_SCORING, ScoringScheme
from repro.extension.smith_waterman import smith_waterman
from repro.core.interface import Hit


@dataclass
class PhaseWork:
    """Work performed in each phase for one read (Fig 2's raw material)."""

    seeding_accesses: int = 0
    seeding_steps: int = 0
    extension_cells: int = 0
    hit_count: int = 0


@dataclass
class ReadAlignment:
    """Full pipeline output for one read."""

    read: Read
    best: Optional[Alignment]
    hits: List[Hit] = field(default_factory=list)
    work: PhaseWork = field(default_factory=PhaseWork)

    @property
    def aligned(self) -> bool:
        return self.best is not None

    @property
    def mapped_ref_start(self) -> Optional[int]:
        """Linear reference coordinate where the read's alignment begins."""
        if self.best is None:
            return None
        return self.best.ref_start


class SoftwareAligner:
    """Seed-and-extend aligner over a reference genome.

    Args:
        reference: genome to align against.
        min_seed_length: SMEMs shorter than this are filtered (Step ❷).
        max_seed_occurrences: repeat masking threshold for seeds.
        max_chains: extend at most this many top chains per strand.
        window_pad: reference bases added around a chain for extension.
        scoring: affine scheme for extension (BWA-MEM defaults).
        occ_interval: FM-index checkpoint spacing (paper: 128).
        seeding: ``"fmindex"`` for BWA-MEM's SMEMs (default) or
            ``"hash"`` for Darwin's k-mer table — the two seeding
            algorithms of Sec. II-B, selectable because NvWa's loose
            coupling makes the seeding substrate swappable.
        hash_k: k-mer length for the hash seeding mode.
        index: optional prebuilt :class:`BidirectionalFMIndex` over this
            reference (e.g. from the runtime artifact cache); skips index
            construction, by far the most expensive part of setup.
    """

    def __init__(self, reference: ReferenceGenome,
                 min_seed_length: int = 19,
                 max_seed_occurrences: int = 64,
                 max_chains: int = 8,
                 window_pad: int = 24,
                 scoring: ScoringScheme = BWA_MEM_SCORING,
                 occ_interval: int = 128,
                 seeding: str = "fmindex",
                 hash_k: int = 12,
                 index: Optional[BidirectionalFMIndex] = None):
        if seeding not in ("fmindex", "hash"):
            raise ValueError(
                f"seeding must be fmindex or hash, got {seeding!r}")
        self.reference = reference
        self.text = reference.concatenated()
        self.seeding = seeding
        if seeding == "fmindex":
            self.index = index if index is not None else \
                BidirectionalFMIndex(self.text, occ_interval=occ_interval)
            self.hash_index = None
        else:
            from repro.seeding.hashindex import KmerHashIndex
            self.index = None
            self.hash_index = KmerHashIndex(self.text, k=hash_k)
        self.min_seed_length = min_seed_length
        self.max_seed_occurrences = max_seed_occurrences
        self.max_chains = max_chains
        self.window_pad = window_pad
        self.scoring = scoring

    # ------------------------------------------------------------------ #
    # Pipeline steps
    # ------------------------------------------------------------------ #

    @property
    def anchor_min_length(self) -> int:
        """Anchor filter threshold (hash k-mers are shorter than SMEMs)."""
        if self.seeding == "hash":
            return self.hash_index.k
        return self.min_seed_length

    def collect_anchors(self, read_seq: str, work: PhaseWork) -> List[Anchor]:
        """Step ❶: exact-match anchors of the read and its reverse
        complement, from the configured seeding algorithm."""
        if self.seeding == "hash":
            return self._collect_hash_anchors(read_seq, work)
        return self._collect_smem_anchors(read_seq, work)

    def _collect_smem_anchors(self, read_seq: str,
                              work: PhaseWork) -> List[Anchor]:
        anchors: List[Anchor] = []
        for reverse, oriented in ((False, read_seq),
                                  (True, seq.reverse_complement(read_seq))):
            before = self.index.occ_accesses
            smems = find_smems(self.index, oriented,
                               min_length=self.min_seed_length,
                               max_occurrences=self.max_seed_occurrences)
            work.seeding_steps += sum(m.length for m in smems) or len(oriented)
            for smem in smems:
                positions = self.index.locate(smem.interval,
                                              max_hits=self.max_seed_occurrences)
                for pos in positions:
                    anchors.append(Anchor(read_start=smem.read_start,
                                          read_end=smem.read_end,
                                          ref_start=pos, reverse=reverse))
            work.seeding_accesses += self.index.occ_accesses - before
        return anchors

    def _collect_hash_anchors(self, read_seq: str,
                              work: PhaseWork) -> List[Anchor]:
        """Darwin's seeding: every k-mer of both orientations, 2+P cost."""
        anchors: List[Anchor] = []
        k = self.hash_index.k
        for reverse, oriented in ((False, read_seq),
                                  (True, seq.reverse_complement(read_seq))):
            if len(oriented) < k:
                continue
            before = self.hash_index.stats.total
            for read_pos, ref_pos in self.hash_index.seeds_for_read(
                    oriented, stride=1,
                    max_hits_per_kmer=self.max_seed_occurrences):
                anchors.append(Anchor(read_start=read_pos,
                                      read_end=read_pos + k,
                                      ref_start=ref_pos, reverse=reverse))
            work.seeding_steps += len(oriented) - k + 1
            work.seeding_accesses += self.hash_index.stats.total - before
        return anchors

    def build_hits(self, read_idx: int, read_len: int,
                   anchors: Sequence[Anchor]) -> List[Hit]:
        """Step ❷: filter + chain, then emit Table III hit records."""
        filtered = filter_anchors(anchors, self.anchor_min_length)
        chains = top_chains(chain_anchors(filtered), self.max_chains) \
            if filtered else []
        hits = []
        for hit_idx, chain in enumerate(chains):
            window_start = max(0, chain.ref_start - chain.read_start
                               - self.window_pad)
            window_end = min(len(self.text),
                             chain.ref_end + (read_len - chain.read_end)
                             + self.window_pad)
            hits.append(Hit(read_idx=read_idx, hit_idx=hit_idx,
                            reverse=chain.reverse,
                            read_start=chain.read_start,
                            read_end=chain.read_end,
                            ref_start=window_start, ref_end=window_end))
        return hits

    def extend_hit(self, read_seq: str, hit: Hit,
                   work: PhaseWork) -> Alignment:
        """Step ❸: affine Smith-Waterman over the hit's reference window."""
        oriented = (seq.reverse_complement(read_seq) if hit.reverse
                    else read_seq)
        window = self.text[hit.ref_start:hit.ref_end]
        local = smith_waterman(oriented, window, scoring=self.scoring)
        work.extension_cells += local.cells
        return Alignment(score=local.score, cigar=local.cigar,
                         read_start=local.read_start,
                         read_end=local.read_end,
                         ref_start=hit.ref_start + local.ref_start,
                         ref_end=hit.ref_start + local.ref_end,
                         reverse=hit.reverse, cells=local.cells)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def align(self, read: Read, read_idx: int = 0) -> ReadAlignment:
        """Run the full pipeline for one read (Steps ❶-❹)."""
        work = PhaseWork()
        with obs.span("align_read", "pipeline", read_id=read.read_id) as top:
            with obs.span("seeding", "pipeline"):
                anchors = self.collect_anchors(read.sequence, work)
            with obs.span("chain", "pipeline", anchors=len(anchors)):
                hits = self.build_hits(read_idx, len(read.sequence), anchors)
            work.hit_count = len(hits)
            best: Optional[Alignment] = None
            with obs.span("extension", "pipeline", hits=len(hits)):
                for hit in hits:
                    candidate = self.extend_hit(read.sequence, hit, work)
                    if best is None or candidate.score > best.score:
                        best = candidate
            if best is not None and best.score <= 0:
                best = None
            top.set_args(mapped=best is not None,
                         seeding_accesses=work.seeding_accesses,
                         extension_cells=work.extension_cells)
        return ReadAlignment(read=read, best=best, hits=hits, work=work)

    def align_all(self, reads: Sequence[Read],
                  start_index: int = 0,
                  batch_extension: bool = False,
                  max_batch: int = 64) -> List[ReadAlignment]:
        """Align a batch of reads, indexed ``start_index..start_index+n-1``.

        Args:
            start_index: global index of the first read (sharded callers
                keep per-read indices global across shards).
            batch_extension: pack same-shaped extension jobs into
                vectorized batch kernel calls (see
                :mod:`repro.runtime.batch`).  Results are bit-identical to
                the serial path; only the kernel invocation pattern
                changes.
            max_batch: job cap per batched kernel call.
        """
        if not batch_extension:
            return [self.align(read, start_index + idx)
                    for idx, read in enumerate(reads)]
        return self._align_all_batched(reads, start_index, max_batch)

    def _align_all_batched(self, reads: Sequence[Read], start_index: int,
                           max_batch: int) -> List[ReadAlignment]:
        """Seed + chain every read first, then extend all hits batched."""
        from repro.runtime.batch import smith_waterman_batch

        staged = []
        pairs: List[tuple] = []
        with obs.span("seeding", "pipeline", reads=len(reads)):
            for offset, read in enumerate(reads):
                work = PhaseWork()
                anchors = self.collect_anchors(read.sequence, work)
                hits = self.build_hits(start_index + offset,
                                       len(read.sequence), anchors)
                work.hit_count = len(hits)
                staged.append((read, hits, work))
                for hit in hits:
                    oriented = (seq.reverse_complement(read.sequence)
                                if hit.reverse else read.sequence)
                    pairs.append((oriented,
                                  self.text[hit.ref_start:hit.ref_end]))
        with obs.span("extension", "pipeline", jobs=len(pairs)):
            locals_ = smith_waterman_batch(pairs, scoring=self.scoring,
                                           max_batch=max_batch)
        results = []
        cursor = 0
        for read, hits, work in staged:
            best: Optional[Alignment] = None
            for hit in hits:
                local = locals_[cursor]
                cursor += 1
                work.extension_cells += local.cells
                candidate = Alignment(
                    score=local.score, cigar=local.cigar,
                    read_start=local.read_start, read_end=local.read_end,
                    ref_start=hit.ref_start + local.ref_start,
                    ref_end=hit.ref_start + local.ref_end,
                    reverse=hit.reverse, cells=local.cells)
                if best is None or candidate.score > best.score:
                    best = candidate
            if best is not None and best.score <= 0:
                best = None
            results.append(ReadAlignment(read=read, best=best, hits=hits,
                                         work=work))
        return results
