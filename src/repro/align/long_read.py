"""Long-read alignment: the seed-and-chain-then-fill paradigm (Sec. VI).

"a handful of existing long reads aligners take the seed-and-chain-then-
fill paradigm. It is expected that [it] will have the same execution
diversity problem ... since each input read has different characteristics."

Pipeline: minimizer anchors → co-linear chaining → *fill*: a banded global
alignment of the read against the chained reference window (the per-anchor
gaps are what GACT tiles through in hardware). This is the software
counterpart of the paper's long-read discussion and the source of
long-read workloads for the accelerator simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.genome import sequence as seq
from repro.genome.reads import Read
from repro.genome.reference import ReferenceGenome
from repro.seeding.chaining import (
    Anchor,
    chain_anchors,
    chain_anchors_dp,
    top_chains,
)
from repro.seeding.minimizers import MinimizerIndex
from repro.extension.alignment import Alignment
from repro.extension.banded import banded_global
from repro.extension.scoring import BWA_MEM_SCORING, ScoringScheme


@dataclass
class LongReadWork:
    """Phase work for one long read (the long-read Fig-2 analogue)."""

    minimizers_matched: int = 0
    anchors: int = 0
    chains: int = 0
    fill_cells: int = 0


@dataclass
class LongReadAlignment:
    """Full output for one long read."""

    read: Read
    best: Optional[Alignment]
    work: LongReadWork = field(default_factory=LongReadWork)

    @property
    def aligned(self) -> bool:
        return self.best is not None


class LongReadAligner:
    """Minimizer-seeded, chain-then-fill long-read aligner.

    Args:
        reference: genome to align against.
        k / w: minimizer parameters (minimap2-style defaults).
        min_chain_anchors: chains with fewer anchors are discarded.
        band_slack: extra band width beyond the read/window length
            difference for the fill step.
    """

    def __init__(self, reference: ReferenceGenome, k: int = 15, w: int = 10,
                 min_chain_anchors: int = 3, band_slack: int = 48,
                 max_chains: int = 4,
                 scoring: ScoringScheme = BWA_MEM_SCORING,
                 chainer: str = "dp"):
        if min_chain_anchors <= 0:
            raise ValueError("min_chain_anchors must be positive")
        if band_slack <= 0:
            raise ValueError("band_slack must be positive")
        if chainer not in ("dp", "greedy"):
            raise ValueError(f"chainer must be dp or greedy, got {chainer!r}")
        self.reference = reference
        self.text = reference.concatenated()
        self.index = MinimizerIndex(self.text, k=k, w=w)
        self.min_chain_anchors = min_chain_anchors
        self.band_slack = band_slack
        self.max_chains = max_chains
        self.scoring = scoring
        self.chainer = chainer

    def collect_anchors(self, read_seq: str,
                        work: LongReadWork) -> List[Anchor]:
        """Seeding: matching minimizers become chaining anchors."""
        anchors: List[Anchor] = []
        k = self.index.k
        for hit in self.index.anchors(read_seq):
            work.minimizers_matched += 1
            if hit.reverse:
                # map the reverse-strand match into forward-read coords of
                # the reverse-complemented read later; anchor keeps strand.
                read_start = len(read_seq) - hit.query_pos - k
            else:
                read_start = hit.query_pos
            anchors.append(Anchor(read_start=read_start,
                                  read_end=read_start + k,
                                  ref_start=hit.ref_pos,
                                  reverse=hit.reverse))
        work.anchors = len(anchors)
        return anchors

    def fill(self, read_seq: str, chain, work: LongReadWork,
             ) -> Optional[Alignment]:
        """Fill: banded global alignment over the chained window."""
        oriented = (seq.reverse_complement(read_seq) if chain.reverse
                    else read_seq)
        lead = chain.read_start
        tail = len(oriented) - chain.read_end
        window_start = max(0, chain.ref_start - lead - self.band_slack)
        window_end = min(len(self.text),
                         chain.ref_end + tail + self.band_slack)
        window = self.text[window_start:window_end]
        band = abs(len(oriented) - len(window)) + self.band_slack
        try:
            result = banded_global(oriented, window, band_width=band,
                                   scoring=self.scoring)
        except ValueError:
            return None
        work.fill_cells += result.alignment.cells
        inner = result.alignment
        return Alignment(score=inner.score, cigar=inner.cigar,
                         read_start=0, read_end=len(oriented),
                         ref_start=window_start + inner.ref_start,
                         ref_end=window_start + inner.ref_end,
                         reverse=chain.reverse, cells=inner.cells)

    def align(self, read: Read) -> LongReadAlignment:
        """Seed → chain → fill for one long read."""
        work = LongReadWork()
        anchors = self.collect_anchors(read.sequence, work)
        if self.chainer == "dp":
            raw_chains = chain_anchors_dp(anchors, max_gap=500)
        else:
            raw_chains = chain_anchors(anchors, max_gap=500,
                                       max_diagonal_diff=100)
        chains = [c for c in raw_chains
                  if len(c.anchors) >= self.min_chain_anchors]
        chains = top_chains(chains, self.max_chains) if chains else []
        work.chains = len(chains)
        best: Optional[Alignment] = None
        for chain in chains:
            candidate = self.fill(read.sequence, chain, work)
            if candidate is None:
                continue
            if best is None or candidate.score > best.score:
                best = candidate
        if best is not None and best.score <= 0:
            best = None
        return LongReadAlignment(read=read, best=best, work=work)

    def align_all(self, reads: Sequence[Read]) -> List[LongReadAlignment]:
        return [self.align(read) for read in reads]
