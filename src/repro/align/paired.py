"""Paired-end alignment: pairing logic and mate rescue.

Production short-read alignment is paired: after aligning the mates
independently, the aligner checks FR orientation and insert-size
consistency (a *proper pair*), and when one mate fails to align on its own
it is *rescued* by a Smith-Waterman search restricted to the window where
the library's insert distribution predicts it (exactly BWA-MEM's
mate-rescue step). Rescue reuses the repro extension substrate, so the
whole feature is a consumer of the public API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.genome import sequence as seq
from repro.genome.pairs import ReadPair
from repro.genome.reference import ReferenceGenome
from repro.align.pipeline import ReadAlignment, SoftwareAligner
from repro.extension.alignment import Alignment
from repro.extension.smith_waterman import smith_waterman


@dataclass(frozen=True)
class PairedResult:
    """A pair's alignment outcome."""

    pair: ReadPair
    result1: ReadAlignment
    result2: ReadAlignment
    proper: bool
    insert_size: Optional[int]
    rescued_mate: int = 0  # 0 = none, 1 or 2 = which mate was rescued

    @property
    def both_mapped(self) -> bool:
        return self.result1.aligned and self.result2.aligned


class PairedAligner:
    """Aligns read pairs with proper-pair detection and mate rescue.

    Args:
        reference: genome to align against.
        insert_mean / insert_sd: the library's insert distribution (drives
            the proper-pair window and where rescue searches).
        rescue_score_fraction: a rescued alignment must reach this fraction
            of the mate's length to be accepted.
    """

    def __init__(self, reference: ReferenceGenome,
                 insert_mean: float = 400.0, insert_sd: float = 50.0,
                 rescue_score_fraction: float = 0.5,
                 aligner: Optional[SoftwareAligner] = None):
        if insert_mean <= 0 or insert_sd < 0:
            raise ValueError("invalid insert distribution")
        if not 0.0 < rescue_score_fraction <= 1.0:
            raise ValueError("rescue_score_fraction must be in (0, 1]")
        self.reference = reference
        self.text = reference.concatenated()
        self.insert_mean = insert_mean
        self.insert_sd = insert_sd
        self.rescue_score_fraction = rescue_score_fraction
        self.aligner = aligner or SoftwareAligner(reference)

    # ------------------------------------------------------------------ #
    # Pairing logic
    # ------------------------------------------------------------------ #

    def insert_window(self) -> Tuple[int, int]:
        """Acceptable insert sizes: mean ± 4 sd (BWA-MEM's default gate)."""
        lo = max(1, int(self.insert_mean - 4 * self.insert_sd))
        hi = int(self.insert_mean + 4 * self.insert_sd)
        return lo, hi

    def observed_insert(self, a1: Alignment, a2: Alignment) -> Optional[int]:
        """Fragment length implied by two mate alignments (FR only)."""
        if a1.reverse == a2.reverse:
            return None  # FF/RR: not FR-oriented
        forward, reverse = (a1, a2) if not a1.reverse else (a2, a1)
        insert = reverse.ref_end - forward.ref_start
        return insert if insert > 0 else None

    def is_proper(self, a1: Alignment, a2: Alignment) -> bool:
        insert = self.observed_insert(a1, a2)
        if insert is None:
            return False
        lo, hi = self.insert_window()
        return lo <= insert <= hi

    # ------------------------------------------------------------------ #
    # Mate rescue
    # ------------------------------------------------------------------ #

    def rescue_window(self, anchor: Alignment,
                      mate_length: int) -> Tuple[int, int]:
        """Reference window where the missing mate should sit."""
        lo_ins, hi_ins = self.insert_window()
        if anchor.reverse:
            # anchor is the reverse mate: its partner lies upstream
            start = anchor.ref_end - hi_ins
            end = anchor.ref_end - lo_ins + mate_length
        else:
            start = anchor.ref_start + lo_ins - mate_length
            end = anchor.ref_start + hi_ins
        return max(0, start), min(len(self.text), max(0, end))

    def rescue(self, mate_sequence: str,
               anchor: Alignment) -> Optional[Alignment]:
        """SW the unmapped mate against the predicted window."""
        window_start, window_end = self.rescue_window(anchor,
                                                      len(mate_sequence))
        if window_end - window_start < len(mate_sequence) // 2:
            return None
        window = self.text[window_start:window_end]
        # the missing mate has the opposite orientation of its anchor
        oriented = (mate_sequence if anchor.reverse
                    else seq.reverse_complement(mate_sequence))
        local = smith_waterman(oriented, window,
                               scoring=self.aligner.scoring)
        threshold = self.rescue_score_fraction * len(mate_sequence) \
            * self.aligner.scoring.match
        if local.score < threshold:
            return None
        return Alignment(score=local.score, cigar=local.cigar,
                         read_start=local.read_start,
                         read_end=local.read_end,
                         ref_start=window_start + local.ref_start,
                         ref_end=window_start + local.ref_end,
                         reverse=not anchor.reverse, cells=local.cells)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def align_pair(self, pair: ReadPair, pair_idx: int = 0) -> PairedResult:
        r1 = self.aligner.align(pair.mate1, read_idx=2 * pair_idx)
        r2 = self.aligner.align(pair.mate2, read_idx=2 * pair_idx + 1)
        rescued = 0
        if r1.aligned and not r2.aligned:
            fixed = self.rescue(pair.mate2.sequence, r1.best)
            if fixed is not None:
                r2 = ReadAlignment(read=pair.mate2, best=fixed,
                                   hits=r2.hits, work=r2.work)
                rescued = 2
        elif r2.aligned and not r1.aligned:
            fixed = self.rescue(pair.mate1.sequence, r2.best)
            if fixed is not None:
                r1 = ReadAlignment(read=pair.mate1, best=fixed,
                                   hits=r1.hits, work=r1.work)
                rescued = 1
        proper = (r1.aligned and r2.aligned
                  and self.is_proper(r1.best, r2.best))
        insert = (self.observed_insert(r1.best, r2.best)
                  if r1.aligned and r2.aligned else None)
        return PairedResult(pair=pair, result1=r1, result2=r2,
                            proper=proper, insert_size=insert,
                            rescued_mate=rescued)

    def align_pairs(self, pairs: Sequence[ReadPair]) -> List[PairedResult]:
        return [self.align_pair(pair, idx) for idx, pair in enumerate(pairs)]
