"""SAM output for the alignment pipelines.

The deliverable a downstream user actually consumes: standard SAM records
(header + one line per read) from :class:`~repro.align.pipeline.
SoftwareAligner` or :class:`~repro.align.long_read.LongReadAligner`
results. MAPQ follows the BWA-style heuristic of scaling the gap between
the best and second-best alignment scores.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Sequence, TextIO, Union

from repro import obs
from repro.genome import sequence as seq
from repro.genome.reference import ReferenceGenome
from repro.align.pipeline import ReadAlignment

#: SAM flags used here.
FLAG_UNMAPPED = 0x4
FLAG_REVERSE = 0x10

PathOrHandle = Union[str, os.PathLike, TextIO]


def mapq_estimate(best_score: int, second_score: Optional[int],
                  read_length: int, match_score: int = 1) -> int:
    """BWA-style mapping quality from the best/second score gap.

    A unique full-score alignment gets 60; ties get 0; the gap scales the
    range in between.
    """
    if read_length <= 0:
        raise ValueError("read_length must be positive")
    if best_score <= 0:
        return 0
    ceiling = read_length * match_score
    if second_score is None or second_score <= 0:
        base = 60.0 * best_score / ceiling
        return max(0, min(60, int(round(base))))
    if second_score >= best_score:
        return 0
    gap = (best_score - second_score) / best_score
    return max(0, min(60, int(round(60.0 * gap * best_score / ceiling + 20
                                    * gap))))


def sam_header(reference: ReferenceGenome,
               program: str = "repro-nvwa") -> List[str]:
    """@HD/@SQ/@PG header lines."""
    lines = ["@HD\tVN:1.6\tSO:unsorted"]
    for chrom in reference.chromosomes:
        lines.append(f"@SQ\tSN:{chrom.name}\tLN:{len(chrom)}")
    lines.append(f"@PG\tID:{program}\tPN:{program}")
    return lines


def sam_record(result: ReadAlignment, reference: ReferenceGenome,
               mapq: Optional[int] = None) -> str:
    """One SAM line for a pipeline result."""
    read = result.read
    if not result.aligned:
        quality = read.quality or "*"
        return "\t".join([read.read_id, str(FLAG_UNMAPPED), "*", "0", "0",
                          "*", "*", "0", "0", read.sequence, quality])
    best = result.best
    chrom, local = reference.locate(best.ref_start)
    flag = FLAG_REVERSE if best.reverse else 0
    cigar = _clipped_cigar(best, len(read.sequence))
    sequence = (seq.reverse_complement(read.sequence) if best.reverse
                else read.sequence)
    quality = read.quality or "*"
    if best.reverse and quality != "*":
        quality = quality[::-1]
    if mapq is None:
        mapq = mapq_estimate(best.score, _second_best(result),
                             len(read.sequence))
    return "\t".join([read.read_id, str(flag), chrom, str(local + 1),
                      str(mapq), cigar, "*", "0", "0", sequence, quality])


def _second_best(result: ReadAlignment) -> Optional[int]:
    """Second-best extension score, if the pipeline produced several hits."""
    scores = getattr(result, "all_scores", None)
    if scores and len(scores) > 1:
        return sorted(scores, reverse=True)[1]
    return None


def _clipped_cigar(best, read_length: int) -> str:
    """Soft-clip the unaligned read flanks around the local alignment."""
    lead = best.read_start
    tail = read_length - best.read_end
    parts = []
    if lead:
        parts.append(f"{lead}S")
    parts.append(str(best.cigar) if best.cigar.ops else f"{best.read_span}M")
    if tail:
        parts.append(f"{tail}S")
    return "".join(parts)


@dataclass(frozen=True)
class SamRecord:
    """A parsed SAM alignment line (the fields this library emits)."""

    qname: str
    flag: int
    rname: str
    pos: int
    mapq: int
    cigar: str
    sequence: str
    quality: str

    @property
    def is_unmapped(self) -> bool:
        return bool(self.flag & FLAG_UNMAPPED)

    @property
    def is_reverse(self) -> bool:
        return bool(self.flag & FLAG_REVERSE)


def parse_sam(source: PathOrHandle):
    """Yield :class:`SamRecord` for each alignment line (header skipped).

    Round-trip companion of :func:`write_sam`; enough SAM for the
    pipelines here, not a general-purpose SAM parser.
    """
    own = isinstance(source, (str, os.PathLike))
    handle = open(source, "r", encoding="ascii") if own else source
    try:
        for line in handle:
            line = line.rstrip("\n")
            if not line or line.startswith("@"):
                continue
            fields = line.split("\t")
            if len(fields) < 11:
                raise ValueError(f"truncated SAM line: {line!r}")
            yield SamRecord(qname=fields[0], flag=int(fields[1]),
                            rname=fields[2], pos=int(fields[3]),
                            mapq=int(fields[4]), cigar=fields[5],
                            sequence=fields[9], quality=fields[10])
    finally:
        if own:
            handle.close()


def write_sam(results: Sequence[ReadAlignment],
              reference: ReferenceGenome,
              target: PathOrHandle) -> int:
    """Write header + records; returns the number of mapped reads."""
    own = isinstance(target, (str, os.PathLike))
    handle = open(target, "w", encoding="ascii") if own else target
    mapped = 0
    try:
        with obs.span("sam_emit", "pipeline", records=len(results)):
            for line in sam_header(reference):
                handle.write(line + "\n")
            for result in results:
                handle.write(sam_record(result, reference) + "\n")
                if result.aligned:
                    mapped += 1
    finally:
        if own:
            handle.close()
    return mapped
