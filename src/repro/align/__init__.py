"""End-to-end alignment pipelines (short-read and long-read)."""

from repro.align.pipeline import (
    PhaseWork,
    ReadAlignment,
    SoftwareAligner,
)
from repro.align.long_read import (
    LongReadAligner,
    LongReadAlignment,
    LongReadWork,
)
from repro.align.paired import PairedAligner, PairedResult
from repro.align.sam import (
    SamRecord,
    parse_sam,
    sam_header,
    sam_record,
    write_sam,
)

__all__ = [
    "PhaseWork", "ReadAlignment", "SoftwareAligner",
    "LongReadAligner", "LongReadAlignment", "LongReadWork",
    "PairedAligner", "PairedResult",
    "SamRecord", "parse_sam", "sam_header", "sam_record", "write_sam",
]
