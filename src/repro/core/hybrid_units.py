"""The Hybrid Units Strategy (Sec. IV-C, Fig 9, Equations 4-5).

Given a hit-length distribution and a PE budget, size a mix of EU classes
so that each length interval gets units matched to its latency optimum:

    sum_i x_i * p_i = N
    x_0 : x_1 : ... = s_0 : s_1 : ...        (Equation 4)
    =>  x_i = s_i * N / sum_j (p_j * s_j)    (Equation 5)

with an integer repair pass so the PE budget is met exactly. The module
also reproduces the Fig 9(d) toy comparison: executing a hit list on a
uniform pool vs the hybrid pool with greedy shortest-latency placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.extension.systolic import matrix_fill_latency, optimal_pe_count


@dataclass(frozen=True)
class IntervalPartition:
    """Hit-length intervals aligned to EU classes.

    ``bounds[i]`` is the inclusive upper edge of interval ``i``; the last
    interval also absorbs longer hits (handled iteratively, GACT-style).
    """

    bounds: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.bounds:
            raise ValueError("need at least one interval bound")
        if any(b <= 0 for b in self.bounds) or \
                any(a >= b for a, b in zip(self.bounds, self.bounds[1:])):
            raise ValueError(
                f"bounds must be positive and strictly increasing: {self.bounds}")

    def interval_of(self, hit_len: int) -> int:
        """Index of the interval containing ``hit_len``."""
        if hit_len <= 0:
            raise ValueError(f"hit_len must be positive, got {hit_len}")
        for idx, bound in enumerate(self.bounds):
            if hit_len <= bound:
                return idx
        return len(self.bounds) - 1

    def interval_mass(self, hit_lengths: Sequence[int]) -> List[float]:
        """Fraction of hits per interval (the s_i of Equation 4)."""
        counts = [0] * len(self.bounds)
        for length in hit_lengths:
            counts[self.interval_of(length)] += 1
        total = sum(counts)
        if total == 0:
            raise ValueError("cannot derive a distribution from zero hits")
        return [c / total for c in counts]


def solve_unit_mix(interval_mass: Sequence[float], pe_classes: Sequence[int],
                   total_pes: int) -> Dict[int, int]:
    """Equation 5 with integer repair: PE class -> unit count.

    The real-valued solution is floored (keeping ≥1 unit for any interval
    with mass), then leftover PEs are handed to the classes with the
    largest fractional remainder, smallest classes first on ties, without
    exceeding the budget. The result satisfies sum(x_i * p_i) <= N with a
    shortfall smaller than the largest class.
    """
    if len(interval_mass) != len(pe_classes):
        raise ValueError(
            f"{len(interval_mass)} interval masses vs {len(pe_classes)} classes")
    if any(m < 0 for m in interval_mass) or sum(interval_mass) <= 0:
        raise ValueError("interval mass must be non-negative and non-zero")
    if any(p <= 0 for p in pe_classes):
        raise ValueError("PE classes must be positive")
    if total_pes < max(pe_classes):
        raise ValueError(
            f"budget {total_pes} cannot fit the largest class "
            f"{max(pe_classes)}")

    denom = sum(p * s for p, s in zip(pe_classes, interval_mass))
    exact = [s * total_pes / denom for s in interval_mass]
    counts = {p: int(x) for p, x in zip(pe_classes, exact)}
    for p, s in zip(pe_classes, interval_mass):
        if s > 0 and counts[p] == 0:
            counts[p] = 1

    # Spend any remaining budget by fractional remainder, largest first.
    def used() -> int:
        return sum(p * c for p, c in counts.items())

    remainders = sorted(zip(pe_classes, exact),
                        key=lambda pc: (pc[1] - int(pc[1])), reverse=True)
    progress = True
    while progress:
        progress = False
        for p, _ in remainders:
            if used() + p <= total_pes:
                counts[p] += 1
                progress = True
    # Trim any overshoot introduced by the ≥1 floor.
    while used() > total_pes:
        victim = max((p for p, c in counts.items() if c > 1), default=None)
        if victim is None:
            break
        counts[victim] -= 1
    return counts


def paper_unit_mix() -> Dict[int, int]:
    """The published design point: x = (28, 20, 16, 6) over (16,32,64,128).

    Derived from Equation 5 with the NA12878 interval mass and N = 2880;
    kept as an explicit constant so tests can pin the exact paper numbers.
    """
    return {16: 28, 32: 20, 64: 16, 128: 6}


@dataclass(frozen=True)
class PoolExecution:
    """Outcome of executing a hit list on a unit pool (Fig 9(d))."""

    makespan: int
    per_hit_latency: Dict[int, int]
    per_hit_unit: Dict[int, int]


def execute_on_pool(hit_lengths: Sequence[int], unit_pes: Sequence[int],
                    ref_pad: int = 0, load_overhead: int = 0,
                    policy: str = "greedy") -> PoolExecution:
    """List scheduling of hits onto a pool of systolic units (Fig 9(d)).

    Policies:
        ``greedy`` — each hit (in order) takes the unit minimising its
            completion time; with identical units this degenerates to the
            earliest-free FIFO flow of the figure's uniform pool.
        ``ranked`` — sorted hits map to sorted units by rank (the figure's
            hybrid flow, where all five hits load onto the five units at
            once); falls back to greedy when counts differ.

    ``load_overhead`` models the one-cycle load of the figure's timeline
    (hits start at cycle 1, not 0).
    """
    if not unit_pes:
        raise ValueError("pool must contain at least one unit")
    if policy not in ("greedy", "ranked"):
        raise ValueError(f"unknown policy {policy!r}")
    if any(length <= 0 for length in hit_lengths):
        raise ValueError("hit lengths must be positive")

    free_at = [0] * len(unit_pes)
    per_hit_latency: Dict[int, int] = {}
    per_hit_unit: Dict[int, int] = {}

    if policy == "ranked" and len(hit_lengths) == len(unit_pes):
        hit_rank = sorted(range(len(hit_lengths)),
                          key=lambda i: hit_lengths[i])
        unit_rank = sorted(range(len(unit_pes)), key=lambda u: unit_pes[u])
        for hit_idx, unit_idx in zip(hit_rank, unit_rank):
            length = hit_lengths[hit_idx]
            latency = matrix_fill_latency(length + ref_pad, length,
                                          unit_pes[unit_idx])
            free_at[unit_idx] = load_overhead + latency
            per_hit_latency[hit_idx] = latency
            per_hit_unit[hit_idx] = unit_idx
        return PoolExecution(makespan=max(free_at),
                             per_hit_latency=per_hit_latency,
                             per_hit_unit=per_hit_unit)

    for hit_idx, length in enumerate(hit_lengths):
        # Choose the unit minimising completion time, breaking ties toward
        # the lowest-latency (best-matched) unit.
        best = None
        for unit_idx, pe in enumerate(unit_pes):
            latency = matrix_fill_latency(length + ref_pad, length, pe)
            start = free_at[unit_idx] + load_overhead
            key = (start + latency, latency, unit_idx)
            if best is None or key < best[0]:
                best = (key, unit_idx, latency, start)
        _, unit_idx, latency, start = best
        free_at[unit_idx] = start + latency
        per_hit_latency[hit_idx] = latency
        per_hit_unit[hit_idx] = unit_idx
    return PoolExecution(makespan=max(free_at),
                         per_hit_latency=per_hit_latency,
                         per_hit_unit=per_hit_unit)


def expand_pool(unit_mix: Dict[int, int]) -> List[int]:
    """Flatten a class->count mix into a per-unit PE list, ascending."""
    pool: List[int] = []
    for pe in sorted(unit_mix):
        count = unit_mix[pe]
        if count < 0:
            raise ValueError(f"negative unit count for class {pe}")
        pool.extend([pe] * count)
    if not pool:
        raise ValueError("unit mix expands to an empty pool")
    return pool


def assignment_is_optimal(hit_len: int, assigned_pe: int,
                          pe_classes: Sequence[int]) -> bool:
    """Fig 12(e/f) metric: was the hit placed on its latency-optimal class?"""
    return assigned_pe == optimal_pe_count(hit_len, tuple(pe_classes))
