"""The Unified Interface of NvWa (paper Table III).

Sec. VI: "The multifarious algorithms can benefit from NvWa if they follow
the defined unified interface. ... The data interface specifies the format
standards for input and output to be followed by SUs and EUs. The control
interface defines the states that the SU and EU need to support."

This module is deliberately dependency-free: it is the contract between the
seeding/extension substrates and the scheduling core, exactly as the paper's
loosely coupled design decouples the data path from the control path.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple


class UnitState(enum.Enum):
    """Control-interface states (Table III: ``[idle, busy, stop]``)."""

    IDLE = "idle"
    BUSY = "busy"
    STOP = "stop"


@dataclass(frozen=True)
class ReadDescriptor:
    """SU data input: ``[read_idx, read_metadata]``."""

    read_idx: int
    length: int
    metadata: Tuple = ()

    def __post_init__(self) -> None:
        if self.read_idx < 0:
            raise ValueError(f"read_idx must be >= 0, got {self.read_idx}")
        if self.length <= 0:
            raise ValueError(f"read length must be positive, got {self.length}")


@dataclass(frozen=True)
class Hit:
    """SU data output / EU data input (Table III ``[sus_output]``):
    ``[read_idx, hit_idx, direction, read_pos, ref_pos]``.

    ``read_pos`` is the half-open span on the read; ``ref_pos`` the span on
    the reference (linear coordinates). ``hit_len`` — "the difference
    between the end coordinate and the start coordinate of the read_pos"
    (Fig 10 step ❷) — is the statistic the Coordinator schedules on.
    """

    read_idx: int
    hit_idx: int
    reverse: bool
    read_start: int
    read_end: int
    ref_start: int
    ref_end: int

    def __post_init__(self) -> None:
        if self.read_end <= self.read_start:
            raise ValueError(
                f"hit read span [{self.read_start}, {self.read_end}) is empty")
        if self.ref_end < self.ref_start:
            raise ValueError(
                f"hit ref span [{self.ref_start}, {self.ref_end}) is negative")

    @property
    def hit_len(self) -> int:
        return self.read_end - self.read_start

    @property
    def ref_len(self) -> int:
        return self.ref_end - self.ref_start


@dataclass(frozen=True)
class ExtensionResult:
    """EU data output (Table III): ``[sus_output, alignment_result]``."""

    hit: Hit
    score: int
    cigar: str = ""
    aligned_ref_start: Optional[int] = None
    aligned_ref_end: Optional[int] = None


@dataclass(frozen=True)
class SUControl:
    """SU control signals: ``[idle, busy, stop]``."""

    state: UnitState = UnitState.IDLE


@dataclass(frozen=True)
class EUControl:
    """EU control signals: ``[idle, busy, stop, pe_number]``.

    ``pe_number`` is what lets the Coordinator match hit lengths to unit
    scales without knowing the EU's internals — the loose coupling.
    """

    state: UnitState = UnitState.IDLE
    pe_number: int = 0

    def __post_init__(self) -> None:
        if self.pe_number < 0:
            raise ValueError(f"pe_number must be >= 0, got {self.pe_number}")
