"""Convenience constructors for the baseline and ablation configurations.

Fig 11 stacks the mechanisms cumulatively: SUs+EUs (nothing), +HUS, +OCRA,
+HA, full NvWa. A hybrid pool is only meaningful with length-matched
dispatch (Fig 9(d) assumes it), so the "+HUS" step pairs the hybrid pool
with the paper's *basic* shared-pool matching (method (2) of Sec. IV-D);
the final "+HA" step upgrades dispatch to the grouped greedy Hits
Allocator of Fig 10.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional

from repro.core.config import NvWaConfig

#: Hit-FIFO depth of designs without the Coordinator's deep double buffer.
#: Prior accelerators decouple the two phases with only a small queue
#: (SeedEx's producer-consumer buffer, ERT's walk queue), so the phases
#: block/starve each other — the Fig 3(a) behaviour. The full 1024-deep
#: double buffer arrives with the Coordinator in the "+HA" step.
SMALL_FIFO_DEPTH = 64


def nvwa(base: Optional[NvWaConfig] = None) -> NvWaConfig:
    """Full NvWa: all three mechanisms on."""
    base = base or NvWaConfig()
    return replace(base, use_ocra=True, use_hybrid_units=True,
                   allocator_policy="grouped")


def sus_eus_baseline(base: Optional[NvWaConfig] = None) -> NvWaConfig:
    """The non-scheduled SUs+EUs design: Read-in-Batch, uniform EUs, FIFO."""
    base = base or NvWaConfig()
    return replace(base.baseline_variant(),
                   hits_buffer_depth=SMALL_FIFO_DEPTH)


def with_hybrid_units(base: Optional[NvWaConfig] = None) -> NvWaConfig:
    """Baseline + Hybrid Units Strategy (Fig 11 '+HUS').

    Hybrid pool with the basic shared-pool matched dispatch; seeding still
    Read-in-Batch.
    """
    base = base or NvWaConfig()
    return replace(base, use_ocra=False, use_hybrid_units=True,
                   allocator_policy="pooled",
                   hits_buffer_depth=SMALL_FIFO_DEPTH)


def with_ocra(base: Optional[NvWaConfig] = None) -> NvWaConfig:
    """+HUS + One-Cycle Read Allocator (Fig 11 '+OCRA')."""
    base = base or NvWaConfig()
    return replace(base, use_ocra=True, use_hybrid_units=True,
                   allocator_policy="pooled",
                   hits_buffer_depth=SMALL_FIFO_DEPTH)


def with_hits_allocator(base: Optional[NvWaConfig] = None) -> NvWaConfig:
    """+OCRA + grouped greedy Hits Allocator = full NvWa (Fig 11 '+HA')."""
    return nvwa(base)


def ablation_ladder(base: Optional[NvWaConfig] = None,
                    ) -> Dict[str, NvWaConfig]:
    """The Fig 11 configuration ladder, in presentation order."""
    base = base or NvWaConfig()
    return {
        "SUs+EUs": sus_eus_baseline(base),
        "+HUS": with_hybrid_units(base),
        "+OCRA": with_ocra(base),
        "+HA (NvWa)": with_hits_allocator(base),
    }
