"""The Seeding Scheduler (Sec. IV-B): OCRA + Read SPM prefetching.

Wraps the read allocator (One-Cycle or the Read-in-Batch baseline) together
with the scratchpad that stages upcoming reads, presenting one scheduling
action to the accelerator top level: given the SU status vector, which
units load which reads, and at what load latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.core.allocator import OneCycleReadAllocator, ReadInBatchAllocator
from repro.sim.spm import Scratchpad


@dataclass(frozen=True)
class ScheduledLoad:
    """One read load issued to one SU."""

    unit_id: int
    read_idx: int
    load_latency: int


class SeedingScheduler:
    """Feeds idle SUs with unprocessed reads.

    Args:
        num_units: SU pool size.
        total_reads: input stream length.
        use_ocra: True for the One-Cycle Read Allocator, False for the
            Read-in-Batch baseline (Fig 5(a) vs 5(b)).
        spm: Read SPM staging buffer; prefetched ahead of allocation so
            loads cost one cycle instead of a DRAM round trip.
        prefetch_ahead: how many upcoming reads to keep staged.
    """

    def __init__(self, num_units: int, total_reads: int,
                 use_ocra: bool = True, spm: Optional[Scratchpad] = None,
                 prefetch_ahead: int = 256, prefetch: bool = True):
        if prefetch_ahead <= 0:
            raise ValueError("prefetch_ahead must be positive")
        self.num_units = num_units
        self.total_reads = total_reads
        self.use_ocra = use_ocra
        self.spm = spm or Scratchpad(capacity=max(prefetch_ahead, 1))
        self.prefetch_ahead = prefetch_ahead
        self.prefetch_enabled = prefetch
        if use_ocra:
            self._allocator = OneCycleReadAllocator(num_units, total_reads)
        else:
            self._allocator = ReadInBatchAllocator(num_units, total_reads)
        self._prefetch_cursor = 0
        self._prefetch()

    @property
    def exhausted(self) -> bool:
        return self._allocator.exhausted

    def schedule(self, status: Sequence[int]) -> Tuple[ScheduledLoad, ...]:
        """One scheduling action for the given SU status vector.

        With OCRA every idle unit is served; with Read-in-Batch a new batch
        is issued only when all units are idle.
        """
        if self.use_ocra:
            result = self._allocator.allocate(status)
        else:
            result = self._allocator.allocate_batch(status)
        loads = tuple(
            ScheduledLoad(unit_id=unit, read_idx=read_idx,
                          load_latency=self.spm.fetch(read_idx))
            for unit, read_idx in sorted(result.assignments.items()))
        self._prefetch()
        return loads

    def _prefetch(self) -> None:
        """Keep the SPM topped up with the next unissued reads."""
        if not self.prefetch_enabled:
            return
        while (self._prefetch_cursor < self.total_reads
               and self.spm.occupancy < self.prefetch_ahead):
            if not self.spm.prefetch(self._prefetch_cursor):
                break
            self._prefetch_cursor += 1
