"""The Extension Scheduler (Sec. IV-C): Allocate Trigger + Hybrid Units
Manager.

The Allocate Trigger "is responsible for checking the execution status of
the EUs and deciding whether to send a scheduling request to the
Coordinator based on the number of idle units"; the Hybrid Units Manager
"receives the scheduling results from the Hits Allocator and distributes
them to the specified EUs". The Hybrid Units Strategy itself (Equation 5)
lives in :mod:`repro.core.hybrid_units` and fixes the EU pool shape at
design time; this module is the runtime half.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from repro.core.coordinator import Placement
from repro.hw.extension_unit import ExtensionUnit


class AllocateTrigger:
    """Requests an allocation round once enough EUs sit idle.

    Args:
        num_units: EU pool size.
        idle_fraction: trigger threshold (paper example: 15 %).
    """

    def __init__(self, num_units: int, idle_fraction: float = 0.15):
        if num_units <= 0:
            raise ValueError(f"num_units must be positive, got {num_units}")
        if not 0.0 <= idle_fraction <= 1.0:
            raise ValueError(
                f"idle_fraction must be in [0, 1], got {idle_fraction}")
        self.num_units = num_units
        self.threshold = max(1, math.ceil(idle_fraction * num_units))

    def should_request(self, idle_count: int) -> bool:
        """True when a scheduling request should go to the Coordinator."""
        if not 0 <= idle_count <= self.num_units:
            raise ValueError(
                f"idle_count {idle_count} outside [0, {self.num_units}]")
        return idle_count >= self.threshold


class HybridUnitsManager:
    """Runtime view of the EU pool: idle-unit census and dispatch."""

    def __init__(self, units: Sequence[ExtensionUnit]):
        if not units:
            raise ValueError("EU pool must not be empty")
        self._units: Dict[int, ExtensionUnit] = {u.unit_id: u for u in units}
        if len(self._units) != len(units):
            raise ValueError("duplicate EU unit ids")

    @property
    def units(self) -> List[ExtensionUnit]:
        return list(self._units.values())

    def unit(self, unit_id: int) -> ExtensionUnit:
        """Look up one EU by id."""
        try:
            return self._units[unit_id]
        except KeyError:
            raise KeyError(f"unknown EU {unit_id}") from None

    def idle_units(self) -> Dict[int, int]:
        """``unit_id -> pe_count`` of every idle unit (the Coordinator's
        view through the Table III control interface)."""
        return {uid: u.pe_count for uid, u in self._units.items() if u.idle}

    def idle_count(self) -> int:
        return sum(1 for u in self._units.values() if u.idle)

    def dispatch(self, placements: Sequence[Placement],
                 now: int) -> List[int]:
        """Start each placement's hit on its unit; returns finish times."""
        finish_times = []
        for placement in placements:
            unit = self._units.get(placement.unit_id)
            if unit is None:
                raise KeyError(f"unknown EU {placement.unit_id}")
            if unit.pe_count != placement.pe_count:
                raise ValueError(
                    f"placement pe_count {placement.pe_count} != unit "
                    f"{placement.unit_id}'s {unit.pe_count}")
            finish_times.append(unit.start(placement.hit, now))
        return finish_times
