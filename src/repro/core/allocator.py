"""The One-Cycle Read Allocator (Sec. IV-B, Fig 5(b) and Fig 6).

Equations (1)-(2): with unit status ``s_i`` (0 idle, 1 busy), allocated
read index ``a_i`` and global offset ``g``,

    a_i <- g + 1 + sum_{k<i} (1 - s_k)    if s_i = 0
    g   <- g + sum_k (1 - s_k)

i.e. every idle unit simultaneously receives the next unassigned read, with
priority by unit index. The microarchitecture (Fig 6) computes each unit's
rank among the idle units with a per-unit mask (``unit_mark_table``) ANDed
against the inverted status vector and fed through a PopCount tree — all
combinational, hence "one cycle".

Two implementations are provided and property-tested against each other:
:meth:`OneCycleReadAllocator.allocate` evaluates the equations directly;
:meth:`allocate_microarch` walks the five hardware steps of Fig 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.hw.popcount import PopCountTree, unit_mark_table


@dataclass(frozen=True)
class AllocationResult:
    """One allocation cycle's outcome: ``unit -> read index``."""

    assignments: Dict[int, int]
    new_offset: int


class OneCycleReadAllocator:
    """Priority-indexed parallel read allocator for a pool of SUs.

    Args:
        num_units: seeding units under management (paper: 64-512).
        total_reads: reads available in the input stream (allocation stops
            silently when the stream is exhausted).
    """

    def __init__(self, num_units: int, total_reads: int):
        if num_units <= 0:
            raise ValueError(f"num_units must be positive, got {num_units}")
        if total_reads < 0:
            raise ValueError(f"total_reads must be >= 0, got {total_reads}")
        self.num_units = num_units
        self.total_reads = total_reads
        #: g in the paper: index of the last allocated read (-1 initially,
        #: so the first idle unit receives read 0 = g + 1).
        self.offset = -1
        self._mask_table = unit_mark_table(num_units)
        self.popcount_tree = PopCountTree(num_units)

    @property
    def exhausted(self) -> bool:
        """True once every read has been handed out."""
        return self.offset >= self.total_reads - 1

    def allocate(self, status: Sequence[int]) -> AllocationResult:
        """Equations (1)-(2): assign the next reads to all idle units.

        ``status[i]`` is 0 for idle, 1 for busy. Returns the unit→read map
        for this cycle and advances the global offset.
        """
        status = self._validated(status)
        assignments: Dict[int, int] = {}
        idle_before = 0
        for i in range(self.num_units):
            if status[i] == 0:
                read_idx = self.offset + 1 + idle_before
                if read_idx < self.total_reads:
                    assignments[i] = read_idx
                idle_before += 1
        self.offset = min(self.offset + idle_before, self.total_reads - 1)
        return AllocationResult(assignments=assignments,
                                new_offset=self.offset)

    def allocate_microarch(self, status: Sequence[int]) -> AllocationResult:
        """The five hardware steps of Fig 6, bit-for-bit.

        ❶ invert ``unit_status``; ❷ AND with ``unit_mark_table[i]``;
        ❸ PopCount tree → idle units ahead of unit i; ❹ add ``read_offset``
        (+1); ❺ mux on the unit's own idle bit.
        """
        status = self._validated(status)
        inverted = 1 - status                                    # step 1
        assignments: Dict[int, int] = {}
        for i in range(self.num_units):
            marked = inverted & self._mask_table[i]              # step 2
            rank = self.popcount_tree.count(marked)              # step 3
            read_idx = self.offset + 1 + rank                    # step 4
            if inverted[i] and read_idx < self.total_reads:      # step 5
                assignments[i] = read_idx
        total_idle = self.popcount_tree.count(inverted)
        self.offset = min(self.offset + total_idle, self.total_reads - 1)
        return AllocationResult(assignments=assignments,
                                new_offset=self.offset)

    def _validated(self, status: Sequence[int]) -> np.ndarray:
        arr = np.asarray(status, dtype=np.int8)
        if arr.size != self.num_units:
            raise ValueError(
                f"status vector of length {arr.size} != {self.num_units} units")
        if not np.all((arr == 0) | (arr == 1)):
            raise ValueError("status values must be 0 (idle) or 1 (busy)")
        return arr

    def single_cycle_at(self, frequency_hz: float = 1e9) -> bool:
        """The paper's timing claim: the PopCount tree fits one cycle."""
        return self.popcount_tree.meets_frequency(frequency_hz)


class ReadInBatchAllocator:
    """The baseline strategy of GenAx/ERT (Fig 5(a)).

    Reads are issued in batches of ``num_units``; no unit receives a new
    read until *every* unit in the current batch has finished.
    """

    def __init__(self, num_units: int, total_reads: int):
        if num_units <= 0:
            raise ValueError(f"num_units must be positive, got {num_units}")
        if total_reads < 0:
            raise ValueError(f"total_reads must be >= 0, got {total_reads}")
        self.num_units = num_units
        self.total_reads = total_reads
        self.next_read = 0

    @property
    def exhausted(self) -> bool:
        return self.next_read >= self.total_reads

    def allocate_batch(self, status: Sequence[int]) -> AllocationResult:
        """Issue the next batch — only legal when *all* units are idle."""
        arr = np.asarray(status, dtype=np.int8)
        if arr.size != self.num_units:
            raise ValueError(
                f"status vector of length {arr.size} != {self.num_units} units")
        if np.any(arr == 1):
            return AllocationResult(assignments={}, new_offset=self.next_read)
        assignments: Dict[int, int] = {}
        for i in range(self.num_units):
            if self.next_read >= self.total_reads:
                break
            assignments[i] = self.next_read
            self.next_read += 1
        return AllocationResult(assignments=assignments,
                                new_offset=self.next_read)
