"""NvWa accelerator top level: the execution-driven cycle simulation.

Wires the five architecture parts of Fig 4 — SUs behind the Seeding
Scheduler, EUs behind the Extension Scheduler, and the Coordinator between
them — over the discrete-event engine. Feature flags in
:class:`~repro.core.config.NvWaConfig` disable each mechanism, yielding the
SUs+EUs baseline and the Fig 11 ablations from the same model:

- ``use_ocra=False`` → Read-in-Batch seeding (Fig 5(a));
- ``use_hybrid_units=False`` → uniform EU pool (Fig 9(b));
- ``use_hits_allocator=False`` → FIFO hit dispatch (no length matching).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import NvWaConfig
from repro.core.coordinator import (
    FIFOAllocator,
    HitsAllocator,
    HitsBuffer,
    PooledAllocator,
    StrictClassAllocator,
)
from repro.core.extension_scheduler import AllocateTrigger, HybridUnitsManager
from repro.core.seeding_scheduler import SeedingScheduler
from repro.core.workload import HitTask, Workload
from repro.extension.systolic import optimal_pe_count
from repro.hw.extension_unit import ExtensionUnit
from repro.hw.seeding_unit import SeedingUnit
from repro.sim.engine import Engine
from repro.sim.memory import MemoryModel
from repro.sim.spm import Scratchpad
from repro.sim.stats import CounterSet, ThroughputResult, UtilizationTrace
from repro.sim.trace import ExecutionTrace


@dataclass(frozen=True)
class ExtensionOutput:
    """A functionally-executed extension (Table III EU output payload)."""

    read_idx: int
    hit_idx: int
    score: int
    cigar: str


@dataclass
class AssignmentQuality:
    """Fig 12(e/f): per optimal-class placement accuracy."""

    correct: Dict[int, int] = field(default_factory=dict)
    total: Dict[int, int] = field(default_factory=dict)

    def record(self, optimal_class: int, was_optimal: bool) -> None:
        self.total[optimal_class] = self.total.get(optimal_class, 0) + 1
        if was_optimal:
            self.correct[optimal_class] = \
                self.correct.get(optimal_class, 0) + 1

    def fraction(self, pe_class: int) -> float:
        total = self.total.get(pe_class, 0)
        if total == 0:
            return 0.0
        return self.correct.get(pe_class, 0) / total

    def overall_fraction(self) -> float:
        total = sum(self.total.values())
        if total == 0:
            return 0.0
        return sum(self.correct.values()) / total


@dataclass
class SimulationReport:
    """Everything a run produces: cycles, throughput, traces, quality."""

    config: NvWaConfig
    reads: int
    hits_processed: int
    cycles: int
    su_trace: UtilizationTrace
    eu_trace: UtilizationTrace
    assignment_quality: AssignmentQuality
    counters: CounterSet
    memory_energy_pj: float
    #: Mean PE-level efficiency of the EU pool while busy (useful DP cells
    #: per PE-cycle), the mismatch measure behind Fig 12(c/d).
    eu_pe_efficiency: float = 0.0
    #: Off-chip bytes moved / (cycles x peak bandwidth): the HBM headroom
    #: check (the paper's 256 GB/s HBM 1.0 must not be oversubscribed).
    memory_bandwidth_utilization: float = 0.0
    #: Optional event timeline (``record_trace=True``), Fig 3-style.
    trace: Optional[ExecutionTrace] = None
    #: Table III EU outputs (``functional_execution=True``), keyed by
    #: (read_idx, hit_idx).
    extension_results: Optional[Dict[Tuple[int, int], "ExtensionOutput"]] \
        = None

    @property
    def throughput(self) -> ThroughputResult:
        return ThroughputResult(reads=self.reads, cycles=self.cycles,
                                frequency_hz=self.config.frequency_hz)

    @property
    def su_utilization(self) -> float:
        return self.su_trace.average_utilization(self.cycles)

    @property
    def eu_utilization(self) -> float:
        return self.eu_trace.average_utilization(self.cycles)

    @property
    def eu_effective_utilization(self) -> float:
        """Busy fraction × PE efficiency — the Fig 12(c/d) utilization."""
        return self.eu_utilization * self.eu_pe_efficiency


class NvWaAccelerator:
    """The simulated accelerator. Construct once per run."""

    def __init__(self, config: Optional[NvWaConfig] = None):
        self.config = config if config is not None else NvWaConfig()

    def run(self, workload: Workload,
            max_cycles: Optional[int] = None) -> SimulationReport:
        """Simulate the workload end to end; returns the report."""
        sim = _Simulation(self.config, workload)
        return sim.run(max_cycles=max_cycles)


class _Simulation:
    """One run's mutable state (kept off the public accelerator object)."""

    def __init__(self, config: NvWaConfig, workload: Workload):
        if not config.use_hybrid_units and len(config.eu_classes) > 1:
            # The flag is authoritative: a non-hybrid run always uses the
            # uniform pool, whatever eu_config the caller handed in.
            config = config.uniform_variant()
        self.config = config
        self.workload = workload
        self.engine = Engine()
        self.memory = MemoryModel(config.memory_spec)
        self.counters = CounterSet()

        self.sus = [SeedingUnit(unit_id=i, memory=self.memory,
                                pipeline_overhead=config.su_pipeline_overhead,
                                cycles_per_access=config.su_cycles_per_access,
                                sram_miss_rate=config.su_sram_miss_rate,
                                memory_parallelism=config.su_memory_parallelism)
                    for i in range(config.num_seeding_units)]
        units: List[ExtensionUnit] = []
        uid = 0
        for pe, count in config.eu_config:
            for _ in range(count):
                units.append(ExtensionUnit(unit_id=uid, pe_count=pe,
                                           datapath=config.eu_datapath,
                                           load_overhead=config.eu_load_overhead))
                uid += 1
        self.eus = HybridUnitsManager(units)

        self.scheduler = SeedingScheduler(
            num_units=config.num_seeding_units,
            total_reads=len(workload),
            use_ocra=config.use_ocra,
            spm=Scratchpad(capacity=config.spm_capacity_reads),
            prefetch=config.use_spm_prefetch)
        self.buffer = HitsBuffer(depth=config.hits_buffer_depth,
                                 switch_threshold=config.switch_threshold)
        allocator_types = {"grouped": HitsAllocator,
                           "pooled": PooledAllocator,
                           "strict": StrictClassAllocator,
                           "fifo": FIFOAllocator}
        self.allocator = allocator_types[config.allocator_policy](
            config.eu_classes)
        self.trigger = AllocateTrigger(
            num_units=config.num_extension_units,
            idle_fraction=config.idle_trigger_fraction)

        self.su_trace = UtilizationTrace(config.num_seeding_units, "SUs")
        self.eu_trace = UtilizationTrace(config.num_extension_units, "EUs")
        self.quality = AssignmentQuality()

        #: SU -> hits that did not fit the Store Buffer (suspended state).
        self.suspended: Dict[int, List[HitTask]] = {}
        self.hits_processed = 0
        #: PB unavailable until this cycle after a buffer switch.
        self.switch_ready_at = 0
        self.trace = ExecutionTrace() if config.record_trace else None
        self.extension_results: Dict[Tuple[int, int], ExtensionOutput] = {}

    def _trace(self, source: str, kind: str, **detail) -> None:
        if self.trace is not None:
            self.trace.record(self.engine.now, source, kind, **detail)

    # ------------------------------------------------------------------ #
    # Seeding side
    # ------------------------------------------------------------------ #

    def su_status_vector(self) -> List[int]:
        """0 idle / 1 otherwise (busy or suspended on a full buffer)."""
        return [0 if (su.idle and su.unit_id not in self.suspended) else 1
                for su in self.sus]

    def pump_seeding(self) -> None:
        if self.scheduler.exhausted:
            return
        status = self.su_status_vector()
        if all(status):
            return
        loads = self.scheduler.schedule(status)
        for load in loads:
            su = self.sus[load.unit_id]
            task = self.workload.tasks[load.read_idx]
            finish = su.start(task, self.engine.now,
                              load_latency=load.load_latency)
            self.su_trace.begin(load.unit_id, self.engine.now)
            self.counters.add("reads_issued")
            self._trace(f"SU{load.unit_id}", "read_start",
                        read=load.read_idx, until=finish)
            self.engine.schedule(finish - self.engine.now,
                                 lambda u=load.unit_id, t=task:
                                 self.on_su_finish(u, t))

    def on_su_finish(self, unit_id: int, task) -> None:
        su = self.sus[unit_id]
        su.finish()
        self.su_trace.end(unit_id, self.engine.now)
        self._trace(f"SU{unit_id}", "read_finish", read=task.read_idx,
                    hits=len(task.hits))
        hits = list(task.hits)
        accepted = self.buffer.offer(hits)
        if accepted < len(hits):
            self.suspended[unit_id] = hits[accepted:]
            self.counters.add("su_suspensions")
            self._trace(f"SU{unit_id}", "suspend",
                        pending=len(hits) - accepted)
        self.try_switch()
        self.pump_seeding()
        self.pump_allocation()

    def seeding_done(self) -> bool:
        return (self.scheduler.exhausted
                and all(su.idle for su in self.sus)
                and not self.suspended)

    # ------------------------------------------------------------------ #
    # Coordinator side
    # ------------------------------------------------------------------ #

    def try_switch(self) -> None:
        producers_done = (self.scheduler.exhausted
                          and all(su.idle for su in self.sus))
        if self.buffer.should_switch(producers_done=producers_done):
            hits = self.buffer.switch()
            self._trace("Coordinator", "buffer_switch", hits=hits)
            self.switch_ready_at = (self.engine.now
                                    + self.config.switch_overhead_cycles)
            self.engine.schedule(self.config.switch_overhead_cycles,
                                 self.pump_allocation)
            self.retry_suspended()

    def retry_suspended(self) -> None:
        for unit_id in sorted(self.suspended):
            hits = self.suspended[unit_id]
            accepted = self.buffer.offer(hits)
            if accepted == len(hits):
                del self.suspended[unit_id]
            else:
                self.suspended[unit_id] = hits[accepted:]
        self.pump_seeding()

    def pump_allocation(self) -> None:
        while True:
            if self.engine.now < self.switch_ready_at:
                return  # a pump is already scheduled for switch completion
            if self.buffer.pb_drained:
                self.try_switch()
                if self.buffer.pb_drained or \
                        self.engine.now < self.switch_ready_at:
                    return
            idle = self.eus.idle_units()
            if not idle:
                return
            if not self.trigger.should_request(len(idle)) \
                    and not self.seeding_done():
                return
            batch = self.buffer.next_batch(self.config.allocation_batch_size)
            if not batch:
                return
            placements, unallocated = self.allocator.allocate(batch, idle)
            if not placements:
                self.counters.add("allocation_stalls")
                return
            if self.config.fragmentation_handling or not unallocated:
                self.buffer.writeback([p.hit for p in placements],
                                      unallocated)
            else:
                # Ablation: without the Fig 10 write-back fix the offset
                # cannot advance past a deferred hit — placed hits retire
                # but the stuck ones keep the window pinned (head-of-line
                # blocking, the fragmentation problem of Sec. IV-D).
                self.counters.add("head_of_line_stalls")
                placed_ids = {id(p.hit) for p in placements}
                remaining = [h for h in batch if id(h) not in placed_ids]
                self.buffer.writeback([], remaining, consumed=len(batch))
            for placement in placements:
                best = optimal_pe_count(placement.hit.hit_len,
                                        self.config.reference_classes)
                self.quality.record(best, placement.pe_count == best)
                self.eu_trace.begin(placement.unit_id, self.engine.now)
                self._trace(f"EU{placement.unit_id}", "hit_start",
                            hit_len=placement.hit.hit_len,
                            pe=placement.pe_count,
                            optimal=placement.optimal)
            finish_times = self.eus.dispatch(placements, self.engine.now)
            for placement, finish in zip(placements, finish_times):
                self.engine.schedule(finish - self.engine.now,
                                     lambda u=placement.unit_id:
                                     self.on_eu_finish(u))

    def on_eu_finish(self, unit_id: int) -> None:
        unit = self.eus.unit(unit_id)
        hit = unit.finish()
        self.eu_trace.end(unit_id, self.engine.now)
        self.hits_processed += 1
        self._trace(f"EU{unit_id}", "hit_finish")
        if self.config.functional_execution and hit.has_sequences:
            from repro.extension.smith_waterman import smith_waterman
            local = smith_waterman(hit.query_seq, hit.ref_seq)
            self.extension_results[(hit.read_idx, hit.hit_idx)] = \
                ExtensionOutput(read_idx=hit.read_idx, hit_idx=hit.hit_idx,
                                score=local.score, cigar=str(local.cigar))
        self.pump_allocation()

    # ------------------------------------------------------------------ #
    # Run
    # ------------------------------------------------------------------ #

    def run(self, max_cycles: Optional[int] = None) -> SimulationReport:
        self.engine.schedule(0, self.pump_seeding)
        self.engine.run(max_cycles=max_cycles)
        cycles = self.engine.now
        self.su_trace.close_all(cycles)
        self.eu_trace.close_all(cycles)
        for name, value in self.buffer.counters.as_dict().items():
            self.counters.add(f"buffer_{name}", value)
        for name, value in self.allocator.counters.as_dict().items():
            self.counters.add(f"alloc_{name}", value)
        total_capacity = sum(u.busy_cycles * u.pe_count
                             for u in self.eus.units)
        total_useful = sum(u.useful_cells for u in self.eus.units)
        pe_efficiency = (min(1.0, total_useful / total_capacity)
                         if total_capacity else 0.0)
        peak_bytes = cycles * self.config.memory_spec.bandwidth_bytes_per_cycle
        bandwidth_util = (self.memory.stats.bytes_transferred / peak_bytes
                          if peak_bytes else 0.0)
        return SimulationReport(
            config=self.config,
            reads=len(self.workload),
            hits_processed=self.hits_processed,
            cycles=cycles,
            su_trace=self.su_trace,
            eu_trace=self.eu_trace,
            assignment_quality=self.quality,
            counters=self.counters,
            memory_energy_pj=self.memory.stats.energy_pj,
            eu_pe_efficiency=pe_efficiency,
            memory_bandwidth_utilization=bandwidth_util,
            trace=self.trace,
            extension_results=(self.extension_results
                               if self.config.functional_execution else None),
        )
