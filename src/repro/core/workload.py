"""Workload traces consumed by the accelerator simulation.

A workload is the per-read *work* the computing units must perform: how
much index traffic the SU generates for the read (seeding accesses) and the
extension tasks (hits with their scales) the EUs must consume. Two sources:

- :func:`workload_from_pipeline` measures real work by running the software
  aligner (execution-driven simulation, the paper's methodology);
- :func:`synthetic_workload` draws work from a dataset profile's statistics
  (fast path for design-space sweeps, Fig 13).

The per-hit timing scale follows the paper's abstraction: EU latency is a
function of the *hit length* — the extension span the EU must compute. For
pipeline-derived hits that is the read's unmatched residue around the chain
(what seed extension actually fills in), which reproduces the paper's
short-hits-dominate distribution (Fig 9a / Fig 14b).

Hit-length statistics come in two related forms. The *count mass* is the
fraction of hits per interval — what the sampler draws from. The
*PE-demand mass* (count weighted by length) is what Equation 4/5 consumes:
with s_i as PE demand, unit counts x_i ∝ s_i give every class equal
per-unit load under Formula 3, which is exactly why the paper's mix
achieves the 85 % EU utilization of Fig 12(c).
"""

from __future__ import annotations

import json
import math
import os
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple, Union

from repro.genome.datasets import DatasetProfile

if TYPE_CHECKING:  # imported lazily to keep repro.core import-light
    from repro.align.pipeline import ReadAlignment


@dataclass(frozen=True)
class HitTask:
    """One extension task: align a ``query_len`` span against ``ref_len``.

    ``query_seq``/``ref_seq`` optionally carry the actual sequences of the
    task (attached by :func:`workload_from_pipeline` with
    ``attach_sequences=True``); with them the accelerator can *execute*
    each extension functionally, not just time it — the strongest form of
    the paper's no-loss-of-accuracy property.
    """

    read_idx: int
    hit_idx: int
    query_len: int
    ref_len: int
    query_seq: Optional[str] = None
    ref_seq: Optional[str] = None

    def __post_init__(self) -> None:
        if self.query_len <= 0 or self.ref_len <= 0:
            raise ValueError("hit task lengths must be positive")
        if (self.query_seq is None) != (self.ref_seq is None):
            raise ValueError("attach both sequences or neither")

    @property
    def hit_len(self) -> int:
        """The scheduling statistic (Fig 10 step ❷)."""
        return self.query_len

    @property
    def has_sequences(self) -> bool:
        return self.query_seq is not None


@dataclass(frozen=True)
class ReadTask:
    """One read's worth of accelerator work."""

    read_idx: int
    seeding_accesses: int
    hits: Tuple[HitTask, ...] = ()

    def __post_init__(self) -> None:
        if self.seeding_accesses < 0:
            raise ValueError("seeding_accesses must be >= 0")


@dataclass
class Workload:
    """An ordered stream of read tasks plus summary statistics."""

    tasks: List[ReadTask] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.tasks)

    @property
    def total_hits(self) -> int:
        return sum(len(t.hits) for t in self.tasks)

    def hit_lengths(self) -> List[int]:
        return [h.hit_len for t in self.tasks for h in t.hits]

    def interval_histogram(self,
                           bounds: Sequence[int] = (16, 32, 64, 128),
                           ) -> List[int]:
        """Hit counts per EU interval (…≤16, 17–32, 33–64, >64…)."""
        counts = [0] * len(bounds)
        for length in self.hit_lengths():
            for idx, hi in enumerate(bounds):
                if length <= hi or idx == len(bounds) - 1:
                    counts[idx] += 1
                    break
        return counts

    # ------------------------------------------------------------------ #
    # Serialization (reproducible workload exchange)
    # ------------------------------------------------------------------ #

    def save(self, target: Union[str, os.PathLike]) -> None:
        """Write the workload as JSON (sequences included when present)."""
        payload = {"version": 1, "tasks": [
            {"read_idx": t.read_idx,
             "seeding_accesses": t.seeding_accesses,
             "hits": [{"hit_idx": h.hit_idx,
                       "query_len": h.query_len,
                       "ref_len": h.ref_len,
                       **({"query_seq": h.query_seq,
                           "ref_seq": h.ref_seq}
                          if h.has_sequences else {})}
                      for h in t.hits]}
            for t in self.tasks]}
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)

    @classmethod
    def load(cls, source: Union[str, os.PathLike]) -> "Workload":
        """Read a workload written by :meth:`save`."""
        with open(source, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("version") != 1:
            raise ValueError(
                f"unsupported workload version {payload.get('version')!r}")
        tasks = []
        for entry in payload["tasks"]:
            hits = tuple(
                HitTask(read_idx=entry["read_idx"], hit_idx=h["hit_idx"],
                        query_len=h["query_len"], ref_len=h["ref_len"],
                        query_seq=h.get("query_seq"),
                        ref_seq=h.get("ref_seq"))
                for h in entry["hits"])
            tasks.append(ReadTask(read_idx=entry["read_idx"],
                                  seeding_accesses=entry["seeding_accesses"],
                                  hits=hits))
        return cls(tasks)


def hit_extension_span(read_len: int, read_start: int, read_end: int,
                       slack: int = 4) -> int:
    """Extension scale of a chained hit: the unmatched read residue.

    Seed extension fills in the read bases *outside* the exact-match chain
    (plus a little slack for edit errors inside it). A chain covering the
    whole read leaves a short extension task; a fragmented chain leaves a
    long one — reproducing the paper's hit-length diversity.
    """
    if not 0 <= read_start < read_end <= read_len:
        raise ValueError(
            f"invalid chain span [{read_start}, {read_end}) in read of "
            f"length {read_len}")
    residue = read_start + (read_len - read_end)
    return max(1, residue + slack)


def workload_from_pipeline(results: Sequence["ReadAlignment"],
                           ref_pad: int = 8,
                           slack: int = 4,
                           reference_text: Optional[str] = None) -> Workload:
    """Convert software-aligner outputs into an accelerator workload.

    Each hit's query side is its extension span (unmatched read residue);
    the reference side is that span plus the alignment band slack — the
    R ≈ Q geometry of the paper's Fig 8 analysis.

    With ``reference_text`` supplied, every hit task also carries the
    actual (oriented read, reference window) pair of the pipeline's
    extension, enabling functional execution inside the accelerator.
    """
    from repro.genome.sequence import reverse_complement

    tasks = []
    for idx, result in enumerate(results):
        read_len = len(result.read.sequence)
        hits = []
        for hit in result.hits:
            span = hit_extension_span(read_len, hit.read_start, hit.read_end,
                                      slack=slack)
            query_seq = ref_seq = None
            if reference_text is not None:
                query_seq = (reverse_complement(result.read.sequence)
                             if hit.reverse else result.read.sequence)
                ref_seq = reference_text[hit.ref_start:hit.ref_end]
            hits.append(HitTask(read_idx=idx, hit_idx=hit.hit_idx,
                                query_len=span, ref_len=span + ref_pad,
                                query_seq=query_seq, ref_seq=ref_seq))
        tasks.append(ReadTask(read_idx=idx,
                              seeding_accesses=result.work.seeding_accesses,
                              hits=tuple(hits)))
    return Workload(tasks)


def workload_from_long_reads(results: Sequence,
                             accesses_per_anchor: int = 3) -> Workload:
    """Convert long-read (chain-then-fill) results into a workload.

    Seeding work is the minimizer lookups (hash-table accesses per matched
    anchor); each surviving chain becomes one GACT-scale extension task
    whose window the EU tiles through (Sec. V-F / Sec. VI).
    """
    if accesses_per_anchor <= 0:
        raise ValueError("accesses_per_anchor must be positive")
    tasks = []
    for idx, result in enumerate(results):
        accesses = max(1, result.work.minimizers_matched
                       * accesses_per_anchor)
        hits = []
        if result.aligned:
            span = result.best.read_span
            window = max(1, result.best.ref_span)
            hits.append(HitTask(read_idx=idx, hit_idx=0,
                                query_len=max(1, span), ref_len=window))
        tasks.append(ReadTask(read_idx=idx, seeding_accesses=accesses,
                              hits=tuple(hits)))
    return Workload(tasks)


def synthetic_workload(profile: DatasetProfile, read_count: int,
                       seed: int = 0,
                       mean_seeding_accesses: int = 450,
                       access_dispersion: float = 0.45,
                       ref_pad: int = 8) -> Workload:
    """Draw a workload from a dataset profile's statistics.

    Per-read seeding accesses follow a lognormal (long-tailed, matching the
    execution-time diversity of Fig 2); hit counts are Poisson-like around
    ``profile.mean_hits_per_read``; hit lengths follow the profile's
    interval mass.
    """
    if read_count <= 0:
        raise ValueError(f"read_count must be positive, got {read_count}")
    if mean_seeding_accesses <= 0:
        raise ValueError("mean_seeding_accesses must be positive")
    rng = random.Random(seed)
    sigma = access_dispersion
    mu = math.log(mean_seeding_accesses) - sigma * sigma / 2

    lengths = profile.sample_hit_lengths(
        count=max(1, int(read_count * (profile.mean_hits_per_read + 3))),
        seed=seed + 1)
    cursor = 0
    tasks = []
    for idx in range(read_count):
        accesses = max(10, int(rng.lognormvariate(mu, sigma)))
        hit_count = _poisson(profile.mean_hits_per_read, rng)
        hits = []
        for h in range(hit_count):
            if cursor >= len(lengths):
                cursor = 0
            span = lengths[cursor]
            cursor += 1
            hits.append(HitTask(read_idx=idx, hit_idx=h, query_len=span,
                                ref_len=span + ref_pad))
        tasks.append(ReadTask(read_idx=idx, seeding_accesses=accesses,
                              hits=tuple(hits)))
    return Workload(tasks)


def _poisson(mean: float, rng: random.Random) -> int:
    """Knuth's Poisson sampler, floored at 1 (every read yields a hit)."""
    threshold = math.exp(-mean)
    k, p = 0, 1.0
    while True:
        p *= rng.random()
        if p <= threshold:
            break
        k += 1
    return max(1, k)
