"""NvWa system configuration (paper Table I and Sec. V-A).

The paper's design point: 128 SUs, 70 EUs totalling 2880 PEs split
{16 PE × 28, 32 PE × 20, 64 PE × 16, 128 PE × 6} (solved from Equation 5
over the NA12878 hit distribution), 1 GHz, HBM 1.0, Hits Buffer depth 1024,
buffer switch threshold 75 %, idle-EU allocation trigger 15 %.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from repro.sim.memory import HBM_1_0, MemorySpec

#: The paper's EU configuration: PE class -> unit count (Sec. V-A).
PAPER_EU_CONFIG: Dict[int, int] = {16: 28, 32: 20, 64: 16, 128: 6}

#: Total PEs in the paper's design.
PAPER_TOTAL_PES = 2880


@dataclass(frozen=True)
class NvWaConfig:
    """Full accelerator configuration.

    Feature flags (`use_*`) switch each scheduling mechanism on/off,
    enabling the paper's ablations (Fig 11: +HUS, +OCRA, +HA) and the
    SUs+EUs baseline (all off).
    """

    num_seeding_units: int = 128
    eu_config: Tuple[Tuple[int, int], ...] = tuple(
        sorted(PAPER_EU_CONFIG.items()))
    frequency_hz: float = 1e9

    # Coordinator parameters (Sec. IV-D).
    hits_buffer_depth: int = 1024
    switch_threshold: float = 0.75
    idle_trigger_fraction: float = 0.15
    allocation_batch_size: int = 64
    #: Cycles the PB is unavailable around a buffer switch (pointer swap,
    #: offset reset, SU restart handshake). Small buffers switch often and
    #: pay this repeatedly — one side of the Fig 13(a) trade-off.
    switch_overhead_cycles: int = 24
    #: The Coordinator's hits-fragmentation fix (Fig 10 steps ❼-❾): move
    #: allocated hits past the offset and retry deferred ones first. Off,
    #: a batch only retires when *every* hit in it has been placed —
    #: head-of-line blocking, the problem Sec. IV-D describes.
    fragmentation_handling: bool = True
    #: Read SPM prefetching (Sec. IV-A): staged reads load in one cycle.
    #: Off, every read load pays the DRAM round trip.
    use_spm_prefetch: bool = True
    #: EU datapath: "systolic" (Darwin-style, Formula 3) or "genasm"
    #: (bit-parallel). The schedulers are agnostic — the paper's loose
    #: coupling claim, exercised by the ablation benches.
    eu_datapath: str = "systolic"
    #: Record a per-event execution trace (Fig 3-style timelines). Off by
    #: default: tracing a large run costs memory.
    record_trace: bool = False
    #: Execute each extension functionally inside the EU (requires hit
    #: tasks with attached sequences): the report then carries Table III
    #: ExtensionResult records identical to the software pipeline's — the
    #: checkable form of "no loss of accuracy". Costs real SW compute.
    functional_execution: bool = False

    # Scheduling feature flags.
    use_ocra: bool = True          # One-Cycle Read Allocator vs batch
    use_hybrid_units: bool = True  # Hybrid Units Strategy vs uniform
    #: Hit dispatch policy: "grouped" = the paper's Hits Allocator (Fig 10),
    #: "pooled" = basic method (2) (one shared group, optimal-first),
    #: "strict" = basic method (1) (per-class groups, optimal-only),
    #: "fifo" = no length matching at all (the SUs+EUs baseline).
    allocator_policy: str = "grouped"

    # Memory system.
    memory_spec: MemorySpec = HBM_1_0
    spm_capacity_reads: int = 4096

    # Unit timing knobs. The SU's Table SRAM keeps Occ blocks on chip
    # (Table II: SRAM dominates SU area), so the pipelined LF loop retires
    # ~1 access/cycle with a small HBM miss fraction — balancing seeding
    # and extension demand as in the paper's Fig 2.
    su_memory_parallelism: int = 4
    su_pipeline_overhead: int = 4
    su_cycles_per_access: int = 1
    su_sram_miss_rate: float = 0.02
    eu_load_overhead: int = 2

    #: Class set used for the Fig 12(e/f) assignment-quality metric. Kept
    #: fixed across ablations so uniform pools are judged against the same
    #: latency-optimal classes as the hybrid design.
    reference_classes: Tuple[int, ...] = (16, 32, 64, 128)

    def __post_init__(self) -> None:
        if self.num_seeding_units <= 0:
            raise ValueError("need at least one seeding unit")
        if not self.eu_config:
            raise ValueError("need at least one EU class")
        for pe, count in self.eu_config:
            if pe <= 0 or count <= 0:
                raise ValueError(
                    f"invalid EU class ({pe} PEs x {count} units)")
        if not 0.0 < self.switch_threshold <= 1.0:
            raise ValueError("switch_threshold must be in (0, 1]")
        if not 0.0 <= self.idle_trigger_fraction <= 1.0:
            raise ValueError("idle_trigger_fraction must be in [0, 1]")
        if self.hits_buffer_depth <= 0:
            raise ValueError("hits_buffer_depth must be positive")
        if self.allocation_batch_size <= 0:
            raise ValueError("allocation_batch_size must be positive")
        if self.allocator_policy not in ("grouped", "pooled", "strict",
                                         "fifo"):
            raise ValueError(
                f"allocator_policy must be grouped/pooled/strict/fifo, "
                f"got {self.allocator_policy!r}")
        if self.eu_datapath not in ("systolic", "genasm"):
            raise ValueError(
                f"eu_datapath must be systolic or genasm, "
                f"got {self.eu_datapath!r}")

    @property
    def eu_classes(self) -> Tuple[int, ...]:
        """PE counts of the EU classes, ascending."""
        return tuple(pe for pe, _ in self.eu_config)

    @property
    def num_extension_units(self) -> int:
        return sum(count for _, count in self.eu_config)

    @property
    def total_pes(self) -> int:
        return sum(pe * count for pe, count in self.eu_config)

    def uniform_variant(self) -> "NvWaConfig":
        """Same PE budget in equal-size units (Fig 9(b)'s strategy).

        Uses the median class size (the paper's toy uses 64-PE units) and
        as many units as the budget allows.
        """
        classes = self.eu_classes
        pe = classes[len(classes) // 2]
        count = max(1, self.total_pes // pe)
        return replace(self, eu_config=((pe, count),),
                       use_hybrid_units=False)

    def baseline_variant(self) -> "NvWaConfig":
        """The non-scheduled SUs+EUs design (all mechanisms off)."""
        uniform = self.uniform_variant()
        return replace(uniform, use_ocra=False, allocator_policy="fifo")


#: The paper's published configuration.
PAPER_CONFIG = NvWaConfig()
