"""The Coordinator (Sec. IV-D, Fig 10): Hits Buffer + Allocate Judger +
greedy Hits Allocator.

Dataflow: SUs push hits into the Store Buffer (SB); when the SB reaches the
switch threshold (75 %) and the Processing Buffer (PB) has drained, the
buffers swap. Allocation rounds — triggered by the Extension Scheduler when
enough EUs are idle (15 %) — read a fixed-size batch from the PB at the
current ``offset``, compute hit lengths, sort, split by a length threshold
into EU groups, place each hit on its optimal or an adjacent (sub-optimal)
idle unit, compact the unallocated hits back at the batch position and
advance ``offset`` past the allocated ones. That write-back + offset rule
is the paper's solution to the *hits fragmentation problem*: a hit that
failed allocation is retried first on the next round instead of leaking.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.workload import HitTask
from repro.extension.systolic import optimal_pe_count
from repro.sim.stats import CounterSet


class HitsBuffer:
    """Double-buffered hit store (SB + PB) with fragmentation handling."""

    def __init__(self, depth: int = 1024, switch_threshold: float = 0.75):
        if depth <= 0:
            raise ValueError(f"depth must be positive, got {depth}")
        if not 0.0 < switch_threshold <= 1.0:
            raise ValueError(
                f"switch_threshold must be in (0, 1], got {switch_threshold}")
        self.depth = depth
        self.switch_threshold = switch_threshold
        self._store: List[HitTask] = []
        self._processing: List[HitTask] = []
        self.offset = 0
        self.counters = CounterSet()

    # ------------------------------ SB side ------------------------------ #

    @property
    def store_occupancy(self) -> int:
        return len(self._store)

    @property
    def store_free(self) -> int:
        return self.depth - len(self._store)

    def offer(self, hits: Sequence[HitTask]) -> int:
        """Append hits to the SB; returns how many fit (rest are refused,
        which back-pressures the producing SU — the paper's *blocking*)."""
        space = self.store_free
        accepted = list(hits[:space])
        self._store.extend(accepted)
        if len(accepted) < len(hits):
            self.counters.add("sb_rejects", len(hits) - len(accepted))
        return len(accepted)

    # ------------------------------ switch ------------------------------ #

    @property
    def pb_drained(self) -> bool:
        return self.offset >= len(self._processing)

    def should_switch(self, producers_done: bool = False) -> bool:
        """75 %-full rule, or a final flush once the SUs have finished."""
        if not self.pb_drained:
            return False
        if len(self._store) >= math.ceil(self.switch_threshold * self.depth):
            return True
        return producers_done and bool(self._store)

    def switch(self) -> int:
        """Swap SB and PB; returns the new PB's hit count."""
        if not self.pb_drained:
            raise RuntimeError("cannot switch while the PB still holds hits")
        self._processing = self._store
        self._store = []
        self.offset = 0
        self.counters.add("switches")
        return len(self._processing)

    # ------------------------------ PB side ------------------------------ #

    @property
    def processing_remaining(self) -> int:
        return len(self._processing) - self.offset

    def next_batch(self, batch_size: int) -> List[HitTask]:
        """Fig 10 step ❶: read the next batch at the current offset."""
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        return self._processing[self.offset:self.offset + batch_size]

    def writeback(self, allocated: Sequence[HitTask],
                  unallocated: Sequence[HitTask],
                  consumed: Optional[int] = None) -> None:
        """Fig 10 steps ❼-❾: allocated hits retire, unallocated hits are
        written back at the batch position; offset skips the allocated.

        ``consumed`` is the number of PB slots the original batch occupied
        (defaults to ``len(allocated) + len(unallocated)``); passing it
        explicitly lets ablations retire placed hits without advancing the
        offset (head-of-line semantics).
        """
        batch_len = len(allocated) + len(unallocated)
        if consumed is None:
            consumed = batch_len
        if consumed < batch_len:
            raise ValueError("cannot write back more hits than consumed")
        if consumed > self.processing_remaining:
            raise ValueError("writeback larger than outstanding batch")
        self._processing[self.offset:self.offset + consumed] = \
            list(allocated) + list(unallocated)
        self.offset += len(allocated)
        self.counters.add("hits_allocated", len(allocated))
        self.counters.add("hits_deferred", len(unallocated))


@dataclass(frozen=True)
class EUGroup:
    """A group of EU classes sharing hits (Fig 10 step ❺)."""

    classes: Tuple[int, ...]

    @property
    def max_class(self) -> int:
        return max(self.classes)


def build_groups(pe_classes: Sequence[int]) -> List[EUGroup]:
    """Group adjacent EU classes pairwise: {16,32} and {64,128}.

    With an odd class count the middle class joins the upper group; a
    single class forms its own group.
    """
    ordered = tuple(sorted(set(pe_classes)))
    if not ordered:
        raise ValueError("need at least one PE class")
    if len(ordered) == 1:
        return [EUGroup(ordered)]
    half = len(ordered) // 2
    return [EUGroup(ordered[:half]), EUGroup(ordered[half:])]


def split_thresholds(groups: Sequence[EUGroup]) -> List[float]:
    """Length boundaries between consecutive groups.

    Geometric midpoint between a group's largest class and the next
    group's smallest — with classes {16,32}/{64,128} this puts the Fig 10
    example's hit of length 40 (√(32·64) ≈ 45) in the upper group, as the
    paper shows.
    """
    bounds = []
    for a, b in zip(groups, groups[1:]):
        bounds.append(math.sqrt(a.max_class * min(b.classes)))
    return bounds


@dataclass(frozen=True)
class Placement:
    """One hit placed on one EU."""

    hit: HitTask
    unit_id: int
    pe_count: int
    optimal: bool


class HitsAllocator:
    """Greedy low-latency allocation of a hit batch to idle EUs."""

    def __init__(self, pe_classes: Sequence[int]):
        self.pe_classes = tuple(sorted(set(pe_classes)))
        if not self.pe_classes:
            raise ValueError("need at least one PE class")
        self.groups = build_groups(self.pe_classes)
        self.thresholds = split_thresholds(self.groups)
        self.counters = CounterSet()

    def group_of(self, hit_len: int) -> int:
        """Fig 10 step ❹: which group a hit belongs to by length."""
        for idx, bound in enumerate(self.thresholds):
            if hit_len <= bound:
                return idx
        return len(self.groups) - 1

    def allocate(self, batch: Sequence[HitTask],
                 idle_units: Dict[int, int],
                 ) -> Tuple[List[Placement], List[HitTask]]:
        """Fig 10 steps ❷-❻: place a batch onto idle units.

        Args:
            batch: hits read from the PB.
            idle_units: ``unit_id -> pe_count`` of currently idle EUs.

        Returns ``(placements, unallocated)``; ``unallocated`` preserves
        batch order for write-back.
        """
        free: Dict[int, List[int]] = {}
        for unit_id, pe in idle_units.items():
            free.setdefault(pe, []).append(unit_id)
        for units in free.values():
            units.sort(reverse=True)  # pop() yields the lowest index first

        ordered = sorted(batch, key=lambda h: h.hit_len)  # step ❸
        placements: List[Placement] = []
        taken = set()
        for hit in ordered:
            placement = self._place(hit, free)
            if placement is not None:
                placements.append(placement)
                taken.add(id(hit))
        unallocated = [h for h in batch if id(h) not in taken]
        self.counters.add("allocated", len(placements))
        self.counters.add("deferred", len(unallocated))
        return placements, unallocated

    def _place(self, hit: HitTask,
               free: Dict[int, List[int]]) -> Optional[Placement]:
        best_pe = optimal_pe_count(hit.hit_len, self.pe_classes)
        group = self.groups[self.group_of(hit.hit_len)]
        # Optimal class first, then the group's other classes by closeness.
        candidates = [best_pe, *sorted(
            (pe for pe in group.classes if pe != best_pe),
            key=lambda pe: abs(pe - best_pe))]
        for pe in candidates:
            units = free.get(pe)
            if units:
                unit_id = units.pop()
                self.counters.add("optimal" if pe == best_pe else "suboptimal")
                return Placement(hit=hit, unit_id=unit_id, pe_count=pe,
                                 optimal=pe == best_pe)
        return None


class StrictClassAllocator:
    """The paper's basic method (1): per-class groups, optimal-only.

    "Allocating computing units in groups with the same number of PEs
    guarantees that the different groups do not interfere and that the
    optimal computing unit is always assigned to the hit. However, once
    the number of hits is more than idle resources, hits can not be
    allocated to resources, which affects the scheduling efficiency."

    Every placement is optimal by construction; anything whose optimal
    class is busy defers — the scheduling-efficiency cost the grouped
    Hits Allocator fixes.
    """

    def __init__(self, pe_classes: Sequence[int]):
        self.pe_classes = tuple(sorted(set(pe_classes)))
        if not self.pe_classes:
            raise ValueError("need at least one PE class")
        self.counters = CounterSet()

    def allocate(self, batch: Sequence[HitTask],
                 idle_units: Dict[int, int],
                 ) -> Tuple[List[Placement], List[HitTask]]:
        free: Dict[int, List[int]] = {}
        for unit_id, pe in idle_units.items():
            free.setdefault(pe, []).append(unit_id)
        for units in free.values():
            units.sort(reverse=True)
        placements: List[Placement] = []
        taken = set()
        for hit in sorted(batch, key=lambda h: h.hit_len):
            best_pe = optimal_pe_count(hit.hit_len, self.pe_classes)
            units = free.get(best_pe)
            if units:
                unit_id = units.pop()
                self.counters.add("optimal")
                placements.append(Placement(hit=hit, unit_id=unit_id,
                                            pe_count=best_pe, optimal=True))
                taken.add(id(hit))
        unallocated = [h for h in batch if id(h) not in taken]
        self.counters.add("allocated", len(placements))
        self.counters.add("deferred", len(unallocated))
        return placements, unallocated


class PooledAllocator:
    """The paper's basic method (2): one shared pool, optimal-first.

    "Allocating all computing units in one group ensures that all idle
    resources are shared, making it easier to allocate hits to idle
    computing units. Unfortunately, this approach is too aggressive and can
    easily lead to short hits being executed by large computing units."

    Each hit takes its latency-optimal class when one is idle, otherwise
    *any* idle unit — work-conserving but latency-careless, which is what
    the grouped Hits Allocator improves on.
    """

    def __init__(self, pe_classes: Sequence[int]):
        self.pe_classes = tuple(sorted(set(pe_classes)))
        if not self.pe_classes:
            raise ValueError("need at least one PE class")
        self.counters = CounterSet()

    def allocate(self, batch: Sequence[HitTask],
                 idle_units: Dict[int, int],
                 ) -> Tuple[List[Placement], List[HitTask]]:
        free: Dict[int, List[int]] = {}
        for unit_id, pe in idle_units.items():
            free.setdefault(pe, []).append(unit_id)
        for units in free.values():
            units.sort(reverse=True)
        placements: List[Placement] = []
        taken = set()
        for hit in batch:
            best_pe = optimal_pe_count(hit.hit_len, self.pe_classes)
            candidates = [best_pe, *(pe for pe in self.pe_classes
                                     if pe != best_pe)]
            for pe in candidates:
                units = free.get(pe)
                if units:
                    unit_id = units.pop()
                    optimal = pe == best_pe
                    self.counters.add("optimal" if optimal else "suboptimal")
                    placements.append(Placement(hit=hit, unit_id=unit_id,
                                                pe_count=pe, optimal=optimal))
                    taken.add(id(hit))
                    break
        unallocated = [h for h in batch if id(h) not in taken]
        self.counters.add("allocated", len(placements))
        self.counters.add("deferred", len(unallocated))
        return placements, unallocated


class FIFOAllocator:
    """Baseline dispatch: hits in order onto any idle unit (no matching)."""

    def __init__(self, pe_classes: Sequence[int]):
        self.pe_classes = tuple(sorted(set(pe_classes)))
        self.counters = CounterSet()

    def allocate(self, batch: Sequence[HitTask],
                 idle_units: Dict[int, int],
                 ) -> Tuple[List[Placement], List[HitTask]]:
        order = sorted(idle_units.items())
        placements: List[Placement] = []
        cursor = 0
        for hit in batch:
            if cursor >= len(order):
                break
            unit_id, pe = order[cursor]
            cursor += 1
            optimal = pe == optimal_pe_count(hit.hit_len, self.pe_classes)
            self.counters.add("optimal" if optimal else "suboptimal")
            placements.append(Placement(hit=hit, unit_id=unit_id,
                                        pe_count=pe, optimal=optimal))
        unallocated = list(batch[len(placements):])
        self.counters.add("allocated", len(placements))
        self.counters.add("deferred", len(unallocated))
        return placements, unallocated
