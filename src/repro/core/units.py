"""Named unit-conversion constants for the hardware and cost models.

The analytic models convert between seconds/nanoseconds/picoseconds,
mm²/µm², bits/bytes and reads/Kreads in many places. Each conversion
factor lives here under one name so the conversions are auditable and
cannot drift apart between copies — ``repro lint`` rule CFG301
(magic-number) enforces that model arithmetic uses these instead of
inline literals.
"""

from __future__ import annotations

#: Nanoseconds per second (throughput models quote per-read costs in ns).
NS_PER_S = 1e9

#: Picoseconds per second (gate-delay arithmetic is quoted in ps).
PS_PER_S = 1e12

#: Square microns per square millimetre (SRAM density is µm²/bit, Table
#: II areas are mm²).
UM2_PER_MM2 = 1e6

#: Bits per byte, for index-footprint accounting.
BITS_PER_BYTE = 8

#: Reads per Kread — the paper reports throughput in Kreads/s.
READS_PER_KREAD = 1e3
