"""NvWa core: schedulers, Coordinator, configuration, accelerator model."""

from repro.core.interface import (
    EUControl,
    ExtensionResult,
    Hit,
    ReadDescriptor,
    SUControl,
    UnitState,
)
from repro.core.config import (
    PAPER_CONFIG,
    PAPER_EU_CONFIG,
    PAPER_TOTAL_PES,
    NvWaConfig,
)
from repro.core.allocator import (
    AllocationResult,
    OneCycleReadAllocator,
    ReadInBatchAllocator,
)
from repro.core.hybrid_units import (
    IntervalPartition,
    PoolExecution,
    assignment_is_optimal,
    execute_on_pool,
    expand_pool,
    paper_unit_mix,
    solve_unit_mix,
)
from repro.core.coordinator import (
    EUGroup,
    FIFOAllocator,
    HitsAllocator,
    HitsBuffer,
    Placement,
    PooledAllocator,
    StrictClassAllocator,
    build_groups,
    split_thresholds,
)
from repro.core.seeding_scheduler import ScheduledLoad, SeedingScheduler
from repro.core.extension_scheduler import AllocateTrigger, HybridUnitsManager
from repro.core.workload import (
    HitTask,
    ReadTask,
    Workload,
    hit_extension_span,
    synthetic_workload,
    workload_from_long_reads,
    workload_from_pipeline,
)

# The accelerator (and its baseline constructors) depend on repro.hw, whose
# unit models import the leaf modules above; loading them lazily (PEP 562)
# keeps `import repro.core.interface` from recursing through repro.hw.
_LAZY = {
    "AssignmentQuality": ("repro.core.accelerator", "AssignmentQuality"),
    "ExtensionOutput": ("repro.core.accelerator", "ExtensionOutput"),
    "NvWaAccelerator": ("repro.core.accelerator", "NvWaAccelerator"),
    "SimulationReport": ("repro.core.accelerator", "SimulationReport"),
    "baseline": ("repro.core", "baseline"),
}


def __getattr__(name):
    if name in _LAZY:
        import importlib
        module_name, attr = _LAZY[name]
        if attr == "baseline":
            value = importlib.import_module("repro.core.baseline")
        else:
            value = getattr(importlib.import_module(module_name), attr)
        globals()[name] = value
        return value
    raise AttributeError(f"module 'repro.core' has no attribute {name!r}")

__all__ = [
    "EUControl", "ExtensionResult", "Hit", "ReadDescriptor", "SUControl",
    "UnitState",
    "PAPER_CONFIG", "PAPER_EU_CONFIG", "PAPER_TOTAL_PES", "NvWaConfig",
    "AllocationResult", "OneCycleReadAllocator", "ReadInBatchAllocator",
    "IntervalPartition", "PoolExecution", "assignment_is_optimal",
    "execute_on_pool", "expand_pool", "paper_unit_mix", "solve_unit_mix",
    "EUGroup", "FIFOAllocator", "HitsAllocator", "HitsBuffer", "Placement",
    "PooledAllocator", "StrictClassAllocator",
    "build_groups", "split_thresholds",
    "ScheduledLoad", "SeedingScheduler",
    "AllocateTrigger", "HybridUnitsManager",
    "HitTask", "ReadTask", "Workload", "hit_extension_span",
    "synthetic_workload", "workload_from_long_reads",
    "workload_from_pipeline",
    "AssignmentQuality", "NvWaAccelerator", "SimulationReport",
    "baseline",
]
