"""Online alignment service: NvWa's scheduling thesis applied to serving.

The offline stack aligns a read set it can see in full; a service must
hit the same throughput on requests it has not seen yet. This package
carries the paper's scheduling idea (§III: keep the units full by
scheduling diverse ready work, don't chase faster units) into the
request/response world:

- :mod:`repro.service.protocol` — newline-delimited-JSON requests and
  responses over TCP or UNIX sockets (``align``, ``align_pair``,
  ``stats``, ``ping``).
- :mod:`repro.service.batcher` — :class:`~repro.service.batcher.
  DynamicBatcher`: max-batch / max-wait coalescing with greedy queue
  drain, plus bounded-queue admission control
  (:class:`~repro.service.batcher.ServiceOverloadedError` → the
  ``overloaded`` response).
- :mod:`repro.service.engine` — :class:`~repro.service.engine.
  AlignmentEngine` executes mixed batches through the existing
  ``align.pipeline`` + ``runtime.batch`` vectorized kernels; responses
  are bit-identical to the offline SAM output by construction.
- :mod:`repro.service.server` — the asyncio
  :class:`~repro.service.server.AlignmentServer`: worker pool, per-
  request timeouts, worker crash replay, graceful drain.
- :mod:`repro.service.metrics` — counters, gauges, and latency
  histograms (p50/p95/p99) behind the ``stats`` request and the periodic
  log line.
- :mod:`repro.service.client` / :mod:`repro.service.loadgen` — the
  multiplexing client and the closed/open-loop benchmark driver
  (``repro serve`` / ``repro loadgen`` in the CLI).
"""

from repro.service.batcher import (
    BatcherStats,
    DynamicBatcher,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.service.client import AsyncServiceClient, ServiceClient, ServiceError
from repro.service.engine import AlignmentEngine, EngineError
from repro.service.loadgen import (
    LoadgenConfig,
    LoadgenReport,
    RequestSpec,
    build_workload,
    run_loadgen,
    workload_from_reads,
)
from repro.service.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
)
from repro.service.protocol import (
    AlignRequest,
    ProtocolError,
    decode_request,
    decode_response,
    encode_align,
    encode_align_pair,
)
from repro.service.server import AlignmentServer, ServerConfig, run_server

__all__ = [
    "AlignRequest",
    "AlignmentEngine",
    "AlignmentServer",
    "AsyncServiceClient",
    "BatcherStats",
    "Counter",
    "DynamicBatcher",
    "EngineError",
    "Gauge",
    "Histogram",
    "LoadgenConfig",
    "LoadgenReport",
    "MetricsRegistry",
    "ProtocolError",
    "RequestSpec",
    "ServerConfig",
    "ServiceClient",
    "ServiceClosedError",
    "ServiceError",
    "ServiceOverloadedError",
    "build_workload",
    "decode_request",
    "decode_response",
    "encode_align",
    "encode_align_pair",
    "percentile",
    "run_loadgen",
    "run_server",
    "workload_from_reads",
]
