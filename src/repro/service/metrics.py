"""Service-level observability: counters, gauges, latency histograms.

The offline reproduction measures utilization per simulated cycle; an
online server needs the serving equivalents — request and error counts,
queue depth, batch occupancy, and latency percentiles. This module keeps
them in a single :class:`MetricsRegistry` that the server samples for the
``stats`` protocol request and for its periodic log line.

Histograms record exact samples in a bounded ring (newest
``window`` samples) plus lifetime count/sum, so percentiles reflect
recent behaviour while totals stay exact. Everything is plain Python and
cheap enough to update on every request; none of it is on the kernel hot
path.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence

#: Default sample window for percentile estimation.
DEFAULT_WINDOW = 4096


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-quantile (0..1) of ``samples`` by linear interpolation.

    Matches ``numpy.percentile(..., method="linear")`` without importing
    numpy on the serving path. Returns 0.0 for an empty sequence.
    """
    if not samples:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = q * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)


class Counter:
    """A monotonically increasing count."""

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """An instantaneous level (queue depth, in-flight, connections)."""

    def __init__(self) -> None:
        self.value = 0

    def set(self, value: int) -> None:
        self.value = value

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def dec(self, amount: int = 1) -> None:
        self.value -= amount


class Histogram:
    """Lifetime count/sum plus a bounded window of recent samples.

    Percentiles are computed over the window (the behaviour an operator
    watches); ``mean`` is lifetime-exact.
    """

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self._samples: Deque[float] = deque(maxlen=window)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value
        self._samples.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        return percentile(list(self._samples), q)

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": round(self.mean, 6),
            "max": round(self.max, 6),
            "p50": round(self.quantile(0.50), 6),
            "p95": round(self.quantile(0.95), 6),
            "p99": round(self.quantile(0.99), 6),
        }


class MetricsRegistry:
    """All serving metrics, named on demand and snapshot atomically.

    Thread-safe: the engine runs in executor threads while the event loop
    updates queue metrics, so every mutation takes the registry lock (the
    operations are tiny; contention is negligible at service rates).
    """

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        self._lock = threading.Lock()
        self._window = window
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- named access (creates on first use) --------------------------- #

    def counter(self, name: str) -> Counter:
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter()
            return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            if name not in self._gauges:
                self._gauges[name] = Gauge()
            return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(window=self._window)
            return self._histograms[name]

    # -- convenience mutators ------------------------------------------ #

    def inc(self, name: str, amount: int = 1) -> None:
        counter = self.counter(name)
        with self._lock:
            counter.inc(amount)

    def set_gauge(self, name: str, value: int) -> None:
        gauge = self.gauge(name)
        with self._lock:
            gauge.set(value)

    def observe(self, name: str, value: float) -> None:
        histogram = self.histogram(name)
        with self._lock:
            histogram.observe(value)

    # -- snapshots ------------------------------------------------------ #

    def snapshot(self) -> Dict[str, object]:
        """A JSON-ready view: counters, gauges, histogram summaries."""
        with self._lock:
            return {
                "counters": {name: c.value
                             for name, c in sorted(self._counters.items())},
                "gauges": {name: g.value
                           for name, g in sorted(self._gauges.items())},
                "histograms": {name: h.summary()
                               for name, h in
                               sorted(self._histograms.items())},
            }

    def format_line(self, names: Optional[List[str]] = None) -> str:
        """One compact log line for the periodic stats logger."""
        snap = self.snapshot()
        parts: List[str] = []
        for name, value in snap["counters"].items():  # type: ignore[union-attr]
            parts.append(f"{name}={value}")
        for name, value in snap["gauges"].items():  # type: ignore[union-attr]
            parts.append(f"{name}={value}")
        for name, summ in snap["histograms"].items():  # type: ignore[union-attr]
            parts.append(f"{name}.p50={summ['p50']:.3f}")
            parts.append(f"{name}.p99={summ['p99']:.3f}")
        if names is not None:
            wanted = set(names)
            parts = [p for p in parts if p.split("=")[0].split(".p")[0]
                     in wanted]
        return " ".join(parts)
