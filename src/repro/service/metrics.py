"""Service-level observability: counters, gauges, latency histograms.

The offline reproduction measures utilization per simulated cycle; an
online server needs the serving equivalents — request and error counts,
queue depth, batch occupancy, and latency percentiles. This module keeps
them in a single :class:`MetricsRegistry` that the server samples for the
``stats`` protocol request and for its periodic log line.

Thread-safety model: every instrument is **self-locking** — its mutators
and readers hold a per-instrument lock — so the handles
:meth:`MetricsRegistry.counter`/:meth:`~MetricsRegistry.gauge`/
:meth:`~MetricsRegistry.histogram` return are safe to mutate directly
from any thread (the engine runs in executor threads while the event
loop updates queue metrics).  The registry's own lock only guards the
name → instrument maps, so a convenience mutator like
:meth:`MetricsRegistry.inc` takes each lock once, never the registry
lock twice.

Histograms record exact samples in a bounded ring (newest
``window`` samples) plus lifetime count/sum, so percentiles reflect
recent behaviour while totals stay exact. Everything is plain Python and
cheap enough to update on every request; none of it is on the kernel hot
path.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

#: Default sample window for percentile estimation.
DEFAULT_WINDOW = 4096


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-quantile (0..1) of ``samples`` by linear interpolation.

    Matches ``numpy.percentile(..., method="linear")`` without importing
    numpy on the serving path. Returns 0.0 for an empty sequence.
    """
    if not samples:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = q * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)


class Counter:
    """A monotonically increasing count (self-locking)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """An instantaneous level (queue depth, in-flight, connections).

    Self-locking, so concurrent ``inc``/``dec`` from different threads
    never lose updates.
    """

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def set(self, value: int) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: int = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Histogram:
    """Lifetime count/sum plus a bounded window of recent samples.

    Percentiles are computed over the window (the behaviour an operator
    watches); ``mean`` is lifetime-exact.  Self-locking: ``observe`` and
    the readers serialize on a per-histogram lock.
    """

    __slots__ = ("_lock", "_count", "_total", "_max", "_samples")

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self._lock = threading.Lock()
        self._count = 0
        self._total = 0.0
        self._max = 0.0
        self._samples: Deque[float] = deque(maxlen=window)

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._total += value
            if value > self._max:
                self._max = value
            self._samples.append(value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def total(self) -> float:
        with self._lock:
            return self._total

    @property
    def max(self) -> float:
        with self._lock:
            return self._max

    @property
    def mean(self) -> float:
        with self._lock:
            return self._total / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        with self._lock:
            samples = list(self._samples)
        return percentile(samples, q)

    def summary(self) -> Dict[str, float]:
        with self._lock:
            count = self._count
            total = self._total
            maximum = self._max
            samples = list(self._samples)
        return {
            "count": count,
            "sum": round(total, 6),
            "mean": round(total / count if count else 0.0, 6),
            "max": round(maximum, 6),
            "p50": round(percentile(samples, 0.50), 6),
            "p95": round(percentile(samples, 0.95), 6),
            "p99": round(percentile(samples, 0.99), 6),
        }


#: The histogram summary keys ``format_line`` renders, in order.
_LINE_QUANTILES = ("p50", "p99")


class MetricsRegistry:
    """All serving metrics, named on demand and snapshot atomically.

    Thread-safe: instruments lock themselves (see the module docstring),
    and the registry lock only protects the name → instrument maps, so
    handles obtained once can be mutated forever without touching the
    registry again.
    """

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        self._lock = threading.Lock()
        self._window = window
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- named access (creates on first use) --------------------------- #

    def counter(self, name: str) -> Counter:
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter()
            return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            if name not in self._gauges:
                self._gauges[name] = Gauge()
            return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(window=self._window)
            return self._histograms[name]

    # -- convenience mutators ------------------------------------------ #

    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: int) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- snapshots ------------------------------------------------------ #

    def snapshot(self) -> Dict[str, object]:
        """A JSON-ready view: counters, gauges, histogram summaries."""
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            histograms = sorted(self._histograms.items())
        return {
            "counters": {name: c.value for name, c in counters},
            "gauges": {name: g.value for name, g in gauges},
            "histograms": {name: h.summary() for name, h in histograms},
        }

    @staticmethod
    def merge(snapshots: Sequence[Dict[str, object]]) -> Dict[str, object]:
        """Aggregate per-backend :meth:`snapshot` dicts into one view.

        The cluster gateway collects one snapshot per backend and needs
        a single exposition for the whole tier.  Semantics per
        instrument kind:

        - **counters** and **gauges** sum (requests served by the
          cluster = sum over backends; total in-flight likewise).
        - **histograms**: ``count``/``sum``/``max`` merge exactly
          (sum/sum/max) and ``mean`` is recomputed from the merged
          totals.  Percentiles cannot be merged exactly from summaries —
          the raw samples stayed on the backends — so ``p50``/``p95``/
          ``p99`` are the **count-weighted average** of the per-backend
          percentiles.  That is the standard scrape-side approximation:
          exact when backends have identical latency distributions, and
          bounded by the min/max of the per-backend values otherwise.

        Returns a dict shaped exactly like :meth:`snapshot`, so it
        feeds straight into :func:`repro.obs.prom.prometheus_text`.
        """
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        partials: Dict[str, List[Dict[str, float]]] = {}
        for snap in snapshots:
            for name, value in (snap.get("counters") or {}).items():  # type: ignore[union-attr]
                counters[name] = counters.get(name, 0) + value
            for name, value in (snap.get("gauges") or {}).items():  # type: ignore[union-attr]
                gauges[name] = gauges.get(name, 0) + value
            for name, summ in (snap.get("histograms") or {}).items():  # type: ignore[union-attr]
                partials.setdefault(name, []).append(summ)
        histograms: Dict[str, Dict[str, float]] = {}
        for name, summaries in partials.items():
            count = sum(s["count"] for s in summaries)
            total = sum(s["sum"] for s in summaries)
            merged: Dict[str, float] = {
                "count": count,
                "sum": round(total, 6),
                "mean": round(total / count if count else 0.0, 6),
                "max": round(max(s["max"] for s in summaries), 6),
            }
            for q in ("p50", "p95", "p99"):
                if count:
                    weighted = sum(s[q] * s["count"] for s in summaries)
                    merged[q] = round(weighted / count, 6)
                else:
                    merged[q] = 0.0
            histograms[name] = merged
        return {
            "counters": {k: counters[k] for k in sorted(counters)},
            "gauges": {k: gauges[k] for k in sorted(gauges)},
            "histograms": {k: histograms[k] for k in sorted(histograms)},
        }

    def prometheus_text(self, prefix: Optional[str] = None) -> str:
        """This registry's snapshot in Prometheus text exposition format."""
        from repro.obs.prom import DEFAULT_PREFIX, prometheus_text
        return prometheus_text(self.snapshot(),
                               prefix=DEFAULT_PREFIX if prefix is None
                               else prefix)

    def format_line(self, names: Optional[List[str]] = None) -> str:
        """One compact log line for the periodic stats logger.

        ``names`` filters on the *metric* name (``latency_s`` keeps both
        ``latency_s.p50`` and ``latency_s.p99``); filtering tracks each
        part's source metric explicitly, so names containing ``.p`` or
        ``=`` can never be mis-split.
        """
        snap = self.snapshot()
        parts: List[Tuple[str, str]] = []
        for name, value in snap["counters"].items():  # type: ignore[union-attr]
            parts.append((name, f"{name}={value}"))
        for name, value in snap["gauges"].items():  # type: ignore[union-attr]
            parts.append((name, f"{name}={value}"))
        for name, summ in snap["histograms"].items():  # type: ignore[union-attr]
            for quantile in _LINE_QUANTILES:
                parts.append((name,
                              f"{name}.{quantile}={summ[quantile]:.3f}"))
        if names is not None:
            wanted = set(names)
            parts = [(name, text) for name, text in parts if name in wanted]
        return " ".join(text for _, text in parts)
