"""Dynamic batching with admission control — NvWa's scheduler, online.

The paper's thesis is that accelerator throughput comes from keeping
units busy by scheduling diverse ready work onto them, not from making a
single unit faster (§III). The serving translation: never run the batch
Smith-Waterman kernel below capacity while requests are waiting. The
:class:`DynamicBatcher` implements the two-knob policy every
high-throughput serving system converges on:

- **max_batch**: the kernel's preferred occupancy — once a forming batch
  reaches it, dispatch immediately;
- **max_wait**: the deadline a lone request will tolerate — when the
  queue runs dry before the batch fills, wait at most this long for
  company, then dispatch short.

Between those bounds the batcher *drains greedily*: everything already
queued joins the batch with no waiting at all, so under load batches run
full (occupancy → max_batch) and under light load latency stays within
one max_wait of the kernel time.

Admission control is a bounded queue: :meth:`DynamicBatcher.submit`
raises :class:`ServiceOverloadedError` once ``queue_depth`` requests are
waiting, which the server maps to an ``overloaded`` response (the moral
HTTP 429) instead of letting latency grow without bound. A closed
batcher keeps handing out queued work until empty — that is the graceful
drain path — but admits nothing new.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any, Callable, Deque, Optional

from collections import deque

from repro import obs
from repro.service.metrics import MetricsRegistry

#: Default knobs: a full extension-kernel batch, and a wait bound that is
#: small next to per-read alignment time (~ms) so batching is nearly free.
DEFAULT_MAX_BATCH = 64
DEFAULT_MAX_WAIT_S = 0.002
DEFAULT_QUEUE_DEPTH = 1024


class ServiceOverloadedError(RuntimeError):
    """Admission control rejected the request (queue at capacity)."""


class ServiceClosedError(RuntimeError):
    """The batcher is draining or closed; no new work is admitted."""


@dataclass
class WorkItem:
    """One queued request with its completion future and queue timestamps.

    ``span_id`` carries the submitter's request-span id (0 when tracing
    is off) so batch spans can reference every member request.
    """

    request: Any
    future: "asyncio.Future[Any]"
    enqueued_at: float
    dequeued_at: float = 0.0
    span_id: int = 0

    @property
    def abandoned(self) -> bool:
        """True when the waiter gave up (timeout/disconnect cancelled it)."""
        return self.future.cancelled()


@dataclass
class BatcherStats:
    """Point-in-time counters the batcher maintains for introspection."""

    submitted: int = 0
    rejected: int = 0
    dispatched_batches: int = 0
    dispatched_items: int = 0
    abandoned_items: int = 0

    def as_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "rejected": self.rejected,
            "dispatched_batches": self.dispatched_batches,
            "dispatched_items": self.dispatched_items,
            "abandoned_items": self.abandoned_items,
        }


class DynamicBatcher:
    """Coalesces submitted requests into kernel-sized batches.

    Args:
        max_batch: dispatch as soon as a forming batch reaches this size.
        max_wait_s: dispatch a short batch after waiting this long for
            more arrivals (measured from the first dequeue).
        queue_depth: admission bound on waiting requests.
        metrics: optional registry; the batcher keeps ``queue_depth``
            (gauge) and ``batch_size`` (histogram) current.
        clock: injectable monotonic clock (tests).
    """

    def __init__(self, max_batch: int = DEFAULT_MAX_BATCH,
                 max_wait_s: float = DEFAULT_MAX_WAIT_S,
                 queue_depth: int = DEFAULT_QUEUE_DEPTH,
                 metrics: Optional[MetricsRegistry] = None,
                 clock: Callable[[], float] = time.monotonic):
        if max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        if max_wait_s < 0:
            raise ValueError(
                f"max_wait_s must be >= 0, got {max_wait_s}")
        if queue_depth <= 0:
            raise ValueError(
                f"queue_depth must be positive, got {queue_depth}")
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self.queue_depth = queue_depth
        self.metrics = metrics
        self.stats = BatcherStats()
        self._clock = clock
        self._queue: Deque[WorkItem] = deque()
        self._arrival = asyncio.Event()
        self._closed = False

    # ------------------------------------------------------------------ #
    # Producer side
    # ------------------------------------------------------------------ #

    @property
    def depth(self) -> int:
        """Requests currently waiting (admission-controlled quantity)."""
        return len(self._queue)

    @property
    def closed(self) -> bool:
        return self._closed

    def submit(self, request: Any,
               span_id: int = 0) -> "asyncio.Future[Any]":
        """Admit one request; returns the future its result resolves.

        Raises:
            ServiceClosedError: the batcher is draining/closed.
            ServiceOverloadedError: ``queue_depth`` requests already wait.
        """
        if self._closed:
            raise ServiceClosedError("batcher is closed to new work")
        if len(self._queue) >= self.queue_depth:
            self.stats.rejected += 1
            if self.metrics is not None:
                self.metrics.inc("rejected_total")
            obs.instant("request_rejected", "service")
            raise ServiceOverloadedError(
                f"queue at capacity ({self.queue_depth} waiting)")
        future: "asyncio.Future[Any]" = \
            asyncio.get_running_loop().create_future()
        self._queue.append(WorkItem(request=request, future=future,
                                    enqueued_at=self._clock(),
                                    span_id=span_id))
        self.stats.submitted += 1
        self._note_depth()
        self._arrival.set()
        return future

    def close(self) -> None:
        """Stop admitting; wake consumers so they can drain and exit."""
        self._closed = True
        self._arrival.set()

    def abort_pending(self, exc_factory: Callable[[], Exception]) -> int:
        """Fail every queued item (the non-drain shutdown path).

        Each live item's future gets ``exc_factory()``; returns how many
        were failed. Consumers see an empty queue afterwards.
        """
        failed = 0
        while self._queue:
            item = self._queue.popleft()
            if item.future.done():
                continue
            item.future.set_exception(exc_factory())
            failed += 1
        self._note_depth()
        return failed

    # ------------------------------------------------------------------ #
    # Consumer side
    # ------------------------------------------------------------------ #

    async def next_batch(self) -> Optional[list]:
        """The next batch of live :class:`WorkItem`, or ``None`` when the
        batcher is closed and fully drained.

        Dispatch policy: block until at least one live item is queued;
        greedily drain whatever else is queued; if still short of
        ``max_batch``, wait for stragglers until ``max_wait_s`` after the
        first dequeue; never return an empty batch.
        """
        first = await self._next_live_item()
        if first is None:
            return None
        form_span = obs.begin("batch_form", "service")
        batch = [first]
        deadline = first.dequeued_at + self.max_wait_s
        while len(batch) < self.max_batch:
            item = self._pop_live()
            if item is not None:
                batch.append(item)
                continue
            if self._closed:
                break
            remaining = deadline - self._clock()
            if remaining <= 0:
                break
            self._arrival.clear()
            try:
                await asyncio.wait_for(self._arrival.wait(), remaining)
            except asyncio.TimeoutError:
                break
        self.stats.dispatched_batches += 1
        self.stats.dispatched_items += len(batch)
        if self.metrics is not None:
            self.metrics.observe("batch_size", float(len(batch)))
        self._note_depth()
        form_span.end(size=len(batch),
                      request_spans=[item.span_id for item in batch
                                     if item.span_id])
        return batch

    async def _next_live_item(self) -> Optional[WorkItem]:
        """Block for the first non-abandoned item; None once closed+empty."""
        while True:
            item = self._pop_live()
            if item is not None:
                return item
            if self._closed:
                return None
            self._arrival.clear()
            # Re-check after clear: a submit may have raced the clear.
            if self._queue:
                continue
            await self._arrival.wait()

    def _pop_live(self) -> Optional[WorkItem]:
        """Pop the oldest queued item, discarding abandoned ones."""
        while self._queue:
            item = self._queue.popleft()
            if item.abandoned:
                self.stats.abandoned_items += 1
                if self.metrics is not None:
                    self.metrics.inc("abandoned_total")
                self._note_depth()
                obs.instant("request_abandoned", "service")
                continue
            item.dequeued_at = self._clock()
            return item
        return None

    def _note_depth(self) -> None:
        if self.metrics is not None:
            self.metrics.set_gauge("queue_depth", len(self._queue))
