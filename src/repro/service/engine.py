"""Batch execution engine: protocol requests → SAM response payloads.

One :class:`AlignmentEngine` owns one :class:`~repro.align.pipeline.
SoftwareAligner` (the expensive part is its FM-index, built once) plus a
:class:`~repro.align.paired.PairedAligner` sharing it. ``execute`` takes
the mixed batch the dynamic batcher assembled — single reads and pairs
interleaved — routes all single reads through the vectorized extension
path (``align_all(batch_extension=True)``, i.e. the
:mod:`repro.runtime.batch` kernels), aligns pairs through the
mate-rescue pipeline, and renders every result with
:func:`repro.align.sam.sam_record`.

Because the engine calls the *same* pipeline objects and the *same* SAM
renderer as the offline ``repro align`` path, service responses are
bit-identical to offline output by construction; the round-trip tests
pin this.

The engine is deliberately crash-transparent: it holds no queue state,
so the server can discard a crashed engine, build a fresh one from the
factory, and replay the batch without losing accepted requests.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro import obs
from repro.align.paired import PairedAligner
from repro.align.pipeline import SoftwareAligner
from repro.align.sam import sam_record
from repro.genome.pairs import ReadPair
from repro.genome.reference import ReferenceGenome
from repro.service.protocol import AlignRequest, TYPE_ALIGN, TYPE_ALIGN_PAIR


class EngineError(RuntimeError):
    """Execution failed for one request after the server's retries."""


class AlignmentEngine:
    """Aligns protocol request batches against a fixed reference.

    Args:
        reference: genome every request is aligned to.
        batch_extension: pack same-shaped extension jobs into vectorized
            kernel calls (bit-identical results; this is where dynamic
            batching buys throughput).
        max_batch: job cap per vectorized kernel call.
        insert_mean / insert_sd: paired-library model for proper-pair
            detection and mate rescue.
        aligner_kwargs: forwarded to :class:`SoftwareAligner` (seeding
            mode, scoring, prebuilt index, ...).
    """

    def __init__(self, reference: ReferenceGenome,
                 batch_extension: bool = True,
                 max_batch: int = 64,
                 insert_mean: float = 400.0,
                 insert_sd: float = 50.0,
                 aligner_kwargs: Optional[Dict[str, Any]] = None):
        self.reference = reference
        self.batch_extension = batch_extension
        self.max_batch = max_batch
        self.aligner = SoftwareAligner(reference, **(aligner_kwargs or {}))
        self.paired = PairedAligner(reference, insert_mean=insert_mean,
                                    insert_sd=insert_sd,
                                    aligner=self.aligner)

    # ------------------------------------------------------------------ #

    def execute(self, requests: Sequence[AlignRequest]
                ) -> List[Dict[str, Any]]:
        """Align a mixed batch; payload dicts in request order.

        Single-read requests across the whole batch are aligned in one
        ``align_all`` call so their extension jobs share vectorized
        kernel invocations; pairs go through mate rescue individually
        (rescue is data-dependent and cheap relative to the mates'
        primary alignments).
        """
        singles = [(idx, req) for idx, req in enumerate(requests)
                   if req.type == TYPE_ALIGN]
        payloads: List[Optional[Dict[str, Any]]] = [None] * len(requests)

        with obs.span("engine_execute", "service", size=len(requests),
                      singles=len(singles),
                      pairs=len(requests) - len(singles)):
            if singles:
                reads = [req.reads[0] for _, req in singles]
                results = self.aligner.align_all(
                    reads, batch_extension=self.batch_extension,
                    max_batch=self.max_batch)
                with obs.span("sam_emit", "pipeline",
                              records=len(results)):
                    for (idx, _), result in zip(singles, results):
                        payloads[idx] = {
                            "sam": [sam_record(result, self.reference)],
                            "mapped": result.aligned,
                            "score": (result.best.score
                                      if result.best is not None else None),
                        }

            for idx, req in enumerate(requests):
                if req.type != TYPE_ALIGN_PAIR:
                    continue
                payloads[idx] = self._execute_pair(req)

        missing = [i for i, p in enumerate(payloads) if p is None]
        if missing:
            raise EngineError(
                f"unhandled request types at batch positions {missing}")
        return payloads  # type: ignore[return-value]

    def _execute_pair(self, request: AlignRequest) -> Dict[str, Any]:
        pair = ReadPair(pair_id=request.pair_id or request.reads[0].read_id,
                        mate1=request.reads[0], mate2=request.reads[1])
        outcome = self.paired.align_pair(pair)
        scores = [result.best.score
                  for result in (outcome.result1, outcome.result2)
                  if result.best is not None]
        return {
            "sam": [sam_record(outcome.result1, self.reference),
                    sam_record(outcome.result2, self.reference)],
            "mapped": outcome.both_mapped,
            "proper": outcome.proper,  # repro-lint: disable=PROTO501 -- documented pair field for external consumers
            "insert_size": outcome.insert_size,  # repro-lint: disable=PROTO501 -- documented pair field for external consumers
            "rescued_mate": outcome.rescued_mate,  # repro-lint: disable=PROTO501 -- documented pair field for external consumers
            "score": sum(scores) if scores else None,
        }


# Chaos wrappers (FlakyEngine, FaultyEngine) live in repro.faults; the
# FlakyEngine re-export keeps the historical import path working.
from repro.faults.injectors import FlakyEngine  # noqa: E402  (re-export)

__all__ = ["AlignmentEngine", "EngineError", "FlakyEngine"]
